// Tests for fibers, the discrete-event engine, and its synchronization
// primitives against the Section 3 cost model.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {
namespace {

TEST(Fiber, RunsBodyToCompletion) {
  int x = 0;
  Fiber f([&] { x = 7; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 7);
}

TEST(Fiber, YieldsAndResumesPreservingState) {
  std::vector<int> log;
  Fiber* self = nullptr;
  Fiber f([&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back(i);
      self->yield_to_resumer();
    }
  });
  self = &f;
  while (!f.finished()) f.resume();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 100;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<Fiber*> raw(kFibers);
  int sum = 0;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&, i] {
      sum += i;
      raw[i]->yield_to_resumer();
      sum += i;
    }));
    raw[i] = fibers.back().get();
  }
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(sum, 2 * (kFibers - 1) * kFibers / 2);
}

TEST(Engine, AdvanceAccumulatesVirtualTime) {
  Engine engine;
  Time end = 0;
  engine.spawn("a", [&](Context& ctx) {
    ctx.advance(100);
    ctx.advance(0.5);  // fractional accumulation
    ctx.advance(0.5);
    end = ctx.now();
  });
  engine.run();
  EXPECT_EQ(end, 101u);
}

TEST(Engine, ActorsInterleaveInVirtualTimeOrder) {
  Engine engine;
  std::vector<std::pair<std::string, Time>> events;
  engine.spawn("slow", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.advance(100);
      ctx.sync();
      events.push_back({"slow", ctx.now()});
    }
  });
  engine.spawn("fast", [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      ctx.advance(30);
      ctx.sync();
      events.push_back({"fast", ctx.now()});
    }
  });
  engine.run();
  // Events must be globally sorted by virtual time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].second, events[i].second);
  }
  EXPECT_EQ(events.front().first, "fast");  // 30 < 100
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(LatencyParams::paper_defaults(), 99);
    std::vector<std::uint64_t> trace;
    for (int a = 0; a < 4; ++a) {
      engine.spawn("a", [&](Context& ctx) {
        for (int i = 0; i < 50; ++i) {
          ctx.advance(ctx.rng().next_below(100));
          ctx.sync();
          trace.push_back(ctx.now());
        }
      });
    }
    engine.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, DetectsDeadlock) {
  Engine engine;
  engine.spawn("stuck", [](Context& ctx) { ctx.block(); });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, WakeAtHonorsBothClocks) {
  Engine engine;
  Time woken_at = 0;
  const ActorId sleeper = engine.spawn("sleeper", [&](Context& ctx) {
    ctx.block();
    woken_at = ctx.now();
  });
  engine.spawn("waker", [&, sleeper](Context& ctx) {
    ctx.advance(500);
    ctx.sync();
    ctx.engine().wake_at(sleeper, ctx.now() + 250);
  });
  engine.run();
  EXPECT_EQ(woken_at, 750u);
}

TEST(SimCacheLine, ConcurrentAtomicsSerializeAtLatomicEach) {
  // Section 3: k concurrent atomics on one line complete at i * Latomic.
  Engine engine;
  SimCacheLine line;
  const auto latomic = static_cast<Time>(engine.params().atomic());
  std::vector<Time> completions;
  for (int i = 0; i < 4; ++i) {
    engine.spawn("t", [&](Context& ctx) {
      line.atomic_rmw(ctx);
      completions.push_back(ctx.now());
    });
  }
  engine.run();
  ASSERT_EQ(completions.size(), 4u);
  std::sort(completions.begin(), completions.end());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(completions[i], (i + 1) * latomic);
  }
}

TEST(SimMutex, HandsOffInFifoOrder) {
  Engine engine;
  SimMutex mutex;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("t", [&, i](Context& ctx) {
      ctx.advance(10 * (i + 1));  // arrival order 0, 1, 2
      mutex.lock(ctx);
      order.push_back(i);
      ctx.advance(1000);  // hold long enough that all others queue up
      mutex.unlock(ctx);
    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimMutex, TryLockFailsWhenHeld) {
  Engine engine;
  SimMutex mutex;
  bool second_got_it = true;
  engine.spawn("holder", [&](Context& ctx) {
    ASSERT_TRUE(mutex.try_lock(ctx));
    ctx.advance(1000);
    mutex.unlock(ctx);
  });
  engine.spawn("prober", [&](Context& ctx) {
    ctx.advance(100);  // while the holder still holds it
    second_got_it = mutex.try_lock(ctx);
  });
  engine.run();
  EXPECT_FALSE(second_got_it);
}

TEST(SimSlot, DeliversAtProducerTimePlusDelay) {
  Engine engine;
  SimSlot<int> slot;
  Time consumer_done = 0;
  int value = 0;
  engine.spawn("consumer", [&](Context& ctx) {
    value = slot.await(ctx);
    consumer_done = ctx.now();
  });
  engine.spawn("producer", [&](Context& ctx) {
    ctx.advance(300);
    slot.set(ctx, 42, 600.0);
  });
  engine.run();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(consumer_done, 900u);
}

TEST(Mailbox, DeliversWithMessageLatency) {
  Engine engine;
  Mailbox<int> box;
  const auto lmsg = static_cast<Time>(engine.params().message());
  Time received_at = 0;
  engine.spawn("receiver", [&](Context& ctx) {
    (void)box.recv(ctx);
    received_at = ctx.now();
  });
  engine.spawn("sender", [&](Context& ctx) {
    ctx.advance(100);
    box.send(ctx, 1);
  });
  engine.run();
  EXPECT_EQ(received_at, 100 + lmsg);
}

TEST(Mailbox, PerSenderFifoHolds) {
  Engine engine;
  Mailbox<int> box;
  std::vector<int> received;
  engine.spawn("receiver", [&](Context& ctx) {
    for (int i = 0; i < 10; ++i) received.push_back(box.recv(ctx));
  });
  engine.spawn("sender", [&](Context& ctx) {
    for (int i = 0; i < 10; ++i) {
      box.send(ctx, i);
      ctx.advance(5);
    }
  });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(Mailbox, TryRecvOnlyReturnsDeliveredMessages) {
  Engine engine;
  Mailbox<int> box;
  bool immediate_empty = true;
  bool later_full = false;
  engine.spawn("receiver", [&](Context& ctx) {
    ctx.advance(50);  // before any delivery completes
    immediate_empty = !box.try_recv(ctx).has_value();
    ctx.advance(10000);
    later_full = box.try_recv(ctx).has_value();
  });
  engine.spawn("sender", [&](Context& ctx) { box.send(ctx, 7); });
  engine.run();
  EXPECT_TRUE(immediate_empty) << "message read before its delivery time";
  EXPECT_TRUE(later_full);
}

}  // namespace
}  // namespace pimds::sim
