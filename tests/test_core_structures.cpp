// Tests for the real-thread PIM data structures (core/): set semantics,
// FIFO semantics, combining, segment hand-off, and concurrent stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"

namespace pimds::core {
namespace {

runtime::PimSystem::Config small_config(std::size_t vaults) {
  runtime::PimSystem::Config config;
  config.num_vaults = vaults;
  config.vault_bytes = 8u << 20;
  return config;
}

TEST(PimLinkedList, MatchesStdSetSingleThreaded) {
  runtime::PimSystem system(small_config(1));
  PimLinkedList list(system);
  system.start();
  std::set<std::uint64_t> reference;
  Xoshiro256 rng(5);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.next_in(1, 150);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(list.add(key), reference.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(list.remove(key), reference.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(list.contains(key), reference.count(key) > 0);
    }
    ASSERT_EQ(list.size(), reference.size());
  }
  system.stop();
}

TEST(PimLinkedList, DisjointRangesBehaveSequentiallyPerThread) {
  // Each thread owns a private key range, so its operations must have
  // exactly the sequential outcomes even under full concurrency.
  runtime::PimSystem system(small_config(1));
  PimLinkedList list(system, {0, /*combining=*/true, 64});
  system.start();
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = 1 + static_cast<std::uint64_t>(t) * 1000;
      std::set<std::uint64_t> reference;
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = base + rng.next_below(200);
        bool got = false;
        bool want = false;
        switch (rng.next_below(3)) {
          case 0:
            got = list.add(key);
            want = reference.insert(key).second;
            break;
          case 1:
            got = list.remove(key);
            want = reference.erase(key) > 0;
            break;
          default:
            got = list.contains(key);
            want = reference.count(key) > 0;
        }
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  system.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(list.max_observed_batch(), 1u)
      << "concurrent load should trigger combining";
}

TEST(PimLinkedList, NonCombiningModeIsAlsoCorrect) {
  runtime::PimSystem system(small_config(1));
  PimLinkedList list(system, {0, /*combining=*/false, 1});
  system.start();
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(list.add(k));
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(list.contains(k));
  for (std::uint64_t k = 1; k <= 100; ++k) EXPECT_TRUE(list.remove(k));
  EXPECT_EQ(list.size(), 0u);
  system.stop();
}

TEST(PimSkipList, MatchesStdSetSingleThreaded) {
  runtime::PimSystem system(small_config(4));
  PimSkipList::Options options;
  options.key_max = 1 << 12;
  PimSkipList list(system, options);
  system.start();
  std::set<std::uint64_t> reference;
  Xoshiro256 rng(6);
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t key = rng.next_in(1, 1 << 12);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(list.add(key), reference.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(list.remove(key), reference.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(list.contains(key), reference.count(key) > 0);
    }
  }
  EXPECT_EQ(list.size(), reference.size());
  system.stop();
}

TEST(PimSkipList, MigrationPreservesAllKeys) {
  runtime::PimSystem system(small_config(4));
  PimSkipList::Options options;
  options.key_max = 4000;
  PimSkipList list(system, options);
  system.start();
  for (std::uint64_t k = 1; k <= 4000; k += 3) EXPECT_TRUE(list.add(k));
  const std::size_t before = list.size();

  // Partition 0 covers [1, 1000): move its suffix [500, 1000) to vault 2.
  ASSERT_TRUE(list.migrate(500, 2));
  while (list.migration_active()) std::this_thread::yield();

  EXPECT_EQ(list.size(), before);
  for (std::uint64_t k = 1; k <= 4000; ++k) {
    ASSERT_EQ(list.contains(k), k % 3 == 1) << k;
  }
  // The directory must now route the moved range to vault 2.
  const auto parts = list.partitions();
  const auto it = std::find_if(parts.begin(), parts.end(),
                               [](const auto& e) { return e.sentinel == 500; });
  ASSERT_NE(it, parts.end()) << "suffix split must create a sentinel at 500";
  EXPECT_EQ(it->vault, 2u);
  system.stop();
}

TEST(PimSkipList, MigrationRejectsBusyAndDegenerateRequests) {
  runtime::PimSystem system(small_config(4));
  PimSkipList::Options options;
  options.key_max = 4000;
  PimSkipList list(system, options);
  system.start();
  EXPECT_FALSE(list.migrate(1, 0)) << "vault 0 already owns key 1";
  EXPECT_FALSE(list.migrate(0, 1)) << "key below key_min";
  EXPECT_FALSE(list.migrate(1, 99)) << "no such vault";
  ASSERT_TRUE(list.migrate(1, 1));  // whole partition 0 -> vault 1
  // While active (or just completed), a second migrate may be rejected;
  // after completion it must be accepted again.
  while (list.migration_active()) std::this_thread::yield();
  EXPECT_TRUE(list.migrate(1, 0));  // move it back
  while (list.migration_active()) std::this_thread::yield();
  system.stop();
}

TEST(PimSkipList, OperationsRaceWithMigrationSafely) {
  runtime::PimSystem system(small_config(4));
  PimSkipList::Options options;
  options.key_max = 4000;
  options.migrate_chunk = 4;  // slow migration: maximize overlap
  PimSkipList list(system, options);
  system.start();
  for (std::uint64_t k = 1; k <= 4000; k += 2) list.add(k);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  // Two mutator threads hammer the migrating range with contains (whose
  // expected value is stable: odd keys present, even keys absent).
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      while (!stop.load()) {
        const std::uint64_t key = rng.next_in(1, 4000);
        if (list.contains(key) != (key % 2 == 1)) failures.fetch_add(1);
      }
    });
  }
  // Bounce a range between vaults a few times while the readers run.
  for (int round = 0; round < 6; ++round) {
    const std::size_t to = (round % 3) + 1;
    if (list.migrate(200, to)) {
      while (list.migration_active()) std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  system.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(list.size(), 2000u);
}

TEST(PimFifoQueue, BasicFifoOrderSingleThreaded) {
  runtime::PimSystem system(small_config(4));
  PimFifoQueue queue(system, {16, true});  // tiny segments: exercise hand-off
  system.start();
  for (std::uint64_t i = 0; i < 500; ++i) queue.enqueue(i);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const auto v = queue.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i) << "FIFO order broken across segment hand-offs";
  }
  EXPECT_FALSE(queue.dequeue().has_value());
  EXPECT_GT(queue.segments_created(), 10u);
  system.stop();
}

TEST(PimFifoQueue, EmptyQueueReportsEmpty) {
  runtime::PimSystem system(small_config(2));
  PimFifoQueue queue(system, PimFifoQueue::Options{});
  system.start();
  EXPECT_FALSE(queue.dequeue().has_value());
  queue.enqueue(7);
  EXPECT_EQ(queue.dequeue(), std::optional<std::uint64_t>(7));
  EXPECT_FALSE(queue.dequeue().has_value());
  system.stop();
}

TEST(PimFifoQueue, PerProducerOrderAndNoLossUnderConcurrency) {
  runtime::PimSystem system(small_config(4));
  PimFifoQueue queue(system, {64, true});
  system.start();
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 20000;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Tag: high bits producer id, low bits sequence.
        queue.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<int> order_violations{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::map<std::uint64_t, std::int64_t> last_seen;
      while (consumed.load() < kProducers * kPerProducer) {
        const auto v = queue.dequeue();
        if (!v.has_value()) continue;
        const std::uint64_t producer = *v >> 32;
        const auto seq = static_cast<std::int64_t>(*v & 0xffffffff);
        auto [it, fresh] = last_seen.try_emplace(producer, -1);
        // Per-producer order as seen by one consumer must be increasing
        // (FIFO queues preserve it even with multiple consumers).
        if (!fresh && seq <= it->second) order_violations.fetch_add(1);
        it->second = seq;
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(queue.dequeue().has_value());  // before stop(): cores alive
  system.stop();
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(PimFifoQueue, SingleVaultStillWorks) {
  runtime::PimSystem system(small_config(1));
  PimFifoQueue queue(system, {8, true});
  system.start();
  for (std::uint64_t i = 0; i < 100; ++i) queue.enqueue(i);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(queue.dequeue(), std::optional<std::uint64_t>(i));
  }
  system.stop();
}

TEST(PimFifoQueue, RoundRobinPlacementRemainsCorrect) {
  runtime::PimSystem system(small_config(3));
  PimFifoQueue queue(system, {32, /*antipodal_placement=*/false});
  system.start();
  for (std::uint64_t i = 0; i < 1000; ++i) queue.enqueue(i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(queue.dequeue(), std::optional<std::uint64_t>(i));
  }
  system.stop();
}

}  // namespace
}  // namespace pimds::core
