// The linearizability oracle (src/check/): hand-built histories exercising
// each sequential spec and each violation class, then recorded histories
// from every real-thread queue and set in the library, then simulator runs
// recorded through the same types — one checker for both worlds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "baselines/faa_queue.hpp"
#include "baselines/fc_structures.hpp"
#include "baselines/hoh_list.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "baselines/ms_queue.hpp"
#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "check/spec.hpp"
#include "common/fifo_checker.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"
#include "sim/ds/linked_lists.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds {
namespace {

// TSan slows the recording runs by an order of magnitude AND lengthens the
// genuinely-concurrent windows the WGL search must permute (a queue history
// cannot partition, so its cost grows quickly with overlap). Shrink the
// workloads so the sanitizer CI leg finishes; schedule diversity, not
// volume, is what the TSan runs add.
#if defined(__SANITIZE_THREAD__)
#define PIMDS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PIMDS_TSAN_BUILD 1
#endif
#endif
#ifdef PIMDS_TSAN_BUILD
constexpr std::uint64_t kQueuePerProducer = 300;
constexpr std::uint64_t kSetOpsPerThread = 400;
#else
constexpr std::uint64_t kQueuePerProducer = 1500;
constexpr std::uint64_t kSetOpsPerThread = 1200;
#endif

check::Event ev(std::uint32_t op, std::uint64_t arg, std::uint64_t ret,
                std::uint64_t begin, std::uint64_t end,
                std::uint32_t thread = 0) {
  check::Event e;
  e.op = op;
  e.thread = thread;
  e.arg = arg;
  e.ret = ret;
  e.begin = begin;
  e.end = end;
  return e;
}

check::History history_of(std::vector<check::Event> events) {
  check::History h;
  h.events = std::move(events);
  return h;
}

// ---------------------------------------------------------------------------
// QueueSpec on hand-built histories. These mirror the FifoChecker unit tests
// (tests/test_fifo_checker.cpp) so the two checkers are visibly aligned.
// ---------------------------------------------------------------------------

TEST(QueueSpecCheck, AcceptsSequentialFifoHistory) {
  std::vector<check::Event> events;
  std::uint64_t t = 1;
  for (std::uint64_t v = 1; v <= 10; ++v) {
    events.push_back(ev(check::kEnq, v, check::kRetTrue, t, t + 1));
    t += 2;
  }
  for (std::uint64_t v = 1; v <= 10; ++v) {
    events.push_back(ev(check::kDeq, 0, v, t, t + 1));
    t += 2;
  }
  const auto r = check::check_queue_history(history_of(std::move(events)));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(QueueSpecCheck, AcceptsConcurrentEnqueuesServedInEitherOrder) {
  // enq(1) and enq(2) overlap in real time, so a dequeuer may see 2 first.
  const auto r = check::check_queue_history(history_of({
      ev(check::kEnq, 1, check::kRetTrue, 0, 10, 0),
      ev(check::kEnq, 2, check::kRetTrue, 5, 15, 1),
      ev(check::kDeq, 0, 2, 20, 21, 2),
      ev(check::kDeq, 0, 1, 22, 23, 2),
  }));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(QueueSpecCheck, RejectsDuplicateDequeue) {
  const auto r = check::check_queue_history(history_of({
      ev(check::kEnq, 7, check::kRetTrue, 0, 1),
      ev(check::kDeq, 0, 7, 2, 3),
      ev(check::kDeq, 0, 7, 4, 5),
  }));
  EXPECT_EQ(r.verdict, check::Verdict::kNotLinearizable);
  EXPECT_FALSE(r.error.empty());
}

TEST(QueueSpecCheck, RejectsInventedValue) {
  const auto r = check::check_queue_history(history_of({
      ev(check::kEnq, 7, check::kRetTrue, 0, 1),
      ev(check::kDeq, 0, 8, 2, 3),
  }));
  EXPECT_EQ(r.verdict, check::Verdict::kNotLinearizable);
}

TEST(QueueSpecCheck, RejectsFifoReorderAcrossSequentialEnqueues) {
  // enq(1) completes strictly before enq(2) begins, yet 2 is served first.
  const auto r = check::check_queue_history(history_of({
      ev(check::kEnq, 1, check::kRetTrue, 0, 1, 0),
      ev(check::kEnq, 2, check::kRetTrue, 2, 3, 1),
      ev(check::kDeq, 0, 2, 4, 5, 2),
      ev(check::kDeq, 0, 1, 6, 7, 2),
  }));
  EXPECT_EQ(r.verdict, check::Verdict::kNotLinearizable);
}

TEST(QueueSpecCheck, EmptyDequeueRequiresAnEmptyWindow) {
  // deq -> empty strictly after enq(1) completed, nothing dequeued before:
  // no linearization point has an empty queue.
  const auto bad = check::check_queue_history(history_of({
      ev(check::kEnq, 1, check::kRetTrue, 0, 1, 0),
      ev(check::kDeq, 0, check::kRetEmpty, 2, 3, 1),
  }));
  EXPECT_EQ(bad.verdict, check::Verdict::kNotLinearizable);

  // Overlapping the enqueue, the empty result is fine: the dequeue can
  // linearize before the enqueue takes effect.
  const auto good = check::check_queue_history(history_of({
      ev(check::kEnq, 1, check::kRetTrue, 0, 10, 0),
      ev(check::kDeq, 0, check::kRetEmpty, 2, 5, 1),
      ev(check::kDeq, 0, 1, 12, 13, 1),
  }));
  EXPECT_TRUE(good.ok()) << good.error;
}

TEST(QueueSpecCheck, InitialStateExpressesPrefilledQueue) {
  check::QueueSpec::State initial;
  initial.items = {10, 11};
  EXPECT_TRUE(check::check_queue_history(history_of({
                                             ev(check::kDeq, 0, 10, 0, 1),
                                             ev(check::kDeq, 0, 11, 2, 3),
                                         }),
                                         initial)
                  .ok());
  EXPECT_FALSE(check::check_queue_history(history_of({
                                              ev(check::kDeq, 0, 11, 0, 1),
                                          }),
                                          initial)
                   .ok())
      << "pre-filled values must come out in order";
}

TEST(QueueSpecCheck, LostValueIsLinearizableButFailsFifoCheckerDrained) {
  // A value enqueued and never dequeued IS linearizable — "the history just
  // ended" is a legal explanation. FifoChecker's drained=true mode checks a
  // STRONGER property (completeness after a full drain) that only makes
  // sense with its out-of-band knowledge that the queue was emptied. This
  // is the one deliberate semantic difference between the two checkers.
  const auto r = check::check_queue_history(history_of({
      ev(check::kEnq, 7, check::kRetTrue, 0, 1),
  }));
  EXPECT_TRUE(r.ok()) << r.error;

  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  EXPECT_FALSE(FifoChecker::check(logs, /*drained=*/true).ok);
  EXPECT_TRUE(FifoChecker::check(logs, /*drained=*/false).ok);
}

TEST(QueueSpecCheck, TinyBudgetReportsLimitReachedNotAVerdict) {
  check::CheckOptions opts;
  opts.max_explored = 1;
  const auto r = check::check_queue_history(history_of({
                                                ev(check::kEnq, 1, 1, 0, 1),
                                                ev(check::kEnq, 2, 1, 2, 3),
                                                ev(check::kDeq, 0, 1, 4, 5),
                                                ev(check::kDeq, 0, 2, 6, 7),
                                            }),
                                            {}, opts);
  EXPECT_EQ(r.verdict, check::Verdict::kLimitReached);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// SetSpec and MapSpec on hand-built histories.
// ---------------------------------------------------------------------------

TEST(SetSpecCheck, AcceptsSequentialPerKeyHistoryAndPartitions) {
  const auto r = check::check_set_history(history_of({
      // Setup insert: key 5 present from the start (time-0 event).
      ev(check::kAdd, 5, check::kRetTrue, 0, 0),
      ev(check::kContains, 5, check::kRetTrue, 1, 2),
      ev(check::kRemove, 5, check::kRetTrue, 3, 4),
      ev(check::kContains, 5, check::kRetFalse, 5, 6),
      ev(check::kAdd, 5, check::kRetTrue, 7, 8),
      // Independent key: its events check in a separate partition.
      ev(check::kAdd, 9, check::kRetTrue, 1, 2),
      ev(check::kRemove, 9, check::kRetTrue, 3, 4),
  }));
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.partitions, 2u);
}

TEST(SetSpecCheck, RejectsContainsContradictingSetupInsert) {
  const auto r = check::check_set_history(history_of({
      ev(check::kAdd, 5, check::kRetTrue, 0, 0),
      ev(check::kContains, 5, check::kRetFalse, 1, 2),
  }));
  EXPECT_EQ(r.verdict, check::Verdict::kNotLinearizable);
  EXPECT_NE(r.error.find("key 5"), std::string::npos) << r.error;
}

TEST(SetSpecCheck, RejectsDoubleSuccessfulAdd) {
  const auto r = check::check_set_history(history_of({
      ev(check::kAdd, 3, check::kRetTrue, 0, 1),
      ev(check::kAdd, 3, check::kRetTrue, 2, 3),
  }));
  EXPECT_EQ(r.verdict, check::Verdict::kNotLinearizable);
}

TEST(SetSpecCheck, AcceptsContainsFalseOverlappingTheAdd) {
  const auto r = check::check_set_history(history_of({
      ev(check::kAdd, 9, check::kRetTrue, 0, 10, 0),
      ev(check::kContains, 9, check::kRetFalse, 1, 2, 1),
      ev(check::kContains, 9, check::kRetTrue, 12, 13, 1),
  }));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(MapSpecCheck, LastWriterWinsReadsAndErase) {
  const auto good = check::check_history<check::MapSpec>(history_of({
      ev(check::kAdd, 4, /*written value=*/42, 0, 1),
      ev(check::kContains, 4, 42, 2, 3),
      ev(check::kAdd, 4, 43, 4, 5),
      ev(check::kContains, 4, 43, 6, 7),
      ev(check::kRemove, 4, check::kRetTrue, 8, 9),
      ev(check::kContains, 4, check::kRetEmpty, 10, 11),
  }));
  EXPECT_TRUE(good.ok()) << good.error;

  const auto bad = check::check_history<check::MapSpec>(history_of({
      ev(check::kAdd, 4, 42, 0, 1),
      ev(check::kContains, 4, 43, 2, 3),
  }));
  EXPECT_EQ(bad.verdict, check::Verdict::kNotLinearizable);
}

// ---------------------------------------------------------------------------
// Real-thread harnesses: record check/ histories from every queue and set
// in the library, then check them. Values are tagged per producer so every
// enqueued value is unique (QueueSpec matches dequeues by value).
// ---------------------------------------------------------------------------

template <typename Queue>
check::History record_queue_run(Queue& queue, int producers, int consumers,
                                std::uint64_t per_producer) {
  check::HistoryRecorder recorder(producers + consumers);
  std::atomic<int> producers_done{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      check::ThreadLog& log = recorder.log(p);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t value =
            ((static_cast<std::uint64_t>(p) + 1) << 48) | i;
        log.begin(check::kEnq, value);
        queue.enqueue(value);
        log.end(check::kRetTrue);
      }
      producers_done.fetch_add(1);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      check::ThreadLog& log = recorder.log(producers + c);
      std::uint64_t empties = 0;
      for (;;) {
        log.begin(check::kDeq, 0);
        const auto v = queue.dequeue();
        if (v.has_value()) {
          log.end(*v);
          empties = 0;
        } else {
          // An empty result doesn't mutate the abstract queue, so sampling
          // is sound — recording every probe of this spin loop would bloat
          // the history without adding checking power.
          if (empties++ % 256 == 0) {
            log.end(check::kRetEmpty);
          } else {
            log.abandon();
          }
          if (producers_done.load() == producers) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return recorder.collect();
}

TEST(CheckedQueueHistories, MsQueueIsLinearizable) {
  baselines::MsQueue q;
  const auto r = check::check_queue_history(record_queue_run(q, 2, 2, kQueuePerProducer));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedQueueHistories, FaaQueueIsLinearizable) {
  baselines::FaaQueue q;
  const auto r = check::check_queue_history(record_queue_run(q, 2, 2, kQueuePerProducer));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedQueueHistories, FcQueueIsLinearizable) {
  baselines::FcQueue q;
  const auto r = check::check_queue_history(record_queue_run(q, 2, 2, kQueuePerProducer));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedQueueHistories, PimFifoQueueIsLinearizable) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue queue(system, {128, true});
  system.start();
  const auto r =
      check::check_queue_history(record_queue_run(queue, 2, 2, kQueuePerProducer));
  system.stop();
  EXPECT_TRUE(r.ok()) << r.error;
}

/// Drive any add/remove/contains set with recording threads over a small
/// key range (small ranges maximize per-key contention, which is where
/// linearizability bugs live) and return the merged history.
template <typename Set>
check::History record_set_run(Set& set, int num_threads,
                              std::uint64_t ops_per_thread,
                              std::uint64_t key_range, std::uint64_t seed) {
  check::HistoryRecorder recorder(num_threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      check::ThreadLog& log = recorder.log(t);
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = 1 + rng() % key_range;
        const std::uint64_t dice = rng() % 10;
        if (dice < 3) {
          log.begin(check::kAdd, key);
          const bool ok = set.add(key);
          log.end(ok ? check::kRetTrue : check::kRetFalse);
        } else if (dice < 6) {
          log.begin(check::kRemove, key);
          const bool ok = set.remove(key);
          log.end(ok ? check::kRetTrue : check::kRetFalse);
        } else {
          log.begin(check::kContains, key);
          const bool ok = set.contains(key);
          log.end(ok ? check::kRetTrue : check::kRetFalse);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return recorder.collect();
}

template <typename Set>
void expect_set_linearizable(Set& set) {
  const auto r = check::check_set_history(
      record_set_run(set, 4, kSetOpsPerThread, /*key_range=*/48, /*seed=*/0x5eed));
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.partitions, 1u);
}

TEST(CheckedSetHistories, LazyListIsLinearizable) {
  baselines::LazyList set;
  expect_set_linearizable(set);
}

TEST(CheckedSetHistories, HohListIsLinearizable) {
  baselines::HohList set;
  expect_set_linearizable(set);
}

TEST(CheckedSetHistories, LockFreeSkipListIsLinearizable) {
  baselines::LockFreeSkipList set;
  expect_set_linearizable(set);
}

TEST(CheckedSetHistories, FcLinkedListIsLinearizable) {
  baselines::FcLinkedList set(/*combining=*/true);
  expect_set_linearizable(set);
}

TEST(CheckedSetHistories, FcSkipListIsLinearizable) {
  baselines::FcSkipList set(/*key_range=*/64, /*partitions=*/4);
  expect_set_linearizable(set);
}

TEST(CheckedSetHistories, PimLinkedListIsLinearizable) {
  runtime::PimSystem::Config config;
  config.num_vaults = 1;
  runtime::PimSystem system(config);
  core::PimLinkedList list(system, {0, /*combining=*/true, 64});
  system.start();
  expect_set_linearizable(list);
  system.stop();
}

TEST(CheckedSetHistories, PimSkipListIsLinearizable) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 12;
  core::PimSkipList list(system, options);
  system.start();
  expect_set_linearizable(list);
  system.stop();
}

// ---------------------------------------------------------------------------
// Simulator harnesses: the same recorder plugged into virtual-time runs.
// Virtual timestamps are globally ordered by construction of the engine, so
// the histories check with the identical code path.
// ---------------------------------------------------------------------------

TEST(CheckedSimHistories, PimListRunIsLinearizable) {
  sim::ListConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 4;
  cfg.duration_ns = 300'000;
  cfg.key_range = 128;
  cfg.initial_size = 64;
  check::HistoryRecorder recorder(cfg.num_cpus + 1);
  cfg.recorder = &recorder;
  sim::run_pim_list(cfg, /*combining=*/true);
  const auto r = check::check_set_history(recorder.collect());
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedSimHistories, PimSkipListRunIsLinearizable) {
  sim::SkipListConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 6;
  cfg.duration_ns = 300'000;
  cfg.key_range = 1 << 10;
  cfg.initial_size = 256;
  check::HistoryRecorder recorder(cfg.num_cpus + 1);
  cfg.recorder = &recorder;
  sim::run_pim_skiplist(cfg, /*partitions=*/4);
  const auto r = check::check_set_history(recorder.collect());
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.partitions, 1u);
}

TEST(CheckedSimHistories, LockFreeSkipListRunIsLinearizable) {
  sim::SkipListConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 6;
  cfg.duration_ns = 300'000;
  cfg.key_range = 1 << 10;
  cfg.initial_size = 256;
  check::HistoryRecorder recorder(cfg.num_cpus + 1);
  cfg.recorder = &recorder;
  sim::run_lockfree_skiplist(cfg);
  const auto r = check::check_set_history(recorder.collect());
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedSimHistories, FaaQueueRunIsLinearizable) {
  sim::QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 3;
  cfg.dequeuers = 3;
  cfg.duration_ns = 200'000;
  cfg.initial_nodes = 64;
  check::HistoryRecorder recorder(cfg.enqueuers + cfg.dequeuers);
  cfg.recorder = &recorder;
  sim::run_faa_queue(cfg);
  check::QueueSpec::State initial;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i)
    initial.items.push_back(i);
  const auto r =
      check::check_queue_history(recorder.collect(), std::move(initial));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedSimHistories, MsQueueRunIsLinearizable) {
  // Kept deliberately small: the CAS retry loop under contention stretches
  // each operation's real-time window across many neighbors, which is
  // exactly the worst case for the DFS. Low contention keeps it cheap while
  // still covering the ms-queue recording path.
  sim::QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 2;
  cfg.dequeuers = 2;
  cfg.duration_ns = 50'000;
  cfg.initial_nodes = 128;
  check::HistoryRecorder recorder(cfg.enqueuers + cfg.dequeuers);
  cfg.recorder = &recorder;
  sim::run_ms_queue(cfg);
  check::QueueSpec::State initial;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i)
    initial.items.push_back(i);
  const auto r =
      check::check_queue_history(recorder.collect(), std::move(initial));
  EXPECT_TRUE(r.ok()) << r.error;
}

TEST(CheckedSimHistories, PimQueueRunIsLinearizable) {
  sim::QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 3;
  cfg.dequeuers = 3;
  cfg.duration_ns = 200'000;
  cfg.initial_nodes = 200;
  check::HistoryRecorder recorder(cfg.enqueuers + cfg.dequeuers);
  cfg.recorder = &recorder;
  sim::PimQueueOptions opts;
  opts.segment_threshold = 64;
  sim::run_pim_queue(cfg, opts);
  check::QueueSpec::State initial;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i)
    initial.items.push_back(i);
  const auto r =
      check::check_queue_history(recorder.collect(), std::move(initial));
  EXPECT_TRUE(r.ok()) << r.error;
}

}  // namespace
}  // namespace pimds
