// Tests for the CPU baseline structures: sequential semantics against
// std::set / std::deque oracles, plus concurrent stress with per-thread and
// per-producer invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/faa_queue.hpp"
#include "baselines/fc_structures.hpp"
#include "baselines/flat_combining.hpp"
#include "baselines/hoh_list.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "baselines/ms_queue.hpp"
#include "common/rng.hpp"

namespace pimds::baselines {
namespace {

// The lock-free structures run every suite under both reclamation policies
// (common/reclaim.hpp): EBR exercises the epoch path, HP exercises the
// protect-with-validate traversals and restart logic.
std::string policy_name(const ::testing::TestParamInfo<ReclaimPolicy>& info) {
  return to_string(info.param);
}

/// After a concurrent run, the structure's reclamation accounting must be
/// coherent: nothing freed that was never retired, and flush() must leave
/// no backlog once all mutators have quiesced.
void expect_reclaim_coherent(Reclaimer& r) {
  r.flush();
  const ReclaimStats s = r.stats();
  EXPECT_GE(s.retired, s.freed);
  EXPECT_EQ(s.in_flight, s.retired - s.freed);
}

// ---------- generic set-semantics checkers ----------

template <typename Set>
void check_set_semantics(Set& set, std::uint64_t key_range, int ops,
                         std::uint64_t seed) {
  std::set<std::uint64_t> reference;
  Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t key = rng.next_in(1, key_range);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(set.add(key), reference.insert(key).second) << "add " << key;
        break;
      case 1:
        ASSERT_EQ(set.remove(key), reference.erase(key) > 0)
            << "remove " << key;
        break;
      default:
        ASSERT_EQ(set.contains(key), reference.count(key) > 0)
            << "contains " << key;
    }
  }
}

/// Each thread mutates a private key range; outcomes must match a private
/// sequential oracle exactly, even under full concurrency.
template <typename Set>
int disjoint_range_stress(Set& set, int threads, int ops_per_thread) {
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::uint64_t base = 1 + static_cast<std::uint64_t>(t) * 100000;
      std::set<std::uint64_t> reference;
      Xoshiro256 rng(17 + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = base + rng.next_below(300);
        bool got = false;
        bool want = false;
        switch (rng.next_below(3)) {
          case 0:
            got = set.add(key);
            want = reference.insert(key).second;
            break;
          case 1:
            got = set.remove(key);
            want = reference.erase(key) > 0;
            break;
          default:
            got = set.contains(key);
            want = reference.count(key) > 0;
        }
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  return failures.load();
}

/// Shared-range stress: verify global accounting (successful adds minus
/// successful removes equals the final size).
template <typename Set>
void shared_range_stress(Set& set, int threads, int ops_per_thread) {
  std::atomic<std::int64_t> net{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(23 + t);
      std::int64_t local = 0;
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = rng.next_in(1, 128);
        if (rng.next_bool(0.5)) {
          if (set.add(key)) ++local;
        } else {
          if (set.remove(key)) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  std::int64_t present = 0;
  for (std::uint64_t k = 1; k <= 128; ++k) present += set.contains(k);
  EXPECT_EQ(present, net.load())
      << "successful add/remove accounting disagrees with final contents";
}

TEST(HohList, MatchesStdSet) {
  HohList list;
  check_set_semantics(list, 200, 6000, 1);
}

TEST(HohList, DisjointRangeStress) {
  HohList list;
  EXPECT_EQ(disjoint_range_stress(list, 4, 4000), 0);
}

TEST(HohList, SharedRangeAccounting) {
  HohList list;
  shared_range_stress(list, 4, 5000);
}

class LazyListTest : public ::testing::TestWithParam<ReclaimPolicy> {};

TEST_P(LazyListTest, MatchesStdSet) {
  LazyList list(GetParam());
  check_set_semantics(list, 200, 6000, 2);
}

TEST_P(LazyListTest, DisjointRangeStress) {
  LazyList list(GetParam());
  EXPECT_EQ(disjoint_range_stress(list, 4, 4000), 0);
  expect_reclaim_coherent(list.reclaimer());
}

TEST_P(LazyListTest, SharedRangeAccounting) {
  LazyList list(GetParam());
  shared_range_stress(list, 4, 5000);
  expect_reclaim_coherent(list.reclaimer());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, LazyListTest,
                         ::testing::Values(ReclaimPolicy::kEbr,
                                           ReclaimPolicy::kHp),
                         policy_name);

class LockFreeSkipListTest : public ::testing::TestWithParam<ReclaimPolicy> {};

TEST_P(LockFreeSkipListTest, MatchesStdSet) {
  LockFreeSkipList list(GetParam());
  check_set_semantics(list, 500, 8000, 3);
}

TEST_P(LockFreeSkipListTest, DisjointRangeStress) {
  LockFreeSkipList list(GetParam());
  EXPECT_EQ(disjoint_range_stress(list, 4, 6000), 0);
  expect_reclaim_coherent(list.reclaimer());
}

TEST_P(LockFreeSkipListTest, SharedRangeAccounting) {
  LockFreeSkipList list(GetParam());
  shared_range_stress(list, 4, 8000);
  expect_reclaim_coherent(list.reclaimer());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, LockFreeSkipListTest,
                         ::testing::Values(ReclaimPolicy::kEbr,
                                           ReclaimPolicy::kHp),
                         policy_name);

TEST(FcLinkedList, MatchesStdSetBothModes) {
  FcLinkedList combining(true);
  check_set_semantics(combining, 200, 6000, 4);
  FcLinkedList plain(false);
  check_set_semantics(plain, 200, 6000, 4);
}

TEST(FcLinkedList, DisjointRangeStressTriggersCombining) {
  FcLinkedList list(true);
  EXPECT_EQ(disjoint_range_stress(list, 4, 4000), 0);
  EXPECT_GE(list.max_combined(), 2u)
      << "4 threads hammering one combiner should batch";
}

TEST(FcSkipList, MatchesStdSetAcrossPartitionCounts) {
  for (std::size_t k : {1u, 4u, 7u}) {
    FcSkipList list(1 << 12, k);
    check_set_semantics(list, 1 << 12, 6000, 5 + k);
    EXPECT_EQ(list.partitions(), k);
  }
}

TEST(FcSkipList, DisjointRangeStress) {
  FcSkipList list(1u << 20, 4);
  EXPECT_EQ(disjoint_range_stress(list, 4, 4000), 0);
}

// ---------- queues ----------

template <typename Queue>
void check_fifo_single_threaded(Queue& q) {
  EXPECT_FALSE(q.dequeue().has_value());
  for (std::uint64_t i = 0; i < 3000; ++i) q.enqueue(i);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

/// Concurrent producers and consumers: nothing lost, nothing duplicated,
/// per-producer order preserved at each consumer.
template <typename Queue>
void check_mpmc(Queue& q, int producers, int consumers,
                std::uint64_t per_producer) {
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> checksum{0};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        q.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  const std::uint64_t total = producers * per_producer;
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::map<std::uint64_t, std::int64_t> last;
      while (consumed.load() < total) {
        auto v = q.dequeue();
        if (!v.has_value()) continue;
        const std::uint64_t producer = *v >> 32;
        const auto seq = static_cast<std::int64_t>(*v & 0xffffffff);
        auto [it, fresh] = last.try_emplace(producer, -1);
        if (!fresh && seq <= it->second) violations.fetch_add(1);
        it->second = seq;
        checksum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(consumed.load(), total);
  std::uint64_t expected = 0;
  for (int p = 0; p < producers; ++p) {
    for (std::uint64_t i = 0; i < per_producer; ++i) {
      expected += (static_cast<std::uint64_t>(p) << 32) | i;
    }
  }
  EXPECT_EQ(checksum.load(), expected) << "values lost or duplicated";
  EXPECT_FALSE(q.dequeue().has_value());
}

class MsQueueTest : public ::testing::TestWithParam<ReclaimPolicy> {};

TEST_P(MsQueueTest, FifoSingleThreaded) {
  MsQueue q(GetParam());
  check_fifo_single_threaded(q);
}

TEST_P(MsQueueTest, MpmcStress) {
  MsQueue q(GetParam());
  check_mpmc(q, 2, 2, 20000);
  expect_reclaim_coherent(q.reclaimer());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, MsQueueTest,
                         ::testing::Values(ReclaimPolicy::kEbr,
                                           ReclaimPolicy::kHp),
                         policy_name);

class FaaQueueTest : public ::testing::TestWithParam<ReclaimPolicy> {};

TEST_P(FaaQueueTest, FifoSingleThreaded) {
  FaaQueue q(GetParam());
  check_fifo_single_threaded(q);
}

TEST_P(FaaQueueTest, CrossesSegmentBoundaries) {
  FaaQueue q(GetParam());
  for (std::uint64_t i = 0; i < 3 * FaaQueue::kSegmentCells + 10; ++i) {
    q.enqueue(i);
  }
  for (std::uint64_t i = 0; i < 3 * FaaQueue::kSegmentCells + 10; ++i) {
    ASSERT_EQ(q.dequeue(), std::optional<std::uint64_t>(i));
  }
  EXPECT_FALSE(q.dequeue().has_value());
  // Three segments were drained and retired along the way.
  expect_reclaim_coherent(q.reclaimer());
  EXPECT_GE(q.reclaimer().stats().retired, 3u);
}

TEST_P(FaaQueueTest, MpmcStress) {
  FaaQueue q(GetParam());
  check_mpmc(q, 2, 2, 20000);
  expect_reclaim_coherent(q.reclaimer());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, FaaQueueTest,
                         ::testing::Values(ReclaimPolicy::kEbr,
                                           ReclaimPolicy::kHp),
                         policy_name);

TEST(FcQueue, FifoSingleThreaded) {
  FcQueue q;
  check_fifo_single_threaded(q);
}

TEST(FcQueue, MpmcStress) {
  FcQueue q;
  check_mpmc(q, 2, 2, 20000);
}

// ---------- flat-combining harness ----------

TEST(FlatCombiner, EveryRequestExecutedExactlyOnce) {
  FlatCombiner<int, int> fc;
  std::uint64_t shared_sum = 0;  // only the combiner touches it
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  // On a small host the threads can serialize so perfectly that every
  // combining pass serves exactly one request, making max_combined >= 2 a
  // bet on scheduling. Force one multi-request batch deterministically: the
  // first combiner stalls inside serve() until two other threads are inside
  // execute() (each publishes its record on entry), so the combiner's
  // re-scan pass must pick up a batch of at least two.
  std::atomic<int> inflight{0};
  std::atomic<bool> stalled{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kOps; ++i) {
        inflight.fetch_add(1);
        fc.execute(i, [&](auto& batch) {
          if (!stalled.exchange(true)) {
            while (inflight.load() < 3) std::this_thread::yield();
            // Give the concurrent callers time to finish publishing.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          for (auto* rec : batch) {
            shared_sum += static_cast<std::uint64_t>(rec->req);
            rec->res = rec->req;
          }
        });
        inflight.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t per_thread =
      static_cast<std::uint64_t>(kOps) * (kOps + 1) / 2;
  EXPECT_EQ(shared_sum, kThreads * per_thread);
  EXPECT_GE(fc.max_combined(), 2u);
}

TEST(FlatCombiner, ReturnsTheCallersOwnResult) {
  FlatCombiner<int, int> fc;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) {
        const int want = t * 100000 + i;
        const int got = fc.execute(want, [](auto& batch) {
          for (auto* rec : batch) rec->res = rec->req;
        });
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pimds::baselines
