// Tests for cache-line padding, timing, latency model, stats, barrier, and
// backoff utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/backoff.hpp"
#include "common/barrier.hpp"
#include "common/cacheline.hpp"
#include "common/latency.hpp"
#include "common/stats.hpp"
#include "common/timing.hpp"

namespace pimds {
namespace {

TEST(CachePadded, OccupiesWholeLines) {
  EXPECT_EQ(sizeof(CachePadded<int>), kCacheLineSize);
  EXPECT_EQ(sizeof(CachePadded<char[70]>), 2 * kCacheLineSize);
  EXPECT_EQ(alignof(CachePadded<int>), kCacheLineSize);
  CachePadded<int> x(41);
  *x += 1;
  EXPECT_EQ(x.value, 42);
}

TEST(LatencyParams, PaperDefaultsSatisfySection3) {
  const LatencyParams lp = LatencyParams::paper_defaults();
  EXPECT_DOUBLE_EQ(lp.cpu(), 3.0 * lp.pim());       // Lcpu = r1 Lpim
  EXPECT_DOUBLE_EQ(lp.cpu(), 3.0 * lp.llc());       // Lcpu = r2 Lllc
  EXPECT_DOUBLE_EQ(lp.atomic(), lp.cpu());          // Latomic = r3 Lcpu, r3=1
  EXPECT_DOUBLE_EQ(lp.message(), lp.cpu());         // Lmessage = Lcpu
}

TEST(LatencyParams, LatencyByClassMatchesAccessors) {
  const LatencyParams lp{100.0, 4.0, 2.0, 1.5};
  EXPECT_DOUBLE_EQ(lp.latency(MemClass::kPimLocal), 100.0);
  EXPECT_DOUBLE_EQ(lp.latency(MemClass::kCpuDram), 400.0);
  EXPECT_DOUBLE_EQ(lp.latency(MemClass::kLlc), 200.0);
  EXPECT_DOUBLE_EQ(lp.latency(MemClass::kAtomic), 600.0);
  EXPECT_DOUBLE_EQ(lp.latency(MemClass::kMessage), 400.0);
}

TEST(SpinForNs, WaitsAtLeastTheRequestedTime) {
  const std::uint64_t start = now_ns();
  spin_for_ns(200000);  // 200 us, long enough to dominate clock noise
  EXPECT_GE(now_ns() - start, 200000u);
}

TEST(LatencyInjector, DisabledChargesNothingMeasurable) {
  auto& inj = LatencyInjector::instance();
  inj.set_enabled(false);
  const std::uint64_t start = now_ns();
  for (int i = 0; i < 1000; ++i) charge_cpu_access();
  EXPECT_LT(now_ns() - start, 1000000u) << "1000 no-op charges took >1ms";
}

TEST(LatencyInjector, EnabledChargesRoughlyTheModelLatency) {
  auto& inj = LatencyInjector::instance();
  LatencyParams lp;
  lp.pim_ns = 5000.0;  // big enough to measure reliably
  inj.configure(lp);
  inj.set_enabled(true);
  const std::uint64_t start = now_ns();
  for (int i = 0; i < 100; ++i) charge_pim_access();
  const std::uint64_t elapsed = now_ns() - start;
  inj.set_enabled(false);
  EXPECT_GE(elapsed, 100u * 5000u);
}

TEST(RunningStats, MatchesHandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  // Split one sample stream across two accumulators; merging must reproduce
  // the moments of feeding everything into one.
  RunningStats all, a, b;
  const std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0,
                                       5.0, 7.0, 9.0, -3.0, 11.5};
  for (std::size_t i = 0; i < samples.size(); ++i) {
    all.add(samples[i]);
    (i % 2 == 0 ? a : b).add(samples[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

TEST(RunningStats, MergeOfDisjointRangesMatchesOneAccumulator) {
  // Two accumulators fed from ranges that never overlap (1..100 and
  // 100001..100100): the merged moments must equal a single accumulator
  // over the union, and min/max must come from different sides.
  RunningStats low, high, all;
  for (int i = 1; i <= 100; ++i) {
    low.add(i);
    all.add(i);
  }
  for (int i = 100'001; i <= 100'100; ++i) {
    high.add(i);
    all.add(i);
  }
  RunningStats merged = low;
  merged.merge(high);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 100'100.0);
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9 * all.mean());
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-6 * all.variance());
  // Merge order must not matter.
  RunningStats other = high;
  other.merge(low);
  EXPECT_DOUBLE_EQ(other.mean(), merged.mean());
  EXPECT_NEAR(other.variance(), merged.variance(), 1e-9 * merged.variance());
}

TEST(Summary, P999OnTinySamplesDegradesToTheMaximum) {
  // With fewer than 1000 samples the 0.999 rank has nothing to
  // interpolate toward; it must stay within the observed range and reach
  // the maximum, not read past the end or return garbage.
  const Summary two = Summary::of({5.0, 7.0});
  EXPECT_DOUBLE_EQ(two.max, 7.0);
  EXPECT_GE(two.p999, 5.0);
  EXPECT_LE(two.p999, 7.0);
  EXPECT_GE(two.p999, two.p50);

  const Summary one = Summary::of({42.0});
  EXPECT_DOUBLE_EQ(one.p50, 42.0);
  EXPECT_DOUBLE_EQ(one.p999, 42.0);
  EXPECT_DOUBLE_EQ(one.max, 42.0);
}

TEST(Summary, PercentilesOfKnownVector) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_NEAR(s.p99, 99.01, 0.2);
  EXPECT_NEAR(s.p999, 99.9, 0.2);
}

TEST(Summary, P999SeparatesTheExtremeTail) {
  // 10000 samples at 1.0 with twenty 100.0 outliers: p99 stays at the body,
  // p999 lands in the outlier region.
  std::vector<double> v(10000, 1.0);
  for (int i = 0; i < 20; ++i) v[static_cast<std::size_t>(i)] = 100.0;
  const Summary s = Summary::of(v);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p99, 1.0);
  EXPECT_GT(s.p999, 50.0);
}

TEST(Summary, EmptyInputIsAllZero) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(FormatOps, PicksSensibleUnits) {
  EXPECT_EQ(format_ops_per_sec(2.5e9), "2.50 Gops/s");
  EXPECT_EQ(format_ops_per_sec(2.5e6), "2.50 Mops/s");
  EXPECT_EQ(format_ops_per_sec(2.5e3), "2.50 Kops/s");
  EXPECT_EQ(format_ops_per_sec(2.5), "2.50 ops/s");
}

TEST(SpinBarrier, SynchronizesRounds) {
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier every thread of round r has incremented.
        if (counter.load() < (r + 1) * static_cast<int>(kThreads)) {
          failed.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kRounds * static_cast<int>(kThreads));
}

TEST(Backoff, GrowsAndResets) {
  Backoff b(2, 16);
  // No observable state to assert beyond "does not hang"; exercise the API.
  for (int i = 0; i < 10; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace pimds
