// Parameterized model-agreement sweeps: the simulator must track the
// closed-form model across thread counts, partition counts, and latency
// ratios, not just at the single configurations the basic tests pin.
#include <gtest/gtest.h>

#include <string>

#include "model/linked_list_model.hpp"
#include "model/queue_model.hpp"
#include "model/skiplist_model.hpp"
#include "sim/ds/linked_lists.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds::sim {
namespace {

// ---------------------------------------------------------------- lists

class ListSweep : public ::testing::TestWithParam<std::size_t> {};

ListConfig list_config(std::size_t p) {
  ListConfig cfg;
  cfg.num_cpus = p;
  cfg.key_range = 600;
  cfg.initial_size = 300;
  cfg.duration_ns = 20'000'000;
  return cfg;
}

TEST_P(ListSweep, FineGrainedTracksModel) {
  const std::size_t p = GetParam();
  ListConfig cfg = list_config(p);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_fine_grained_list(cfg).ops_per_sec();
  const double mdl = model::fine_grained_lock_list(cfg.params, 300, p);
  EXPECT_GT(sim, 0.80 * mdl) << "p=" << p;
  EXPECT_LT(sim, 1.20 * mdl) << "p=" << p;
}

TEST_P(ListSweep, PimCombiningTracksModel) {
  const std::size_t p = GetParam();
  ListConfig cfg = list_config(p);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_pim_list(cfg, true).ops_per_sec();
  const double mdl = model::pim_list_combining(cfg.params, 300, p);
  EXPECT_GT(sim, 0.80 * mdl) << "p=" << p;
  EXPECT_LT(sim, 1.20 * mdl) << "p=" << p;
}

TEST_P(ListSweep, PimBeatsFcByAboutR1) {
  const std::size_t p = GetParam();
  ListConfig cfg = list_config(p);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double pim = run_pim_list(cfg, true).ops_per_sec();
  const double fc = run_fc_list(cfg, true).ops_per_sec();
  // Claim C3 at every thread count (combining batches add noise: wide band).
  EXPECT_GT(pim / fc, 0.7 * cfg.params.r1) << "p=" << p;
  EXPECT_LT(pim / fc, 1.6 * cfg.params.r1) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Threads, ListSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 28),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// ------------------------------------------------------------ skip-lists

class SkipListKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SkipListKSweep, PartitionedPimTracksModelUntilSaturation) {
  const std::size_t k = GetParam();
  SkipListConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 32;  // enough clients to keep k cores busy for all k here
  cfg.key_range = 1 << 14;
  cfg.initial_size = 1 << 13;
  cfg.duration_ns = 15'000'000;
  const double beta = model::estimate_beta(cfg.initial_size);
  const double sim = run_pim_skiplist(cfg, k).ops_per_sec();
  const double mdl = model::pim_skiplist_partitioned(cfg.params, beta, k);
  EXPECT_GT(sim, 0.65 * mdl) << "k=" << k;
  EXPECT_LT(sim, 1.45 * mdl) << "k=" << k;
}

TEST_P(SkipListKSweep, MorePartitionsNeverHurt) {
  const std::size_t k = GetParam();
  if (k == 1) GTEST_SKIP() << "needs a smaller comparison point";
  SkipListConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 32;
  cfg.key_range = 1 << 14;
  cfg.initial_size = 1 << 13;
  cfg.duration_ns = 10'000'000;
  const double smaller = run_pim_skiplist(cfg, k / 2).ops_per_sec();
  const double larger = run_pim_skiplist(cfg, k).ops_per_sec();
  EXPECT_GE(larger, 0.95 * smaller) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Partitions, SkipListKSweep,
                         ::testing::Values(1, 2, 4, 8, 16),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// --------------------------------------------------------------- queues

class QueueRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueueRatioSweep, PimQueueTracksModelAcrossR1) {
  const double r1 = GetParam();
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.params.r1 = r1;
  cfg.params.pim_ns = 600.0 / r1;  // hold Lcpu at 600 ns
  cfg.enqueuers = cfg.dequeuers = 16;
  cfg.duration_ns = 10'000'000;
  const double sim =
      run_pim_queue(cfg, PimQueueOptions{}).run.ops_per_sec();
  const double mdl = 2 * model::pim_queue_pipelined(cfg.params);
  EXPECT_GT(sim, 0.85 * mdl) << "r1=" << r1;
  EXPECT_LT(sim, 1.10 * mdl) << "r1=" << r1;
}

TEST_P(QueueRatioSweep, CrossoverAgainstFaaMatchesPredicate) {
  const double r1 = GetParam();
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.params.r1 = r1;
  cfg.params.pim_ns = 600.0 / r1;
  cfg.enqueuers = cfg.dequeuers = 16;
  cfg.duration_ns = 10'000'000;
  const double pim =
      run_pim_queue(cfg, PimQueueOptions{}).run.ops_per_sec();
  const double faa = run_faa_queue(cfg).ops_per_sec();
  if (model::pim_beats_faa_queue(cfg.params) && r1 >= 1.2) {
    EXPECT_GT(pim, faa) << "r1=" << r1;
  }
  if (r1 <= 0.8) {
    EXPECT_LT(pim, faa) << "r1=" << r1;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, QueueRatioSweep,
                         ::testing::Values(0.5, 1.5, 2.0, 3.0, 4.0),
                         [](const auto& info) {
                           const int tenths =
                               static_cast<int>(info.param * 10 + 0.5);
                           return "r1_" + std::to_string(tenths);
                         });

// Determinism across EVERY simulated structure: identical totals on rerun.
class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, EachAlgorithmIsBitStable) {
  const int which = GetParam();
  const test::SimSeed seed;
  const auto run = [&]() -> std::uint64_t {
    ListConfig lc = list_config(6);
    lc.seed = seed;
    lc.duration_ns = 5'000'000;
    SkipListConfig sc;
    sc.seed = seed;
    sc.num_cpus = 6;
    sc.key_range = 1 << 12;
    sc.initial_size = 1 << 11;
    sc.duration_ns = 5'000'000;
    QueueConfig qc;
    qc.seed = seed;
    qc.enqueuers = qc.dequeuers = 4;
    qc.duration_ns = 5'000'000;
    switch (which) {
      case 0: return run_fine_grained_list(lc).total_ops;
      case 1: return run_fc_list(lc, false).total_ops;
      case 2: return run_fc_list(lc, true).total_ops;
      case 3: return run_pim_list(lc, false).total_ops;
      case 4: return run_pim_list(lc, true).total_ops;
      case 5: return run_lockfree_skiplist(sc).total_ops;
      case 6: return run_fc_skiplist(sc, 4).total_ops;
      case 7: return run_pim_skiplist(sc, 4).total_ops;
      case 8: return run_faa_queue(qc).total_ops;
      case 9: return run_fc_queue(qc).total_ops;
      case 10: return run_pim_queue(qc, PimQueueOptions{}).run.total_ops;
      default: return 0;
    }
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, b) << "algorithm #" << which << " is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DeterminismSweep,
                         ::testing::Range(0, 11));

}  // namespace
}  // namespace pimds::sim
