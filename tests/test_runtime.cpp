// Tests for the real-thread PIM emulation substrate: vault allocator,
// mailbox timing/ordering, response slots, and the PimSystem core loop.
#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "common/timing.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/system.hpp"
#include "runtime/vault.hpp"

namespace pimds::runtime {
namespace {

TEST(Vault, AllocatesAndRecyclesSizeClasses) {
  Vault vault(0, 1 << 16);
  void* a = vault.allocate(24, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(vault.bytes_used(), 24u);
  vault.deallocate(a, 24, 8);
  EXPECT_EQ(vault.bytes_used(), 0u);
  // Same size class (<= 32 bytes) must reuse the freed block.
  void* b = vault.allocate(30, 8);
  EXPECT_EQ(b, a);
}

TEST(Vault, ThrowsWhenExhausted) {
  Vault vault(0, 1024);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) vault.allocate(512, 8);
      },
      std::bad_alloc);
}

TEST(Vault, CreateDestroyRunsConstructors) {
  struct Probe {
    explicit Probe(int* c) : counter(c) { ++*counter; }
    ~Probe() { --*counter; }
    int* counter;
  };
  Vault vault(1, 4096);
  int live = 0;
  Probe* p = vault.create<Probe>(&live);
  EXPECT_EQ(live, 1);
  vault.destroy(p);
  EXPECT_EQ(live, 0);
}

TEST(Vault, AlignmentIsHonored) {
  Vault vault(0, 1 << 16);
  for (std::size_t align : {8u, 16u, 32u, 64u}) {
    void* p = vault.allocate(align * 3, align);  // > 256: bump path
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
  }
}

TEST(RuntimeMailbox, DeliversAllMessagesFromManySenders) {
  Mailbox box(256);
  constexpr int kSenders = 4;
  constexpr int kPerSender = 5000;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.sender = static_cast<std::uint32_t>(s);
        m.value = static_cast<std::uint64_t>(i);
        box.send(m);
      }
    });
  }
  int received = 0;
  std::vector<std::int64_t> last(kSenders, -1);
  while (received < kSenders * kPerSender) {
    if (auto m = box.poll()) {
      // FIFO per sender-receiver pair (Section 2's delivery guarantee).
      EXPECT_GT(static_cast<std::int64_t>(m->value), last[m->sender]);
      last[m->sender] = static_cast<std::int64_t>(m->value);
      ++received;
    }
  }
  for (auto& t : senders) t.join();
  EXPECT_TRUE(box.empty());
}

TEST(ResponseSlot, RoundTripsAndIsReusable) {
  ResponseSlot<int> slot;
  std::thread p1([&] { slot.publish(11); });
  EXPECT_EQ(slot.await(), 11);
  p1.join();
  std::thread p2([&] { slot.publish(22); });
  EXPECT_EQ(slot.await(), 22);
  p2.join();
}

TEST(ResponseSlot, AwaitHonorsDeliveryTime) {
  ResponseSlot<int> slot;
  const std::uint64_t ready = now_ns() + 2'000'000;  // 2 ms from now
  slot.publish(5, ready);
  EXPECT_EQ(slot.await(), 5);
  EXPECT_GE(now_ns(), ready);
}

TEST(PimSystem, EchoHandlerServesManyCpus) {
  PimSystem::Config config;
  config.num_vaults = 2;
  PimSystem system(config);
  for (std::size_t v = 0; v < 2; ++v) {
    system.set_handler(v, [](PimCoreApi& api, const Message& m) {
      static_cast<ResponseSlot<std::uint64_t>*>(m.slot)->publish(
          m.value * 2 + api.vault_id(), api.reply_ready_ns());
    });
  }
  system.start();
  std::vector<std::thread> cpus;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    cpus.emplace_back([&, t] {
      ResponseSlot<std::uint64_t> slot;
      for (std::uint64_t i = 0; i < 2000; ++i) {
        Message m;
        m.value = i;
        m.slot = &slot;
        const std::size_t vault = (t + i) % 2;
        system.send(vault, m);
        if (slot.await() != i * 2 + vault) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : cpus) t.join();
  system.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(system.messages_processed(0) + system.messages_processed(1),
            8000u);
}

TEST(PimSystem, PimToPimMessagingWorks) {
  PimSystem::Config config;
  config.num_vaults = 2;
  PimSystem system(config);
  std::atomic<std::uint64_t> relayed{0};
  // Vault 0 relays to vault 1; vault 1 records and replies to the CPU.
  system.set_handler(0, [](PimCoreApi& api, const Message& m) {
    Message fwd = m;
    api.send(1, fwd);
  });
  system.set_handler(1, [&](PimCoreApi& api, const Message& m) {
    relayed.fetch_add(m.value);
    EXPECT_EQ(m.sender, 0u) << "PIM-to-PIM sends must stamp the sender";
    static_cast<ResponseSlot<bool>*>(m.slot)->publish(true,
                                                      api.reply_ready_ns());
  });
  system.start();
  ResponseSlot<bool> slot;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    Message m;
    m.value = i;
    m.slot = &slot;
    system.send(0, m);
    EXPECT_TRUE(slot.await());
  }
  system.stop();
  EXPECT_EQ(relayed.load(), 5050u);
}

TEST(PimSystem, IdleHandlerRunsWhenMailboxIsEmpty) {
  PimSystem::Config config;
  config.num_vaults = 1;
  PimSystem system(config);
  std::atomic<std::uint64_t> idle_calls{0};
  system.set_idle_handler(0, [&](PimCoreApi&) {
    // Finite background job: report work a bounded number of times (an
    // always-busy idle handler would stall shutdown by contract).
    return idle_calls.fetch_add(1) < 16;
  });
  system.start();
  const std::uint64_t deadline = now_ns() + 50'000'000;
  while (now_ns() < deadline && idle_calls.load() == 0) cpu_relax();
  system.stop();
  EXPECT_GT(idle_calls.load(), 0u);
}

TEST(PimSystem, InjectionDelaysMessageProcessing) {
  PimSystem::Config config;
  config.num_vaults = 1;
  config.inject_latency = true;
  config.params.pim_ns = 10000.0;  // Lmessage = 30 us: measurable
  PimSystem system(config);
  system.set_handler(0, [](PimCoreApi& api, const Message& m) {
    static_cast<ResponseSlot<std::uint64_t>*>(m.slot)->publish(
        now_ns(), api.reply_ready_ns());
  });
  system.start();
  ResponseSlot<std::uint64_t> slot;
  Message m;
  m.slot = &slot;
  const std::uint64_t sent = now_ns();
  system.send(0, m);
  const std::uint64_t processed = slot.await();
  const std::uint64_t replied = now_ns();
  system.stop();
  const auto lmsg = static_cast<std::uint64_t>(config.params.message());
  EXPECT_GE(processed - sent, lmsg) << "request transfer not delayed";
  EXPECT_GE(replied - processed, lmsg) << "reply transfer not delayed";
}

TEST(PimSystem, StopDrainsPendingMessages) {
  PimSystem::Config config;
  config.num_vaults = 1;
  PimSystem system(config);
  std::atomic<int> handled{0};
  system.set_handler(0, [&](PimCoreApi&, const Message&) {
    handled.fetch_add(1);
  });
  system.start();
  for (int i = 0; i < 500; ++i) {
    Message m;
    system.send(0, m);
  }
  system.stop();  // must not lose the backlog
  EXPECT_EQ(handled.load(), 500);
}

}  // namespace
}  // namespace pimds::runtime
