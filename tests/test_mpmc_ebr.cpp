// Tests for the MPMC ring (runtime mailbox transport) and epoch-based
// reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/ebr.hpp"
#include "common/mpmc_queue.hpp"

namespace pimds {
namespace {

TEST(MpmcQueue, FifoWhenSingleThreaded) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "ring of 8 must reject the 9th element";
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueue, WrapsAroundManyTimes) {
  MpmcQueue<int> q(4);
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.try_push(round));
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 20000;
  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(static_cast<std::uint64_t>(p) * kPerProducer + i + 1);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Sum of 1..N where N = kProducers * kPerProducer.
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(MpmcQueue, PerProducerOrderIsPreserved) {
  MpmcQueue<std::pair<int, int>> q(256);  // (producer, seq)
  std::vector<std::thread> producers;
  std::atomic<bool> done{false};
  std::vector<int> last_seen(2, -1);
  std::thread consumer([&] {
    int count = 0;
    while (count < 20000) {
      if (auto v = q.try_pop()) {
        auto [p, seq] = *v;
        EXPECT_GT(seq, last_seen[p]) << "per-producer FIFO violated";
        last_seen[p] = seq;
        ++count;
      }
    }
    done.store(true);
  });
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 10000; ++i) q.push({p, i});
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_TRUE(done.load());
}

struct CountedNode {
  static std::atomic<int> live;
  int payload = 0;
  CountedNode() { live.fetch_add(1); }
  ~CountedNode() { live.fetch_sub(1); }
};
std::atomic<int> CountedNode::live{0};

TEST(Ebr, RetiredNodesAreEventuallyFreed) {
  CountedNode::live = 0;
  {
    EbrDomain domain;
    for (int i = 0; i < 1000; ++i) {
      EbrDomain::Guard guard(domain);
      domain.retire(new CountedNode());
    }
    // Batching frees most nodes along the way; the destructor frees the rest.
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

TEST(Ebr, NodesSurviveWhileAnotherThreadIsPinned) {
  EbrDomain domain;
  CountedNode::live = 0;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EbrDomain::Guard guard(domain);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  {
    // Retire far more than one batch; the pinned reader must hold them all.
    EbrDomain::Guard guard(domain);
    for (int i = 0; i < 300; ++i) domain.retire(new CountedNode());
  }
  EXPECT_EQ(CountedNode::live.load(), 300)
      << "nodes were freed while a guard from an old epoch was active";
  release.store(true);
  reader.join();
  domain.reclaim_all_unsafe();
  EXPECT_EQ(CountedNode::live.load(), 0);
}

// Regression for the "one parked reader stalls the domain" pathology: the
// epoch_stall counter must fire while the reader is pinned, every retired
// node must survive the stall, and — the part that used to go untested —
// flush() must drain the whole backlog once the stall clears, without
// waiting for future retire traffic.
TEST(Ebr, EpochStallIsCountedAndBacklogDrainsWhenStallClears) {
  EbrDomain domain;
  CountedNode::live = 0;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EbrDomain::Guard guard(domain);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  constexpr int kRetired = 4 * static_cast<int>(EbrDomain::kRetireBatch);
  {
    EbrDomain::Guard guard(domain);
    for (int i = 0; i < kRetired; ++i) domain.retire(new CountedNode());
  }
  // Every full batch attempted an epoch advance and found the parked
  // reader pinned to the entry epoch.
  EXPECT_GT(domain.epoch_stalls(), 0u) << "stalled advances went uncounted";
  EXPECT_EQ(domain.stats().stalls, domain.epoch_stalls());
  EXPECT_EQ(CountedNode::live.load(), kRetired)
      << "nodes freed under a stalled reader";
  EXPECT_EQ(domain.stats().in_flight, static_cast<std::uint64_t>(kRetired));
  release.store(true);
  reader.join();
  // Stall cleared: flush alone (no new retires) must age out every bucket.
  domain.flush();
  EXPECT_EQ(CountedNode::live.load(), 0)
      << "backlog survived flush() after the stall cleared";
  EXPECT_EQ(domain.stats().in_flight, 0u);
}

TEST(Ebr, SlotsInUseCountsParticipants) {
  EbrDomain domain;
  EXPECT_EQ(domain.slots_in_use(), 0u);
  { EbrDomain::Guard guard(domain); }
  EXPECT_EQ(domain.slots_in_use(), 1u);
  { EbrDomain::Guard guard(domain); }  // same thread: claim is cached
  EXPECT_EQ(domain.slots_in_use(), 1u);
  std::thread other([&] { EbrDomain::Guard guard(domain); });
  other.join();
  EXPECT_EQ(domain.slots_in_use(), 2u);
  EXPECT_EQ(domain.stats().slots_in_use, 2u);
}

#if GTEST_HAS_DEATH_TEST
// The kMaxThreads+1'th participant must abort with a diagnostic, not
// silently corrupt a neighbor's slot (or terminate with no message, as the
// old throw-from-noexcept path did).
TEST(EbrDeathTest, SlotExhaustionFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EbrDomain domain;
        // Slots are claimed per (thread, domain) and never recycled, so
        // sequential short-lived threads exhaust the cap deterministically.
        for (std::size_t i = 0; i <= EbrDomain::kMaxThreads; ++i) {
          std::thread t([&] { EbrDomain::Guard guard(domain); });
          t.join();
        }
      },
      "participant cap exhausted");
}
#endif

TEST(Ebr, ManyThreadsRetireConcurrently) {
  EbrDomain domain;
  CountedNode::live = 0;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        EbrDomain::Guard guard(domain);
        domain.retire(new CountedNode());
      }
    });
  }
  for (auto& t : threads) t.join();
  domain.reclaim_all_unsafe();
  EXPECT_EQ(CountedNode::live.load(), 0);
}

}  // namespace
}  // namespace pimds
