// Tests for the batched mailbox drain path: per-sender FIFO across
// deferred/pending messages, deferred-delivery timing under the
// LatencyInjector, ResponseSlot reuse, and the PimSystem batch handler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/latency.hpp"
#include "common/timing.hpp"
#include "core/pim_fifo_queue.hpp"
#include "runtime/combiner.hpp"
#include "runtime/fat_arena.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/system.hpp"

namespace pimds::runtime {
namespace {

/// RAII: enable injection with given params for one test.
class ScopedInjection {
 public:
  explicit ScopedInjection(double pim_ns) {
    LatencyParams p;
    p.pim_ns = pim_ns;
    LatencyInjector::instance().configure(p);
    LatencyInjector::instance().set_enabled(true);
  }
  ~ScopedInjection() { LatencyInjector::instance().set_enabled(false); }
};

TEST(MailboxDrain, DrainsEverythingWithoutInjection) {
  Mailbox box(256);  // holds all 100 sends: this test drains single-threaded
  for (std::uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.value = i;
    box.send(m);
  }
  std::vector<Message> batch;
  std::size_t total = 0;
  while (std::size_t n = box.drain(batch, 32)) {
    EXPECT_LE(n, 32u);
    total += n;
  }
  EXPECT_EQ(total, 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(batch[i].value, i);
  EXPECT_TRUE(box.empty());
}

TEST(MailboxDrain, RespectsMaxBatch) {
  Mailbox box(64);
  for (int i = 0; i < 10; ++i) box.send(Message{});
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 4), 4u);
  EXPECT_EQ(box.drain(batch, 4), 4u);
  EXPECT_EQ(box.drain(batch, 4), 2u);
  EXPECT_EQ(box.drain(batch, 4), 0u);
}

TEST(MailboxDrain, DefersDeliveryUnderInjection) {
  ScopedInjection inject(/*pim_ns=*/1'000'000.0);  // Lmessage = 3 ms
  Mailbox box(64);
  Message m;
  m.value = 7;
  const std::uint64_t sent = now_ns();
  box.send(m);
  const auto lmsg = static_cast<std::uint64_t>(
      LatencyInjector::instance().params().message());
  // Not deliverable yet: drain must park it, not block or return it.
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 8), 0u);
  EXPECT_LT(now_ns(), sent + lmsg) << "drain blocked on an in-flight message";
  EXPECT_FALSE(box.empty()) << "parked message must still count as queued";
  // Eventually deliverable, and not before send_time + Lmessage.
  while (box.drain(batch, 8) == 0) cpu_relax();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].value, 7u);
  EXPECT_GE(now_ns(), sent + lmsg);
  EXPECT_TRUE(box.empty());
}

TEST(MailboxDrain, PerSenderFifoAcrossPendingMessages) {
  // Staggered sends under injection: later messages from one sender are
  // still in flight while earlier ones become deliverable; drain must
  // never reorder within a sender.
  ScopedInjection inject(/*pim_ns=*/200'000.0);  // Lmessage = 600 us
  Mailbox box(256);
  constexpr int kSenders = 3;
  constexpr int kPerSender = 40;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.sender = static_cast<std::uint32_t>(s);
        m.value = static_cast<std::uint64_t>(i);
        box.send(m);
        if (i % 8 == 0) spin_for_ns(50'000);  // stagger the in-flight set
      }
    });
  }
  std::vector<Message> batch;
  std::vector<std::int64_t> last(kSenders, -1);
  std::size_t received = 0;
  while (received < kSenders * kPerSender) {
    batch.clear();
    const std::size_t n = box.drain(batch, 16);
    for (std::size_t i = 0; i < n; ++i) {
      const Message& m = batch[i];
      EXPECT_GT(static_cast<std::int64_t>(m.value), last[m.sender])
          << "per-sender FIFO violated across the pending heap";
      last[m.sender] = static_cast<std::int64_t>(m.value);
    }
    received += n;
  }
  for (auto& t : senders) t.join();
  EXPECT_TRUE(box.empty());
}

TEST(MailboxDrain, DrainAllIgnoresDeliveryTimes) {
  ScopedInjection inject(/*pim_ns=*/10'000'000.0);  // Lmessage = 30 ms
  Mailbox box(64);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Message m;
    m.value = i;
    box.send(m);
  }
  std::vector<Message> batch;
  EXPECT_EQ(box.drain(batch, 8), 0u);  // all still in flight
  batch.clear();
  EXPECT_EQ(box.drain_all(batch), 5u);  // shutdown path: no loss, no wait
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(batch[i].value, i);
  EXPECT_TRUE(box.empty());
}

TEST(MailboxDrain, PollReadyIsNonBlocking) {
  ScopedInjection inject(/*pim_ns=*/1'000'000.0);
  Mailbox box(64);
  box.send(Message{});
  const std::uint64_t before = now_ns();
  EXPECT_FALSE(box.poll_ready().has_value());
  EXPECT_LT(now_ns() - before, 1'000'000u) << "poll_ready blocked";
  while (!box.poll_ready().has_value()) cpu_relax();
  EXPECT_TRUE(box.empty());
}

TEST(MailboxSend, CountsBackoffOnFullRing) {
  Mailbox box(2);  // tiny ring
  std::thread sender([&] {
    for (int i = 0; i < 64; ++i) box.send(Message{});
  });
  // Let the sender hit the full ring, then drain slowly.
  std::vector<Message> batch;
  std::size_t received = 0;
  while (received < 64) {
    spin_for_ns(20'000);
    batch.clear();
    received += box.drain(batch, 4);
  }
  sender.join();
  EXPECT_GT(box.send_full_spins(), 0u)
      << "full-ring stalls must be counted, not silent";
}

TEST(ResponseSlotBatch, ReuseAcrossRequestsWithDeliveryTimes) {
  ResponseSlot<std::uint64_t> slot;
  for (std::uint64_t round = 1; round <= 5; ++round) {
    const std::uint64_t ready = now_ns() + 300'000;  // 0.3 ms out
    std::thread producer([&] { slot.publish(round * 10, ready); });
    EXPECT_EQ(slot.await(), round * 10);
    EXPECT_GE(now_ns(), ready) << "await ignored the delivery time";
    producer.join();
  }
}

TEST(PimSystemBatch, BatchHandlerSeesWholeBursts) {
  PimSystem::Config config;
  config.num_vaults = 1;
  config.drain_batch = 32;
  PimSystem system(config);
  std::atomic<std::uint64_t> max_batch{0};
  system.set_batch_handler(0, [&](PimCoreApi& api, const Message* msgs,
                                  std::size_t n) {
    std::uint64_t seen = max_batch.load();
    while (n > seen && !max_batch.compare_exchange_weak(seen, n)) {
    }
    for (std::size_t i = 0; i < n; ++i) {
      static_cast<ResponseSlot<std::uint64_t>*>(msgs[i].slot)->publish(
          msgs[i].value + 1, api.reply_ready_ns());
    }
  });
  system.start();
  std::vector<std::thread> cpus;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    cpus.emplace_back([&] {
      ResponseSlot<std::uint64_t> slot;
      for (std::uint64_t i = 0; i < 2000; ++i) {
        Message m;
        m.value = i;
        m.slot = &slot;
        system.send(0, m);
        if (slot.await() != i + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : cpus) t.join();
  system.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(system.messages_processed(0), 8000u);
  EXPECT_GE(max_batch.load(), 1u);
}

TEST(FatPayload, CombinerGathersWaitersIntoOneFatSpilledMessage) {
  // Deterministic combining: a leader whose send is held open keeps the
  // combiner lock while three followers publish their records, so the
  // first follower to win the lock afterwards must pop all three into ONE
  // message — more than kMessageInlineFat entries, so the batch spills to
  // the FatArena and must come back out balanced. (The end-to-end
  // closed-loop test below cannot assert combining: on a single-CPU host
  // whether requesters ever overlap in the queue is up to the scheduler.)
  const std::uint64_t outstanding_before =
      FatArena::instance().outstanding();
  RequestCombiner combiner;
  std::atomic<bool> leader_blocked{false};
  std::atomic<bool> release_leader{false};
  std::atomic<std::uint16_t> max_fat{0};

  auto record_and_consume = [&](Message& m) {
    std::uint16_t seen = max_fat.load();
    while (m.fat_count > seen && !max_fat.compare_exchange_weak(seen, m.fat_count)) {
    }
    release_fat_payload(m);  // the test stands in for the receiving core
  };
  std::thread leader([&] {
    RequestCombiner::Entry e{};
    combiner.submit(e, [&](Message& m) {
      leader_blocked.store(true, std::memory_order_release);
      while (!release_leader.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      record_and_consume(m);
    });
  });
  while (!leader_blocked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The leader popped only its own record and now sits inside flush()
  // holding the combiner lock. Every follower publishes, fails the lock,
  // and spins on its shipped flag.
  std::atomic<int> started{0};
  std::vector<std::thread> followers;
  for (int i = 0; i < 3; ++i) {
    followers.emplace_back([&] {
      RequestCombiner::Entry e{};
      started.fetch_add(1, std::memory_order_release);
      combiner.submit(e, record_and_consume);
    });
  }
  while (started.load(std::memory_order_acquire) < 3) {
    std::this_thread::yield();
  }
  // Grace for the slowest follower to get from `started` to its push (the
  // push is the first statement of submit); then let the leader go.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release_leader.store(true, std::memory_order_release);
  leader.join();
  for (auto& t : followers) t.join();

  EXPECT_EQ(max_fat.load(), 3u)
      << "the lock winner did not gather every waiting record";
  EXPECT_EQ(combiner.requests_combined(), 4u);
  EXPECT_EQ(combiner.max_batch(), 3u);
  EXPECT_EQ(FatArena::instance().outstanding(), outstanding_before)
      << "a spilled fat payload was never released";
}

TEST(FatPayload, ClosedLoopWorkloadBalancesTheArena) {
  // End-to-end: oversubscribed closed-loop traffic through the real queue
  // under paper-scale injection. Whatever combining the scheduler produced,
  // after the system quiesces every spilled block must have been released
  // by the serving core (outstanding delta == 0).
  const std::uint64_t outstanding_before =
      FatArena::instance().outstanding();
  PimSystem::Config config;
  config.num_vaults = 2;
  config.inject_latency = true;
  config.params.pim_ns = 10000.0;  // Lpim 10 us, Lmessage 30 us
  PimSystem system(config);
  core::PimFifoQueue queue(system, core::PimFifoQueue::Options{});
  system.start();
  constexpr int kThreads = 16;
  constexpr int kOps = 200;
  std::vector<std::thread> cpus;
  for (int t = 0; t < kThreads; ++t) {
    cpus.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        queue.enqueue(static_cast<std::uint64_t>(i));
        queue.dequeue();
      }
    });
  }
  for (auto& t : cpus) t.join();
  system.stop();
  EXPECT_GE(queue.max_request_batch(), 1u);
  EXPECT_EQ(FatArena::instance().outstanding(), outstanding_before)
      << "a spilled fat payload was never released";
}

TEST(VaultBalance, AllocFreeNetEqualsLiveSegmentsAfterFullDrain) {
  // Shutdown-time balance assertion: once every enqueued value has been
  // dequeued, the vaults' net alloc−free balance must be exactly the
  // segments the queue intentionally keeps alive — anything else means a
  // node, a segment, or a fat-payload decode leaked.
  const std::uint64_t outstanding_before =
      FatArena::instance().outstanding();
  PimSystem::Config config;
  config.num_vaults = 2;
  PimSystem system(config);
  core::PimFifoQueue::Options qopts;
  qopts.segment_threshold = 64;  // force segment churn (handoffs + destroys)
  core::PimFifoQueue queue(system, qopts);
  system.start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        queue.enqueue(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  std::size_t popped = 0;
  while (queue.dequeue().has_value()) ++popped;
  system.stop();
  EXPECT_EQ(popped, static_cast<std::size_t>(kThreads) * kPerThread);
  ASSERT_GT(queue.segments_destroyed(), 0u) << "segment churn never happened";
  std::uint64_t net = 0;
  for (std::size_t v = 0; v < system.num_vaults(); ++v) {
    net += system.vault(v).live_blocks();
  }
  EXPECT_EQ(net, queue.live_segments())
      << "vault alloc/free imbalance beyond the live segments — a leak";
  EXPECT_EQ(FatArena::instance().outstanding(), outstanding_before)
      << "a spilled fat payload was never released";
}

TEST(PimSystemBatch, PerMessageCompatPathStillWorks) {
  PimSystem::Config config;
  config.num_vaults = 1;
  config.batch_drain = false;  // seed per-message path
  PimSystem system(config);
  system.set_handler(0, [](PimCoreApi& api, const Message& m) {
    static_cast<ResponseSlot<std::uint64_t>*>(m.slot)->publish(
        m.value * 3, api.reply_ready_ns());
  });
  system.start();
  ResponseSlot<std::uint64_t> slot;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Message m;
    m.value = i;
    m.slot = &slot;
    system.send(0, m);
    EXPECT_EQ(slot.await(), i * 3);
  }
  system.stop();
  EXPECT_EQ(system.messages_processed(0), 500u);
}

}  // namespace
}  // namespace pimds::runtime
