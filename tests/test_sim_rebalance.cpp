// Tests for the simulated Section 4.2.1 rebalancing experiment and the
// Section 5.1 fat-node enqueue combining.
#include <gtest/gtest.h>

#include "sim/ds/queues.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds::sim {
namespace {

RebalanceConfig quick_config() {
  RebalanceConfig cfg;
  cfg.num_cpus = 12;
  cfg.partitions = 4;
  cfg.key_range = 1 << 14;
  cfg.initial_size = 1 << 13;
  cfg.duration_ns = 30'000'000;
  return cfg;
}

TEST(SimRebalance, MigrationImprovesSkewedThroughput) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const RebalanceResult with = run_pim_skiplist_rebalance(cfg);
  cfg.rebalance = false;
  const RebalanceResult without = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(with.size_consistent);
  EXPECT_TRUE(without.size_consistent);
  EXPECT_GT(with.migrated_keys, 0u);
  EXPECT_EQ(without.migrated_keys, 0u);
  // Before the split both runs are identical-ish; after it, the rebalanced
  // run must clearly beat both its own past and the control.
  EXPECT_GT(with.after.ops_per_sec(), 1.5 * with.before.ops_per_sec());
  EXPECT_GT(with.after.ops_per_sec(), 1.5 * without.after.ops_per_sec());
}

TEST(SimRebalance, NoKeysLostAcrossMigrations) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.mix = {0.4, 0.4};  // heavy churn while ranges move
  const RebalanceResult r = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(r.size_consistent)
      << "final size disagrees with successful add/remove accounting";
}

TEST(SimRebalance, ProtocolPathsAreExercised) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.migrate_chunk = 2;  // slow migration: maximize racing requests
  const RebalanceResult r = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(r.size_consistent);
  // With a crawling migration under a hot workload, some requests must have
  // hit the forwarding path (keys already handed over).
  EXPECT_GT(r.forwarded, 0u);
}

TEST(SimRebalance, Deterministic) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const RebalanceResult a = run_pim_skiplist_rebalance(cfg);
  const RebalanceResult b = run_pim_skiplist_rebalance(cfg);
  EXPECT_EQ(a.before.total_ops, b.before.total_ops);
  EXPECT_EQ(a.after.total_ops, b.after.total_ops);
  EXPECT_EQ(a.migrated_keys, b.migrated_keys);
  EXPECT_EQ(a.final_requests_per_vault, b.final_requests_per_vault);
}

TEST(InsertCursor, AscendingInsertsMatchRegularInserts) {
  Engine engine;
  engine.spawn("t", [](Context& ctx) {
    SimSkipList via_cursor(0);
    SimSkipList regular(0);
    SimSkipList::InsertCursor cursor;
    Xoshiro256 rng(5);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) keys.push_back(rng.next_in(1, 2000));
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) {
      const bool a = via_cursor.insert_ascending(ctx, cursor, k,
                                                 MemClass::kPimLocal);
      const bool b = regular.execute(ctx, SetOp::kAdd, k,
                                     MemClass::kPimLocal);
      ASSERT_EQ(a, b) << k;
    }
    ASSERT_EQ(via_cursor.keys(), regular.keys());
  });
  engine.run();
}

TEST(InsertCursor, SurvivesInterleavedMutations) {
  Engine engine;
  engine.spawn("t", [](Context& ctx) {
    SimSkipList list(0);
    SimSkipList::InsertCursor cursor;
    // Ascending inserts with unrelated mutations in between (which
    // invalidate the fingers and force a re-seed).
    for (std::uint64_t k = 10; k <= 500; k += 10) {
      ASSERT_TRUE(list.insert_ascending(ctx, cursor, k, MemClass::kPimLocal));
      if (k % 50 == 0) {
        list.execute(ctx, SetOp::kAdd, k + 5, MemClass::kPimLocal);
        list.execute(ctx, SetOp::kRemove, k - 10, MemClass::kPimLocal);
      }
    }
    // Spot-check membership.
    EXPECT_TRUE(list.execute(ctx, SetOp::kContains, 500, MemClass::kPimLocal));
    EXPECT_FALSE(list.execute(ctx, SetOp::kContains, 40, MemClass::kPimLocal));
    EXPECT_TRUE(list.execute(ctx, SetOp::kContains, 55, MemClass::kPimLocal));
  });
  engine.run();
}

TEST(FatNodeCombining, SpeedsUpTheEnqueueSide) {
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 24;
  cfg.dequeuers = 0;
  cfg.duration_ns = 10'000'000;
  PimQueueOptions plain;
  PimQueueOptions fat;
  fat.enqueue_combining = true;
  const double off = run_pim_queue(cfg, plain).run.ops_per_sec();
  const double on = run_pim_queue(cfg, fat).run.ops_per_sec();
  EXPECT_GT(on, 2.0 * off) << "fat nodes should lift the 1/Lpim ceiling";
}

TEST(FatNodeCombining, PreservesFifoAccounting) {
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 8;
  cfg.dequeuers = 8;
  cfg.duration_ns = 10'000'000;
  PimQueueOptions fat;
  fat.enqueue_combining = true;
  const PimQueueResult r = run_pim_queue(cfg, fat);
  EXPECT_GT(r.run.total_ops, 0u);
  EXPECT_EQ(r.empty_dequeues, 0u);
  // Both sides must still be served (no starvation via the replay queue).
  EXPECT_GT(r.enq_ops, 0u);
  EXPECT_GT(r.deq_ops, 0u);
}

}  // namespace
}  // namespace pimds::sim
