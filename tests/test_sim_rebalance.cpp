// Tests for the simulated Section 4.2.1 rebalancing experiment and the
// Section 5.1 fat-node enqueue combining.
#include <gtest/gtest.h>

#include "sim/ds/queues.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds::sim {
namespace {

RebalanceConfig quick_config() {
  RebalanceConfig cfg;
  cfg.num_cpus = 12;
  cfg.partitions = 4;
  cfg.key_range = 1 << 14;
  cfg.initial_size = 1 << 13;
  cfg.duration_ns = 30'000'000;
  return cfg;
}

TEST(SimRebalance, MigrationImprovesSkewedThroughput) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const RebalanceResult with = run_pim_skiplist_rebalance(cfg);
  cfg.rebalance = false;
  const RebalanceResult without = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(with.size_consistent);
  EXPECT_TRUE(without.size_consistent);
  EXPECT_GT(with.migrated_keys, 0u);
  EXPECT_EQ(without.migrated_keys, 0u);
  // Before the split both runs are identical-ish; after it, the rebalanced
  // run must clearly beat both its own past and the control.
  EXPECT_GT(with.after.ops_per_sec(), 1.5 * with.before.ops_per_sec());
  EXPECT_GT(with.after.ops_per_sec(), 1.5 * without.after.ops_per_sec());
}

TEST(SimRebalance, NoKeysLostAcrossMigrations) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.mix = {0.4, 0.4};  // heavy churn while ranges move
  const RebalanceResult r = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(r.size_consistent)
      << "final size disagrees with successful add/remove accounting";
}

TEST(SimRebalance, ProtocolPathsAreExercised) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.migrate_chunk = 2;  // slow migration: maximize racing requests
  const RebalanceResult r = run_pim_skiplist_rebalance(cfg);
  EXPECT_TRUE(r.size_consistent);
  // With a crawling migration under a hot workload, some requests must have
  // hit the forwarding path (keys already handed over).
  EXPECT_GT(r.forwarded, 0u);
}

TEST(SimRebalance, Deterministic) {
  RebalanceConfig cfg = quick_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const RebalanceResult a = run_pim_skiplist_rebalance(cfg);
  const RebalanceResult b = run_pim_skiplist_rebalance(cfg);
  EXPECT_EQ(a.before.total_ops, b.before.total_ops);
  EXPECT_EQ(a.after.total_ops, b.after.total_ops);
  EXPECT_EQ(a.migrated_keys, b.migrated_keys);
  EXPECT_EQ(a.final_requests_per_vault, b.final_requests_per_vault);
}

// ---------------------------------------------------------------------------
// Active LoadMap-driven policy (RebalancePolicy::kActiveLoadMap): the sim
// twin of core/auto_rebalancer's closed control loop. These run the full
// protocol with the policy actor deciding from windowed load + the hot-key
// sketch; nothing in the run knows the workload's quantiles.
// ---------------------------------------------------------------------------

RebalanceConfig active_config(std::uint64_t seed) {
  RebalanceConfig cfg;
  cfg.seed = seed;
  cfg.num_cpus = 12;
  cfg.partitions = 4;
  cfg.key_range = 1 << 14;
  cfg.initial_size = 1 << 13;
  cfg.zipf_theta = 0.99;
  cfg.duration_ns = 45'000'000;
  cfg.policy = RebalancePolicy::kActiveLoadMap;
  cfg.policy_period_ns = 1'000'000;
  cfg.imbalance_enter = 1.2;
  cfg.cooldown_periods = 1;
  return cfg;
}

TEST(ActiveRebalance, CutsPeakImbalanceAtLeastTwofold) {
  // The headline property across a seed sweep: with no quantile knowledge,
  // the windowed-LoadMap policy must at least halve the peak per-window
  // vault imbalance of the final third relative to the no-intervention
  // control, without losing keys. (The gated CI scenario asserts the
  // stronger >= 2x cut + throughput criterion at bench scale on a pinned
  // seed; this holds the property across seeds at test scale.)
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RebalanceConfig cfg = active_config(seed);
    const Time d = cfg.duration_ns;
    RebalanceConfig control = cfg;
    control.rebalance = false;
    const RebalanceResult with = run_pim_skiplist_rebalance(cfg);
    const RebalanceResult without = run_pim_skiplist_rebalance(control);
    ASSERT_GT(with.migrations, 0u);
    EXPECT_EQ(without.migrations, 0u);
    EXPECT_TRUE(with.size_consistent);
    const double peak_control = without.peak_imbalance(2 * d / 3, d, 200);
    const double peak_active = with.peak_imbalance(2 * d / 3, d, 200);
    ASSERT_GT(peak_active, 0.0) << "final third must have eligible windows";
    EXPECT_GE(peak_control, 2.0 * peak_active)
        << "control peak " << peak_control << " vs active " << peak_active;
  }
}

TEST(ActiveRebalance, ConvergesInsteadOfThrashing) {
  // Hysteresis (enter threshold + per-vault cooldown) must let the layout
  // settle: essentially all migrations belong to the first two thirds of
  // the run. This is the stability assertion the kThrash mutation breaks.
  const RebalanceResult r = run_pim_skiplist_rebalance(active_config(1));
  ASSERT_GT(r.migrations, 0u);
  EXPECT_LE(r.migrations_late, 1u)
      << "a settled policy must not keep migrating in the final third";
  EXPECT_TRUE(r.size_consistent);
}

TEST(ActiveRebalance, DeterministicIncludingWindowSeries) {
  const RebalanceResult a = run_pim_skiplist_rebalance(active_config(2));
  const RebalanceResult b = run_pim_skiplist_rebalance(active_config(2));
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrations_late, b.migrations_late);
  EXPECT_EQ(a.migrated_keys, b.migrated_keys);
  EXPECT_EQ(a.before.total_ops, b.before.total_ops);
  EXPECT_EQ(a.after.total_ops, b.after.total_ops);
  EXPECT_EQ(a.final_requests_per_vault, b.final_requests_per_vault);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].ops, b.windows[i].ops) << "window " << i;
    EXPECT_EQ(a.windows[i].hottest, b.windows[i].hottest) << "window " << i;
  }
}

TEST(ActiveRebalance, SurvivesChurnWithoutLosingKeys) {
  RebalanceConfig cfg = active_config(3);
  cfg.mix = {0.4, 0.4};  // heavy add/remove churn while ranges move
  const RebalanceResult r = run_pim_skiplist_rebalance(cfg);
  ASSERT_GT(r.migrations, 0u);
  EXPECT_TRUE(r.size_consistent)
      << "final size disagrees with successful add/remove accounting";
}

TEST(ActiveRebalanceMutation, ThrashVariantIsFlaggedByStability) {
  // kThrash removes the enter threshold and the cooldown: the protocol
  // stays correct (no checker violation) but the policy never converges.
  // The harness signature is unmistakable: several times the migration
  // count, and migrations still firing in the final third.
  const RebalanceResult clean = run_pim_skiplist_rebalance(active_config(1));
  RebalanceConfig cfg = active_config(1);
  cfg.fault = RebalanceFault::kThrash;
  const RebalanceResult thrash = run_pim_skiplist_rebalance(cfg);
  EXPECT_GE(thrash.migrations, 2 * clean.migrations)
      << "no-hysteresis variant must migrate far more often";
  EXPECT_GE(thrash.migrations_late, 5u)
      << "no-hysteresis variant must still be migrating at the end";
  EXPECT_LE(clean.migrations_late, 1u);
}

TEST(ActiveRebalanceMutation, SplitOffByOneIsFlaggedByImbalance) {
  // Single-dominant-key workload (theta = 2.0): the clean policy splits at
  // the top key's SUCCESSOR, isolating the hot key in one migration, after
  // which nothing is splittable and the policy converges. The off-by-one
  // mutant splits AT the key, so the hot spot rides along with every
  // migrated suffix: the peak imbalance never falls and migrations never
  // stop — the imbalance-must-fall and stability assertions both flag it.
  RebalanceConfig clean_cfg = active_config(1);
  clean_cfg.zipf_theta = 2.0;
  const Time d = clean_cfg.duration_ns;
  RebalanceConfig mutant_cfg = clean_cfg;
  mutant_cfg.fault = RebalanceFault::kSplitOffByOne;
  const RebalanceResult clean = run_pim_skiplist_rebalance(clean_cfg);
  const RebalanceResult mutant = run_pim_skiplist_rebalance(mutant_cfg);
  // Clean: one successor split isolates the dominant key and settles. The
  // residual imbalance is the hot key itself (one key cannot be divided),
  // strictly below the all-on-one-vault ceiling of `partitions`.
  ASSERT_GT(clean.migrations, 0u);
  EXPECT_LE(clean.migrations_late, 1u);
  EXPECT_LT(clean.peak_imbalance(2 * d / 3, d, 200), 3.0);
  // Mutant: the hot key travels with every split, so the final-third peak
  // stays pinned at the ceiling and migrations keep firing late.
  EXPECT_GE(mutant.migrations, 2 * clean.migrations);
  EXPECT_GT(mutant.migrations_late, 0u);
  EXPECT_GT(mutant.peak_imbalance(2 * d / 3, d, 200), 3.5);
}

TEST(InsertCursor, AscendingInsertsMatchRegularInserts) {
  Engine engine;
  engine.spawn("t", [](Context& ctx) {
    SimSkipList via_cursor(0);
    SimSkipList regular(0);
    SimSkipList::InsertCursor cursor;
    Xoshiro256 rng(5);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) keys.push_back(rng.next_in(1, 2000));
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) {
      const bool a = via_cursor.insert_ascending(ctx, cursor, k,
                                                 MemClass::kPimLocal);
      const bool b = regular.execute(ctx, SetOp::kAdd, k,
                                     MemClass::kPimLocal);
      ASSERT_EQ(a, b) << k;
    }
    ASSERT_EQ(via_cursor.keys(), regular.keys());
  });
  engine.run();
}

TEST(InsertCursor, SurvivesInterleavedMutations) {
  Engine engine;
  engine.spawn("t", [](Context& ctx) {
    SimSkipList list(0);
    SimSkipList::InsertCursor cursor;
    // Ascending inserts with unrelated mutations in between (which
    // invalidate the fingers and force a re-seed).
    for (std::uint64_t k = 10; k <= 500; k += 10) {
      ASSERT_TRUE(list.insert_ascending(ctx, cursor, k, MemClass::kPimLocal));
      if (k % 50 == 0) {
        list.execute(ctx, SetOp::kAdd, k + 5, MemClass::kPimLocal);
        list.execute(ctx, SetOp::kRemove, k - 10, MemClass::kPimLocal);
      }
    }
    // Spot-check membership.
    EXPECT_TRUE(list.execute(ctx, SetOp::kContains, 500, MemClass::kPimLocal));
    EXPECT_FALSE(list.execute(ctx, SetOp::kContains, 40, MemClass::kPimLocal));
    EXPECT_TRUE(list.execute(ctx, SetOp::kContains, 55, MemClass::kPimLocal));
  });
  engine.run();
}

TEST(FatNodeCombining, SpeedsUpTheEnqueueSide) {
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 24;
  cfg.dequeuers = 0;
  cfg.duration_ns = 10'000'000;
  PimQueueOptions plain;
  PimQueueOptions fat;
  fat.enqueue_combining = true;
  const double off = run_pim_queue(cfg, plain).run.ops_per_sec();
  const double on = run_pim_queue(cfg, fat).run.ops_per_sec();
  EXPECT_GT(on, 2.0 * off) << "fat nodes should lift the 1/Lpim ceiling";
}

TEST(FatNodeCombining, PreservesFifoAccounting) {
  QueueConfig cfg;
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.enqueuers = 8;
  cfg.dequeuers = 8;
  cfg.duration_ns = 10'000'000;
  PimQueueOptions fat;
  fat.enqueue_combining = true;
  const PimQueueResult r = run_pim_queue(cfg, fat);
  EXPECT_GT(r.run.total_ops, 0u);
  EXPECT_EQ(r.empty_dequeues, 0u);
  // Both sides must still be served (no starvation via the replay queue).
  EXPECT_GT(r.enq_ops, 0u);
  EXPECT_GT(r.deq_ops, 0u);
}

}  // namespace
}  // namespace pimds::sim
