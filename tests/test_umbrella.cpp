// The umbrella header must compile standalone and expose the public API.
#include "pimds.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesTheWholePublicApi) {
  // One symbol per namespace proves the includes are wired.
  EXPECT_EQ(pimds::LatencyParams::paper_defaults().r1, 3.0);
  EXPECT_GT(pimds::model::faa_queue(pimds::LatencyParams::paper_defaults()),
            0.0);
  pimds::sim::Engine engine;
  EXPECT_EQ(engine.actor_count(), 0u);
  pimds::baselines::MsQueue queue;
  EXPECT_FALSE(queue.dequeue().has_value());
  pimds::runtime::PimSystem::Config config;
  EXPECT_EQ(config.num_vaults, 4u);
}

}  // namespace
