// Model-vs-simulator agreement tests: the discrete-event simulator, running
// the actual algorithms, must land on the closed-form Table 1 / Table 2 /
// Section 5.2 predictions (within tolerances documented per case), and the
// paper's comparative claims (who beats whom) must hold in simulation.
#include <gtest/gtest.h>

#include "model/linked_list_model.hpp"
#include "model/queue_model.hpp"
#include "model/skiplist_model.hpp"
#include "sim/ds/linked_lists.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds::sim {
namespace {

ListConfig small_list_config() {
  ListConfig cfg;
  cfg.num_cpus = 8;
  // Equilibrium sizing: with balanced add/remove on uniform keys the set
  // converges to key_range/2 elements, so start it there.
  cfg.key_range = 800;
  cfg.initial_size = 400;
  cfg.duration_ns = 30'000'000;
  return cfg;
}

void expect_within(double measured, double expected, double lo, double hi,
                   const char* what) {
  EXPECT_GE(measured, expected * lo) << what;
  EXPECT_LE(measured, expected * hi) << what;
}

TEST(SimVsModel, Table1FineGrainedList) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_fine_grained_list(cfg).ops_per_sec();
  const double mdl = model::fine_grained_lock_list(cfg.params, 400, 8);
  expect_within(sim, mdl, 0.85, 1.15, "fine-grained list");
}

TEST(SimVsModel, Table1FcListNoCombining) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_fc_list(cfg, false).ops_per_sec();
  const double mdl = model::fc_list_no_combining(cfg.params, 400);
  expect_within(sim, mdl, 0.85, 1.15, "FC list, no combining");
}

TEST(SimVsModel, Table1FcListCombining) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_fc_list(cfg, true).ops_per_sec();
  const double mdl = model::fc_list_combining(cfg.params, 400, 8);
  // Real combining degrees fluctuate below the ideal batch=p, so the lower
  // tolerance is wider here.
  expect_within(sim, mdl, 0.7, 1.15, "FC list, combining");
}

TEST(SimVsModel, Table1PimListNoCombining) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_pim_list(cfg, false).ops_per_sec();
  const double mdl = model::pim_list_no_combining(cfg.params, 400);
  expect_within(sim, mdl, 0.85, 1.15, "PIM list, no combining");
}

TEST(SimVsModel, Table1PimListCombining) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_pim_list(cfg, true).ops_per_sec();
  const double mdl = model::pim_list_combining(cfg.params, 400, 8);
  expect_within(sim, mdl, 0.85, 1.15, "PIM list, combining");
}

TEST(SimClaims, C1NaivePimListCrossoverSitsAtR1Threads) {
  // Table 1 predicts a TIE at p = r1 = 3: fine-grained wins strictly above,
  // loses strictly below.
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.num_cpus = 2;
  EXPECT_LT(run_fine_grained_list(cfg).ops_per_sec(),
            run_pim_list(cfg, false).ops_per_sec());
  cfg.num_cpus = 3;
  EXPECT_NEAR(run_fine_grained_list(cfg).ops_per_sec() /
                  run_pim_list(cfg, false).ops_per_sec(),
              1.0, 0.1);
  cfg.num_cpus = 4;
  EXPECT_GT(run_fine_grained_list(cfg).ops_per_sec(),
            run_pim_list(cfg, false).ops_per_sec());
}

TEST(SimClaims, C2CombiningPimListBeatsFineGrained) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double pim = run_pim_list(cfg, true).ops_per_sec();
  const double fine_grained = run_fine_grained_list(cfg).ops_per_sec();
  EXPECT_GE(pim / fine_grained, 1.4) << "paper claims >= 1.5x at r1 = 3";
}

TEST(SimClaims, C3PimListIsAboutR1TimesFcList) {
  ListConfig cfg = small_list_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double ratio_plain = run_pim_list(cfg, false).ops_per_sec() /
                             run_fc_list(cfg, false).ops_per_sec();
  EXPECT_NEAR(ratio_plain, cfg.params.r1, 0.5);
}

SkipListConfig skip_config(std::size_t cpus) {
  SkipListConfig cfg;
  cfg.num_cpus = cpus;
  cfg.key_range = 1 << 15;
  cfg.initial_size = 1 << 14;
  cfg.duration_ns = 20'000'000;
  return cfg;
}

TEST(SimVsModel, Table2PimSkipListTracksPartitionedFormula) {
  SkipListConfig cfg = skip_config(8);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double beta = model::estimate_beta(cfg.initial_size);
  const double sim = run_pim_skiplist(cfg, 4).ops_per_sec();
  const double mdl = model::pim_skiplist_partitioned(cfg.params, beta, 4);
  expect_within(sim, mdl, 0.7, 1.4, "PIM skip-list, k=4");
}

TEST(SimVsModel, Table2LockFreeTracksFormula) {
  SkipListConfig cfg = skip_config(8);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double beta = model::estimate_beta(cfg.initial_size);
  const double sim = run_lockfree_skiplist(cfg).ops_per_sec();
  const double mdl = model::lock_free_skiplist(cfg.params, beta, 8);
  expect_within(sim, mdl, 0.7, 1.3, "lock-free skip-list");
}

TEST(SimClaims, C4NaivePimSkipListLosesToLockFree) {
  SkipListConfig cfg = skip_config(8);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double naive = run_pim_skiplist(cfg, 1).ops_per_sec();
  const double lock_free = run_lockfree_skiplist(cfg).ops_per_sec();
  EXPECT_GT(lock_free, naive);
}

TEST(SimClaims, C5PartitionedPimSkipListBeatsLockFreeWhenKExceedsPOverR1) {
  // p = 12, r1 = 3: k = 8 > 4 should win, k = 2 should lose.
  SkipListConfig cfg = skip_config(12);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double lock_free = run_lockfree_skiplist(cfg).ops_per_sec();
  EXPECT_GT(run_pim_skiplist(cfg, 8).ops_per_sec(), lock_free);
  EXPECT_LT(run_pim_skiplist(cfg, 2).ops_per_sec(), lock_free);
}

TEST(SimClaims, C6PimSkipListIsAboutR1TimesFcSkipListAtEqualK) {
  SkipListConfig cfg = skip_config(16);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double ratio = run_pim_skiplist(cfg, 4).ops_per_sec() /
                       run_fc_skiplist(cfg, 4).ops_per_sec();
  // beta r1/(beta + r1) ~ 2.6-3.0 for observed beta, plus saturation noise.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(SimClaims, PartitioningImprovesFcSkipList) {
  SkipListConfig cfg = skip_config(16);
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double k1 = run_fc_skiplist(cfg, 1).ops_per_sec();
  const double k4 = run_fc_skiplist(cfg, 4).ops_per_sec();
  const double k8 = run_fc_skiplist(cfg, 8).ops_per_sec();
  EXPECT_GT(k4, 2.0 * k1);
  EXPECT_GT(k8, k4);
}

QueueConfig queue_config() {
  QueueConfig cfg;
  cfg.enqueuers = 12;
  cfg.dequeuers = 12;
  cfg.duration_ns = 20'000'000;
  return cfg;
}

TEST(SimVsModel, Sec52FaaQueueHitsTheAtomicBound) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_faa_queue(cfg).ops_per_sec();
  const double mdl = 2 * model::faa_queue(cfg.params);  // two sides
  expect_within(sim, mdl, 0.95, 1.05, "F&A queue");
}

TEST(SimVsModel, Sec52FcQueueNearTheLlcBound) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double sim = run_fc_queue(cfg).ops_per_sec();
  const double mdl = 2 * model::fc_queue(cfg.params);
  // The (2p-1) Lllc cost is an asymptotic-in-p bound; at p=12 per side the
  // simulation sits slightly above it.
  expect_within(sim, mdl, 0.9, 1.25, "FC queue");
}

TEST(SimVsModel, Sec52PimQueueApproachesOneOverLpimPerSide) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const PimQueueResult r = run_pim_queue(cfg, PimQueueOptions{});
  const double mdl = 2 * model::pim_queue_pipelined(cfg.params);
  expect_within(r.run.ops_per_sec(), mdl, 0.9, 1.05, "PIM queue");
  EXPECT_EQ(r.co_resident_ops, 0u)
      << "antipodal placement must keep the roles on distinct cores";
  EXPECT_EQ(r.empty_dequeues, 0u) << "long-queue run should never hit empty";
}

TEST(SimVsModel, Sec52PipeliningDelivers) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  PimQueueOptions opts;
  opts.pipelining = false;
  const double unpiped = run_pim_queue(cfg, opts).run.ops_per_sec();
  const double mdl = 2 * model::pim_queue_unpipelined(cfg.params);
  expect_within(unpiped, mdl, 0.9, 1.1, "PIM queue, no pipelining");
}

TEST(SimVsModel, Sec52SingleSegmentHalvesThroughput) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  PimQueueOptions opts;
  opts.num_vaults = 1;
  opts.segment_threshold = ~std::uint64_t{0};
  const double single = run_pim_queue(cfg, opts).run.ops_per_sec();
  const double full =
      run_pim_queue(cfg, PimQueueOptions{}).run.ops_per_sec();
  EXPECT_NEAR(single / full, 0.5, 0.08);
}

TEST(SimClaims, C7PimQueueBeatsFcByTwoAndFaaByThree) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const double pim = run_pim_queue(cfg, PimQueueOptions{}).run.ops_per_sec();
  const double fc = run_fc_queue(cfg).ops_per_sec();
  const double faa = run_faa_queue(cfg).ops_per_sec();
  EXPECT_NEAR(pim / fc, 2.0, 0.5);
  EXPECT_NEAR(pim / faa, 3.0, 0.4);
}

TEST(SimClaims, RoundRobinPlacementCanSerializeTheTwoRoles) {
  // The ablation behind SegmentPlacement::kOppositeDequeueCore: strict
  // round-robin lets the enqueue and dequeue roles co-reside.
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  cfg.initial_nodes = 64 * 1024;  // exact multiple: roles collide at t=0
  PimQueueOptions rr;
  rr.placement = SegmentPlacement::kRoundRobin;
  const PimQueueResult r = run_pim_queue(cfg, rr);
  EXPECT_GT(r.co_resident_ops, r.run.total_ops / 4)
      << "expected heavy co-residency under round-robin placement";
}

TEST(SimDeterminism, SameSeedSameResult) {
  QueueConfig cfg = queue_config();
  const test::SimSeed seed(cfg.seed);
  cfg.seed = seed;
  const auto a = run_pim_queue(cfg, PimQueueOptions{});
  const auto b = run_pim_queue(cfg, PimQueueOptions{});
  EXPECT_EQ(a.run.total_ops, b.run.total_ops);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.segments_created, b.segments_created);

  ListConfig lcfg = small_list_config();
  lcfg.seed = seed;
  EXPECT_EQ(run_fc_list(lcfg, true).total_ops,
            run_fc_list(lcfg, true).total_ops);
}

}  // namespace
}  // namespace pimds::sim
