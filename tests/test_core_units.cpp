// Unit tests for the core/ building blocks used by the PIM structures:
// the sentinel directory, the vault-local skip-list, and the sequential
// structures behind the flat-combining baselines.
#include <gtest/gtest.h>

#include <set>

#include "baselines/seq_structures.hpp"
#include "common/rng.hpp"
#include "core/local_skiplist.hpp"
#include "core/sentinel_directory.hpp"
#include "runtime/vault.hpp"

namespace pimds {
namespace {

using core::LocalSkipList;
using core::SentinelDirectory;

TEST(SentinelDirectory, RoutesByGreatestSentinelAtMostKey) {
  SentinelDirectory dir({{1, 0}, {100, 1}, {200, 2}});
  EXPECT_EQ(dir.route(1), 0u);
  EXPECT_EQ(dir.route(99), 0u);
  EXPECT_EQ(dir.route(100), 1u);
  EXPECT_EQ(dir.route(150), 1u);
  EXPECT_EQ(dir.route(200), 2u);
  EXPECT_EQ(dir.route(~std::uint64_t{0}), 2u);
}

TEST(SentinelDirectory, PartitionOfReportsBounds) {
  SentinelDirectory dir({{1, 0}, {100, 1}, {200, 2}});
  const auto mid = dir.partition_of(150);
  EXPECT_EQ(mid.lo, 100u);
  EXPECT_EQ(mid.hi, 200u);
  EXPECT_EQ(mid.vault, 1u);
  const auto last = dir.partition_of(5000);
  EXPECT_EQ(last.lo, 200u);
  EXPECT_EQ(last.hi, ~std::uint64_t{0});
}

TEST(SentinelDirectory, WholePartitionTransferRetargetsEntry) {
  SentinelDirectory dir({{1, 0}, {100, 1}});
  dir.move_range(100, 3);  // split key == existing sentinel
  EXPECT_EQ(dir.partition_count(), 2u);
  EXPECT_EQ(dir.route(150), 3u);
  EXPECT_EQ(dir.route(50), 0u);
}

TEST(SentinelDirectory, SuffixSplitInsertsSentinel) {
  SentinelDirectory dir({{1, 0}, {100, 1}});
  dir.move_range(50, 2);  // suffix [50, 100) of partition 0
  EXPECT_EQ(dir.partition_count(), 3u);
  EXPECT_EQ(dir.route(49), 0u);
  EXPECT_EQ(dir.route(50), 2u);
  EXPECT_EQ(dir.route(99), 2u);
  EXPECT_EQ(dir.route(100), 1u);
}

TEST(SentinelDirectory, RepeatedSplitsStaySorted) {
  SentinelDirectory dir({{1, 0}});
  dir.move_range(1000, 1);
  dir.move_range(100, 2);
  dir.move_range(10, 3);
  const auto snap = dir.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].sentinel, snap[i].sentinel);
  }
  EXPECT_EQ(dir.route(5), 0u);
  EXPECT_EQ(dir.route(10), 3u);
  EXPECT_EQ(dir.route(500), 2u);
  EXPECT_EQ(dir.route(5000), 1u);
}

TEST(LocalSkipList, MatchesStdSetAndCountsSteps) {
  runtime::Vault vault(0, 16u << 20);
  LocalSkipList list(vault, 0, 77);
  std::set<std::uint64_t> reference;
  Xoshiro256 rng(9);
  std::uint64_t total_steps = 0;
  for (int i = 0; i < 6000; ++i) {
    const std::uint64_t key = rng.next_in(1, 500);
    std::uint64_t steps = 0;
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(list.add(key, &steps), reference.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(list.remove(key, &steps), reference.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(list.contains(key, &steps), reference.count(key) > 0);
    }
    EXPECT_GT(steps, 0u);
    total_steps += steps;
  }
  EXPECT_EQ(list.size(), reference.size());
  EXPECT_GT(total_steps, 0u);
}

TEST(LocalSkipList, FirstAtLeastScansInOrder) {
  runtime::Vault vault(0, 1u << 20);
  LocalSkipList list(vault, 0, 3);
  for (std::uint64_t k : {10u, 20u, 30u}) list.add(k);
  EXPECT_EQ(list.first_at_least(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(list.first_at_least(10), std::optional<std::uint64_t>(10));
  EXPECT_EQ(list.first_at_least(11), std::optional<std::uint64_t>(20));
  EXPECT_EQ(list.first_at_least(30), std::optional<std::uint64_t>(30));
  EXPECT_EQ(list.first_at_least(31), std::nullopt);
}

TEST(LocalSkipList, MemoryIsReturnedToTheVault) {
  runtime::Vault vault(0, 1u << 20);
  LocalSkipList list(vault, 0, 3);
  for (std::uint64_t k = 1; k <= 200; ++k) list.add(k);
  const std::size_t peak = vault.bytes_used();
  for (std::uint64_t k = 1; k <= 200; ++k) list.remove(k);
  EXPECT_LT(vault.bytes_used(), peak);
  // Re-adding recycles free-listed blocks; usage returns to roughly the
  // previous peak (tower heights are random, so allow slack for a taller
  // second population).
  for (std::uint64_t k = 1; k <= 200; ++k) list.add(k);
  EXPECT_LE(vault.bytes_used(), peak + 1024);
}

TEST(SeqList, CursorBatchesEqualScratchExecution) {
  baselines::SeqList with_cursor;
  baselines::SeqList plain;
  Xoshiro256 rng(21);
  // Pre-populate identically.
  for (std::uint64_t k = 2; k <= 100; k += 2) {
    with_cursor.add(k);
    plain.add(k);
  }
  // Ascending batch through the cursor API must equal one-by-one calls.
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 50; ++i) keys.push_back(rng.next_in(1, 120));
  std::sort(keys.begin(), keys.end());
  baselines::SeqList::Cursor cursor;
  for (const std::uint64_t k : keys) {
    EXPECT_EQ(with_cursor.add_from(&cursor, k), plain.add(k)) << k;
  }
  EXPECT_EQ(with_cursor.size(), plain.size());
}

TEST(SeqSkipList, MatchesStdSet) {
  baselines::SeqSkipList list(0, 5);
  std::set<std::uint64_t> reference;
  Xoshiro256 rng(31);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.next_in(1, 400);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(list.add(key), reference.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(list.remove(key), reference.erase(key) > 0);
        break;
      default:
        ASSERT_EQ(list.contains(key), reference.count(key) > 0);
    }
  }
  EXPECT_EQ(list.size(), reference.size());
}

}  // namespace
}  // namespace pimds
