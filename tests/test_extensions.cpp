// Tests for the extension features beyond the paper's core: the
// auto-rebalancing policy, runtime fat-node enqueue combining, the
// simulated Michael-Scott queue, and the LocalSkipList migration helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/auto_rebalancer.hpp"
#include "core/local_skiplist.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_skiplist.hpp"
#include "sim/ds/queues.hpp"

namespace pimds {
namespace {

TEST(LocalSkipListMigrationHelpers, ExtractDrainsInAscendingOrder) {
  runtime::Vault vault(0, 4u << 20);
  core::LocalSkipList list(vault, 0, 11);
  Xoshiro256 rng(1);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = rng.next_in(1, 5000);
    if (list.add(k)) keys.insert(k);
  }
  // Extract [100, 2000) and check order + completeness.
  std::uint64_t cursor = 100;
  std::vector<std::uint64_t> extracted;
  for (;;) {
    const auto k = list.extract_first_at_least(cursor);
    if (!k.has_value() || *k >= 2000) break;
    extracted.push_back(*k);
    cursor = *k + 1;
  }
  std::vector<std::uint64_t> expected;
  for (const auto k : keys) {
    if (k >= 100 && k < 2000) expected.push_back(k);
  }
  EXPECT_EQ(extracted, expected);
  for (const auto k : expected) EXPECT_FALSE(list.contains(k));
}

TEST(LocalSkipListMigrationHelpers, AscendingInsertMatchesRegularAdd) {
  runtime::Vault vault(0, 4u << 20);
  core::LocalSkipList via_cursor(vault, 0, 3);
  runtime::Vault vault2(1, 4u << 20);
  core::LocalSkipList regular(vault2, 0, 3);
  core::LocalSkipList::InsertCursor cursor;
  Xoshiro256 rng(2);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(rng.next_in(1, 1000));
  std::sort(keys.begin(), keys.end());
  for (const auto k : keys) {
    ASSERT_EQ(via_cursor.insert_ascending(cursor, k), regular.add(k)) << k;
  }
  EXPECT_EQ(via_cursor.size(), regular.size());
  for (std::uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_EQ(via_cursor.contains(k), regular.contains(k)) << k;
  }
}

TEST(LocalSkipListMigrationHelpers, CursorSurvivesInterleavedMutations) {
  runtime::Vault vault(0, 4u << 20);
  core::LocalSkipList list(vault, 0, 7);
  core::LocalSkipList::InsertCursor cursor;
  for (std::uint64_t k = 10; k <= 300; k += 10) {
    ASSERT_TRUE(list.insert_ascending(cursor, k));
    if (k % 50 == 0) {
      list.add(k + 1);       // invalidates the fingers
      list.remove(k - 10);
    }
  }
  EXPECT_TRUE(list.contains(300));
  EXPECT_TRUE(list.contains(51));
  EXPECT_FALSE(list.contains(40));
}

TEST(AutoRebalancer, SpreadsAZipfHotSpot) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 16;
  core::PimSkipList list(system, options);
  core::AutoRebalancer::Options rb_options;
  rb_options.period = std::chrono::milliseconds(20);
  core::AutoRebalancer rebalancer(list, rb_options);
  system.start();
  std::size_t loaded = 0;
  {
    Xoshiro256 rng(3);
    for (int i = 0; i < 5000; ++i) {
      loaded += list.add(rng.next_in(1, 1 << 16));  // random draws collide
    }
  }
  rebalancer.start();

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Xoshiro256 rng(4);
    ZipfGenerator zipf(1 << 16, 0.99);
    while (!stop.load(std::memory_order_relaxed)) {
      list.contains(zipf.next(rng) + 1);
    }
  });
  // Give the policy a few periods to act.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true);
  worker.join();
  rebalancer.stop();
  system.stop();

  EXPECT_GT(rebalancer.migrations_triggered(), 0u)
      << "a theta=0.99 hot spot must trip a 2x imbalance trigger";
  EXPECT_GT(list.partitions().size(), 4u)
      << "splits should have created new sentinels";
  EXPECT_EQ(list.size(), loaded) << "rebalancing must not lose keys";
}

TEST(AutoRebalancer, StaysQuietUnderUniformLoad) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 16;
  core::PimSkipList list(system, options);
  core::AutoRebalancer::Options rb_options;
  rb_options.period = std::chrono::milliseconds(10);
  core::AutoRebalancer rebalancer(list, rb_options);
  system.start();
  rebalancer.start();
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_relaxed)) {
      list.contains(rng.next_in(1, 1 << 16));  // uniform: balanced
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  worker.join();
  rebalancer.stop();
  system.stop();
  EXPECT_EQ(rebalancer.migrations_triggered(), 0u)
      << "uniform load must not trigger migrations";
}

TEST(AutoRebalancer, AdaptiveCombiningEngagesOnAHotRange) {
  // Contention-adaptive switching (per key range) between direct sends and
  // CPU-side combining: a range whose window share crosses
  // combine_enter_share must flip to combining, ops must start traveling
  // as fat kOpBatch messages, and results must stay correct.
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 16;
  core::PimSkipList list(system, options);
  core::AutoRebalancer::Options rb_options;
  rb_options.period = std::chrono::milliseconds(10);
  rb_options.max_migrations = 0;  // isolate combining from migrations
  rb_options.adaptive_combining = true;
  rb_options.combine_enter_share = 0.30;
  rb_options.combine_exit_share = 0.10;
  rb_options.min_window_ops = 50;
  rb_options.log_decisions = false;
  core::AutoRebalancer rebalancer(list, rb_options);
  system.start();
  rebalancer.start();

  // All traffic lands in one LoadMap range (share ~1.0 >> enter share).
  const obs::LoadMap& lm = list.loadmap();
  const std::uint64_t hot_lo = lm.range_lo(5);
  const std::uint64_t hot_hi = lm.range_hi(5);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> adds_ok{0};
  std::atomic<std::uint64_t> removes_ok{0};
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(40 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = rng.next_in(hot_lo + 1, hot_hi);
        if (rng.next() % 2) {
          adds_ok.fetch_add(list.add(key), std::memory_order_relaxed);
        } else {
          removes_ok.fetch_add(list.remove(key), std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& w : workers) w.join();
  const bool was_combining = list.range_combining(hot_lo + 1);
  rebalancer.stop();
  system.stop();

  EXPECT_TRUE(was_combining)
      << "a range carrying ~100% of the window must flip to combining";
  EXPECT_GT(list.combined_batches(), 0u) << "no fat batch ever shipped";
  EXPECT_GE(list.combined_ops(), list.combined_batches())
      << "batches must carry at least one op each";
  EXPECT_EQ(rebalancer.migrations_triggered(), 0u)
      << "max_migrations = 0 must hold migrations back";
  EXPECT_EQ(list.size(), adds_ok.load() - removes_ok.load())
      << "combined ops must apply exactly once";
}

TEST(AutoRebalancer, SuggestSplitIsolatesADominantTopKey) {
  // Regression for the observe-only suggestion: when ONE key dominates the
  // sketch, the split must be that key's SUCCESSOR (isolating the hot key),
  // not a midpoint that relocates or keeps the entire hot spot. The mutant
  // that splits AT the hot key is kSplitOffByOne in the sim twin.
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 16;
  core::PimSkipList list(system, options);
  core::AutoRebalancer rebalancer(list);

  // Vault 0 owns [0, 1<<14) under the default 4-way split.
  obs::LoadMap::HotVaultReport rep;
  rep.window_ops = 1000;
  rep.hottest = 0;
  rep.coldest = 3;
  rep.hot_keys = {{/*key=*/777, /*count=*/600},
                  {/*key=*/778, /*count=*/200},
                  {/*key=*/12, /*count=*/100}};
  rep.hot_ranges = {{/*lo=*/512, /*hi=*/1023, /*ops=*/900}};
  EXPECT_EQ(rebalancer.suggest_split(rep, /*hot=*/0), 778u)
      << "dominant top key (600 >= half of 900 tracked) -> successor split";

  // No dominance (top key holds < half the tracked mass): fall back to the
  // hottest owned range's midpoint.
  rep.hot_keys = {{777, 300}, {5000, 290}, {12, 280}};
  EXPECT_EQ(rebalancer.suggest_split(rep, 0), 512u + (1023u - 512u) / 2)
      << "no dominant key -> hottest-range midpoint";

  // Dominant key owned by ANOTHER vault: rule 1 must not fire for vault 0;
  // with the hot range also outside vault 0, fall through to the widest
  // partition midpoint.
  rep.hot_keys = {{/*key=*/(1u << 15) + 9, /*count=*/600}, {778, 200}};
  rep.hot_ranges = {{/*lo=*/1u << 15, /*hi=*/(1u << 15) + 1023, /*ops=*/900}};
  const auto parts = list.partitions();
  ASSERT_GE(parts.size(), 2u);
  const std::uint64_t p_lo = parts[0].sentinel;  // vault 0's only partition
  const std::uint64_t p_hi = parts[1].sentinel;
  EXPECT_EQ(rebalancer.suggest_split(rep, 0), p_lo + (p_hi - p_lo) / 2)
      << "foreign hot key/range -> widest owned partition midpoint";
}

TEST(RuntimeFatNodes, QueueStaysFifoWithEnqueueCombining) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options options;
  options.segment_threshold = 64;
  options.enqueue_combining = true;
  core::PimFifoQueue queue(system, options);
  system.start();
  constexpr std::uint64_t kPer = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        queue.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  std::vector<std::int64_t> last(2, -1);
  std::uint64_t consumed = 0;
  while (consumed < 2 * kPer) {
    const auto v = queue.dequeue();
    if (!v.has_value()) continue;
    const auto producer = static_cast<std::size_t>(*v >> 32);
    const auto seq = static_cast<std::int64_t>(*v & 0xffffffff);
    ASSERT_GT(seq, last[producer]) << "per-producer FIFO violated";
    last[producer] = seq;
    ++consumed;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(queue.dequeue().has_value());
  EXPECT_GE(queue.max_enqueue_batch(), 1u);
  system.stop();
}

TEST(SimMsQueue, DegradesWithContentionWhileFaaHolds) {
  auto throughput_at = [](std::size_t p, auto runner) {
    sim::QueueConfig cfg;
    cfg.enqueuers = p / 2;
    cfg.dequeuers = p / 2;
    cfg.duration_ns = 10'000'000;
    return runner(cfg).ops_per_sec();
  };
  const double ms_small = throughput_at(4, sim::run_ms_queue);
  const double ms_large = throughput_at(32, sim::run_ms_queue);
  const double faa_small = throughput_at(4, sim::run_faa_queue);
  const double faa_large = throughput_at(32, sim::run_faa_queue);
  EXPECT_LT(ms_large, 0.8 * ms_small)
      << "CAS retries must hurt as threads grow";
  EXPECT_GT(faa_large, 0.95 * faa_small)
      << "the F&A queue holds its bound under contention";
  EXPECT_GT(faa_large, 2.0 * ms_large)
      << "at high contention F&A clearly beats CAS retry";
}

}  // namespace
}  // namespace pimds
