#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include "common/zipf.hpp"

namespace pimds {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 1000u) << "1000 outputs should all be distinct";
}

TEST(SplitMix64, KnownVector) {
  // Reference value from the public-domain splitmix64.c with seed 0.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  Xoshiro256 c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

TEST(Xoshiro256, NextBelowIsInRange) {
  Xoshiro256 g(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(g.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 g(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.next_below(1), 0u);
}

TEST(Xoshiro256, NextInCoversInclusiveRange) {
  Xoshiro256 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = g.next_in(5, 8);
    ASSERT_GE(x, 5u);
    ASSERT_LE(x, 8u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u) << "all 4 values should appear in 2000 draws";
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 g(2024);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[g.next_below(kBuckets)];
  for (int c : counts) {
    // Expected 10000 per bucket; 4-sigma ~ 380.
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 g(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = g.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, NextBoolMatchesProbability) {
  Xoshiro256 g(31);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += g.next_bool(0.25);
  EXPECT_NEAR(trues, 2500, 200);
}

TEST(Zipf, RanksWithinBounds) {
  Xoshiro256 g(1);
  ZipfGenerator zipf(100, 0.99);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.next(g), 100u);
  }
}

TEST(Zipf, SkewPutsMassOnHeadRanks) {
  Xoshiro256 g(2);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.next(g)];
  // With theta = 0.99 the top rank draws far more than mid ranks.
  EXPECT_GT(counts[0], counts[500] * 20);
  // And the head outweighs its immediate successor.
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Zipf, LowThetaIsNearlyUniform) {
  Xoshiro256 g(3);
  ZipfGenerator zipf(10, 0.01);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.next(g)];
  const auto [min_it, max_it] = std::minmax_element(counts.begin(),
                                                    counts.end());
  EXPECT_LT(*max_it, *min_it * 2) << "theta~0 should be near-uniform";
}

}  // namespace
}  // namespace pimds
