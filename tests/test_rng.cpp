#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/zipf.hpp"

namespace pimds {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 1000u) << "1000 outputs should all be distinct";
}

TEST(SplitMix64, KnownVector) {
  // Reference value from the public-domain splitmix64.c with seed 0.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  Xoshiro256 c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds must give different streams";
}

TEST(Xoshiro256, NextBelowIsInRange) {
  Xoshiro256 g(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(g.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 g(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.next_below(1), 0u);
}

TEST(Xoshiro256, NextInCoversInclusiveRange) {
  Xoshiro256 g(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = g.next_in(5, 8);
    ASSERT_GE(x, 5u);
    ASSERT_LE(x, 8u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u) << "all 4 values should appear in 2000 draws";
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 g(2024);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[g.next_below(kBuckets)];
  for (int c : counts) {
    // Expected 10000 per bucket; 4-sigma ~ 380.
    EXPECT_NEAR(c, kDraws / kBuckets, 500);
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 g(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = g.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, NextBoolMatchesProbability) {
  Xoshiro256 g(31);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += g.next_bool(0.25);
  EXPECT_NEAR(trues, 2500, 200);
}

TEST(Zipf, RanksWithinBounds) {
  Xoshiro256 g(1);
  ZipfGenerator zipf(100, 0.99);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.next(g), 100u);
  }
}

TEST(Zipf, SkewPutsMassOnHeadRanks) {
  Xoshiro256 g(2);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.next(g)];
  // With theta = 0.99 the top rank draws far more than mid ranks.
  EXPECT_GT(counts[0], counts[500] * 20);
  // And the head outweighs its immediate successor.
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Zipf, EmpiricalFrequenciesAreMonotoneNonIncreasing) {
  // Rank r must never be (statistically) hotter than rank r-1. Bucket
  // adjacent ranks in powers of two so the comparison is between large
  // counts, immune to per-rank noise.
  Xoshiro256 g(11);
  ZipfGenerator zipf(1 << 10, 0.99);
  std::vector<std::uint64_t> counts(1 << 10, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.next(g)];
  std::uint64_t prev_bucket = ~std::uint64_t{0};
  for (std::size_t lo = 1; lo < counts.size(); lo *= 2) {
    std::uint64_t bucket = 0;
    for (std::size_t r = lo; r < 2 * lo && r < counts.size(); ++r) {
      bucket += counts[r];
    }
    // Mean per-rank mass of [lo, 2lo) <= mean of the previous dyadic block.
    EXPECT_LE(bucket / lo, prev_bucket) << "block starting at rank " << lo;
    prev_bucket = std::max<std::uint64_t>(1, bucket / lo);
  }
  // And the head ranks themselves are ordered (large-count comparison).
  EXPECT_GE(counts[0], counts[1]);
  EXPECT_GE(counts[1], counts[3]);
}

TEST(Zipf, HeadMassMatchesTheoryForTheta099) {
  // P(rank < k) = H_k(theta) / H_n(theta). Check the top-16 head mass of a
  // 64K keyspace against the exact harmonic sums within sampling noise.
  constexpr std::uint64_t kN = 1 << 16;
  constexpr double kTheta = 0.99;
  constexpr int kDraws = 200000;
  constexpr std::uint64_t kHead = 16;
  double h_head = 0.0, h_all = 0.0;
  for (std::uint64_t r = 1; r <= kN; ++r) {
    const double term = 1.0 / std::pow(static_cast<double>(r), kTheta);
    h_all += term;
    if (r <= kHead) h_head += term;
  }
  const double expected = h_head / h_all;
  Xoshiro256 g(12);
  ZipfGenerator zipf(kN, kTheta);
  int head_hits = 0;
  for (int i = 0; i < kDraws; ++i) head_hits += zipf.next(g) < kHead;
  const double observed = static_cast<double>(head_hits) / kDraws;
  // ~3% absolute tolerance: > 5 sigma for a Bernoulli(~0.37) at 200K draws.
  EXPECT_NEAR(observed, expected, 0.03);
  EXPECT_GT(observed, 0.2) << "theta=0.99 must concentrate mass on the head";
}

TEST(Zipf, DeterministicUnderFixedSeed) {
  ZipfGenerator zipf(1 << 12, 0.99);
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(zipf.next(a), zipf.next(b)) << "draw " << i;
  }
  // Two generator instances with identical parameters draw identically.
  ZipfGenerator other(1 << 12, 0.99);
  Xoshiro256 c(99);
  Xoshiro256 d(99);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(zipf.next(c), other.next(d));
}

TEST(Zipf, LowThetaIsNearlyUniform) {
  Xoshiro256 g(3);
  ZipfGenerator zipf(10, 0.01);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.next(g)];
  const auto [min_it, max_it] = std::minmax_element(counts.begin(),
                                                    counts.end());
  EXPECT_LT(*max_it, *min_it * 2) << "theta~0 should be near-uniform";
}

}  // namespace
}  // namespace pimds
