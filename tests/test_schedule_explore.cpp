// The deterministic schedule-exploration driver (check/explore.hpp): seed
// sweeps with bounded delay perturbation over the simulated PIM queue and
// the migration protocol, exact replay of a recorded failure, and the env
// plumbing CI uses for long sweeps (PIMDS_EXPLORE_*).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "check/explore.hpp"
#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"

namespace pimds {
namespace {

/// One PIM-queue trial: simulate at (engine seed, perturbation), record,
/// check, and return the violation text ("" = clean).
///
/// Dequeue-only against a large pre-fill, for the same reason as the
/// mutation smoke tests: the sweep's job is the segment HAND-OFF protocol
/// (the newDeqSeg rotation, which small segments trigger constantly), and a
/// dequeue-only history keeps the checker cheap under every perturbation —
/// with a fixed pre-fill the abstract state after k pops is unique no
/// matter which dequeuer did them, so verification and refutation both
/// collapse under memoization. Concurrent enqueues under perturbed
/// schedules make even PASSING histories exponentially expensive to verify
/// (every interleaving is a distinct queue state); mixed-workload checking
/// is covered at low contention in test_linearizability.cpp.
check::Trial queue_trial(sim::QueueFault fault) {
  return [fault](std::uint64_t seed,
                 const sim::Engine::Perturbation& perturb) -> std::string {
    sim::QueueConfig cfg;
    cfg.seed = seed;
    cfg.perturb = perturb;
    cfg.enqueuers = 0;
    cfg.dequeuers = 3;
    cfg.duration_ns = 150'000;
    cfg.initial_nodes = 1024;  // more than the run can drain
    check::HistoryRecorder recorder(cfg.enqueuers + cfg.dequeuers);
    cfg.recorder = &recorder;
    sim::PimQueueOptions opts;
    opts.segment_threshold = 16;
    opts.fault = fault;
    sim::run_pim_queue(cfg, opts);
    check::QueueSpec::State initial;
    for (std::size_t i = 0; i < cfg.initial_nodes; ++i)
      initial.items.push_back(i);
    return check::check_queue_history(recorder.collect(), std::move(initial))
        .error;
  };
}

/// One migration trial over the rebalancing skip-list.
check::Trial rebalance_trial(sim::RebalanceFault fault) {
  return [fault](std::uint64_t seed,
                 const sim::Engine::Perturbation& perturb) -> std::string {
    sim::RebalanceConfig cfg;
    cfg.seed = seed;
    cfg.perturb = perturb;
    cfg.num_cpus = 6;
    cfg.partitions = 4;
    cfg.key_range = 1 << 10;
    cfg.initial_size = 1 << 9;
    cfg.duration_ns = 1'500'000;
    cfg.migrate_chunk = 4;
    cfg.fault = fault;
    check::HistoryRecorder recorder(cfg.num_cpus + 1);
    cfg.recorder = &recorder;
    sim::run_pim_skiplist_rebalance(cfg);
    return check::check_set_history(recorder.collect()).error;
  };
}

/// One migration trial with the ACTIVE LoadMap policy driving migrations
/// instead of the scripted operator: every explored schedule must contain
/// at least one policy-triggered migration (a schedule with none exercises
/// nothing and is reported as a failure, so the sweep cannot silently
/// degenerate), keep the add/remove size accounting intact, and linearize.
check::Trial active_rebalance_trial(sim::RebalanceFault fault) {
  return [fault](std::uint64_t seed,
                 const sim::Engine::Perturbation& perturb) -> std::string {
    sim::RebalanceConfig cfg;
    cfg.seed = seed;
    cfg.perturb = perturb;
    cfg.num_cpus = 6;
    cfg.partitions = 4;
    cfg.key_range = 1 << 10;
    cfg.initial_size = 1 << 9;
    cfg.duration_ns = 2'000'000;
    cfg.migrate_chunk = 4;
    cfg.policy = sim::RebalancePolicy::kActiveLoadMap;
    cfg.policy_period_ns = 200'000;
    cfg.imbalance_enter = 1.2;
    cfg.cooldown_periods = 1;
    cfg.min_window_ops = 50;
    cfg.fault = fault;
    check::HistoryRecorder recorder(cfg.num_cpus + 1);
    cfg.recorder = &recorder;
    const auto r = sim::run_pim_skiplist_rebalance(cfg);
    if (r.migrations == 0) {
      return "no active migration fired: the schedule exercised nothing";
    }
    if (fault == sim::RebalanceFault::kNone && !r.size_consistent) {
      return "size accounting broke across active migrations";
    }
    return check::check_set_history(recorder.collect()).error;
  };
}

TEST(ScheduleExplore, CleanQueueSweepFindsNoViolation) {
  // Default: a short sweep suitable for every ctest run. CI's
  // schedule-explore job stretches it via PIMDS_EXPLORE_SEEDS=1000.
  check::ExploreConfig cfg;
  cfg.num_seeds = 8;
  cfg.perturbations_per_seed = 2;
  cfg = cfg.with_env_overrides();
  const auto result = check::explore(
      cfg, queue_trial(sim::QueueFault::kNone),
      "./tests/test_schedule_explore "
      "--gtest_filter=ScheduleExplore.CleanQueueSweepFindsNoViolation");
  EXPECT_TRUE(result.ok()) << result.report("(see test)");
  EXPECT_GE(result.runs, cfg.num_seeds);
}

TEST(ScheduleExplore, CleanMigrationSweepFindsNoViolation) {
  check::ExploreConfig cfg;
  cfg.num_seeds = 4;
  cfg.perturbations_per_seed = 1;
  cfg = cfg.with_env_overrides();
  const auto result = check::explore(
      cfg, rebalance_trial(sim::RebalanceFault::kNone),
      "./tests/test_schedule_explore "
      "--gtest_filter=ScheduleExplore.CleanMigrationSweepFindsNoViolation");
  EXPECT_TRUE(result.ok()) << result.report("(see test)");
}

TEST(ScheduleExplore, ActiveRebalanceSweepLinearizesWithLiveMigrations) {
  // Adversarial coverage for the CLOSED control loop: perturbed schedules,
  // policy-chosen split keys, and the trial itself enforces that every
  // schedule contains a live migration. CI stretches this to 1000 seeds
  // via PIMDS_EXPLORE_SEEDS (>= 200 is the acceptance floor).
  check::ExploreConfig cfg;
  cfg.num_seeds = 6;
  cfg.perturbations_per_seed = 2;
  cfg = cfg.with_env_overrides();
  const auto result = check::explore(
      cfg, active_rebalance_trial(sim::RebalanceFault::kNone),
      "./tests/test_schedule_explore "
      "--gtest_filter="
      "ScheduleExplore.ActiveRebalanceSweepLinearizesWithLiveMigrations");
  EXPECT_TRUE(result.ok()) << result.report("(see test)");
  EXPECT_GE(result.runs, cfg.num_seeds);
}

TEST(ScheduleExplore, ActiveRebalanceSweepCatchesDirectoryBeforeGrant) {
  // The ownership-gate mutation must surface under the ACTIVE policy's
  // perturbed sweep too — and replay bit-exactly from the recorded pair,
  // same as the queue fault below.
  check::ExploreConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = 8;
  cfg.perturbations_per_seed = 1;
  cfg.max_failures = 1;
  const auto trial =
      active_rebalance_trial(sim::RebalanceFault::kDirectoryBeforeGrant);
  const auto result = check::explore(cfg, trial, "replay-hint");
  ASSERT_FALSE(result.ok())
      << "directory-before-grant must be flagged within 8 seeds";
  const check::ExploreFailure& f = result.failures.front();
  EXPECT_FALSE(f.error.empty());
  sim::Engine::Perturbation perturb = cfg.perturb;
  perturb.seed = f.perturb_seed;
  EXPECT_EQ(trial(f.seed, perturb), f.error);
}

TEST(ScheduleExplore, FaultySweepFindsAFailureAndReplaysItExactly) {
  // A seeded protocol bug must (a) surface somewhere in a small sweep and
  // (b) reproduce bit-exactly from the recorded (seed, perturb_seed) pair —
  // the property the whole replay workflow rests on.
  check::ExploreConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = 6;
  cfg.perturbations_per_seed = 1;
  cfg.max_failures = 1;
  const auto trial = queue_trial(sim::QueueFault::kDoubleServe);
  const auto result = check::explore(cfg, trial, "replay-hint");
  ASSERT_FALSE(result.ok())
      << "an injected double-serve must fail within 6 seeds";
  const check::ExploreFailure& f = result.failures.front();
  EXPECT_FALSE(f.error.empty());

  // Replay: same pair -> identical violation text, run after run.
  sim::Engine::Perturbation perturb = cfg.perturb;
  perturb.seed = f.perturb_seed;
  EXPECT_EQ(trial(f.seed, perturb), f.error);
  EXPECT_EQ(trial(f.seed, perturb), f.error);

  // The report carries a paste-able replay command for the pair.
  const std::string report = result.report("replay-hint");
  EXPECT_NE(report.find("PIMDS_EXPLORE_FIRST_SEED=" +
                        std::to_string(f.seed)),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("PIMDS_EXPLORE_PERTURB_SEED=" +
                        std::to_string(f.perturb_seed)),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("replay-hint"), std::string::npos) << report;
}

TEST(ScheduleExplore, PerturbedRunsAreDeterministicPerPair) {
  // The perturbation changes the interleaving but never the determinism:
  // one (seed, perturb_seed) pair is one exact schedule.
  sim::RebalanceConfig cfg;
  cfg.seed = 7;
  cfg.num_cpus = 6;
  cfg.key_range = 1 << 10;
  cfg.initial_size = 1 << 9;
  cfg.duration_ns = 1'500'000;
  cfg.migrate_chunk = 4;
  cfg.perturb.seed = 42;
  const auto a = sim::run_pim_skiplist_rebalance(cfg);
  const auto b = sim::run_pim_skiplist_rebalance(cfg);
  EXPECT_EQ(a.before.total_ops, b.before.total_ops);
  EXPECT_EQ(a.after.total_ops, b.after.total_ops);
  EXPECT_EQ(a.migrated_keys, b.migrated_keys);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_TRUE(a.size_consistent)
      << "perturbation must not break the protocol itself";
}

TEST(ScheduleExplore, EnvOverridesDriveSweepBoundsAndReplay) {
  const auto save = [](const char* name) -> std::string {
    const char* v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  const std::string old_seeds = save("PIMDS_EXPLORE_SEEDS");
  const std::string old_first = save("PIMDS_EXPLORE_FIRST_SEED");
  const std::string old_perturbs = save("PIMDS_EXPLORE_PERTURBS");
  const std::string old_forced = save("PIMDS_EXPLORE_PERTURB_SEED");

  ::setenv("PIMDS_EXPLORE_SEEDS", "3", 1);
  ::setenv("PIMDS_EXPLORE_FIRST_SEED", "17", 1);
  ::setenv("PIMDS_EXPLORE_PERTURBS", "0", 1);
  ::setenv("PIMDS_EXPLORE_PERTURB_SEED", "99", 1);

  const check::ExploreConfig cfg = check::ExploreConfig{}.with_env_overrides();
  EXPECT_EQ(cfg.num_seeds, 3u);
  EXPECT_EQ(cfg.first_seed, 17u);
  EXPECT_EQ(cfg.perturbations_per_seed, 0u);
  EXPECT_EQ(check::ExploreConfig::forced_perturb_seed(), 99u);
  EXPECT_EQ(check::replay_command("./t", 17, 99),
            "PIMDS_EXPLORE_FIRST_SEED=17 PIMDS_EXPLORE_SEEDS=1 "
            "PIMDS_EXPLORE_PERTURB_SEED=99 ./t");

  const auto restore = [](const char* name, const std::string& value) {
    if (value.empty()) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value.c_str(), 1);
    }
  };
  restore("PIMDS_EXPLORE_SEEDS", old_seeds);
  restore("PIMDS_EXPLORE_FIRST_SEED", old_first);
  restore("PIMDS_EXPLORE_PERTURBS", old_perturbs);
  restore("PIMDS_EXPLORE_PERTURB_SEED", old_forced);
}

}  // namespace
}  // namespace pimds
