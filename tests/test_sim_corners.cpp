// Corner-case tests for simulator primitives not covered elsewhere:
// SimCasLine semantics, multi-sender mailbox ordering, workload mix
// distribution, and the set-size equilibrium assumption the experiments
// rely on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/ds/linked_lists.hpp"
#include "sim/engine.hpp"
#include "sim/flat_combining.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"
#include "sim/workload.hpp"
#include "sim_test_util.hpp"

namespace pimds::sim {
namespace {

TEST(SimCasLine, UncontendedCasAlwaysSucceeds) {
  Engine engine;
  int successes = 0;
  engine.spawn("solo", [&](Context& ctx) {
    SimCasLine line;
    for (int i = 0; i < 10; ++i) {
      const auto token = line.read(ctx);
      ctx.advance(50);
      if (line.compare_and_swap(ctx, token)) ++successes;
    }
  });
  engine.run();
  EXPECT_EQ(successes, 10);
}

TEST(SimCasLine, ConcurrentCasesFailAgainstWinners) {
  Engine engine;
  SimCasLine line;
  int successes = 0;
  int failures = 0;
  for (int t = 0; t < 8; ++t) {
    engine.spawn("t", [&](Context& ctx) {
      // All read "simultaneously", then all try to CAS: exactly one can
      // win the first round.
      const auto token = line.read(ctx);
      ctx.advance(100);
      if (line.compare_and_swap(ctx, token)) {
        ++successes;
      } else {
        ++failures;
      }
    });
  }
  engine.run();
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(failures, 7);
}

TEST(SimMailbox, InterleavesManySendersWithoutLoss) {
  Engine engine;
  Mailbox<int> box;
  constexpr int kSenders = 6;
  constexpr int kEach = 200;
  std::vector<int> last_per_sender(kSenders, -1);
  int received = 0;
  bool fifo_ok = true;
  engine.spawn("receiver", [&](Context& ctx) {
    for (int i = 0; i < kSenders * kEach; ++i) {
      const int msg = box.recv(ctx);
      const int sender = msg / 1000;
      const int seq = msg % 1000;
      if (seq <= last_per_sender[sender]) fifo_ok = false;
      last_per_sender[sender] = seq;
      ++received;
    }
  });
  for (int s = 0; s < kSenders; ++s) {
    engine.spawn("sender", [&, s](Context& ctx) {
      for (int i = 0; i < kEach; ++i) {
        box.send(ctx, s * 1000 + i);
        ctx.advance(ctx.rng().next_below(50));
      }
    });
  }
  engine.run();
  EXPECT_EQ(received, kSenders * kEach);
  EXPECT_TRUE(fifo_ok) << "per-sender FIFO violated in the sim mailbox";
}

TEST(Workload, MixFractionsAreRespected) {
  Xoshiro256 rng(12);
  SetOpMix mix{0.2, 0.5};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 60000; ++i) {
    ++counts[static_cast<int>(pick_op(rng, mix))];
  }
  EXPECT_NEAR(counts[0], 12000, 600);  // add
  EXPECT_NEAR(counts[1], 30000, 800);  // remove
  EXPECT_NEAR(counts[2], 18000, 700);  // contains
}

TEST(Equilibrium, BalancedMixKeepsSetNearHalfTheKeyRange) {
  // The experiments size sets at key_range/2 because balanced add/remove on
  // uniform keys converges there; verify the fixed point is actually
  // attracting from both sides.
  const test::SimSeed seed;
  for (std::size_t initial : {100u, 400u, 700u}) {
    ListConfig cfg;
    cfg.seed = seed;
    cfg.num_cpus = 4;
    cfg.key_range = 800;
    cfg.initial_size = initial;
    cfg.duration_ns = 400'000'000;  // long run so the size can drift
    // Use the fastest list so many operations happen.
    Engine engine(cfg.params, cfg.seed);
    SimList list;
    Xoshiro256 setup(cfg.seed);
    list.populate(setup, cfg.initial_size, cfg.key_range);
    engine.spawn("driver", [&](Context& ctx) {
      for (int i = 0; i < 60000; ++i) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        list.execute(ctx, op, ctx.rng().next_in(1, cfg.key_range),
                     MemClass::kLlc);
      }
    });
    engine.run();
    EXPECT_NEAR(static_cast<double>(list.size()), 400.0, 60.0)
        << "initial size " << initial;
  }
}

TEST(SimFlatCombinerHarness, ServesEveryRequestExactlyOnce) {
  Engine engine;
  SimFlatCombiner<int, int> fc;
  std::uint64_t sum = 0;
  std::uint64_t expected = 0;
  for (int t = 0; t < 6; ++t) {
    engine.spawn("t", [&, t](Context& ctx) {
      for (int i = 1; i <= 300; ++i) {
        const int req = t * 1000 + i;
        const int res = fc.submit(
            ctx, req, [&](Context& cctx, auto& batch) {
              cctx.charge(MemClass::kLlc, batch.size());
              for (auto& p : batch) {
                sum += static_cast<std::uint64_t>(p.request);
                p.slot->set(cctx, p.request);
              }
            });
        if (res != req) ADD_FAILURE() << "wrong result routed";
        ctx.advance(ctx.rng().next_below(100));
      }
    });
  }
  for (int t = 0; t < 6; ++t) {
    for (int i = 1; i <= 300; ++i) {
      expected += static_cast<std::uint64_t>(t * 1000 + i);
    }
  }
  engine.run();
  EXPECT_EQ(sum, expected);
  EXPECT_EQ(fc.pending_count(), 0u);
}

}  // namespace
}  // namespace pimds::sim
