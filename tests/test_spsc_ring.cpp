// Tests for the per-sender mailbox lane transport: the Lamport SPSC ring
// (common/spsc_ring.hpp) in isolation — FIFO order, wraparound at
// capacity, full-ring backpressure, batch consume — and the lane-based
// Mailbox built on it: lane claiming, overflow fallback, per-lane metrics,
// and a TSan-targeted multi-lane drain stress.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/spsc_ring.hpp"
#include "runtime/mailbox.hpp"

namespace pimds {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
}

TEST(SpscRing, SingleProducerFifoOrder) {
  SpscRing<std::uint64_t> ring(64);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(ring.try_push(i));
  for (std::uint64_t i = 0; i < 50; ++i) {
    std::optional<std::uint64_t> v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundAtCapacityManyTimes) {
  SpscRing<std::uint64_t> ring(4);  // indices wrap every 4 operations
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 500; ++round) {
    // Fill and drain in bursts of 3 (non-divisor of 4), so the head/tail
    // indices land on every slot alignment over the run.
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(next_in++));
    for (int i = 0; i < 3; ++i) {
      std::optional<std::uint64_t> v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRefusesPushUntilPopped) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "push past capacity must backpressure";
  EXPECT_FALSE(ring.try_push(99)) << "cached-index refresh must not admit";
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(4)) << "one pop frees exactly one slot";
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRing, ConsumeBatchesAndRespectsCap) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.try_push(i));
  std::vector<int> out;
  auto sink = [&](int&& v) { out.push_back(v); };
  EXPECT_EQ(ring.consume(sink, 4), 4u);
  EXPECT_EQ(ring.consume(sink, 100), 6u);
  EXPECT_EQ(ring.consume(sink, 4), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, CrossThreadFifoUnderLoad) {
  SpscRing<std::uint64_t> ring(8);  // tiny: forces constant wraparound
  constexpr std::uint64_t kItems = 50'000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    if (std::optional<std::uint64_t> v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();  // single-core host: let the producer run
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- Lane-level behavior of the Mailbox built on SpscRing ---

using runtime::Mailbox;
using runtime::Message;

TEST(MailboxLanes, EachSenderThreadClaimsItsOwnLane) {
  Mailbox box(64);
  constexpr int kSenders = 4;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      Message m;
      m.sender = static_cast<std::uint32_t>(s);
      box.send(m);
    });
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(box.active_lanes(), static_cast<std::size_t>(kSenders));
  EXPECT_EQ(box.overflow_sends(), 0u);
  std::vector<Message> batch;
  EXPECT_EQ(box.drain_all(batch), static_cast<std::size_t>(kSenders));
  EXPECT_TRUE(box.empty());
}

TEST(MailboxLanes, OverflowRingAbsorbsSendersBeyondLaneSupply) {
  Mailbox box(64, /*max_lanes=*/2);
  constexpr int kSenders = 5;
  constexpr int kPerSender = 10;
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.sender = static_cast<std::uint32_t>(s);
        m.value = static_cast<std::uint64_t>(i);
        box.send(m);
      }
    });
  }
  for (auto& t : senders) t.join();
  EXPECT_EQ(box.active_lanes(), 2u);
  EXPECT_GT(box.overflow_sends(), 0u)
      << "lane-table saturation must be visible in stats";
  std::vector<Message> batch;
  std::size_t total = 0;
  while (std::size_t n = box.drain(batch, 16)) total += n;
  EXPECT_EQ(total, static_cast<std::size_t>(kSenders * kPerSender));
  // Per-sender FIFO still holds on both the lane and the overflow paths.
  std::vector<std::int64_t> last(kSenders, -1);
  for (const Message& m : batch) {
    EXPECT_GT(static_cast<std::int64_t>(m.value), last[m.sender]);
    last[m.sender] = static_cast<std::int64_t>(m.value);
  }
}

TEST(MailboxLanes, RoundRobinSweepIsFairAcrossChattySenders) {
  // One sender floods, three trickle; a bounded per-lane chunk means the
  // first drain batch must interleave lanes instead of exhausting the
  // flooder first.
  Mailbox box(256);
  std::vector<std::thread> senders;
  for (int s = 0; s < 4; ++s) {
    senders.emplace_back([&, s] {
      const int count = s == 0 ? 64 : 4;
      for (int i = 0; i < count; ++i) {
        Message m;
        m.sender = static_cast<std::uint32_t>(s);
        box.send(m);
      }
    });
  }
  for (auto& t : senders) t.join();
  std::vector<Message> batch;
  ASSERT_EQ(box.drain(batch, 32), 32u);
  bool saw_trickler = false;
  for (const Message& m : batch) saw_trickler |= m.sender != 0;
  EXPECT_TRUE(saw_trickler)
      << "a chatty lane starved the others out of a full drain batch";
}

TEST(MailboxLanes, MultiLaneDrainStress) {
  // TSan target: concurrent per-lane pushes racing the receiver's sweep,
  // with per-sender FIFO checked on every message.
  Mailbox box(128);
  constexpr int kSenders = 6;
  constexpr int kPerSender = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerSender; ++i) {
        Message m;
        m.sender = static_cast<std::uint32_t>(s);
        m.value = static_cast<std::uint64_t>(i);
        box.send(m);
      }
    });
  }
  go.store(true, std::memory_order_release);
  std::vector<Message> batch;
  std::vector<std::int64_t> last(kSenders, -1);
  std::size_t received = 0;
  while (received < static_cast<std::size_t>(kSenders) * kPerSender) {
    batch.clear();
    const std::size_t n = box.drain(batch, 64);
    for (std::size_t i = 0; i < n; ++i) {
      const Message& m = batch[i];
      ASSERT_GT(static_cast<std::int64_t>(m.value), last[m.sender])
          << "per-sender FIFO violated under multi-lane stress";
      last[m.sender] = static_cast<std::int64_t>(m.value);
    }
    received += n;
  }
  for (auto& t : senders) t.join();
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.active_lanes(), static_cast<std::size_t>(kSenders));
}

}  // namespace
}  // namespace pimds
