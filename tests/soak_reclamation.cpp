// Churn/soak driver for the reclamation seam: sustained insert/delete
// churn over every lock-free baseline while a rotating "parked reader"
// periodically stalls inside a guard — the exact workload that makes
// unbounded-garbage bugs (and the EBR stalled-reader pathology) visible.
//
// Assertions, checked continuously and at exit:
//   - bounded RSS: resident-set growth over the run stays under a ceiling
//     (a reclamation leak grows RSS linearly with churn);
//   - bounded retire backlog: each domain's in_flight count returns below
//     a threshold once stalls clear and flush() runs.
//
// Hours-capable but minutes-default:
//   soak_reclamation [--seconds N] [--policy ebr|hp|both]
//                    [--rss-ceiling-mb M] [--threads T]
// The ctest registration runs a short smoke (--seconds 2 per policy); CI's
// soak job runs it under ASan/LSan; nightly/manual runs pass larger
// --seconds. Exit code 0 = all assertions held.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "baselines/faa_queue.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "baselines/ms_queue.hpp"
#include "common/reclaim.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace {

using namespace pimds;
using namespace pimds::baselines;

int g_failures = 0;

#define SOAK_CHECK(cond, ...)                          \
  do {                                                 \
    if (!(cond)) {                                     \
      std::fprintf(stderr, "SOAK FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, " [%s]\n", #cond);          \
      ++g_failures;                                    \
    }                                                  \
  } while (0)

/// Resident set size in bytes via /proc/self/statm (0 if unreadable, e.g.
/// on non-Linux hosts — the RSS assertion is then skipped).
std::size_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long rss_pages = 0;
  const int got = std::fscanf(f, "%lu %lu", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
}

struct SoakConfig {
  double seconds = 120.0;  // minutes-default; ctest/CI pass a short value
  std::string policy = "both";
  std::size_t rss_ceiling_mb = 256;  // growth allowance over the baseline
  unsigned threads = 4;
};

/// One churn phase over one structure instance: `threads` workers mutate
/// under a mixed workload while one extra thread repeatedly parks inside a
/// guard for ~10ms at a time (the reclamation stall generator).
template <typename MakeStructure, typename Op>
void churn_phase(const char* what, ReclaimPolicy policy, double seconds,
                 unsigned threads, MakeStructure make, Op op) {
  auto structure = make(policy);
  Reclaimer& reclaimer = structure->reclaimer();
  std::atomic<bool> stop{false};
  std::atomic<bool> drain{false};
  std::atomic<unsigned> churning{threads};
  std::atomic<std::uint64_t> total_ops{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x50ac ^ (t * 0x9e37u));
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        op(*structure, rng);
        ++n;
      }
      total_ops.fetch_add(n, std::memory_order_relaxed);
      churning.fetch_sub(1, std::memory_order_release);
      // Retire lists (EBR limbo / HP retire buffers) are per-thread, so
      // each worker drains its own backlog — this is the "backlog returns
      // to bounded once the stall clears" check. The flush must wait until
      // the parker is gone (drain flag) AND every sibling has left its
      // final op's guard, or an EBR advance would stall on a still-pinned
      // reader and silently skip the drain.
      while (!drain.load(std::memory_order_acquire) ||
             churning.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
      }
      reclaimer.flush();
    });
  }
  // Stall generator: parks a guard, holds it, releases, repeats. Under EBR
  // this forces epoch stalls; under HP it must NOT unbound the backlog.
  std::thread parker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      {
        ReclaimGuard guard(reclaimer);
        const std::uint64_t t0 = now_ns();
        while (now_ns() - t0 < 10'000'000 &&
               !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const std::uint64_t t0 = now_ns();
  std::uint64_t max_in_flight = 0;
  while (static_cast<double>(now_ns() - t0) * 1e-9 < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const ReclaimStats s = reclaimer.stats();
    if (s.in_flight > max_in_flight) max_in_flight = s.in_flight;
  }
  stop.store(true);
  parker.join();  // the stall source must be gone before workers drain
  drain.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  // Every mutator flushed its own backlog with no guard pinned anywhere:
  // nothing proportional to the churn volume may remain in flight. The
  // small slack covers retire-vs-free counter tearing while flushes raced.
  const ReclaimStats s = reclaimer.stats();
  const std::uint64_t backlog_bound = 64 * (threads + 2);
  SOAK_CHECK(s.in_flight <= backlog_bound,
             "%s/%s: retire backlog %llu exceeds bound %llu after quiesce",
             what, to_string(policy),
             static_cast<unsigned long long>(s.in_flight),
             static_cast<unsigned long long>(backlog_bound));
  SOAK_CHECK(s.freed <= s.retired, "%s/%s: freed %llu > retired %llu", what,
             to_string(policy), static_cast<unsigned long long>(s.freed),
             static_cast<unsigned long long>(s.retired));
  std::printf(
      "  %-22s %-3s  %8.2f Mops  retired %10llu  freed %10llu  "
      "in-flight %6llu (peak %8llu)  stalls %llu\n",
      what, to_string(policy),
      static_cast<double>(total_ops.load()) / seconds * 1e-6,
      static_cast<unsigned long long>(s.retired),
      static_cast<unsigned long long>(s.freed),
      static_cast<unsigned long long>(s.in_flight),
      static_cast<unsigned long long>(max_in_flight),
      static_cast<unsigned long long>(s.stalls));
}

void run_policy(ReclaimPolicy policy, const SoakConfig& cfg) {
  // Four structures share the time budget; each phase gets its own
  // instance so teardown (reclaim_all) is exercised every cycle.
  const double per = cfg.seconds / 4.0;
  std::printf("policy %s (%.1fs per structure, %u churn threads + parker):\n",
              to_string(policy), per, cfg.threads);

  churn_phase(
      "lazy_list", policy, per, cfg.threads,
      [](ReclaimPolicy p) { return std::make_unique<LazyList>(p); },
      [](LazyList& l, Xoshiro256& rng) {
        const std::uint64_t key = rng.next_in(1, 512);
        switch (rng.next_below(3)) {
          case 0: l.add(key); break;
          case 1: l.remove(key); break;
          default: l.contains(key);
        }
      });
  churn_phase(
      "lockfree_skiplist", policy, per, cfg.threads,
      [](ReclaimPolicy p) { return std::make_unique<LockFreeSkipList>(p); },
      [](LockFreeSkipList& l, Xoshiro256& rng) {
        const std::uint64_t key = rng.next_in(1, 4096);
        switch (rng.next_below(3)) {
          case 0: l.add(key); break;
          case 1: l.remove(key); break;
          default: l.contains(key);
        }
      });
  churn_phase(
      "ms_queue", policy, per, cfg.threads,
      [](ReclaimPolicy p) { return std::make_unique<MsQueue>(p); },
      [](MsQueue& q, Xoshiro256& rng) {
        if (rng.next_bool(0.5)) {
          q.enqueue(rng.next() >> 2);
        } else {
          q.dequeue();
        }
      });
  churn_phase(
      "faa_queue", policy, per, cfg.threads,
      [](ReclaimPolicy p) { return std::make_unique<FaaQueue>(p); },
      [](FaaQueue& q, Xoshiro256& rng) {
        if (rng.next_bool(0.5)) {
          q.enqueue(rng.next() >> 2);
        } else {
          q.dequeue();
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--seconds") == 0) {
      if (const char* v = next()) cfg.seconds = std::atof(v);
    } else if (std::strcmp(arg, "--policy") == 0) {
      if (const char* v = next()) cfg.policy = v;
    } else if (std::strcmp(arg, "--rss-ceiling-mb") == 0) {
      if (const char* v = next()) {
        cfg.rss_ceiling_mb = static_cast<std::size_t>(std::atoll(v));
      }
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (const char* v = next()) {
        cfg.threads = static_cast<unsigned>(std::atoi(v));
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seconds N] [--policy ebr|hp|both]\n"
                   "          [--rss-ceiling-mb M] [--threads T]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cfg.policy != "ebr" && cfg.policy != "hp" && cfg.policy != "both") {
    std::fprintf(stderr, "--policy must be ebr, hp, or both\n");
    return 2;
  }
  std::printf("soak_reclamation: %.1fs total per policy, policy=%s, "
              "rss ceiling +%zu MB\n",
              cfg.seconds, cfg.policy.c_str(), cfg.rss_ceiling_mb);

  // RSS baseline after a warm-up churn burst, so allocator warm-up and
  // thread stacks don't count against the ceiling.
  {
    SoakConfig warm = cfg;
    warm.seconds = 0.2;
    run_policy(ReclaimPolicy::kEbr, warm);
  }
  const std::size_t rss_before = rss_bytes();

  if (cfg.policy != "hp") run_policy(ReclaimPolicy::kEbr, cfg);
  if (cfg.policy != "ebr") run_policy(ReclaimPolicy::kHp, cfg);

  const std::size_t rss_after = rss_bytes();
  if (rss_before != 0 && rss_after != 0) {
    const std::size_t growth =
        rss_after > rss_before ? rss_after - rss_before : 0;
    std::printf("RSS: %.1f MB -> %.1f MB (growth %.1f MB, ceiling %zu MB)\n",
                rss_before / 1048576.0, rss_after / 1048576.0,
                growth / 1048576.0, cfg.rss_ceiling_mb);
    SOAK_CHECK(growth <= cfg.rss_ceiling_mb * 1048576u,
               "RSS grew %.1f MB over the run (ceiling %zu MB) — "
               "reclamation is leaking under churn",
               growth / 1048576.0, cfg.rss_ceiling_mb);
  } else {
    std::printf("RSS: /proc/self/statm unavailable; RSS assertion skipped\n");
  }

  if (g_failures == 0) {
    std::printf("soak_reclamation: PASS\n");
    return 0;
  }
  std::fprintf(stderr, "soak_reclamation: %d assertion(s) failed\n",
               g_failures);
  return 1;
}
