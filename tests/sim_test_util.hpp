// Shared helpers for simulator-based tests: engine-seed override and
// failure-replay reporting.
//
// Every sim test derives its engine seed through SimSeed. On any assertion
// failure inside the test, gtest prints the attached trace note, which names
// the seed and the exact command that replays the run bit-for-bit:
//
//   PIMDS_SIM_SEED=<seed> ./tests/<binary> --gtest_filter=<Suite>.<Test>
//
// The env override feeds the reported seed back in, so a failure seen once
// (in CI, on another machine) reproduces exactly — the simulator is
// deterministic per seed.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace pimds::test {

/// Engine seed for a sim test: `fallback` unless PIMDS_SIM_SEED is set.
inline std::uint64_t sim_seed(std::uint64_t fallback) {
  const char* env = std::getenv("PIMDS_SIM_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// The replay note attached to failures (public so tests can print it).
inline std::string seed_note(std::uint64_t seed) {
  std::string name = "<test>";
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    name = std::string(info->test_suite_name()) + "." + info->name();
  }
  return "engine seed = " + std::to_string(seed) +
         "; replay exactly with: PIMDS_SIM_SEED=" + std::to_string(seed) +
         " ./tests/<this test binary> --gtest_filter=" + name;
}

/// Resolves the seed (env override wins) and attaches the replay note to
/// every assertion failure in the enclosing scope. Use at the top of a test:
///
///   const test::SimSeed seed(cfg.seed);
///   cfg.seed = seed;
class SimSeed {
 public:
  explicit SimSeed(std::uint64_t fallback = 1)
      : seed_(sim_seed(fallback)), trace_(__FILE__, __LINE__, seed_note(seed_)) {}

  operator std::uint64_t() const noexcept { return seed_; }  // NOLINT
  std::uint64_t value() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  ::testing::ScopedTrace trace_;
};

}  // namespace pimds::test
