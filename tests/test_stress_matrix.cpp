// Parameterized stress matrix: every real concurrent set structure in the
// library, swept over thread counts and key-range densities, checked with
// the disjoint-range oracle (exact per-thread sequential semantics under
// full concurrency) and global accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/fc_structures.hpp"
#include "baselines/hoh_list.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "common/rng.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"
#include "sim_test_util.hpp"

namespace pimds {
namespace {

struct MatrixParam {
  std::string structure;
  int threads;
  std::uint64_t keys_per_thread;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  return info.param.structure + "_t" + std::to_string(info.param.threads) +
         "_k" + std::to_string(info.param.keys_per_thread);
}

/// Abstract set handle so one test body drives every structure.
struct AnySet {
  std::function<bool(std::uint64_t)> add;
  std::function<bool(std::uint64_t)> remove;
  std::function<bool(std::uint64_t)> contains;
  std::function<void()> teardown = [] {};
};

AnySet make_set(const std::string& name) {
  if (name == "hoh") {
    auto s = std::make_shared<baselines::HohList>();
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); }};
  }
  if (name == "lazy") {
    auto s = std::make_shared<baselines::LazyList>();
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); }};
  }
  if (name == "lockfree") {
    auto s = std::make_shared<baselines::LockFreeSkipList>();
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); }};
  }
  if (name == "fclist") {
    auto s = std::make_shared<baselines::FcLinkedList>(true);
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); }};
  }
  if (name == "fcskip") {
    auto s = std::make_shared<baselines::FcSkipList>(1u << 20, 4);
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); }};
  }
  if (name == "pimlist") {
    auto system = std::make_shared<runtime::PimSystem>(
        runtime::PimSystem::Config{1, 8u << 20, 4096, {}, false});
    auto s = std::make_shared<core::PimLinkedList>(*system);
    system->start();
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); },
            [system, s] { system->stop(); }};
  }
  if (name == "pimskip") {
    auto system = std::make_shared<runtime::PimSystem>(
        runtime::PimSystem::Config{4, 8u << 20, 4096, {}, false});
    core::PimSkipList::Options options;
    options.key_max = 1u << 20;
    auto s = std::make_shared<core::PimSkipList>(*system, options);
    system->start();
    return {[s](std::uint64_t k) { return s->add(k); },
            [s](std::uint64_t k) { return s->remove(k); },
            [s](std::uint64_t k) { return s->contains(k); },
            [system, s] { system->stop(); }};
  }
  ADD_FAILURE() << "unknown structure " << name;
  return {};
}

class StressMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StressMatrix, DisjointRangesMatchSequentialOracles) {
  const MatrixParam param = GetParam();
  // Real threads: interleavings are not replayable, but the workload stream
  // is — the seed note lets a failing matrix cell rerun the same key mix.
  const test::SimSeed seed(1000);
  AnySet set = make_set(param.structure);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < param.threads; ++t) {
    workers.emplace_back([&, t] {
      const std::uint64_t base = 1 + static_cast<std::uint64_t>(t) * 100000;
      std::set<std::uint64_t> oracle;
      Xoshiro256 rng(seed.value() + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 2500; ++i) {
        const std::uint64_t key = base + rng.next_below(param.keys_per_thread);
        bool got = false;
        bool want = false;
        switch (rng.next_below(3)) {
          case 0:
            got = set.add(key);
            want = oracle.insert(key).second;
            break;
          case 1:
            got = set.remove(key);
            want = oracle.erase(key) > 0;
            break;
          default:
            got = set.contains(key);
            want = oracle.count(key) > 0;
        }
        if (got != want) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  set.teardown();
  EXPECT_EQ(failures.load(), 0);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> params;
  for (const char* structure :
       {"hoh", "lazy", "lockfree", "fclist", "fcskip", "pimlist",
        "pimskip"}) {
    for (int threads : {1, 2, 4}) {
      // Dense (small range: heavy key reuse) and sparse regimes.
      params.push_back({structure, threads, 50});
      params.push_back({structure, threads, 5000});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllStructures, StressMatrix,
                         ::testing::ValuesIn(matrix()), param_name);

}  // namespace
}  // namespace pimds
