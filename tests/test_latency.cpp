// Tests for the tail-latency observability plane: interpolated histogram
// percentiles (edge cases + error bound), the windowed-max midpoint
// estimate in diff_snapshots, the coordinated-omission-free LatencyRecorder
// (including a stalled injector), per-phase tail attribution, the M/D/1 /
// M/M/1 closed forms, and the telemetry `latency` block.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "model/latency_model.hpp"
#include "obs/obs.hpp"

namespace pimds {
namespace {

using obs::Histogram;
using obs::HistogramData;

// ---------------------------------------------------------------------------
// percentile_interpolated edge cases.

TEST(InterpolatedPercentile, EmptyHistogramIsZero) {
  HistogramData d;
  EXPECT_EQ(d.percentile_interpolated(0.0), 0.0);
  EXPECT_EQ(d.percentile_interpolated(0.5), 0.0);
  EXPECT_EQ(d.percentile_interpolated(0.999), 0.0);
}

TEST(InterpolatedPercentile, SingleSampleIsExact) {
  // One sample: every quantile IS the sample, recovered exactly from `sum`
  // even when the bucket is wide.
  Histogram h;
  h.record(123457);  // lands in a wide bucket (width ~ 25%)
  const HistogramData d = h.data();
  EXPECT_EQ(d.percentile_interpolated(0.5), 123457.0);
  EXPECT_EQ(d.percentile_interpolated(0.99), 123457.0);
}

TEST(InterpolatedPercentile, UnitBucketsAreExact) {
  // Values below kSub get exact unit buckets; the interpolated estimate
  // must land inside [lower, upper) of the right unit bucket.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(i % 4);  // values 0..3, 25 each
  const HistogramData d = h.data();
  // Ranks 0..24 hold value 0, 25..49 value 1, etc. The interpolated result
  // is continuous, so just pin the integer part.
  EXPECT_EQ(std::floor(d.percentile_interpolated(0.1)), 0.0);
  EXPECT_EQ(std::floor(d.percentile_interpolated(0.30)), 1.0);
  EXPECT_EQ(std::floor(d.percentile_interpolated(0.60)), 2.0);
  EXPECT_EQ(std::floor(d.percentile_interpolated(0.90)), 3.0);
}

TEST(InterpolatedPercentile, ExactBucketBoundarySamples) {
  // Samples exactly on bucket lower bounds: the estimate for a quantile
  // inside one bucket's population must stay inside that bucket's range.
  Histogram h;
  const unsigned idx = Histogram::bucket_index(1 << 10);
  for (int i = 0; i < 1000; ++i) h.record(1 << 10);
  const HistogramData d = h.data();
  const double p50 = d.percentile_interpolated(0.5);
  EXPECT_GE(p50, static_cast<double>(Histogram::bucket_lower(idx)));
  EXPECT_LT(p50, static_cast<double>(Histogram::bucket_upper(idx)));
  // All samples equal => estimate within the 12.5% relative bound.
  EXPECT_NEAR(p50, 1024.0, 1024.0 * 0.125);
}

TEST(InterpolatedPercentile, ClampsToRecordedMax) {
  // A quantile landing in the top occupied bucket must not exceed the
  // recorded max even though the bucket extends past it.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(100);
  h.record(1'000'000);  // max, alone in a wide bucket
  const HistogramData d = h.data();
  EXPECT_LE(d.percentile_interpolated(0.999), 1'000'000.0);
  EXPECT_GT(d.percentile_interpolated(0.999), 100.0);
}

TEST(InterpolatedPercentile, ErrorBoundHolds) {
  // Uniform ramp: the interpolated estimate must be within 12.5% of the
  // true sample quantile everywhere (half the plain-midpoint bound).
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 1000; v < 2000; ++v) {
    h.record(v);
    samples.push_back(v);
  }
  const HistogramData d = h.data();
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double truth = static_cast<double>(
        samples[static_cast<std::size_t>(q * (samples.size() - 1))]);
    EXPECT_NEAR(d.percentile_interpolated(q), truth, truth * 0.125)
        << "q=" << q;
  }
}

TEST(InterpolatedPercentile, NoWorseThanMidpointOnRamp) {
  // Interpolation should beat (or match) the midpoint estimate on average.
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 10'000; v < 30'000; v += 7) {
    h.record(v);
    samples.push_back(v);
  }
  const HistogramData d = h.data();
  double err_interp = 0.0, err_mid = 0.0;
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double truth = static_cast<double>(
        samples[static_cast<std::size_t>(q * (samples.size() - 1))]);
    err_interp += std::abs(d.percentile_interpolated(q) - truth);
    err_mid += std::abs(d.percentile(q) - truth);
  }
  EXPECT_LE(err_interp, err_mid);
}

// ---------------------------------------------------------------------------
// Windowed max via diff_snapshots: midpoint of the top diff bucket.

TEST(WindowMax, MidpointEstimateWithinHalfBucket) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::Histogram& h = reg.histogram("test.window_max.hist");
  h.record(1 << 20);  // old large sample: cumulative max is 2^20
  const obs::MetricsSnapshot before = reg.snapshot();
  const std::uint64_t window_max = 50'000;
  h.record(window_max);
  h.record(10'000);
  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::MetricsSnapshot delta = diff_snapshots(before, after);
  const auto* hist = delta.find_histogram("test.window_max.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 2u);
  // The estimate must NOT report the cumulative max (2^20): that sample is
  // from before the window. It must land within half a bucket width
  // (<= 12.5%) of the true window max.
  EXPECT_NEAR(static_cast<double>(hist->data.max),
              static_cast<double>(window_max), window_max * 0.125);
}

TEST(WindowMax, ClampedByCumulativeMax) {
  // When the window max IS the cumulative max, the midpoint estimate is
  // clamped to it (never reports above a real sample).
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::Histogram& h = reg.histogram("test.window_max2.hist");
  const obs::MetricsSnapshot before = reg.snapshot();
  h.record(1000);
  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::MetricsSnapshot delta = diff_snapshots(before, after);
  const auto* hist = delta.find_histogram("test.window_max2.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_LE(hist->data.max, 1000u);
  EXPECT_NEAR(static_cast<double>(hist->data.max), 1000.0, 1000.0 * 0.125);
}

TEST(WindowMax, EmptyWindowIsZero) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::Histogram& h = reg.histogram("test.window_max3.hist");
  h.record(777);
  const obs::MetricsSnapshot before = reg.snapshot();
  const obs::MetricsSnapshot after = reg.snapshot();
  const obs::MetricsSnapshot delta = diff_snapshots(before, after);
  const auto* hist = delta.find_histogram("test.window_max3.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 0u);
  EXPECT_EQ(hist->data.max, 0u);
}

// ---------------------------------------------------------------------------
// LatencyRecorder: CO-free accounting.

TEST(LatencyRecorder, ChargesFromIntendedStart) {
  obs::Registry::instance().reset();
  obs::LatencyRecorder rec("test_co");
  // Injector on time: total == service.
  rec.record(/*intended=*/1000, /*start=*/1000, /*done=*/2000);
  // Injector 5us late (stalled): the stall charges to the op even though
  // the call itself took only 1us — the closed-loop view would deny it.
  rec.record(/*intended=*/10'000, /*start=*/15'000, /*done=*/16'000);
  const auto s = rec.summary();
  EXPECT_EQ(s.ops, 2u);
  EXPECT_EQ(s.max_ns, 6000u);            // intended -> done of the late op
  EXPECT_EQ(s.sched_lag_max_ns, 5000u);  // how late the injector was
  EXPECT_DOUBLE_EQ(s.mean_ns, (1000.0 + 6000.0) / 2.0);
  // Service view (what closed loop would report) stays at ~1us each.
  EXPECT_NEAR(s.service_mean_ns, 1000.0, 1.0);
}

TEST(LatencyRecorder, LateCountingAgainstThreshold) {
  obs::Registry::instance().reset();
  obs::LatencyRecorder rec("test_late", /*late_threshold_ns=*/1000);
  rec.record(0, 0, 100);       // on time
  rec.record(0, 999, 1099);    // lag 999 < threshold
  rec.record(0, 1000, 1100);   // lag 1000 == threshold -> late
  rec.record(0, 50'000, 50'100);  // stalled injector -> late
  const auto s = rec.summary();
  EXPECT_EQ(s.ops, 4u);
  EXPECT_EQ(s.late, 2u);
  EXPECT_DOUBLE_EQ(s.late_share_pct(), 50.0);
}

TEST(LatencyRecorder, StalledInjectorSeparatesPercentiles) {
  // The signature CO failure is p50 == p99. Simulate a server that stalls
  // for 1ms every 500 ops under an open-loop schedule (10us period, 1us
  // service — stable: ~1ms of stall per 5ms of schedule). The ~20% of ops
  // scheduled before the backlog drains absorb the stall, so p99 must sit
  // far above p50 while the on-time majority keeps p50 at the service time.
  obs::Registry::instance().reset();
  obs::LatencyRecorder rec("test_stall");
  std::uint64_t t = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t intended = static_cast<std::uint64_t>(i) * 10'000;
    if (i % 500 == 499) t = intended + 1'000'000;  // 1ms stall
    const std::uint64_t start = intended > t ? intended : t;
    const std::uint64_t done = start + 1000;
    rec.record(intended, start, done);
    t = done;
  }
  const auto s = rec.summary();
  EXPECT_LT(s.p50_ns, 10'000.0);
  EXPECT_GT(s.p99_ns, 100'000.0);  // stall-absorbing ops dominate the tail
  EXPECT_GT(s.p999_ns, s.p50_ns * 10.0);
}

TEST(LatencyRecorder, MetricsSurviveRecorder) {
  obs::Registry::instance().reset();
  {
    obs::LatencyRecorder rec("test_persist");
    rec.record(0, 0, 500);
  }
  // Registry owns the histograms: a fresh recorder under the same family
  // keeps accumulating where the old one left off.
  obs::LatencyRecorder again("test_persist");
  again.record(0, 0, 1500);
  EXPECT_EQ(again.summary().ops, 2u);
}

TEST(PhaseTail, AttributesQuantilesPerPhase) {
  obs::Registry::instance().reset();
  for (int i = 0; i < 200; ++i) {
    obs::record_runtime_phase(obs::Phase::kMailboxQueue, 10'000 + i * 10);
    obs::record_runtime_phase(obs::Phase::kVaultService, 1000);
  }
  const obs::PhaseTail t = obs::phase_tail(obs::PhaseDomain::kRuntime, 0.99);
  EXPECT_DOUBLE_EQ(t.q, 0.99);
  const auto mailbox = static_cast<std::size_t>(obs::Phase::kMailboxQueue);
  const auto service = static_cast<std::size_t>(obs::Phase::kVaultService);
  EXPECT_EQ(t.phase_count[mailbox], 200u);
  EXPECT_EQ(t.phase_count[service], 200u);
  EXPECT_GT(t.phase_q_ns[mailbox], t.phase_q_ns[service]);
  const std::string js = obs::phase_tail_json(t);
  EXPECT_NE(js.find("mailbox_queue"), std::string::npos);
  EXPECT_NE(js.find("vault_service"), std::string::npos);
  // Zero-count phases are omitted.
  EXPECT_EQ(js.find("combiner_wait"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Closed-form queueing predictions.

TEST(LatencyModel, LightLoadDegeneratesToService) {
  const auto p = model::mdl_sojourn(/*lambda=*/1e-9, /*s=*/200.0);
  ASSERT_TRUE(p.stable);
  EXPECT_NEAR(p.mean_ns, 200.0, 1.0);  // no queueing at rho ~= 0
  EXPECT_NEAR(p.p50_ns, 200.0, 1.0);
}

TEST(LatencyModel, MeanMatchesPollaczekKhinchine) {
  const double s = 200.0, rho = 0.8;
  const auto p = model::mdl_sojourn(rho / s, s);
  ASSERT_TRUE(p.stable);
  EXPECT_NEAR(p.rho, rho, 1e-9);
  EXPECT_NEAR(p.mean_ns, s * (1.0 + rho / (2.0 * (1.0 - rho))), 1e-6);
}

TEST(LatencyModel, TailDecaySolvesCramerLundberg) {
  // theta must satisfy lambda (e^(theta s) - 1) = theta for the M/D/1
  // service distribution, for a range of utilizations.
  for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double s = 200.0;
    const double lambda = rho / s;
    const double theta = model::mdl_tail_decay(lambda, s);
    ASSERT_GT(theta, 0.0) << "rho=" << rho;
    const double residual = lambda * (std::exp(theta * s) - 1.0) - theta;
    EXPECT_NEAR(residual, 0.0, 1e-9 * theta) << "rho=" << rho;
  }
}

TEST(LatencyModel, Mm1SojournIsExactExponential) {
  const double s = 100.0, rho = 0.5;
  const auto p = model::mm1_sojourn(rho / s, s);
  ASSERT_TRUE(p.stable);
  // M/M/1 sojourn ~ Exp(mu - lambda): mean s/(1-rho), median mean*ln 2.
  EXPECT_NEAR(p.mean_ns, s / (1.0 - rho), 1e-6);
  EXPECT_NEAR(p.p50_ns, p.mean_ns * std::log(2.0), 1e-6);
  EXPECT_NEAR(p.p99_ns, p.mean_ns * std::log(100.0), 1e-6);
}

TEST(LatencyModel, DeterministicServiceBeatsExponential) {
  // M/D/1 waits are half M/M/1 waits; every quantile of the sojourn should
  // be at or below the exponential envelope.
  for (const double rho : {0.2, 0.5, 0.8}) {
    const double s = 200.0;
    const auto md1 = model::mdl_sojourn(rho / s, s);
    const auto mm1 = model::mm1_sojourn(rho / s, s);
    ASSERT_TRUE(md1.stable && mm1.stable);
    EXPECT_LT(md1.mean_ns, mm1.mean_ns) << "rho=" << rho;
    EXPECT_LE(md1.p99_ns, mm1.p99_ns * 1.001) << "rho=" << rho;
  }
}

TEST(LatencyModel, MonotoneInUtilization) {
  double prev_mean = 0.0, prev_p99 = 0.0;
  for (double rho = 0.1; rho < 0.95; rho += 0.1) {
    const auto p = model::mdl_sojourn(rho / 200.0, 200.0);
    ASSERT_TRUE(p.stable);
    EXPECT_GT(p.mean_ns, prev_mean);
    EXPECT_GE(p.p99_ns, prev_p99);
    prev_mean = p.mean_ns;
    prev_p99 = p.p99_ns;
  }
}

TEST(LatencyModel, UnstableAboveCapacity) {
  for (const double rho : {1.0, 1.1, 5.0}) {
    const auto p = model::mdl_sojourn(rho / 200.0, 200.0);
    EXPECT_FALSE(p.stable) << "rho=" << rho;
    EXPECT_EQ(p.mean_ns, 0.0);
    EXPECT_FALSE(model::mm1_sojourn(rho / 200.0, 200.0).stable);
  }
  EXPECT_EQ(model::mdl_tail_decay(1.0 / 100.0, 200.0), 0.0);
}

TEST(LatencyModel, QuantileLadderOrdered) {
  const auto p = model::mdl_sojourn(0.6 / 200.0, 200.0);
  ASSERT_TRUE(p.stable);
  EXPECT_LE(p.p50_ns, p.p90_ns);
  EXPECT_LE(p.p90_ns, p.p99_ns);
  EXPECT_LE(p.p99_ns, p.p999_ns);
  EXPECT_GE(p.p50_ns, 200.0);  // sojourn includes the full service time
}

// ---------------------------------------------------------------------------
// Telemetry `latency` block.

TEST(TelemetryLatencyBlock, EmitsOnlyLatencyHistograms) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::LatencyRecorder rec("tblock");
  rec.record(0, 100, 5100);
  reg.histogram("runtime.phase.issue").record(400);  // non-latency histogram
  const obs::MetricsSnapshot delta = reg.snapshot();
  const std::string line = obs::telemetry_line(delta, 1, 123, 1000);
  const auto lat_pos = line.find("\"latency\":{");
  ASSERT_NE(lat_pos, std::string::npos);
  const std::string block = line.substr(lat_pos);
  EXPECT_NE(block.find("latency.tblock.total_ns"), std::string::npos);
  EXPECT_NE(block.find("\"p99\":"), std::string::npos);
  EXPECT_NE(block.find("\"p999\":"), std::string::npos);
  // Phase histograms stay in the histograms section, not the latency block.
  EXPECT_EQ(block.find("runtime.phase.issue"), std::string::npos);
}

TEST(TelemetryLatencyBlock, PercentileLadderMonotone) {
  obs::Registry& reg = obs::Registry::instance();
  reg.reset();
  obs::LatencyRecorder rec("tladder");
  std::uint64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t dur = 1000 + (i % 50) * 200;
    rec.record(t, t, t + dur);
    t += 10'000;
  }
  const auto s = rec.summary();
  EXPECT_LE(s.p50_ns, s.p90_ns);
  EXPECT_LE(s.p90_ns, s.p99_ns);
  EXPECT_LE(s.p99_ns, s.p999_ns);
  EXPECT_LE(s.p999_ns, static_cast<double>(s.max_ns));
}

}  // namespace
}  // namespace pimds
