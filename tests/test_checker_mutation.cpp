// Mutation smoke tests: run the simulator with deliberately broken protocol
// variants (QueueFault, RebalanceFault) and require the linearizability
// checker to flag them — and to stay silent on the identical configurations
// with the fault switched off. A checker that passes its unit tests but
// cannot catch a seeded hand-off or migration bug is decoration; this file
// is the evidence it is not.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim_test_util.hpp"

namespace pimds {
namespace {

/// One PIM-queue run with the given fault, checked. Dequeue-only against a
/// large pre-fill: both queue faults corrupt the SERVE side (reversed
/// segment, re-served head), so dequeuers alone exercise them — and a
/// dequeue-only history keeps refutation cheap. Proving NON-linearizability
/// means exhausting every linearization order; concurrent enqueues make the
/// abstract states diverge per interleaving (no memoization pruning,
/// exponential blow-up), while with a fixed pre-fill the state after k pops
/// is the same no matter which dequeuer did them, so the DFS collapses.
/// Small segments force frequent hand-offs so the faults fire many times.
check::CheckResult run_queue_once(std::uint64_t seed, sim::QueueFault fault) {
  sim::QueueConfig cfg;
  cfg.seed = seed;
  cfg.enqueuers = 0;
  cfg.dequeuers = 3;
  cfg.duration_ns = 200'000;
  cfg.initial_nodes = 1024;  // more than the run can drain: no empty spins
  check::HistoryRecorder recorder(cfg.enqueuers + cfg.dequeuers);
  cfg.recorder = &recorder;
  sim::PimQueueOptions opts;
  opts.segment_threshold = 16;
  opts.fault = fault;
  sim::run_pim_queue(cfg, opts);
  check::QueueSpec::State initial;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i)
    initial.items.push_back(i);
  return check::check_queue_history(recorder.collect(), std::move(initial));
}

/// One rebalance run with the given fault, checked. A tiny migration chunk
/// stretches the migration window; the skewed mix keeps traffic on the
/// migrating partition.
check::CheckResult run_rebalance_once(std::uint64_t seed,
                                      sim::RebalanceFault fault) {
  sim::RebalanceConfig cfg;
  cfg.seed = seed;
  cfg.num_cpus = 8;
  cfg.partitions = 4;
  cfg.key_range = 1 << 12;
  cfg.initial_size = 1 << 11;
  cfg.duration_ns = 4'000'000;
  cfg.migrate_chunk = 2;
  cfg.fault = fault;
  check::HistoryRecorder recorder(cfg.num_cpus + 1);
  cfg.recorder = &recorder;
  sim::run_pim_skiplist_rebalance(cfg);
  return check::check_set_history(recorder.collect());
}

/// Sweep seeds: the faulty variant must fail at least once, and the clean
/// variant must never fail on the very same seeds.
template <typename RunOnce, typename Fault>
void expect_fault_caught(RunOnce run_once, Fault fault, Fault none,
                         std::uint64_t first_seed, std::uint64_t num_seeds,
                         const char* what) {
  std::uint64_t caught = 0;
  std::string first_error;
  for (std::uint64_t s = first_seed; s < first_seed + num_seeds; ++s) {
    SCOPED_TRACE("seed " + std::to_string(s));
    const auto clean = run_once(s, none);
    EXPECT_TRUE(clean.ok()) << "unfaulted run must check clean: "
                            << clean.error;
    const auto faulty = run_once(s, fault);
    ASSERT_NE(faulty.verdict, check::Verdict::kLimitReached)
        << "mutation histories must stay within the search budget";
    if (!faulty.ok()) {
      ++caught;
      if (first_error.empty()) first_error = faulty.error;
    }
  }
  EXPECT_GT(caught, 0u) << what << ": no seed in [" << first_seed << ", "
                        << first_seed + num_seeds
                        << ") produced a flagged history — the fault is "
                           "invisible to the checker";
  if (caught > 0) {
    EXPECT_FALSE(first_error.empty()) << "violations must carry an error";
  }
}

TEST(QueueMutation, HandoffReorderIsCaught) {
  // Dropped-fence model: the successor dequeue core serves its segment
  // back-to-front after the newDeqSeg hand-off.
  expect_fault_caught(run_queue_once, sim::QueueFault::kHandoffReorder,
                      sim::QueueFault::kNone, /*first_seed=*/1,
                      /*num_seeds=*/4, "handoff reorder");
}

TEST(QueueMutation, DoubleServeIsCaught) {
  // Stale-sentinel model: every 64th dequeue re-serves the front value
  // without popping, so one value reaches two dequeuers.
  expect_fault_caught(run_queue_once, sim::QueueFault::kDoubleServe,
                      sim::QueueFault::kNone, /*first_seed=*/1,
                      /*num_seeds=*/4, "double serve");
}

TEST(RebalanceMutation, StaleServeIsCaught) {
  // The source vault keeps answering for keys it already migrated; updates
  // land on the doomed copy and vanish.
  expect_fault_caught(run_rebalance_once, sim::RebalanceFault::kStaleServe,
                      sim::RebalanceFault::kNone, /*first_seed=*/1,
                      /*num_seeds=*/3, "stale serve during migration");
}

TEST(RebalanceMutation, NoDeferIsCaught) {
  // The target vault answers directly-routed requests from its incomplete
  // copy instead of parking them until the migration-end marker.
  expect_fault_caught(run_rebalance_once, sim::RebalanceFault::kNoDefer,
                      sim::RebalanceFault::kNone, /*first_seed=*/1,
                      /*num_seeds=*/3, "missing defer during migration");
}

TEST(RebalanceMutation, DirectoryBeforeGrantIsCaught) {
  // The execute/reject gate trusts the shared directory, which the source
  // publishes before the target owns the granting node stream: requests
  // are answered from a list missing the in-flight keys. This is the
  // historical runtime bug the oracle caught under TSan, re-seeded.
  expect_fault_caught(run_rebalance_once,
                      sim::RebalanceFault::kDirectoryBeforeGrant,
                      sim::RebalanceFault::kNone, /*first_seed=*/1,
                      /*num_seeds=*/3, "directory updated before grant");
}

}  // namespace
}  // namespace pimds
