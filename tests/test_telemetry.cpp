// Tests for the live telemetry plane (ISSUE 8): windowed delta snapshots
// through the background Sampler (JSONL schema + self-metering), the
// FlightRecorder bounded ring, the LoadMap per-vault/per-range accounting
// with its SpaceSaving hot-key sketch, and the observe-only AutoRebalancer
// consuming LoadMap reports end-to-end on the real-thread runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "core/auto_rebalancer.hpp"
#include "core/pim_skiplist.hpp"
#include "obs/obs.hpp"
#include "runtime/system.hpp"

namespace pimds::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

TEST(TelemetryLine, CarriesSchemaCountersAndOnlyNonEmptyHistograms) {
  auto& r = Registry::instance();
  r.counter("test_tel.line_c").add(5);
  r.histogram("test_tel.line_h");  // registered but empty this window
  DeltaBaseline baseline;
  (void)r.delta_snapshot(baseline);
  r.counter("test_tel.line_c").add(2);
  r.histogram("test_tel.line_hot").record(100);
  const MetricsSnapshot delta = r.delta_snapshot(baseline);
  const std::string line = telemetry_line(delta, 3, 1'000'000'000, 25'000'000);
  EXPECT_NE(line.find("\"schema\":\"pimds.telemetry.v1\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"seq\":3"), std::string::npos);
  EXPECT_NE(line.find("\"interval_ns\":25000000"), std::string::npos);
  // Counters appear even at zero (schema-stable); the windowed value is
  // the delta, not the cumulative count.
  EXPECT_NE(line.find("\"test_tel.line_c\":2"), std::string::npos) << line;
  // Empty histograms are omitted; non-empty ones carry the percentiles.
  EXPECT_EQ(line.find("test_tel.line_h\""), std::string::npos) << line;
  EXPECT_NE(line.find("test_tel.line_hot"), std::string::npos);
  EXPECT_NE(line.find("\"p999\""), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one line per window";
}

TEST(FlightRecorder, RingKeepsMostRecentAndCountsDropped) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) {
    fr.push("{\"seq\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  const std::string path =
      ::testing::TempDir() + "test_telemetry_flight.json";
  ASSERT_TRUE(fr.dump(path));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"schema\": \"pimds.flight.v1\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"dropped\": 6"), std::string::npos) << text;
  // Oldest retained first, newest last; evicted seqs are gone.
  EXPECT_EQ(text.find("{\"seq\":5}"), std::string::npos);
  const auto p6 = text.find("{\"seq\":6}");
  const auto p9 = text.find("{\"seq\":9}");
  ASSERT_NE(p6, std::string::npos);
  ASSERT_NE(p9, std::string::npos);
  EXPECT_LT(p6, p9);
  std::remove(path.c_str());
}

TEST(Sampler, EmitsValidJsonlAndMetersItself) {
  auto& r = Registry::instance();
  const std::string path =
      ::testing::TempDir() + "test_telemetry_sampler.jsonl";
  TelemetryOptions opts;
  opts.path = path;
  opts.interval_ms = 10;
  Sampler sampler(opts);
  sampler.start();
  ASSERT_TRUE(sampler.ok());
  Counter& c = r.counter("test_tel.sampler_c");
  for (int i = 0; i < 8; ++i) {
    c.add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  sampler.stop();
  EXPECT_GE(sampler.samples(), 3u);

  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), sampler.samples());
  std::uint64_t prev_seq = 0;
  std::uint64_t sum = 0;
  bool first = true;
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("{\"schema\":\"pimds.telemetry.v1\""), 0u) << line;
    // seq strictly increasing from 1.
    const auto at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos);
    const std::uint64_t seq = std::strtoull(line.c_str() + at + 6, nullptr, 10);
    if (!first) EXPECT_GT(seq, prev_seq);
    first = false;
    prev_seq = seq;
    const auto cat = line.find("\"test_tel.sampler_c\":");
    ASSERT_NE(cat, std::string::npos) << line;
    sum += std::strtoull(line.c_str() + cat + 21, nullptr, 10);
  }
  // Windowed deltas across all lines sum to the total count (the final
  // stop() window flushes the tail), never double-counting.
  EXPECT_EQ(sum, 80u);
  // Self-metering: the sampler's own cost is in the stream it emits.
  EXPECT_NE(slurp(path).find("\"telemetry.samples\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Sampler, MemoryOnlyModeFeedsTheFlightRing) {
  TelemetryOptions opts;  // no path: flight ring only
  opts.interval_ms = 5;
  opts.flight_capacity = 8;
  Sampler sampler(opts);
  sampler.start();
  Registry::instance().counter("test_tel.mem_only").add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.stop();
  EXPECT_GE(sampler.samples(), 2u);
  EXPECT_GE(sampler.flight().size(), 2u);
  EXPECT_LE(sampler.flight().size(), 8u);
  const std::string path =
      ::testing::TempDir() + "test_telemetry_memdump.json";
  ASSERT_TRUE(sampler.dump_flight(path));
  EXPECT_NE(slurp(path).find("pimds.flight.v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadMap, RangeGridCoversTheKeySpace) {
  LoadMap::Options opts;
  opts.num_vaults = 2;
  opts.key_min = 0;
  opts.key_max = 1023;
  opts.num_ranges = 8;
  opts.registry_prefix = "";
  LoadMap map(opts);
  EXPECT_EQ(map.range_of(0), 0u);
  EXPECT_EQ(map.range_of(1023), 7u);
  EXPECT_EQ(map.range_of(2000), 7u);  // clamped above
  // Buckets tile the space: lo(0) == key_min, hi(last) == key_max,
  // adjacent buckets are contiguous.
  EXPECT_EQ(map.range_lo(0), 0u);
  EXPECT_EQ(map.range_hi(7), 1023u);
  for (std::size_t b = 0; b + 1 < 8; ++b) {
    EXPECT_EQ(map.range_hi(b) + 1, map.range_lo(b + 1)) << "bucket " << b;
  }
  // Every key maps into the bucket whose bounds contain it.
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next_below(1024);
    const std::size_t b = map.range_of(key);
    EXPECT_GE(key, map.range_lo(b));
    EXPECT_LE(key, map.range_hi(b));
  }
}

TEST(LoadMap, ReportFindsTheHotVaultAndHotKeys) {
  LoadMap::Options opts;
  opts.num_vaults = 4;
  opts.key_min = 1;
  opts.key_max = 1 << 12;
  opts.registry_prefix = "";
  opts.top_k = 3;
  LoadMap map(opts);
  // Vault 0 takes 10x the traffic, concentrated on keys 1 and 2.
  for (int i = 0; i < 1000; ++i) {
    map.record(0, (i & 1) != 0 ? 1 : 2);
    if (i % 10 == 0) {
      map.record(1, 2000);
      map.record(2, 3000);
      map.record(3, 4000);
    }
  }
  LoadMap::HotVaultReport rep = map.report();
  EXPECT_EQ(rep.hottest, 0u);
  EXPECT_EQ(rep.window_ops, 1300u);
  EXPECT_EQ(rep.hottest_ops, 1000u);
  EXPECT_GT(rep.imbalance_ratio, 2.5);  // 1000 / 325 ~ 3.08
  ASSERT_EQ(rep.per_vault_ops.size(), 4u);
  EXPECT_EQ(rep.per_vault_ops[0], 1000u);
  ASSERT_FALSE(rep.hot_ranges.empty());
  EXPECT_EQ(map.range_of(1),
            map.range_of(rep.hot_ranges[0].lo));  // head range is hottest
  // The sketch surfaces the two heavy keys (counts are over-estimates).
  ASSERT_GE(rep.hot_keys.size(), 2u);
  EXPECT_TRUE((rep.hot_keys[0].key == 1 && rep.hot_keys[1].key == 2) ||
              (rep.hot_keys[0].key == 2 && rep.hot_keys[1].key == 1))
      << "hot keys: " << rep.hot_keys[0].key << ", " << rep.hot_keys[1].key;
  EXPECT_GE(rep.hot_keys[0].count, 500u);
  EXPECT_FALSE(rep.summary().empty());

  // Windowing: a second report over no new traffic is all zeros.
  rep = map.report();
  EXPECT_EQ(rep.window_ops, 0u);
  EXPECT_DOUBLE_EQ(rep.imbalance_ratio, 0.0);
}

TEST(LoadMap, UniformLoadReportsLowImbalance) {
  LoadMap::Options opts;
  opts.num_vaults = 4;
  opts.key_min = 0;
  opts.key_max = 4000;
  opts.registry_prefix = "";
  LoadMap map(opts);
  for (std::uint64_t k = 0; k < 4000; ++k) {
    map.record(static_cast<std::size_t>(k % 4), k);
  }
  const LoadMap::HotVaultReport rep = map.report();
  EXPECT_EQ(rep.window_ops, 4000u);
  EXPECT_NEAR(rep.imbalance_ratio, 1.0, 0.01);
}

TEST(LoadMap, RegistersPerVaultCountersUnderThePrefix) {
  LoadMap::Options opts;
  opts.num_vaults = 2;
  opts.registry_prefix = "test_tel.lm";
  {
    LoadMap map(opts);
    map.record(0, 10);
    map.record(0, 11);
    map.record(1, 12);
    const MetricsSnapshot snap = Registry::instance().snapshot();
    const auto* v0 = snap.find_counter("test_tel.lm.vault0.ops");
    ASSERT_NE(v0, nullptr);
    EXPECT_EQ(v0->value, 2u);
    const auto* v1 = snap.find_counter("test_tel.lm.vault1.ops");
    ASSERT_NE(v1, nullptr);
    EXPECT_EQ(v1->value, 1u);
  }
  // Registration is scoped to the LoadMap's lifetime.
  const MetricsSnapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.find_counter("test_tel.lm.vault0.ops"), nullptr);
}

TEST(ObserveOnlyRebalancer, FlagsZipfHotVaultWithoutMigrating) {
  // End-to-end: real-thread runtime, Zipf keys (rank 0 -> key 1 -> vault
  // 0 hot), observe-only policy. It must log would-trigger decisions and
  // leave the partition table untouched.
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = 1 << 14;
  core::PimSkipList list(system, options);
  system.start();

  core::AutoRebalancer::Options ropts;
  ropts.observe_only = true;
  ropts.period = std::chrono::milliseconds(20);
  ropts.log_decisions = false;  // keep ctest output quiet
  core::AutoRebalancer observer(list, ropts);
  observer.start();

  Xoshiro256 rng(21);
  ZipfGenerator zipf(1 << 14, 0.99);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (observer.would_trigger_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = zipf.next(rng) + 1;
      if ((i & 7) == 0) {
        list.add(key);
      } else {
        list.contains(key);
      }
    }
  }
  observer.stop();
  system.stop();

  EXPECT_GT(observer.would_trigger_count(), 0u)
      << "theta=0.99 must push vault 0 past the imbalance threshold";
  EXPECT_EQ(observer.migrations_triggered(), 0u) << "observe-only migrated";
  EXPECT_EQ(list.partitions().size(), 4u)
      << "partition table must be untouched";
  const auto rep = observer.last_report();
  EXPECT_EQ(rep.hottest, 0u) << rep.summary();
  EXPECT_GE(rep.imbalance_ratio, ropts.imbalance_ratio) << rep.summary();
}

}  // namespace
}  // namespace pimds::obs
