// The FIFO history checker itself, then the checker applied to every real
// queue in the library (baselines and the PIM queue, with and without
// fat-node combining).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/faa_queue.hpp"
#include "baselines/fc_structures.hpp"
#include "baselines/ms_queue.hpp"
#include "common/fifo_checker.hpp"
#include "core/pim_fifo_queue.hpp"

namespace pimds {
namespace {

TEST(FifoChecker, AcceptsACorrectSequentialHistory) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  for (std::uint64_t v = 1; v <= 10; ++v) {
    logs[0].record_enqueue_begin(v);
    logs[0].record_enqueue_end();
  }
  for (std::uint64_t v = 1; v <= 10; ++v) logs[0].record_dequeue(v);
  const auto r = FifoChecker::check(logs, /*drained=*/true);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(FifoChecker, CatchesDuplicateDequeue) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  logs[0].record_dequeue(7);
  logs[0].record_dequeue(7);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

TEST(FifoChecker, CatchesInventedValue) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  logs[0].record_dequeue(8);
  EXPECT_FALSE(FifoChecker::check(logs, false).ok);
}

TEST(FifoChecker, CatchesLossWhenDrained) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  EXPECT_FALSE(FifoChecker::check(logs, /*drained=*/true).ok);
  EXPECT_TRUE(FifoChecker::check(logs, /*drained=*/false).ok);
}

TEST(FifoChecker, CatchesPerProducerReordering) {
  std::vector<FifoChecker::ThreadLog> logs(2);
  logs[0].record_enqueue_begin(1);
  logs[0].record_enqueue_end();
  logs[0].record_enqueue_begin(2);
  logs[0].record_enqueue_end();
  logs[1].record_dequeue(2);  // producer 0's second value first: FIFO broken
  logs[1].record_dequeue(1);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

TEST(FifoChecker, CatchesRealTimeInversion) {
  std::vector<FifoChecker::ThreadLog> logs(3);
  // Producer 0 enqueues 1; strictly later, producer 1 enqueues 2.
  logs[0].record_enqueue_begin(1);
  logs[0].record_enqueue_end();
  logs[1].record_enqueue_begin(2);
  logs[1].record_enqueue_end();
  // A consumer seeing 2 before 1 violates linearizable FIFO order.
  logs[2].record_dequeue(2);
  logs[2].record_dequeue(1);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

/// Drive any queue with instrumented producers/consumers and run the
/// checker over the combined history.
template <typename Queue>
void checked_run(Queue& queue, int producers, int consumers,
                 std::uint64_t per_producer) {
  std::vector<FifoChecker::ThreadLog> logs(producers + consumers);
  std::vector<std::thread> threads;
  std::atomic<int> producers_done{0};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t value = (static_cast<std::uint64_t>(p) << 32) | i;
        logs[p].record_enqueue_begin(value);
        queue.enqueue(value);
        logs[p].record_enqueue_end();
      }
      producers_done.fetch_add(1);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        const auto v = queue.dequeue();
        if (v.has_value()) {
          logs[producers + c].record_dequeue(*v);
        } else if (producers_done.load() == producers) {
          // One more probe after producers finished: if still empty AND all
          // other consumers also observe empty we may stop; a final
          // single-threaded drain below catches stragglers.
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Final drain (single-threaded) for completeness.
  while (auto v = queue.dequeue()) logs.back().record_dequeue(*v);
  const auto result = FifoChecker::check(logs, /*drained=*/true);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(CheckedQueues, MsQueuePassesTheChecker) {
  baselines::MsQueue q;
  checked_run(q, 2, 2, 10000);
}

TEST(CheckedQueues, FaaQueuePassesTheChecker) {
  baselines::FaaQueue q;
  checked_run(q, 2, 2, 10000);
}

TEST(CheckedQueues, FcQueuePassesTheChecker) {
  baselines::FcQueue q;
  checked_run(q, 2, 2, 10000);
}

TEST(CheckedQueues, PimQueuePassesTheChecker) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue queue(system, {128, true});
  system.start();
  checked_run(queue, 2, 2, 10000);
  system.stop();
}

TEST(CheckedQueues, PimQueueWithFatNodesPassesTheChecker) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options options;
  options.segment_threshold = 128;
  options.enqueue_combining = true;
  core::PimFifoQueue queue(system, options);
  system.start();
  checked_run(queue, 2, 2, 10000);
  system.stop();
}

}  // namespace
}  // namespace pimds
