// The FIFO history checker itself, then the checker applied to every real
// queue in the library (baselines and the PIM queue, with and without
// fat-node combining).
//
// checked_run cross-validates the two oracles on ONE execution: each run is
// recorded both as FifoChecker logs (the fast path: multiset balance,
// per-producer order, real-time cross-producer order, completeness when
// drained) and as a check/ history verified by the general linearizability
// checker (check/linearizability.hpp). Agreement on every run is the
// evidence that the fast FIFO invariants and the QueueSpec describe the
// same correctness condition — except for completeness-when-drained, which
// only FifoChecker can state (see
// QueueSpecCheck.LostValueIsLinearizableButFailsFifoCheckerDrained).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "baselines/faa_queue.hpp"
#include "baselines/fc_structures.hpp"
#include "baselines/ms_queue.hpp"
#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "common/fifo_checker.hpp"
#include "core/pim_fifo_queue.hpp"

namespace pimds {
namespace {

// TSan instrumentation slows the cross-validated runs (and the WGL check
// over the recorded history, which cannot partition a queue) by an order of
// magnitude. The schedule diversity TSan adds does not need the volume, so
// shrink the per-producer count rather than time out the sanitizer CI leg.
#if defined(__SANITIZE_THREAD__)
#define PIMDS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PIMDS_TSAN_BUILD 1
#endif
#endif
#ifdef PIMDS_TSAN_BUILD
constexpr std::uint64_t kPerProducer = 400;
#else
constexpr std::uint64_t kPerProducer = 2500;
#endif

TEST(FifoChecker, AcceptsACorrectSequentialHistory) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  for (std::uint64_t v = 1; v <= 10; ++v) {
    logs[0].record_enqueue_begin(v);
    logs[0].record_enqueue_end();
  }
  for (std::uint64_t v = 1; v <= 10; ++v) logs[0].record_dequeue(v);
  const auto r = FifoChecker::check(logs, /*drained=*/true);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(FifoChecker, CatchesDuplicateDequeue) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  logs[0].record_dequeue(7);
  logs[0].record_dequeue(7);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

TEST(FifoChecker, CatchesInventedValue) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  logs[0].record_dequeue(8);
  EXPECT_FALSE(FifoChecker::check(logs, false).ok);
}

TEST(FifoChecker, CatchesLossWhenDrained) {
  std::vector<FifoChecker::ThreadLog> logs(1);
  logs[0].record_enqueue_begin(7);
  logs[0].record_enqueue_end();
  EXPECT_FALSE(FifoChecker::check(logs, /*drained=*/true).ok);
  EXPECT_TRUE(FifoChecker::check(logs, /*drained=*/false).ok);
}

TEST(FifoChecker, CatchesPerProducerReordering) {
  std::vector<FifoChecker::ThreadLog> logs(2);
  logs[0].record_enqueue_begin(1);
  logs[0].record_enqueue_end();
  logs[0].record_enqueue_begin(2);
  logs[0].record_enqueue_end();
  logs[1].record_dequeue(2);  // producer 0's second value first: FIFO broken
  logs[1].record_dequeue(1);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

TEST(FifoChecker, CatchesRealTimeInversion) {
  std::vector<FifoChecker::ThreadLog> logs(3);
  // Producer 0 enqueues 1; strictly later, producer 1 enqueues 2.
  logs[0].record_enqueue_begin(1);
  logs[0].record_enqueue_end();
  logs[1].record_enqueue_begin(2);
  logs[1].record_enqueue_end();
  // A consumer seeing 2 before 1 violates linearizable FIFO order.
  logs[2].record_dequeue(2);
  logs[2].record_dequeue(1);
  EXPECT_FALSE(FifoChecker::check(logs, true).ok);
}

/// Drive any queue with instrumented producers/consumers and run BOTH
/// checkers over the same execution: the fast FIFO-invariant checker on its
/// native logs, and the general linearizability checker on a check/ history
/// recorded in parallel.
template <typename Queue>
void checked_run(Queue& queue, int producers, int consumers,
                 std::uint64_t per_producer) {
  std::vector<FifoChecker::ThreadLog> logs(producers + consumers);
  check::HistoryRecorder recorder(producers + consumers + 1);
  std::vector<std::thread> threads;
  std::atomic<int> producers_done{0};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      check::ThreadLog& hist = recorder.log(p);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t value = (static_cast<std::uint64_t>(p) << 32) | i;
        logs[p].record_enqueue_begin(value);
        hist.begin(check::kEnq, value);
        queue.enqueue(value);
        hist.end(check::kRetTrue);
        logs[p].record_enqueue_end();
      }
      producers_done.fetch_add(1);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      check::ThreadLog& hist = recorder.log(producers + c);
      std::uint64_t empties = 0;
      for (;;) {
        hist.begin(check::kDeq, 0);
        const auto v = queue.dequeue();
        if (v.has_value()) {
          hist.end(*v);
          empties = 0;
        } else if (empties++ % 256 == 0) {
          // Empty results don't mutate the abstract queue: sample them
          // rather than recording every probe of the spin loop.
          hist.end(check::kRetEmpty);
        } else {
          hist.abandon();
        }
        if (v.has_value()) {
          logs[producers + c].record_dequeue(*v);
        } else if (producers_done.load() == producers) {
          // One more probe after producers finished: if still empty AND all
          // other consumers also observe empty we may stop; a final
          // single-threaded drain below catches stragglers.
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Final drain (single-threaded) for completeness.
  check::ThreadLog& drain = recorder.log(producers + consumers);
  for (;;) {
    drain.begin(check::kDeq, 0);
    const auto v = queue.dequeue();
    drain.end(v.has_value() ? *v : check::kRetEmpty);
    if (!v.has_value()) break;
    logs.back().record_dequeue(*v);
  }
  const auto result = FifoChecker::check(logs, /*drained=*/true);
  EXPECT_TRUE(result.ok) << result.error;
  const auto lin = check::check_queue_history(recorder.collect());
  EXPECT_TRUE(lin.ok()) << lin.error;
}

TEST(CheckedQueues, MsQueuePassesTheChecker) {
  baselines::MsQueue q;
  checked_run(q, 2, 2, kPerProducer);
}

TEST(CheckedQueues, FaaQueuePassesTheChecker) {
  baselines::FaaQueue q;
  checked_run(q, 2, 2, kPerProducer);
}

TEST(CheckedQueues, FcQueuePassesTheChecker) {
  baselines::FcQueue q;
  checked_run(q, 2, 2, kPerProducer);
}

TEST(CheckedQueues, PimQueuePassesTheChecker) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue queue(system, {128, true});
  system.start();
  checked_run(queue, 2, 2, kPerProducer);
  system.stop();
}

TEST(CheckedQueues, PimQueueWithFatNodesPassesTheChecker) {
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options options;
  options.segment_threshold = 128;
  options.enqueue_combining = true;
  core::PimFifoQueue queue(system, options);
  system.start();
  checked_run(queue, 2, 2, kPerProducer);
  system.stop();
}

}  // namespace
}  // namespace pimds
