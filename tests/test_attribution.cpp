// Tests for request-level latency attribution (obs/phase.hpp): the
// per-phase histograms recorded by the simulator and the native runtime
// must tile each operation's independently measured end-to-end latency —
// exactly in virtual time, within scheduler noise on real threads — and
// the attribution_report/attribution_json summaries must reflect that.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/pim_fifo_queue.hpp"
#include "obs/obs.hpp"
#include "runtime/system.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"

namespace pimds {
namespace {

obs::AttributionReport fresh_report() {
  return obs::attribution_report(obs::Registry::instance().snapshot());
}

TEST(PhaseTaxonomy, NamesAndHistogramsLineUp) {
  using obs::Phase;
  EXPECT_STREQ(obs::phase_name(Phase::kIssue), "issue");
  EXPECT_STREQ(obs::phase_name(Phase::kCombinerWait), "combiner_wait");
  EXPECT_STREQ(obs::phase_name(Phase::kRequestFlight), "request_flight");
  EXPECT_STREQ(obs::phase_name(Phase::kMailboxQueue), "mailbox_queue");
  EXPECT_STREQ(obs::phase_name(Phase::kVaultService), "vault_service");
  EXPECT_STREQ(obs::phase_name(Phase::kResponseFlight), "response_flight");
  EXPECT_STREQ(obs::phase_name(Phase::kCpuReceive), "cpu_receive");
  EXPECT_STREQ(obs::phase_name(Phase::kTotal), "total");
  EXPECT_STREQ(obs::phase_domain_name(obs::PhaseDomain::kRuntime), "runtime");
  EXPECT_STREQ(obs::phase_domain_name(obs::PhaseDomain::kSim), "sim");

  obs::Registry::instance().reset();
  obs::record_sim_phase(obs::Phase::kVaultService, 123);
  const auto snap = obs::Registry::instance().snapshot();
  const auto* h = snap.find_histogram("sim.phase.vault_service");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data.count, 1u);
  EXPECT_EQ(h->data.sum, 123u);
}

TEST(RequestIds, MonotoneAndNeverZero) {
  const std::uint64_t a = obs::next_request_id();
  const std::uint64_t b = obs::next_request_id();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

// The simulator runs in virtual time, so the recorded phases must tile the
// end-to-end latency of every queue operation essentially exactly; the only
// slack is operations still in flight when the run's duration expires.
TEST(SimAttribution, QueuePhasesTileEndToEndLatency) {
  obs::Registry::instance().reset();
  sim::QueueConfig cfg;
  cfg.enqueuers = 2;
  cfg.dequeuers = 2;
  cfg.duration_ns = 3'000'000;
  sim::run_pim_queue(cfg, sim::PimQueueOptions{});

  const obs::AttributionReport rep = fresh_report();
  ASSERT_TRUE(rep.sim.present);
  EXPECT_FALSE(rep.runtime.present);
  EXPECT_GT(rep.sim.ops, 100u);
  EXPECT_GE(rep.sim.coverage_pct, 90.0);
  EXPECT_LE(rep.sim.coverage_pct, 110.0);
  // The queue's CPU sends cost nothing before the wire, so the breakdown is
  // flight + wait + service + flight only.
  using obs::Phase;
  EXPECT_GT(rep.sim.phase_count[static_cast<int>(Phase::kRequestFlight)], 0u);
  EXPECT_GT(rep.sim.phase_count[static_cast<int>(Phase::kMailboxQueue)], 0u);
  EXPECT_GT(rep.sim.phase_count[static_cast<int>(Phase::kVaultService)], 0u);
  EXPECT_GT(rep.sim.phase_count[static_cast<int>(Phase::kResponseFlight)],
            0u);
}

// Same with enqueue combining on: batch members each record the full batch
// service (that IS their latency experience), so tiling still holds.
TEST(SimAttribution, CombiningQueueStillCovers) {
  obs::Registry::instance().reset();
  sim::QueueConfig cfg;
  cfg.enqueuers = 3;
  cfg.dequeuers = 1;
  cfg.duration_ns = 3'000'000;
  sim::PimQueueOptions opts;
  opts.enqueue_combining = true;
  sim::run_pim_queue(cfg, opts);

  const obs::AttributionReport rep = fresh_report();
  ASSERT_TRUE(rep.sim.present);
  EXPECT_GE(rep.sim.coverage_pct, 90.0);
  EXPECT_LE(rep.sim.coverage_pct, 110.0);
}

TEST(SimAttribution, SkiplistPhasesTileEndToEndLatency) {
  obs::Registry::instance().reset();
  sim::SkipListConfig cfg;
  cfg.num_cpus = 4;
  cfg.key_range = 1 << 10;
  cfg.initial_size = 1 << 9;
  cfg.duration_ns = 3'000'000;
  sim::run_pim_skiplist(cfg, 4);

  const obs::AttributionReport rep = fresh_report();
  ASSERT_TRUE(rep.sim.present);
  EXPECT_GT(rep.sim.ops, 100u);
  EXPECT_GE(rep.sim.coverage_pct, 90.0);
  EXPECT_LE(rep.sim.coverage_pct, 110.0);
  // The skiplist charges an LLC access for the directory lookup before the
  // send, so its issue phase is nonzero.
  using obs::Phase;
  EXPECT_GT(rep.sim.phase_ns[static_cast<int>(Phase::kIssue)], 0.0);
}

// Real threads: phases tile up to scheduler noise. Combining is off so
// every response message answers exactly one requester (a fat combined
// response is one response_flight crossing shared by its whole batch,
// which deliberately under-weights that phase per op).
TEST(RuntimeAttribution, QueuePhasesCoverWithinNoise) {
  obs::Registry::instance().reset();
  runtime::PimSystem::Config config;
  config.num_vaults = 2;
  config.inject_latency = true;
  config.params = LatencyParams::paper_defaults();
  config.params.pim_ns = 20000.0;  // Lpim 20 us >> scheduler noise
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options qopts;
  qopts.cpu_combining = false;
  qopts.enqueue_combining = false;
  core::PimFifoQueue queue(system, qopts);
  system.start();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        queue.enqueue(static_cast<std::uint64_t>(t) * 100 + i);
        queue.dequeue();
      }
    });
  }
  for (auto& w : workers) w.join();
  system.stop();

  const obs::AttributionReport rep = fresh_report();
  ASSERT_TRUE(rep.runtime.present);
  EXPECT_EQ(rep.runtime.ops, 200u);
  EXPECT_GE(rep.runtime.coverage_pct, 70.0);
  EXPECT_LE(rep.runtime.coverage_pct, 130.0);
  using obs::Phase;
  EXPECT_EQ(rep.runtime.phase_count[static_cast<int>(Phase::kCombinerWait)],
            0u);
  EXPECT_GT(rep.runtime.phase_count[static_cast<int>(Phase::kCpuReceive)],
            0u);
}

TEST(AttributionJson, EmptyReportIsAnEmptyObject) {
  obs::Registry::instance().reset();
  const std::string j = obs::attribution_json(fresh_report());
  EXPECT_EQ(j, "{}");
}

TEST(AttributionJson, CarriesDomainsPhasesAndCoverage) {
  obs::Registry::instance().reset();
  using obs::Phase;
  obs::record_sim_phase(Phase::kMailboxQueue, 600);
  obs::record_sim_phase(Phase::kVaultService, 200);
  obs::record_sim_phase(Phase::kResponseFlight, 200);
  obs::record_sim_phase(Phase::kTotal, 1000);

  const obs::AttributionReport rep = fresh_report();
  ASSERT_TRUE(rep.sim.present);
  EXPECT_EQ(rep.sim.ops, 1u);
  EXPECT_DOUBLE_EQ(rep.sim.total_ns, 1000.0);
  EXPECT_DOUBLE_EQ(rep.sim.phase_sum_ns, 1000.0);
  EXPECT_DOUBLE_EQ(rep.sim.coverage_pct, 100.0);

  const std::string j = obs::attribution_json(rep);
  EXPECT_NE(j.find("\"sim\""), std::string::npos);
  EXPECT_EQ(j.find("\"runtime\""), std::string::npos);
  EXPECT_NE(j.find("\"coverage_pct\": 100"), std::string::npos);
  EXPECT_NE(j.find("\"mailbox_queue\""), std::string::npos);
  // The total histogram is the reference, not a phase.
  EXPECT_EQ(j.find("\"total\":"), std::string::npos);
}

}  // namespace
}  // namespace pimds
