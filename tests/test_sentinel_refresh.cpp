// SentinelDirectory routing/refresh semantics (Section 4.2.1): unit tests
// for route/partition_of/move_range, then the refresh-on-rejection protocol
// under live migration — a CPU holding a stale sentinel must converge to
// the new owner, including the race where requests forwarded by the old
// owner land around the directory update. Histories recorded during the
// races are checked for linearizability.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "check/linearizability.hpp"
#include "common/zipf.hpp"
#include "core/auto_rebalancer.hpp"
#include "core/pim_skiplist.hpp"
#include "core/sentinel_directory.hpp"

namespace pimds::core {
namespace {

SentinelDirectory three_way() {
  return SentinelDirectory({{0, 0}, {1000, 1}, {2000, 2}});
}

TEST(SentinelDirectory, RoutesByGreatestSentinelAtMostKey) {
  const auto dir = three_way();
  EXPECT_EQ(dir.route(0), 0u);
  EXPECT_EQ(dir.route(999), 0u);
  EXPECT_EQ(dir.route(1000), 1u);
  EXPECT_EQ(dir.route(1999), 1u);
  EXPECT_EQ(dir.route(std::uint64_t{1} << 40), 2u);

  const auto range = dir.partition_of(1500);
  EXPECT_EQ(range.lo, 1000u);
  EXPECT_EQ(range.hi, 2000u);
  EXPECT_EQ(range.vault, 1u);
  EXPECT_EQ(dir.partition_of(5000).hi, ~std::uint64_t{0})
      << "last partition extends to the end of the key space";
}

TEST(SentinelDirectory, MoveRangeRetargetsAWholePartitionInPlace) {
  auto dir = three_way();
  dir.move_range(1000, 3);
  EXPECT_EQ(dir.partition_count(), 3u) << "no new sentinel for a whole move";
  EXPECT_EQ(dir.route(1500), 3u);
  EXPECT_EQ(dir.route(999), 0u) << "neighbors unaffected";
  EXPECT_EQ(dir.route(2000), 2u);
}

TEST(SentinelDirectory, MoveRangeSplitsASuffixWithANewSentinel) {
  auto dir = three_way();
  dir.move_range(2500, 3);
  EXPECT_EQ(dir.partition_count(), 4u);
  EXPECT_EQ(dir.route(2400), 2u) << "prefix stays with the old owner";
  EXPECT_EQ(dir.route(2500), 3u);
  EXPECT_EQ(dir.route(1u << 20), 3u);
  const auto range = dir.partition_of(2600);
  EXPECT_EQ(range.lo, 2500u);
  EXPECT_EQ(range.vault, 3u);
}

// ---------------------------------------------------------------------------
// Live refresh-on-rejection: operations race a real migration. CPUs route
// with whatever the directory says; mid-migration that answer goes stale
// the moment the source hands the range over, and the rejection/forwarding
// protocol must hide it. The recorded history is the oracle.
// ---------------------------------------------------------------------------

struct MigrationRig {
  runtime::PimSystem::Config config;
  std::unique_ptr<runtime::PimSystem> system;
  std::unique_ptr<PimSkipList> list;

  explicit MigrationRig(std::size_t migrate_chunk) {
    config.num_vaults = 4;
    config.vault_bytes = 8u << 20;
    system = std::make_unique<runtime::PimSystem>(config);
    PimSkipList::Options options;
    options.key_max = 4000;
    options.migrate_chunk = migrate_chunk;
    list = std::make_unique<PimSkipList>(*system, options);
    system->start();
  }
  ~MigrationRig() { system->stop(); }
};

/// Worker threads hammer the migrating range while migrate() runs; every
/// operation (and every setup insert) is recorded and the merged history
/// must be linearizable even across the ownership hand-over.
void run_migration_race(std::size_t migrate_chunk, int num_threads,
                        std::uint64_t ops_per_thread) {
  MigrationRig rig(migrate_chunk);
  // Partition 0 covers [1, 1000); the race targets its suffix [500, 1000).
  constexpr std::uint64_t kLo = 500;
  constexpr std::uint64_t kRange = 64;  // dense keys -> real contention
  check::HistoryRecorder recorder(static_cast<std::size_t>(num_threads) + 1);
  for (std::uint64_t key = kLo; key < kLo + kRange; key += 2) {
    ASSERT_TRUE(rig.list->add(key));
    recorder.log(static_cast<std::size_t>(num_threads))
        .complete(check::kAdd, key, check::kRetTrue, 0, 0);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      check::ThreadLog& log = recorder.log(static_cast<std::size_t>(t));
      std::mt19937_64 rng(0xace0 + static_cast<std::uint64_t>(t));
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t key = kLo + rng() % kRange;
        const std::uint64_t dice = rng() % 10;
        if (dice < 3) {
          log.begin(check::kAdd, key);
          log.end(rig.list->add(key) ? check::kRetTrue : check::kRetFalse);
        } else if (dice < 6) {
          log.begin(check::kRemove, key);
          log.end(rig.list->remove(key) ? check::kRetTrue : check::kRetFalse);
        } else {
          log.begin(check::kContains, key);
          log.end(rig.list->contains(key) ? check::kRetTrue
                                          : check::kRetFalse);
        }
      }
      stop.store(true);
    });
  }

  // Fire the migration while the threads are mid-flight, then keep moving
  // the range back and forth so hand-overs happen in BOTH directions and
  // forwarded requests race the directory update repeatedly.
  std::size_t migrations = 0;
  std::size_t target = 2;
  while (!stop.load()) {
    if (rig.list->migrate(kLo, target)) {
      ++migrations;
      while (rig.list->migration_active()) std::this_thread::yield();
      target = target == 2 ? 0 : 2;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& th : threads) th.join();
  ASSERT_GT(migrations, 0u) << "the race never migrated anything";

  const auto r = check::check_set_history(recorder.collect());
  EXPECT_TRUE(r.ok()) << r.error;

  // Convergence: the directory's answer for the moved range matches the
  // last completed migration, and a quiesced client sees coherent data —
  // add(k) must succeed exactly when contains(k) said the key was absent.
  std::size_t owner = ~std::size_t{0};
  for (const auto& e : rig.list->partitions()) {
    if (e.sentinel <= kLo) owner = e.vault;
  }
  EXPECT_TRUE(owner == 0 || owner == 2) << "range must be on an endpoint of "
                                           "the ping-pong, got vault "
                                        << owner;
  for (std::uint64_t key = kLo; key < kLo + kRange; ++key) {
    const bool present = rig.list->contains(key);
    EXPECT_EQ(rig.list->add(key), !present)
        << "post-migration state incoherent at key " << key;
  }
}

TEST(SentinelRefresh, OperationsStayLinearizableAcrossSlowMigration) {
  // Chunk of 2 stretches each migration across many protocol steps, so the
  // forwarded-request path (source forwards already-migrated keys) and the
  // rejection path (stale route after the directory update) both fire.
  run_migration_race(/*migrate_chunk=*/2, /*num_threads=*/4,
                     /*ops_per_thread=*/800);
}

TEST(SentinelRefresh, OperationsStayLinearizableAcrossFastMigrations) {
  // Large chunks complete in one or two steps: the window is dominated by
  // the directory-update race rather than forwarding.
  run_migration_race(/*migrate_chunk=*/64, /*num_threads=*/4,
                     /*ops_per_thread=*/800);
}

TEST(SentinelRefresh, LinearizableUnderActiveRebalancerWithCombining) {
  // The closed loop end to end on real threads: no scripted migrate()
  // calls — an ACTIVE AutoRebalancer watches the LoadMap and drives the
  // Section 4.2.1 protocol itself, with contention-adaptive combining
  // flipping the hot ranges to CPU-side batched sends mid-run. Every
  // client operation is recorded and the merged history must linearize
  // across policy-chosen hand-overs and combined batches alike.
  MigrationRig rig(/*migrate_chunk=*/8);
  constexpr std::uint64_t kLo = 500;
  constexpr std::uint64_t kRange = 64;  // dense keys -> real contention
  constexpr int kThreads = 4;
  check::HistoryRecorder recorder(kThreads + 1);
  for (std::uint64_t key = kLo; key < kLo + kRange; key += 2) {
    ASSERT_TRUE(rig.list->add(key));
    recorder.log(kThreads).complete(check::kAdd, key, check::kRetTrue, 0, 0);
  }

  AutoRebalancer::Options ropts;
  ropts.period = std::chrono::milliseconds(5);
  ropts.imbalance_ratio = 1.5;
  ropts.imbalance_exit = 1.2;
  ropts.cooldown_periods = 1;
  ropts.min_window_ops = 50;
  ropts.adaptive_combining = true;
  ropts.combine_enter_share = 0.30;
  ropts.combine_exit_share = 0.05;
  ropts.log_decisions = false;  // keep ctest output quiet
  AutoRebalancer rebalancer(*rig.list, ropts);
  rebalancer.start();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      check::ThreadLog& log = recorder.log(static_cast<std::size_t>(t));
      Xoshiro256 rng(0xbee5 + static_cast<std::uint64_t>(t));
      // Zipf within the racing window: a dominant top key steers the
      // policy's successor-split rule, and the window's LoadMap ranges
      // cross the combining enter share.
      ZipfGenerator zipf(kRange, 0.99);
      for (std::uint64_t i = 0; i < 800; ++i) {
        const std::uint64_t key = kLo + zipf.next(rng);
        const std::uint64_t dice = rng.next() % 10;
        if (dice < 3) {
          log.begin(check::kAdd, key);
          log.end(rig.list->add(key) ? check::kRetTrue : check::kRetFalse);
        } else if (dice < 6) {
          log.begin(check::kRemove, key);
          log.end(rig.list->remove(key) ? check::kRetTrue : check::kRetFalse);
        } else {
          log.begin(check::kContains, key);
          log.end(rig.list->contains(key) ? check::kRetTrue
                                          : check::kRetFalse);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  rebalancer.stop();
  // Let an in-flight migration hand over before judging the final state.
  while (rig.list->migration_active()) std::this_thread::yield();

  EXPECT_GT(rebalancer.migrations_triggered(), 0u)
      << "the concentrated window must trip the active policy";

  const auto r = check::check_set_history(recorder.collect());
  EXPECT_TRUE(r.ok()) << r.error;

  // Quiesced coherence across every policy-driven hand-over: add(k) must
  // succeed exactly when contains(k) said the key was absent.
  for (std::uint64_t key = kLo; key < kLo + kRange; ++key) {
    const bool present = rig.list->contains(key);
    EXPECT_EQ(rig.list->add(key), !present)
        << "post-rebalance state incoherent at key " << key;
  }
}

TEST(SentinelRefresh, DirectoryAndStatsConvergeAfterMigration) {
  MigrationRig rig(/*migrate_chunk=*/8);
  for (std::uint64_t key = 1; key < 1000; key += 3) {
    ASSERT_TRUE(rig.list->add(key));
  }
  ASSERT_TRUE(rig.list->migrate(500, 2));
  while (rig.list->migration_active()) std::this_thread::yield();

  // The moved range must now route to vault 2...
  const auto parts = rig.list->partitions();
  bool found = false;
  for (const auto& e : parts) {
    if (e.sentinel == 500) {
      found = true;
      EXPECT_EQ(e.vault, 2u);
    }
  }
  EXPECT_TRUE(found) << "migration must publish a sentinel at the split key";

  // ...and traffic sent there must actually reach vault 2.
  const auto before = rig.list->vault_stats();
  for (std::uint64_t key = 500; key < 600; ++key) rig.list->contains(key);
  const auto after = rig.list->vault_stats();
  EXPECT_GT(after[2].requests, before[2].requests)
      << "refreshed routes must deliver requests to the new owner";
  EXPECT_GT(after[2].keys, 0u) << "migrated keys must live on the target";
}

}  // namespace
}  // namespace pimds::core
