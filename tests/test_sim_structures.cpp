// Semantic tests for the simulator's data-structure bodies: they must be
// correct sets regardless of what latency they charge.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "sim/ds/list_common.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"

namespace pimds::sim {
namespace {

/// Runs `body(ctx)` inside a one-actor engine (structure code needs a
/// Context for latency charging).
template <typename Body>
void with_context(Body&& body) {
  Engine engine;
  engine.spawn("t", [&](Context& ctx) { body(ctx); });
  engine.run();
}

TEST(SimList, MatchesStdSetOnRandomOps) {
  with_context([](Context& ctx) {
    SimList list;
    std::set<std::uint64_t> reference;
    Xoshiro256 rng(7);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next_in(1, 200);
      const SetOp op = static_cast<SetOp>(rng.next_below(3));
      const bool got = list.execute(ctx, op, key, MemClass::kCpuDram);
      bool want = false;
      switch (op) {
        case SetOp::kAdd:
          want = reference.insert(key).second;
          break;
        case SetOp::kRemove:
          want = reference.erase(key) > 0;
          break;
        case SetOp::kContains:
          want = reference.count(key) > 0;
          break;
      }
      ASSERT_EQ(got, want) << "op " << static_cast<int>(op) << " key " << key;
      ASSERT_EQ(list.size(), reference.size());
    }
    // Final structural sweep.
    const auto keys = list.keys();
    ASSERT_EQ(keys.size(), reference.size());
    auto it = reference.begin();
    for (const std::uint64_t k : keys) EXPECT_EQ(k, *it++);
  });
}

TEST(SimList, PopulateCreatesDistinctSortedKeys) {
  with_context([](Context&) {
    SimList list;
    Xoshiro256 rng(3);
    list.populate(rng, 300, 1000);
    EXPECT_EQ(list.size(), 300u);
    const auto keys = list.keys();
    for (std::size_t i = 1; i < keys.size(); ++i) {
      EXPECT_LT(keys[i - 1], keys[i]) << "keys must be strictly increasing";
    }
  });
}

TEST(SimList, CombinedBatchMatchesSequentialExecution) {
  with_context([](Context& ctx) {
    Xoshiro256 rng(11);
    for (int trial = 0; trial < 50; ++trial) {
      SimList combined;
      SimList sequential;
      Xoshiro256 setup(trial);
      combined.populate(setup, 50, 300);
      Xoshiro256 setup2(trial);
      sequential.populate(setup2, 50, 300);

      std::vector<std::pair<SetOp, std::uint64_t>> batch;
      for (int i = 0; i < 20; ++i) {
        batch.push_back({static_cast<SetOp>(rng.next_below(3)),
                         rng.next_in(1, 300)});
      }
      std::vector<bool> combined_results;
      combined.execute_combined(ctx, batch, combined_results,
                                MemClass::kPimLocal);

      // The combined batch must behave as if served one by one in ascending
      // key order (stable for equal keys).
      std::vector<std::size_t> order(batch.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return batch[a].second < batch[b].second;
                       });
      std::vector<bool> expected(batch.size());
      for (std::size_t idx : order) {
        expected[idx] = sequential.execute(ctx, batch[idx].first,
                                           batch[idx].second,
                                           MemClass::kPimLocal);
      }
      ASSERT_EQ(combined_results, expected) << "trial " << trial;
      ASSERT_EQ(combined.keys(), sequential.keys()) << "trial " << trial;
    }
  });
}

TEST(SimSkipList, MatchesStdSetOnRandomOps) {
  with_context([](Context& ctx) {
    SimSkipList list(0);
    std::set<std::uint64_t> reference;
    Xoshiro256 rng(13);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next_in(1, 400);
      const SetOp op = static_cast<SetOp>(rng.next_below(3));
      const bool got = list.execute(ctx, op, key, MemClass::kCpuDram);
      bool want = false;
      switch (op) {
        case SetOp::kAdd:
          want = reference.insert(key).second;
          break;
        case SetOp::kRemove:
          want = reference.erase(key) > 0;
          break;
        case SetOp::kContains:
          want = reference.count(key) > 0;
          break;
      }
      ASSERT_EQ(got, want);
      ASSERT_EQ(list.size(), reference.size());
    }
    const auto keys = list.keys();
    auto it = reference.begin();
    ASSERT_EQ(keys.size(), reference.size());
    for (const std::uint64_t k : keys) EXPECT_EQ(k, *it++);
  });
}

TEST(SimSkipList, ObservedBetaIsLogarithmic) {
  with_context([](Context& ctx) {
    SimSkipList list(0);
    Xoshiro256 rng(17);
    list.populate(rng, 1 << 14, 1, 1 << 16);
    for (int i = 0; i < 2000; ++i) {
      list.execute(ctx, SetOp::kContains, rng.next_in(1, 1 << 16),
                   MemClass::kCpuDram);
    }
    // beta = Theta(log N): ~2 log2(16384) = 28, generously bracketed.
    EXPECT_GT(list.observed_beta(), 14.0);
    EXPECT_LT(list.observed_beta(), 56.0);
  });
}

TEST(SimSkipList, SentinelPartitioningRoutesEveryKeyOnce) {
  // partition_of and partition_sentinel must tile [1, N] exactly.
  const std::uint64_t n = 1000;
  for (std::size_t k : {1u, 3u, 8u, 16u}) {
    std::vector<std::uint64_t> count(k, 0);
    for (std::uint64_t key = 1; key <= n; ++key) {
      const std::size_t p = partition_of(key, n, k);
      ASSERT_LT(p, k);
      ASSERT_GT(key, partition_sentinel(p, n, k))
          << "key must exceed its partition's sentinel";
      ++count[p];
    }
    std::uint64_t total = 0;
    for (auto c : count) {
      EXPECT_GT(c, 0u);
      total += c;
    }
    EXPECT_EQ(total, n);
  }
}

}  // namespace
}  // namespace pimds::sim
