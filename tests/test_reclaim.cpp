// Tests for the pluggable reclamation seam (common/reclaim.hpp): the
// hazard-pointer domain's core guarantees (a published hazard blocks the
// free; scans free everything unprotected), the policy factory/parser, and
// a protect-vs-retire race stress that is the TSan/ASan target for the
// Dekker-style publish/scan fence pairing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/ebr.hpp"
#include "common/hazard.hpp"
#include "common/reclaim.hpp"

namespace pimds {
namespace {

struct CountedNode {
  static std::atomic<int> live;
  std::uint64_t canary = kCanary;
  static constexpr std::uint64_t kCanary = 0xfeedfacecafebeefULL;
  CountedNode() { live.fetch_add(1); }
  ~CountedNode() {
    canary = 0;
    live.fetch_sub(1);
  }
};
std::atomic<int> CountedNode::live{0};

TEST(ReclaimPolicyParse, AcceptsKnownNamesOnly) {
  EXPECT_EQ(parse_reclaim_policy("ebr"), ReclaimPolicy::kEbr);
  EXPECT_EQ(parse_reclaim_policy("hp"), ReclaimPolicy::kHp);
  EXPECT_EQ(parse_reclaim_policy("hazard"), ReclaimPolicy::kHp);
  EXPECT_FALSE(parse_reclaim_policy("qsbr").has_value());
  EXPECT_FALSE(parse_reclaim_policy("").has_value());
}

TEST(ReclaimFactory, BuildsTheRequestedPolicy) {
  auto ebr = make_reclaimer(ReclaimPolicy::kEbr, "");
  auto hp = make_reclaimer(ReclaimPolicy::kHp, "");
  EXPECT_STREQ(ebr->policy_name(), "ebr");
  EXPECT_STREQ(hp->policy_name(), "hp");
  EXPECT_FALSE(ebr->validating());
  EXPECT_TRUE(hp->validating());
}

TEST(HpDomain, RetiredNodesAreFreedByScans) {
  CountedNode::live = 0;
  {
    HpDomain domain;
    const int n = 4 * static_cast<int>(HpDomain::kScanThreshold);
    for (int i = 0; i < n; ++i) {
      HpDomain::Guard guard(domain);
      guard.retire(new CountedNode());
    }
    // Scans fire every kScanThreshold retires; with no hazards published
    // the backlog stays below one threshold.
    EXPECT_LT(domain.pending_local(), HpDomain::kScanThreshold);
    domain.flush();
    EXPECT_EQ(CountedNode::live.load(), 0);
    const ReclaimStats s = domain.stats();
    EXPECT_EQ(s.retired, static_cast<std::uint64_t>(n));
    EXPECT_EQ(s.freed, static_cast<std::uint64_t>(n));
    EXPECT_EQ(s.in_flight, 0u);
    EXPECT_GE(s.scans, 4u);
    EXPECT_GE(s.slots_in_use, 1u);
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

TEST(HpDomain, PublishedHazardBlocksExactlyThatNode) {
  CountedNode::live = 0;
  HpDomain domain;
  auto* hot = new CountedNode();
  std::atomic<CountedNode*> src{hot};
  std::atomic<bool> protecting{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    HpDomain::Guard guard(domain);
    CountedNode* p = guard.protect(0, src);
    EXPECT_EQ(p, hot);
    protecting.store(true);
    while (!release.load()) std::this_thread::yield();
    EXPECT_EQ(p->canary, CountedNode::kCanary)
        << "protected node mutated or freed under an active hazard";
  });
  while (!protecting.load()) std::this_thread::yield();
  {
    // Retire the protected node plus several scans' worth of bystanders.
    HpDomain::Guard guard(domain);
    src.store(nullptr);
    guard.retire(hot);
    for (std::size_t i = 0; i < 3 * HpDomain::kScanThreshold; ++i) {
      guard.retire(new CountedNode());
    }
  }
  domain.flush();
  // Everything except the hazard-protected node is gone.
  EXPECT_EQ(CountedNode::live.load(), 1);
  EXPECT_GE(domain.stats().stalls, 1u) << "scan_kept never fired";
  EXPECT_EQ(domain.stats().in_flight, 1u);
  release.store(true);
  reader.join();
  domain.flush();  // hazard cleared at guard exit: now it frees
  EXPECT_EQ(CountedNode::live.load(), 0);
  EXPECT_EQ(domain.stats().in_flight, 0u);
}

TEST(HpDomain, ProtectFollowsTheSourceAcrossUpdates) {
  HpDomain domain;
  auto* a = new CountedNode();
  auto* b = new CountedNode();
  std::atomic<CountedNode*> src{a};
  {
    HpDomain::Guard guard(domain);
    EXPECT_EQ(guard.protect(0, src), a);
    src.store(b);
    EXPECT_EQ(guard.protect(0, src), b);
    guard.clear(0);
  }
  delete a;
  delete b;
}

TEST(HpDomain, SlotsInUseCountsParticipants) {
  HpDomain domain;
  EXPECT_EQ(domain.slots_in_use(), 0u);
  { HpDomain::Guard guard(domain); }
  EXPECT_EQ(domain.slots_in_use(), 1u);
  std::thread other([&] { HpDomain::Guard guard(domain); });
  other.join();
  EXPECT_EQ(domain.slots_in_use(), 2u);
}

#if GTEST_HAS_DEATH_TEST
TEST(HpDomainDeathTest, RecordExhaustionFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        HpDomain domain;
        for (std::size_t i = 0; i <= HpDomain::kMaxThreads; ++i) {
          std::thread t([&] { HpDomain::Guard guard(domain); });
          t.join();
        }
      },
      "participant cap exhausted");
}
#endif

// The seam's central race, run under both policies: writers continuously
// swap a shared pointer and retire the displaced node while readers
// protect-and-dereference it. Any missed fence or premature free shows up
// as a canary mismatch natively and as a report under TSan/ASan — this is
// the sanitizer target for the HP publish/scan (Dekker) pairing.
class ReclaimRaceTest : public ::testing::TestWithParam<ReclaimPolicy> {};

TEST_P(ReclaimRaceTest, ProtectVsRetireKeepsNodesAlive) {
  CountedNode::live = 0;
  {
    auto domain = make_reclaimer(GetParam(), "");
    std::atomic<CountedNode*> shared{new CountedNode()};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> bad_reads{0};
    constexpr int kReaders = 2;
    constexpr int kWriters = 2;
    constexpr int kSwapsPerWriter = 20000;
    std::vector<std::thread> threads;
    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          ReclaimGuard guard(*domain);
          CountedNode* p = guard.protect(0, shared);
          if (p->canary != CountedNode::kCanary) {
            bad_reads.fetch_add(1);
          }
        }
      });
    }
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&] {
        for (int i = 0; i < kSwapsPerWriter; ++i) {
          auto* fresh = new CountedNode();
          ReclaimGuard guard(*domain);
          CountedNode* old = shared.exchange(fresh);
          guard.retire(old);
        }
      });
    }
    for (std::size_t i = kReaders; i < threads.size(); ++i) threads[i].join();
    stop.store(true, std::memory_order_release);
    for (int r = 0; r < kReaders; ++r) threads[r].join();
    EXPECT_EQ(bad_reads.load(), 0u)
        << "a reader dereferenced a freed node's memory";
    delete shared.load();
    domain->reclaim_all_unsafe();
    const ReclaimStats s = domain->stats();
    EXPECT_EQ(s.retired, s.freed);
  }
  EXPECT_EQ(CountedNode::live.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, ReclaimRaceTest,
                         ::testing::Values(ReclaimPolicy::kEbr,
                                           ReclaimPolicy::kHp),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace pimds
