// Tests for the observability layer (src/obs): counter sharding under
// threads, histogram bucket boundaries and percentiles, registry snapshot
// aggregation, trace JSON well-formedness (parsed back by a minimal JSON
// parser), and the disabled-mode zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.hpp"
#include "obs/obs.hpp"
#include "runtime/system.hpp"

namespace pimds::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough to check the emitted
// metrics/trace JSON is well-formed without a third-party parser.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::size_t objects_seen() const { return objects_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++objects_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t objects_ = 0;
};

bool json_well_formed(const std::string& text, std::size_t* objects = nullptr) {
  JsonCursor c(text);
  const bool ok = c.parse();
  if (objects != nullptr) *objects = c.objects_seen();
  return ok;
}

// ---------------------------------------------------------------------------
// Allocation tracking for the zero-allocation check. Counts every
// operator-new in the process; the disabled-path assertions diff it.
std::atomic<std::uint64_t> g_news{0};

}  // namespace
}  // namespace pimds::obs

// noinline: keeps GCC from inlining the malloc/free bodies into callers and
// then warning that free() pairs with the replaced operator new.
[[gnu::noinline]] void* operator new(std::size_t n) {
  pimds::obs::g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}

namespace pimds::obs {
namespace {

TEST(Counter, ShardedAddsSumExactlyUnderThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, RecordMaxKeepsTheHighWaterMark) {
  Gauge g;
  g.record_max(5);
  g.record_max(3);
  EXPECT_EQ(g.value(), 5u);
  g.record_max(9);
  EXPECT_EQ(g.value(), 9u);
  g.set(2);
  EXPECT_EQ(g.value(), 2u);
}

TEST(Gauge, RecordMaxUnderThreadsIsTheGlobalMax) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (std::uint64_t i = 0; i < 10'000; ++i) {
        g.record_max(static_cast<std::uint64_t>(t) * 10'000 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 7u * 10'000 + 9'999);
}

TEST(Histogram, BucketBoundariesAreContiguousAndOrdered) {
  // Every reachable bucket's exclusive upper bound must equal the next
  // bucket's inclusive lower bound, with no gaps or overlaps. Buckets past
  // bucket_index(2^64 - 1) can never be hit and have no defined bounds.
  const unsigned top = Histogram::bucket_index(~std::uint64_t{0});
  ASSERT_LT(top, Histogram::kBuckets);
  for (unsigned b = 0; b < top; ++b) {
    EXPECT_EQ(Histogram::bucket_upper(b), Histogram::bucket_lower(b + 1))
        << "gap/overlap at bucket " << b;
    EXPECT_LT(Histogram::bucket_lower(b), Histogram::bucket_upper(b));
  }
  // The top bucket's upper bound saturates at the max representable value.
  EXPECT_LT(Histogram::bucket_lower(top), Histogram::bucket_upper(top));
  EXPECT_EQ(Histogram::bucket_upper(top), ~std::uint64_t{0});
}

TEST(Histogram, BucketIndexRoundTripsItsOwnBounds) {
  for (unsigned b = 0; b < 200; ++b) {
    const std::uint64_t lo = Histogram::bucket_lower(b);
    EXPECT_EQ(Histogram::bucket_index(lo), b);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(b) - 1), b);
  }
  // Known small values get exact unit buckets.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 3u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::bucket_index(~std::uint64_t{0}));
  EXPECT_LT(Histogram::bucket_index(~std::uint64_t{0}), Histogram::kBuckets);
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // HDR property with 2 mantissa bits: width / lower <= 1/4 for v >= 4.
  for (unsigned b = Histogram::kSub; b < 200; ++b) {
    const double lo = static_cast<double>(Histogram::bucket_lower(b));
    const double up = static_cast<double>(Histogram::bucket_upper(b));
    EXPECT_LE((up - lo) / lo, 0.25 + 1e-12) << "bucket " << b;
  }
}

TEST(Histogram, PercentilesOfKnownDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramData d = h.data();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.max, 1000u);
  EXPECT_NEAR(d.mean(), 500.5, 1e-9);
  // Log-bucketed: percentile error is bounded by the 25% bucket width.
  EXPECT_NEAR(d.percentile(0.50), 500.0, 125.0);
  EXPECT_NEAR(d.percentile(0.99), 990.0, 250.0);
  EXPECT_GE(d.percentile(0.999), d.percentile(0.5));
}

TEST(Histogram, EmptyHistogramDerivesAllZero) {
  const HistogramData d = Histogram{}.data();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.max, 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(0.999), 0.0);
}

TEST(Histogram, SingleBucketEveryPercentileLandsInIt) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);
  const HistogramData d = h.data();
  const unsigned idx = Histogram::bucket_index(100);
  const double lo = static_cast<double>(Histogram::bucket_lower(idx));
  const double up = static_cast<double>(Histogram::bucket_upper(idx));
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double p = d.percentile(q);
    EXPECT_GE(p, lo) << "q=" << q;
    EXPECT_LE(p, up) << "q=" << q;
  }
  EXPECT_EQ(d.max, 100u);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
}

TEST(Histogram, P999OnTinySampleCountsUsesFloorRank) {
  // Nearest-rank with a floored 0-based rank: with 2 samples the 0.999
  // rank floors to 0, so p999 answers from the LOWER sample's bucket —
  // only q = 1.0 is guaranteed to reach the maximum. Tiny-sample tails
  // are a property of the data, not the histogram, and the convention
  // must stay put or committed baselines shift.
  Histogram h;
  h.record(10);
  h.record(1'000'000);
  const HistogramData d = h.data();
  EXPECT_LE(d.percentile(0.999), 16.0);
  const unsigned top = Histogram::bucket_index(1'000'000);
  EXPECT_GE(d.percentile(1.0),
            static_cast<double>(Histogram::bucket_lower(top)));
  EXPECT_LE(d.percentile(0.50), 16.0);
  EXPECT_EQ(d.max, 1'000'000u);
}

TEST(Histogram, MergedDataFromDisjointRangesAddsUp) {
  Histogram low, high;
  for (std::uint64_t v = 0; v < 100; ++v) low.record(v);
  for (std::uint64_t v = 1'000'000; v < 1'000'100; ++v) high.record(v);
  HistogramData merged;
  low.collect(merged);
  high.collect(merged);
  EXPECT_EQ(merged.count, 200u);
  EXPECT_EQ(merged.max, 1'000'099u);
  EXPECT_LE(merged.percentile(0.25), 128.0);
  EXPECT_GE(merged.percentile(0.75), 900'000.0);
}

TEST(Message, TraceContextCompilesOutWhenObsDisabled) {
#ifdef PIMDS_OBS_DISABLED
  // The req_id fields (message header + per-op fat entries) must vanish
  // entirely: header 40 bytes + fat bookkeeping 8 + two inline 32-byte
  // entries.
  static_assert(sizeof(runtime::FatEntry) == 32,
                "FatEntry grew in the -DPIMDS_OBS=OFF configuration");
  static_assert(sizeof(runtime::Message) == 112,
                "Message grew in the -DPIMDS_OBS=OFF configuration");
  SUCCEED();
#else
  // With observability on, each fat entry carries a per-op req_id (40
  // bytes), so the message is header 48 + fat bookkeeping 8 + two inline
  // entries = 136 — within the three-line SBO budget, with the non-fat
  // header still inside the first line (asserted in message.hpp).
  EXPECT_EQ(sizeof(runtime::FatEntry), 40u);
  EXPECT_LE(sizeof(runtime::Message), 3 * kCacheLineSize);
  EXPECT_EQ(sizeof(runtime::Message), 136u);
#endif
}

TEST(Histogram, ConcurrentRecordsAllCounted) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < 50'000; ++i) h.record(i & 1023);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), 8u * 50'000);
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
  auto& r = Registry::instance();
  Counter& a = r.counter("test_obs.stable");
  Counter& b = r.counter("test_obs.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, SnapshotAggregatesExternalAndOwnedByName) {
  auto& r = Registry::instance();
  r.counter("test_obs.agg").add(2);
  Counter external;
  external.add(5);
  {
    Registry::Handle h = r.register_counter("test_obs.agg", &external);
    const MetricsSnapshot snap = r.snapshot();
    const auto* s = snap.find_counter("test_obs.agg");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, 7u);  // owned 2 + external 5
  }
  // Handle destruction unregisters: only the owned counter remains.
  const MetricsSnapshot snap = r.snapshot();
  const auto* s = snap.find_counter("test_obs.agg");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 2u);
}

TEST(Registry, SnapshotJsonIsWellFormed) {
  auto& r = Registry::instance();
  r.counter("test_obs.json_counter").add(1);
  r.gauge("test_obs.json_gauge").record_max(42);
  r.histogram("test_obs.json_hist").record(100);
  r.set_derived("test_obs.json_ratio", 1.5);
  const std::string json = r.to_json();
  std::size_t objects = 0;
  EXPECT_TRUE(json_well_formed(json, &objects)) << json;
  EXPECT_GE(objects, 4u);  // top-level + counters + gauges + histograms
  EXPECT_NE(json.find("test_obs.json_counter"), std::string::npos);
  EXPECT_NE(json.find("test_obs.json_ratio"), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(Trace, ChromeTraceJsonParsesBackAndContainsEvents) {
  clear_trace();
  set_trace_enabled(true);
  set_process_name(kNativePid, "native");
  set_process_name(kSimPid, "sim-virtual-time");
  name_this_thread("test-main");
  trace_instant_here("test_instant", "test", {"k", 7});
  const std::uint64_t t0 = now_ns();
  trace_complete_here("test_span", "test", t0, {"n", 3}, {"m", 4});
  // Simulated-track events with explicit virtual timestamps.
  trace_instant(kSimPid, 2, "newEnqSeg", "sim", 1000, {"vault", 2});
  trace_complete(kSimPid, 2, "drain_batch", "sim", 2000, 500, {"n", 8});
  EXPECT_GE(trace_event_count(), 4u);

  const std::string path = ::testing::TempDir() + "test_obs_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  set_trace_enabled(false);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_TRUE(json_well_formed(text)) << text.substr(0, 500);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("newEnqSeg"), std::string::npos);
  EXPECT_NE(text.find("drain_batch"), std::string::npos);
  EXPECT_NE(text.find("\"vault\":2"), std::string::npos);
  clear_trace();
}

TEST(Trace, RingBufferKeepsOnlyTheMostRecentWindow) {
  clear_trace();
  set_trace_enabled(true);
  const std::size_t before = trace_event_count();
  for (int i = 0; i < 100; ++i) {
    trace_instant_here("spam", "test", {"i", static_cast<std::uint64_t>(i)});
  }
  set_trace_enabled(false);
  const std::size_t after = trace_event_count();
  EXPECT_GE(after - before, 0u);
  EXPECT_LE(after, 16384u * 4);  // bounded by per-thread capacity
  clear_trace();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(DisabledMode, UpdatesAreDroppedAndAllocationFree) {
  auto& r = Registry::instance();
  Counter& c = r.counter("test_obs.disabled_counter");
  Histogram& h = r.histogram("test_obs.disabled_hist");
  Gauge& g = r.gauge("test_obs.disabled_gauge");
  c.reset();
  set_metrics_enabled(false);
  set_trace_enabled(false);
  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    c.add(1);
    h.record(static_cast<std::uint64_t>(i));
    g.record_max(static_cast<std::uint64_t>(i));
    trace_instant_here("nope", "test");
    trace_complete_here("nope", "test", 0);
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  set_metrics_enabled(true);
  EXPECT_EQ(news_after, news_before)
      << "disabled-mode metric/trace calls must not allocate";
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(g.value(), 0u);
}

TEST(Gauge, AddSubTrackALevel) {
  Gauge g;
  g.add(5);
  g.add(3);
  EXPECT_EQ(g.value(), 8u);
  g.sub(2);
  EXPECT_EQ(g.value(), 6u);
  g.set(0);
  g.add();  // default increment of 1
  EXPECT_EQ(g.value(), 1u);
}

TEST(Gauge, MergeSemanticsSelectHowSnapshotsCombine) {
  auto& r = Registry::instance();
  // kMax (default): the snapshot keeps the high-water mark across sources.
  Gauge ext_max;
  ext_max.set(10);
  r.gauge("test_obs.gmax", GaugeMerge::kMax).set(4);
  {
    Registry::Handle h = r.register_gauge("test_obs.gmax", &ext_max);
    const MetricsSnapshot snap = r.snapshot();
    const auto* s = snap.find_gauge("test_obs.gmax");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, 10u);
  }
  // kSum: levels add up (e.g. per-shard queue depths -> total depth).
  Gauge ext_sum;
  ext_sum.set(10);
  r.gauge("test_obs.gsum", GaugeMerge::kSum).set(4);
  {
    Registry::Handle h = r.register_gauge("test_obs.gsum", &ext_sum,
                                          GaugeMerge::kSum);
    const MetricsSnapshot snap = r.snapshot();
    const auto* s = snap.find_gauge("test_obs.gsum");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, 14u);
  }
  // kLast: the most recently registered source wins (config-style gauges).
  Gauge ext_last;
  ext_last.set(10);
  r.gauge("test_obs.glast", GaugeMerge::kLast).set(4);
  {
    Registry::Handle h = r.register_gauge("test_obs.glast", &ext_last,
                                          GaugeMerge::kLast);
    const MetricsSnapshot snap = r.snapshot();
    const auto* s = snap.find_gauge("test_obs.glast");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, 10u);
  }
  // The first registration of a name fixes the mode: re-requesting with a
  // different mode reuses the existing slot (documented, not an error).
  Gauge& again = r.gauge("test_obs.gsum", GaugeMerge::kMax);
  EXPECT_EQ(&again, &r.gauge("test_obs.gsum"));
  EXPECT_STREQ(gauge_merge_name(GaugeMerge::kMax), "max");
  EXPECT_STREQ(gauge_merge_name(GaugeMerge::kSum), "sum");
  EXPECT_STREQ(gauge_merge_name(GaugeMerge::kLast), "last");
}

TEST(Registry, DeltaSnapshotYieldsPerWindowCounterDeltas) {
  auto& r = Registry::instance();
  Counter& c = r.counter("test_obs.delta_counter");
  Histogram& h = r.histogram("test_obs.delta_hist");
  DeltaBaseline baseline;
  (void)r.delta_snapshot(baseline);  // prime: absorbs all history
  EXPECT_EQ(baseline.windows, 1u);

  c.add(7);
  h.record(100);
  h.record(200);
  MetricsSnapshot w1 = r.delta_snapshot(baseline);
  const auto* dc = w1.find_counter("test_obs.delta_counter");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->value, 7u);
  const auto* dh = w1.find_histogram("test_obs.delta_hist");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->data.count, 2u);
  // Window max is approximated from the highest nonzero diff bucket: it
  // must cover the true max by no more than the 25% bucket width.
  EXPECT_GE(dh->data.max, 200u);
  EXPECT_LE(dh->data.max, 250u);

  // An idle window reports zero deltas, not cumulative totals.
  MetricsSnapshot w2 = r.delta_snapshot(baseline);
  dc = w2.find_counter("test_obs.delta_counter");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->value, 0u);
  dh = w2.find_histogram("test_obs.delta_hist");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->data.count, 0u);
  EXPECT_EQ(dh->data.max, 0u);
  EXPECT_EQ(baseline.windows, 3u);
}

TEST(Registry, DeltaSnapshotSurvivesResetWithoutUnderflow) {
  auto& r = Registry::instance();
  Counter& c = r.counter("test_obs.delta_reset");
  c.add(100);
  DeltaBaseline baseline;
  (void)r.delta_snapshot(baseline);
  c.reset();
  c.add(3);
  // now(3) < was(100): the clamped delta reports the post-reset count
  // instead of wrapping to ~2^64.
  const MetricsSnapshot w = r.delta_snapshot(baseline);
  const auto* dc = w.find_counter("test_obs.delta_reset");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->value, 3u);
}

TEST(Registry, ConcurrentSnapshotsVsExternalRegistration) {
  // The ISSUE-8 locking fix: snapshot() copies the name index under mu_
  // but merges shards outside it, pinning external metrics with
  // merge_gate_ so unregister() cannot free them mid-merge. Run
  // register/unregister churn against continuous snapshots; TSan (tier1's
  // -DPIMDS_SANITIZE=thread leg) would flag the old use-after-free /
  // locked-merge race.
  auto& r = Registry::instance();
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Counter ext;
      ext.add(static_cast<std::uint64_t>(i) + 1);
      Gauge gext;
      gext.set(static_cast<std::uint64_t>(i));
      Histogram hext;
      hext.record(static_cast<std::uint64_t>(i & 1023));
      Registry::Handle h1 = r.register_counter(
          "test_obs.churn_c" + std::to_string(i & 7), &ext);
      Registry::Handle h2 = r.register_gauge(
          "test_obs.churn_g" + std::to_string(i & 7), &gext);
      Registry::Handle h3 = r.register_histogram(
          "test_obs.churn_h" + std::to_string(i & 7), &hext);
      ++i;
    }
  });
  std::thread writer([&] {
    Counter& c = r.counter("test_obs.churn_live");
    while (!stop.load(std::memory_order_relaxed)) c.add(1);
  });
  DeltaBaseline baseline;
  for (int i = 0; i < 300; ++i) {
    const MetricsSnapshot snap =
        (i & 1) != 0 ? r.snapshot() : r.delta_snapshot(baseline);
    ASSERT_FALSE(snap.counters.empty());
  }
  stop.store(true);
  churn.join();
  writer.join();
}

TEST(PimSystemObs, MailboxMetricsVisibleThroughRegistryAndAccessors) {
  runtime::PimSystem::Config cfg;
  cfg.num_vaults = 2;
  // Small injected latency: messages spend time in flight, so the pending
  // heap must park at least one message -> a nonzero high-water mark.
  cfg.inject_latency = true;
  cfg.params = LatencyParams{200.0, 3.0, 3.0, 1.0};
  runtime::PimSystem system(cfg);
  std::atomic<int> served{0};
  for (std::size_t v = 0; v < cfg.num_vaults; ++v) {
    system.set_handler(v, [&served](runtime::PimCoreApi&,
                                    const runtime::Message&) {
      served.fetch_add(1, std::memory_order_relaxed);
    });
  }
  system.start();
  for (int i = 0; i < 200; ++i) {
    runtime::Message m;
    m.kind = 1;
    m.value = static_cast<std::uint64_t>(i);
    system.send(static_cast<std::size_t>(i) % cfg.num_vaults, m);
  }
  while (served.load(std::memory_order_relaxed) < 200) {
  }
  system.stop();

  // Instance accessors.
  EXPECT_EQ(system.messages_processed(0) + system.messages_processed(1), 200u);
  EXPECT_GE(system.pending_high_water(0) + system.pending_high_water(1), 1u);

  // The same numbers must be visible process-wide through the registry
  // (the PR-1 ad-hoc struct fields are now registry-backed).
  const MetricsSnapshot snap = Registry::instance().snapshot();
  const auto* hwm = snap.find_gauge("runtime.vault0.mailbox.pending_hwm");
  ASSERT_NE(hwm, nullptr);
  EXPECT_EQ(hwm->value, system.pending_high_water(0));
  const auto* spins =
      snap.find_counter("runtime.vault0.mailbox.send_full_spins");
  ASSERT_NE(spins, nullptr);
  EXPECT_EQ(spins->value, system.send_full_spins(0));
  const auto* msgs = snap.find_counter("runtime.vault0.messages");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->value, system.messages_processed(0));
  const auto* drains = snap.find_histogram("runtime.vault0.mailbox.drain_batch");
  ASSERT_NE(drains, nullptr);
  EXPECT_GE(drains->data.count, 1u);
}

}  // namespace
}  // namespace pimds::obs
