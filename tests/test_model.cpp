// Tests for the closed-form Section 3/4/5 performance model: internal
// consistency, and every analytic claim the paper states in prose.
#include <gtest/gtest.h>

#include "model/linked_list_model.hpp"
#include "model/queue_model.hpp"
#include "model/skiplist_model.hpp"

namespace pimds::model {
namespace {

const LatencyParams kPaper = LatencyParams::paper_defaults();

TEST(Sp, MatchesDirectFormulaForSmallN) {
  // n = 2: S_p = (1/3)^p + (2/3)^p.
  EXPECT_NEAR(s_p(2, 1), 1.0 / 3 + 2.0 / 3, 1e-12);
  EXPECT_NEAR(s_p(2, 2), 1.0 / 9 + 4.0 / 9, 1e-12);
}

TEST(Sp, SOneIsHalfN) {
  // S_1 = sum i/(n+1) = n/2.
  EXPECT_NEAR(s_p(100, 1), 50.0, 1e-9);
  EXPECT_NEAR(s_p(999, 1), 499.5, 1e-9);
}

TEST(Sp, DecreasesInPAndStaysInBounds) {
  const std::size_t n = 500;
  double prev = s_p(n, 1);
  EXPECT_LE(prev, n / 2.0 + 1e-9);
  for (std::size_t p = 2; p <= 64; p *= 2) {
    const double curr = s_p(n, p);
    EXPECT_LT(curr, prev) << "S_p must decrease in p";
    EXPECT_GT(curr, 0.0);
    prev = curr;
  }
}

TEST(Table1, FineGrainedScalesLinearlyInThreads) {
  const double t1 = fine_grained_lock_list(kPaper, 1000, 1);
  const double t8 = fine_grained_lock_list(kPaper, 1000, 8);
  EXPECT_NEAR(t8 / t1, 8.0, 1e-9);
}

TEST(Table1, PimIsR1TimesFcWithAndWithoutCombining) {
  // Section 4.1: "the PIM-managed linked-list is expected to be r1 times
  // better than the flat-combining linked-list, with or without the
  // combining optimization applied to both."
  EXPECT_NEAR(pim_list_no_combining(kPaper, 777) /
                  fc_list_no_combining(kPaper, 777),
              kPaper.r1, 1e-9);
  EXPECT_NEAR(pim_list_combining(kPaper, 777, 16) /
                  fc_list_combining(kPaper, 777, 16),
              kPaper.r1, 1e-9);
}

TEST(Table1, NaivePimLosesToFineGrainedAtR1Threads) {
  // Section 1: a sequential PIM list is slower than a concurrent list
  // accessed by only three CPU cores (r1 = 3).
  EXPECT_EQ(threads_to_beat_naive_pim(kPaper), 3u);
  EXPECT_GT(fine_grained_lock_list(kPaper, 1000, 3),
            pim_list_no_combining(kPaper, 1000) - 1e-9);
  EXPECT_LT(fine_grained_lock_list(kPaper, 1000, 2),
            pim_list_no_combining(kPaper, 1000));
}

TEST(Table1, CombiningPimBeatsFineGrainedWheneverR1AtLeastTwo) {
  // Section 4.1: since 0 < S_p <= n/2, r1 >= 2 suffices.
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 28u}) {
    LatencyParams lp = kPaper;
    lp.r1 = 2.0;
    EXPECT_TRUE(pim_combining_beats_fine_grained(lp, 1000, p)) << p;
    EXPECT_GE(pim_list_combining(lp, 1000, p),
              fine_grained_lock_list(lp, 1000, p) - 1e-6);
  }
}

TEST(Table1, AtPaperDefaultsCombiningPimIsAtLeast1_5xFineGrained) {
  // Section 4.1: "at least 1.5 times the throughput of the linked-list
  // with fine-grained locks" when r1 = 3.
  for (std::size_t p : {1u, 2u, 8u, 28u}) {
    EXPECT_GE(pim_list_combining(kPaper, 1000, p) /
                  fine_grained_lock_list(kPaper, 1000, p),
              1.5 - 1e-9)
        << p;
  }
}

TEST(Table2, BetaEstimateGrowsLogarithmically) {
  EXPECT_NEAR(estimate_beta(1 << 10), 20.0, 1e-9);
  EXPECT_NEAR(estimate_beta(1 << 20), 40.0, 1e-9);
  EXPECT_GE(estimate_beta(1), 1.0);
}

TEST(Table2, PartitioningScalesLinearlyInK) {
  const double beta = 30.0;
  EXPECT_NEAR(fc_skiplist_partitioned(kPaper, beta, 8),
              8 * fc_skiplist(kPaper, beta), 1e-6);
  EXPECT_NEAR(pim_skiplist_partitioned(kPaper, beta, 16),
              16 * pim_skiplist(kPaper, beta), 1e-6);
}

TEST(Table2, PimOverFcApproachesR1ForLargeBeta) {
  // Section 4.2: beta r1 / (beta + r1) ~= r1 when beta >> r1.
  const double ratio =
      pim_skiplist(kPaper, 1000.0) / fc_skiplist(kPaper, 1000.0);
  EXPECT_NEAR(ratio, kPaper.r1, 0.05);
}

TEST(Table2, CrossoverMatchesKGreaterThanPOverR1) {
  // Section 4.2: "k > p / r1 should suffice" for large beta.
  const double beta = 1000.0;
  for (std::size_t p : {6u, 12u, 24u}) {
    const std::size_t k_min = min_partitions_to_beat_lock_free(kPaper, beta, p);
    EXPECT_NEAR(static_cast<double>(k_min),
                static_cast<double>(p) / kPaper.r1 + 1, 1.0)
        << p;
    // And the claim itself: at k_min partitions PIM wins, below it loses.
    EXPECT_GT(pim_skiplist_partitioned(kPaper, beta, k_min),
              lock_free_skiplist(kPaper, beta, p));
    if (k_min > 1) {
      EXPECT_LE(pim_skiplist_partitioned(kPaper, beta, k_min - 1),
                lock_free_skiplist(kPaper, beta, p) + 1e-6);
    }
  }
}

TEST(Sec52, QueueBoundsAtPaperDefaults) {
  // Lpim = 200ns here, so 1/Lpim = 5 Mops/s per side.
  LatencyParams lp = kPaper;
  EXPECT_NEAR(faa_queue(lp), 1e9 / lp.atomic(), 1e-3);
  EXPECT_NEAR(fc_queue(lp), 1e9 / (2 * lp.llc()), 1e-3);
  EXPECT_NEAR(pim_queue_pipelined(lp), 1e9 / lp.pim(), 1e4);
}

TEST(Sec52, PimQueueIsTwiceFcAndThriceFaa) {
  // Section 5.2: "the throughput of our PIM-managed FIFO queue is expected
  // to be twice the throughput of the flat-combining queue and three times
  // that of the F&A queue."
  EXPECT_NEAR(pim_queue_pipelined(kPaper) / fc_queue(kPaper), 2.0, 0.01);
  EXPECT_NEAR(pim_queue_pipelined(kPaper) / faa_queue(kPaper), 3.0, 0.01);
}

TEST(Sec52, CrossoverPredicates) {
  EXPECT_TRUE(pim_beats_fc_queue(kPaper));   // 2 r1 / r2 = 2 > 1
  EXPECT_TRUE(pim_beats_faa_queue(kPaper));  // r1 r3 = 3 > 1
  LatencyParams slow_pim = kPaper;
  slow_pim.r1 = 0.4;  // PIM access SLOWER than CPU: loses both
  EXPECT_FALSE(pim_beats_fc_queue(slow_pim));
  EXPECT_FALSE(pim_beats_faa_queue(slow_pim));
}

TEST(Sec52, SingleSegmentHalvesThroughput) {
  EXPECT_NEAR(pim_queue_single_segment(kPaper),
              pim_queue_pipelined(kPaper) / 2, 1e-6);
}

TEST(Sec52, UnpipelinedPaysMessageLatencyPerRequest) {
  EXPECT_NEAR(pim_queue_unpipelined(kPaper),
              1e9 / (kPaper.pim() + kPaper.message()), 1e-3);
  EXPECT_LT(pim_queue_unpipelined(kPaper), pim_queue_pipelined(kPaper));
}

TEST(Sec52, SaturationNeedsTwoLmsgOverLpimCpus) {
  EXPECT_EQ(min_cpus_to_saturate_pim(kPaper), 6u);  // 2 * 600 / 200
}

}  // namespace
}  // namespace pimds::model
