// Scenario: a key-value store's ordered index served from PIM memory.
//
// This is the workload class the paper's introduction motivates: a large
// pointer-chasing index whose traversals blow past CPU caches. The PIM
// skip-list partitions the key space over the vaults, so index operations
// run next to the memory holding the nodes, and the per-vault request
// counters expose the load balance a storage engine would act on.
//
// The demo bulk-loads a keyspace, runs a mixed read-heavy workload from
// several client threads, and prints per-vault load plus a throughput
// comparison against the lock-free skip-list baseline running on the CPUs.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/lockfree_skiplist.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "core/pim_skiplist.hpp"

namespace {

constexpr std::uint64_t kKeySpace = 1 << 18;
constexpr int kClients = 2;
constexpr double kSeconds = 0.5;

template <typename Index>
double run_clients(Index& index) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      pimds::Xoshiro256 rng(77 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = rng.next_in(1, kKeySpace);
        const auto dice = rng.next_below(10);
        if (dice < 8) {
          index.contains(key);  // 80% lookups
        } else if (dice == 8) {
          index.add(key);
        } else {
          index.remove(key);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const std::uint64_t t0 = pimds::now_ns();
  pimds::spin_for_ns(static_cast<std::uint64_t>(kSeconds * 1e9));
  stop.store(true);
  for (auto& t : clients) t.join();
  return static_cast<double>(ops.load()) /
         (static_cast<double>(pimds::now_ns() - t0) * 1e-9);
}

}  // namespace

int main() {
  using namespace pimds;

  std::printf("KV index demo: %d clients, %llu-key space, 80/10/10 "
              "lookup/insert/delete\n\n",
              kClients, static_cast<unsigned long long>(kKeySpace));

  // PIM-managed index.
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = kKeySpace;
  core::PimSkipList pim_index(system, options);
  system.start();
  {
    Xoshiro256 rng(1);
    for (int i = 0; i < 100000; ++i) pim_index.add(rng.next_in(1, kKeySpace));
  }
  std::printf("bulk-loaded %zu keys into %zu vaults\n", pim_index.size(),
              config.num_vaults);

  const double pim_tput = run_clients(pim_index);
  std::printf("PIM skip-list index:      %.0f ops/s\n", pim_tput);
  std::printf("per-vault load (requests): ");
  for (const auto& vs : pim_index.vault_stats()) {
    std::printf("%lu ", static_cast<unsigned long>(vs.requests));
  }
  std::printf("\nper-vault resident keys:   ");
  for (const auto& vs : pim_index.vault_stats()) {
    std::printf("%lu ", static_cast<unsigned long>(vs.keys));
  }
  std::printf("\n");
  system.stop();

  // CPU lock-free baseline on the same workload.
  baselines::LockFreeSkipList cpu_index;
  {
    Xoshiro256 rng(1);
    for (int i = 0; i < 100000; ++i) cpu_index.add(rng.next_in(1, kKeySpace));
  }
  const double cpu_tput = run_clients(cpu_index);
  std::printf("lock-free CPU skip-list:  %.0f ops/s\n", cpu_tput);

  std::printf(
      "\nnote: without latency injection this compares raw emulation\n"
      "overhead, not the paper's model — on real silicon the PIM index's\n"
      "advantage is the Lcpu/Lpim gap (see bench/fig4_skiplists for the\n"
      "modeled comparison at scale).\n");
  return 0;
}
