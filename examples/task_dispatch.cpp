// Scenario: a multi-producer / multi-consumer task-dispatch pipeline built
// on the PIM FIFO queue (Section 5).
//
// Producers submit tasks, consumers execute them; the queue's enqueue and
// dequeue segments live in different vaults, so the two sides are served by
// different PIM cores in parallel. The demo validates end-to-end delivery
// (every task executed exactly once, per-producer order preserved) and
// reports how many segments the queue chained through.
#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "core/pim_fifo_queue.hpp"

int main() {
  using namespace pimds;

  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kTasksPerProducer = 50000;

  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimFifoQueue queue(system, {256, true});
  system.start();

  std::printf("dispatching %llu tasks from %d producers to %d consumers "
              "over %zu vaults...\n",
              static_cast<unsigned long long>(kProducers * kTasksPerProducer),
              kProducers, kConsumers, config.num_vaults);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kTasksPerProducer; ++i) {
        // Task id: producer in the high bits, sequence in the low bits.
        queue.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> result_sum{0};
  std::atomic<int> order_violations{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<std::int64_t> last(kProducers, -1);
      std::uint64_t local_sum = 0;
      while (executed.load() < kProducers * kTasksPerProducer) {
        const std::optional<std::uint64_t> task = queue.dequeue();
        if (!task) continue;  // producers still ramping up
        const auto producer = static_cast<int>(*task >> 32);
        const auto seq = static_cast<std::int64_t>(*task & 0xffffffff);
        if (seq <= last[producer]) order_violations.fetch_add(1);
        last[producer] = seq;
        local_sum += seq;  // "execute" the task
        executed.fetch_add(1);
      }
      result_sum.fetch_add(local_sum);
    });
  }
  for (auto& t : threads) t.join();
  system.stop();

  const std::uint64_t expected =
      kProducers * (kTasksPerProducer * (kTasksPerProducer - 1) / 2);
  std::printf("executed:          %llu tasks\n",
              static_cast<unsigned long long>(executed.load()));
  std::printf("checksum:          %s\n",
              result_sum.load() == expected ? "OK" : "MISMATCH");
  std::printf("per-producer FIFO: %s\n",
              order_violations.load() == 0 ? "preserved" : "VIOLATED");
  std::printf("segments chained:  %llu, stale-directory retries: %llu\n",
              static_cast<unsigned long long>(queue.segments_created()),
              static_cast<unsigned long long>(queue.rejections()));
  return order_violations.load() == 0 && result_sum.load() == expected ? 0 : 1;
}
