// Scenario: live rebalancing walkthrough (Section 4.2.1).
//
// A skewed tenant hammers the low end of the key space, overloading vault
// 0. While the workload keeps running, the operator splits the hot range
// and migrates slices to the idle vaults with the paper's non-blocking node
// migration protocol; the demo prints the directory and per-vault load at
// each step and verifies no key was lost.
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timing.hpp"
#include "common/zipf.hpp"
#include "core/pim_skiplist.hpp"

namespace {

void print_state(pimds::core::PimSkipList& index) {
  std::printf("  directory: ");
  for (const auto& e : index.partitions()) {
    std::printf("[%lu->v%zu] ", static_cast<unsigned long>(e.sentinel),
                e.vault);
  }
  std::printf("\n  vault keys/requests: ");
  for (const auto& vs : index.vault_stats()) {
    std::printf("%lu/%lu ", static_cast<unsigned long>(vs.keys),
                static_cast<unsigned long>(vs.requests));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pimds;

  constexpr std::uint64_t kKeyMax = 1 << 16;
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = kKeyMax;
  options.migrate_chunk = 16;
  core::PimSkipList index(system, options);
  system.start();

  // Ground truth for the final integrity check: every multiple of 7.
  std::set<std::uint64_t> truth;
  for (std::uint64_t k = 7; k <= kKeyMax; k += 7) {
    index.add(k);
    truth.insert(k);
  }
  std::printf("loaded %zu keys\n", index.size());
  print_state(index);

  // Skewed tenant: Zipf over the whole key space (mass lands in vault 0).
  std::atomic<bool> stop{false};
  std::thread tenant([&] {
    Xoshiro256 rng(9);
    ZipfGenerator zipf(kKeyMax, 0.99);
    while (!stop.load(std::memory_order_relaxed)) {
      index.contains(zipf.next(rng) + 1);
    }
  });
  spin_for_ns(200'000'000);
  std::printf("\nafter 200 ms of skewed traffic (vault 0 is hot):\n");
  print_state(index);

  // Live split: peel three slices off the hot partition onto vaults 1-3.
  for (std::size_t v = 1; v <= 3; ++v) {
    const std::uint64_t split = 16 * v;  // finer and finer head slices
    while (!index.migrate(split, v)) std::this_thread::yield();
    while (index.migration_active()) std::this_thread::yield();
    std::printf("\nmigrated [%lu, ...) to vault %zu, under load:\n",
                static_cast<unsigned long>(split), v);
    print_state(index);
  }

  spin_for_ns(200'000'000);
  std::printf("\nafter 200 ms more of the same traffic (spread out):\n");
  print_state(index);

  stop.store(true);
  tenant.join();

  // Integrity: every key still present, nothing extra.
  bool ok = index.size() == truth.size();
  for (std::uint64_t k = 1; k <= kKeyMax && ok; ++k) {
    if (index.contains(k) != (truth.count(k) > 0)) ok = false;
  }
  std::printf("\nintegrity after live migrations: %s (%zu keys)\n",
              ok ? "OK" : "CORRUPTED", index.size());
  system.stop();
  return ok ? 0 : 1;
}
