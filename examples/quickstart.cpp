// Quickstart: the three PIM-managed data structures in ~60 lines.
//
// A PimSystem emulates the near-memory hardware of the paper (one PIM-core
// thread per vault, message passing, optional latency injection). Data
// structures install their message handlers before start(); afterwards any
// number of application threads may call them concurrently.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/pim_fifo_queue.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"
#include "runtime/system.hpp"

int main() {
  using namespace pimds;

  // 1. Configure the emulated PIM memory: 4 vaults, no latency injection
  //    (set inject_latency = true to emulate the paper's Section 3 costs).
  runtime::PimSystem::Config config;
  config.num_vaults = 4;
  runtime::PimSystem system(config);

  // 2. Construct structures BEFORE starting the system: each installs its
  //    handler on the vault(s) it owns. A linked-list lives in one vault; a
  //    skip-list partitions the key space over all vaults; a FIFO queue
  //    spreads segments across them. (One structure per PimSystem: each
  //    vault has a single message handler, like a real PIM core runs a
  //    single dispatch loop.)
  runtime::PimSystem queue_config_system(config);
  core::PimSkipList::Options skip_options;
  skip_options.key_max = 1 << 20;
  core::PimSkipList index(system, skip_options);
  core::PimFifoQueue queue(queue_config_system, {1024, true});

  system.start();
  queue_config_system.start();

  // 3. Use them from any thread.
  index.add(42);
  index.add(7);
  std::printf("contains(42) = %d, contains(41) = %d, size = %zu\n",
              index.contains(42), index.contains(41), index.size());
  index.remove(42);
  std::printf("after remove: contains(42) = %d\n", index.contains(42));

  for (std::uint64_t i = 0; i < 5; ++i) queue.enqueue(i * 10);
  std::printf("queue: ");
  while (auto v = queue.dequeue()) std::printf("%lu ", (unsigned long)*v);
  std::printf("(empty)\n");

  // 4. The skip-list can rebalance online (Section 4.2.1): move the suffix
  //    [1000, end-of-partition) of its first partition to vault 2.
  index.migrate(1000, 2);
  while (index.migration_active()) {
  }
  std::printf("partitions after migration:\n");
  for (const auto& e : index.partitions()) {
    std::printf("  sentinel %lu -> vault %zu\n", (unsigned long)e.sentinel,
                e.vault);
  }

  system.stop();
  queue_config_system.stop();
  return 0;
}
