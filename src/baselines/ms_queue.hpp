// Michael-Scott lock-free FIFO queue, with epoch-based reclamation.
// Classic CAS-based baseline: both ends contend on a single cache line
// each, so throughput flattens under load — the motivating pathology for
// Section 5's contended-structure discussion.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "common/ebr.hpp"
#include "common/latency.hpp"

namespace pimds::baselines {

class MsQueue {
 public:
  MsQueue();
  ~MsQueue();

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  void enqueue(std::uint64_t value);
  std::optional<std::uint64_t> dequeue();

  bool empty() const noexcept {
    const Node* h = head_.value.load(std::memory_order_acquire);
    return h->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::uint64_t value;
    std::atomic<Node*> next{nullptr};

    explicit Node(std::uint64_t v) : value(v) {}
  };

  CachePadded<std::atomic<Node*>> head_;  // dummy-node convention
  CachePadded<std::atomic<Node*>> tail_;
  EbrDomain ebr_;
};

}  // namespace pimds::baselines
