// Michael-Scott lock-free FIFO queue, with pluggable safe-memory
// reclamation (common/reclaim.hpp: EBR or hazard pointers).
// Classic CAS-based baseline: both ends contend on a single cache line
// each, so throughput flattens under load — the motivating pathology for
// Section 5's contended-structure discussion.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/cacheline.hpp"
#include "common/latency.hpp"
#include "common/reclaim.hpp"

namespace pimds::baselines {

class MsQueue {
 public:
  explicit MsQueue(ReclaimPolicy policy = ReclaimPolicy::kEbr);
  ~MsQueue();

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  void enqueue(std::uint64_t value);
  std::optional<std::uint64_t> dequeue();

  bool empty() const noexcept {
    ReclaimGuard guard(*reclaim_);
    const Node* h = guard.protect(0, head_.value);
    return h->next.load(std::memory_order_acquire) == nullptr;
  }

  Reclaimer& reclaimer() noexcept { return *reclaim_; }

 private:
  struct Node {
    std::uint64_t value;
    std::atomic<Node*> next{nullptr};

    explicit Node(std::uint64_t v) : value(v) {}
  };

  // Hazard-slot naming: 0 = head/tail anchor, 1 = the successor.
  static constexpr unsigned kSlotAnchor = 0;
  static constexpr unsigned kSlotNext = 1;

  CachePadded<std::atomic<Node*>> head_;  // dummy-node convention
  CachePadded<std::atomic<Node*>> tail_;
  std::unique_ptr<Reclaimer> reclaim_;
};

}  // namespace pimds::baselines
