// Sorted linked-list with fine-grained (hand-over-hand) locking.
//
// The paper's Table 1 / Figure 2 baseline "linked-list with fine-grained
// locks": traversals hold at most two node locks at a time and pipeline
// down the list, so p threads proceed (almost) in parallel. Latency
// instrumentation hooks charge one CPU DRAM access per node hop when the
// process-wide injector is enabled, mirroring the Section 3 model.
#pragma once

#include <cstdint>
#include <mutex>

#include "baselines/spinlock.hpp"
#include "common/latency.hpp"

namespace pimds::baselines {

class HohList {
 public:
  HohList();
  ~HohList();

  HohList(const HohList&) = delete;
  HohList& operator=(const HohList&) = delete;

  /// Keys must be >= 1 and < UINT64_MAX (0 and UINT64_MAX are the dummy
  /// head and tail sentinels).
  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept;

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
    Spinlock lock;
  };

  /// Returns with prev and curr locked; curr is the first node >= key.
  void locate(std::uint64_t key, Node*& prev, Node*& curr);

  Node* head_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace pimds::baselines
