// Plain sequential structures wrapped by the flat-combining baselines.
// Latency hooks charge one CPU DRAM access per node hop when injection is
// enabled (the combiner is an ordinary CPU thread).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/latency.hpp"
#include "common/rng.hpp"

namespace pimds::baselines {

/// Sorted singly-linked list with a dummy head (key 0).
class SeqList {
 public:
  SeqList() : head_(new Node{0, nullptr}) {}
  ~SeqList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  SeqList(const SeqList&) = delete;
  SeqList& operator=(const SeqList&) = delete;

  struct Cursor {
    void* prev = nullptr;  ///< opaque resume point for ascending batches
  };

  bool add(std::uint64_t key) { return add_from(nullptr, key); }
  bool remove(std::uint64_t key) { return remove_from(nullptr, key); }
  bool contains(std::uint64_t key) const;

  /// Batched variants resuming from `cursor` (combining optimization):
  /// requests must arrive in ascending key order.
  bool add_from(Cursor* cursor, std::uint64_t key);
  bool remove_from(Cursor* cursor, std::uint64_t key);
  bool contains_from(Cursor* cursor, std::uint64_t key) const;

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  Node* resume_point(Cursor* cursor) const {
    if (cursor != nullptr && cursor->prev != nullptr) {
      return static_cast<Node*>(cursor->prev);
    }
    return head_;
  }

  /// Walk from `start` until the successor has key >= key.
  Node* walk(Node* start, std::uint64_t key) const {
    Node* prev = start;
    charge_cpu_access();
    while (prev->next != nullptr && prev->next->key < key) {
      charge_cpu_access();
      prev = prev->next;
    }
    return prev;
  }

  Node* head_;
  std::size_t size_ = 0;
};

/// Sequential skip-list (heap-allocated twin of core::LocalSkipList).
class SeqSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  explicit SeqSkipList(std::uint64_t sentinel_key = 0,
                       std::uint64_t seed = 0x5eed);
  ~SeqSkipList();

  SeqSkipList(const SeqSkipList&) = delete;
  SeqSkipList& operator=(const SeqSkipList&) = delete;

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    std::int32_t height;
    Node* next[1];
  };

  Node* make_node(std::uint64_t key, int height);
  Node* locate(std::uint64_t key, Node** preds) const;

  Node* head_;
  std::size_t size_ = 0;
  Xoshiro256 rng_;
};

}  // namespace pimds::baselines
