#include "baselines/fc_structures.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace pimds::baselines {

namespace {
using Records = std::vector<FlatCombiner<SetRequest, bool>::Record*>;
}

bool FcLinkedList::execute(SetRequest req) {
  return fc_.execute(req, [this](Records& batch) {
    if (combining_) {
      // One ascending traversal serves the whole batch (Section 4.1).
      std::sort(batch.begin(), batch.end(),
                [](const auto* a, const auto* b) {
                  return a->req.key < b->req.key;
                });
      SeqList::Cursor cursor;
      for (auto* rec : batch) {
        switch (rec->req.op) {
          case SetRequest::Op::kAdd:
            rec->res = list_.add_from(&cursor, rec->req.key);
            break;
          case SetRequest::Op::kRemove:
            rec->res = list_.remove_from(&cursor, rec->req.key);
            break;
          case SetRequest::Op::kContains:
            rec->res = list_.contains_from(&cursor, rec->req.key);
            break;
        }
      }
      return;
    }
    for (auto* rec : batch) {
      switch (rec->req.op) {
        case SetRequest::Op::kAdd:
          rec->res = list_.add(rec->req.key);
          break;
        case SetRequest::Op::kRemove:
          rec->res = list_.remove(rec->req.key);
          break;
        case SetRequest::Op::kContains:
          rec->res = list_.contains(rec->req.key);
          break;
      }
    }
  });
}

bool FcLinkedList::add(std::uint64_t key) {
  return execute({SetRequest::Op::kAdd, key});
}
bool FcLinkedList::remove(std::uint64_t key) {
  return execute({SetRequest::Op::kRemove, key});
}
bool FcLinkedList::contains(std::uint64_t key) {
  return execute({SetRequest::Op::kContains, key});
}

FcSkipList::FcSkipList(std::uint64_t key_range, std::size_t partitions)
    : key_range_(key_range) {
  assert(partitions >= 1);
  parts_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    Partition p;
    // Sentinel at the partition's lower bound minus one (keys start at 1).
    p.list = std::make_unique<SeqSkipList>(i * key_range / partitions,
                                           0x5eedULL + i);
    p.fc = std::make_unique<FlatCombiner<SetRequest, bool>>();
    parts_.push_back(std::move(p));
  }
}

std::size_t FcSkipList::route(std::uint64_t key) const {
  const std::size_t idx = static_cast<std::size_t>(
      (key - 1) * parts_.size() / key_range_);
  return idx >= parts_.size() ? parts_.size() - 1 : idx;
}

bool FcSkipList::execute(SetRequest req) {
  assert(req.key >= 1 && req.key <= key_range_);
  Partition& part = parts_[route(req.key)];
  return part.fc->execute(req, [&part](Records& batch) {
    // No combining for skip-lists: distant keys share no traversal prefix
    // (Section 4.2), so the combiner executes requests one by one.
    for (auto* rec : batch) {
      switch (rec->req.op) {
        case SetRequest::Op::kAdd:
          rec->res = part.list->add(rec->req.key);
          break;
        case SetRequest::Op::kRemove:
          rec->res = part.list->remove(rec->req.key);
          break;
        case SetRequest::Op::kContains:
          rec->res = part.list->contains(rec->req.key);
          break;
      }
    }
  });
}

bool FcSkipList::add(std::uint64_t key) {
  return execute({SetRequest::Op::kAdd, key});
}
bool FcSkipList::remove(std::uint64_t key) {
  return execute({SetRequest::Op::kRemove, key});
}
bool FcSkipList::contains(std::uint64_t key) {
  return execute({SetRequest::Op::kContains, key});
}

std::size_t FcSkipList::size() const noexcept {
  std::size_t total = 0;
  for (const Partition& p : parts_) total += p.list->size();
  return total;
}

void FcQueue::enqueue(std::uint64_t value) {
  enq_fc_.execute(value, [this](auto& batch) {
    const std::scoped_lock ends(ends_lock_);
    for (auto* rec : batch) {
      charge_cpu_access();  // queue-node write
      items_.push_back(rec->req);
      rec->res = true;
    }
  });
}

std::optional<std::uint64_t> FcQueue::dequeue() {
  return deq_fc_.execute(0, [this](auto& batch) {
    const std::scoped_lock ends(ends_lock_);
    for (auto* rec : batch) {
      charge_cpu_access();  // queue-node read
      if (items_.empty()) {
        rec->res = std::nullopt;
      } else {
        rec->res = items_.front();
        items_.pop_front();
      }
    }
  });
}

}  // namespace pimds::baselines
