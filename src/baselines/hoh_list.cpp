#include "baselines/hoh_list.hpp"

#include <cassert>
#include <limits>

namespace pimds::baselines {

namespace {
constexpr std::uint64_t kHeadKey = 0;
constexpr std::uint64_t kTailKey = std::numeric_limits<std::uint64_t>::max();
}  // namespace

HohList::HohList() {
  Node* tail = new Node{kTailKey, nullptr, {}};
  head_ = new Node{kHeadKey, tail, {}};
}

HohList::~HohList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void HohList::locate(std::uint64_t key, Node*& prev, Node*& curr) {
  prev = head_;
  prev->lock.lock();
  charge_cpu_access();
  curr = prev->next;
  curr->lock.lock();
  charge_cpu_access();
  while (curr->key < key) {
    prev->lock.unlock();
    prev = curr;
    curr = curr->next;
    curr->lock.lock();
    charge_cpu_access();
  }
}

bool HohList::add(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  Node* prev;
  Node* curr;
  locate(key, prev, curr);
  bool inserted = false;
  if (curr->key != key) {
    prev->next = new Node{key, curr, {}};
    size_.fetch_add(1, std::memory_order_relaxed);
    inserted = true;
  }
  curr->lock.unlock();
  prev->lock.unlock();
  return inserted;
}

bool HohList::remove(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  Node* prev;
  Node* curr;
  locate(key, prev, curr);
  bool removed = false;
  if (curr->key == key) {
    prev->next = curr->next;
    curr->lock.unlock();
    delete curr;  // safe: traversals lock curr before reading it, and no
                  // thread can reach it once unlinked while prev is locked
    size_.fetch_sub(1, std::memory_order_relaxed);
    removed = true;
    prev->lock.unlock();
    return removed;
  }
  curr->lock.unlock();
  prev->lock.unlock();
  return removed;
}

bool HohList::contains(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  Node* prev;
  Node* curr;
  locate(key, prev, curr);
  const bool present = curr->key == key;
  curr->lock.unlock();
  prev->lock.unlock();
  return present;
}

std::size_t HohList::size() const noexcept {
  return size_.load(std::memory_order_relaxed);
}

}  // namespace pimds::baselines
