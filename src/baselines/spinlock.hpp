// Tiny test-and-test-and-set spinlock used for per-node locks.
//
// One byte, so a node-plus-lock stays within a cache line; meets the
// Lockable requirements, so std::lock_guard / std::scoped_lock apply
// (CP.20: RAII, never plain lock/unlock).
#pragma once

#include <atomic>

#include "common/timing.hpp"
#include "common/spinwait.hpp"

namespace pimds::baselines {

class Spinlock {
 public:
  void lock() noexcept {
    SpinWait spin;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) spin.wait();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace pimds::baselines
