#include "baselines/lazy_list.hpp"

#include <cassert>
#include <limits>
#include <mutex>

namespace pimds::baselines {

namespace {
constexpr std::uint64_t kHeadKey = 0;
constexpr std::uint64_t kTailKey = std::numeric_limits<std::uint64_t>::max();
}  // namespace

LazyList::LazyList(ReclaimPolicy policy)
    : reclaim_(make_reclaimer(policy, "baselines.lazy_list")) {
  Node* tail = new Node(kTailKey, nullptr);
  head_ = new Node(kHeadKey, tail);
}

LazyList::~LazyList() {
  reclaim_->reclaim_all_unsafe();  // frees unlinked-but-unreclaimed nodes
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

void LazyList::locate(ReclaimGuard& guard, std::uint64_t key, Node*& prev,
                      Node*& curr) const {
  const bool hp = guard.validating();
  for (;;) {  // outer loop only re-entered under hazard pointers
    prev = head_;
    charge_cpu_access();
    curr = guard.protect(kSlotCurr, prev->next);
    bool restart = false;
    while (curr->key < key) {
      charge_cpu_access();
      prev = curr;
      guard.republish(kSlotPrev, prev);  // prev stays covered by old hazard
      curr = guard.protect(kSlotCurr, prev->next);
      // If prev is unmarked here, it was reachable when the curr hazard
      // was validated, so curr cannot have been retired before the hazard
      // published. A marked prev's next is frozen and may lead into
      // already-retired nodes — restart from the head. (EBR never needs
      // this: the guard pins the whole epoch.)
      if (hp && prev->marked.load(std::memory_order_acquire)) {
        restart = true;
        break;
      }
    }
    if (!restart) return;
  }
}

bool LazyList::add(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  for (;;) {
    Node* prev;
    Node* curr;
    locate(guard, key, prev, curr);
    std::scoped_lock both(prev->lock, curr->lock);
    if (!validate(prev, curr)) continue;  // raced with a remove: retry
    if (curr->key == key) return false;
    Node* node = new Node(key, curr);
    prev->next.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool LazyList::remove(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  for (;;) {
    Node* prev;
    Node* curr;
    locate(guard, key, prev, curr);
    std::scoped_lock both(prev->lock, curr->lock);
    if (!validate(prev, curr)) continue;
    if (curr->key != key) return false;
    curr->marked.store(true, std::memory_order_release);  // logical delete
    prev->next.store(curr->next.load(std::memory_order_relaxed),
                     std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    guard.retire(curr);
    return true;
  }
}

bool LazyList::contains(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  // The original wait-free walk is only sound under EBR (any reachable-at-
  // guard-entry node stays allocated). Hazard pointers need the validating
  // hand-over-hand walk, so both paths share locate().
  Node* prev;
  Node* curr;
  locate(guard, key, prev, curr);
  return curr->key == key && !curr->marked.load(std::memory_order_acquire);
}

}  // namespace pimds::baselines
