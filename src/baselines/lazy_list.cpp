#include "baselines/lazy_list.hpp"

#include <cassert>
#include <limits>
#include <mutex>

namespace pimds::baselines {

namespace {
constexpr std::uint64_t kHeadKey = 0;
constexpr std::uint64_t kTailKey = std::numeric_limits<std::uint64_t>::max();
}  // namespace

LazyList::LazyList() {
  Node* tail = new Node(kTailKey, nullptr);
  head_ = new Node(kHeadKey, tail);
}

LazyList::~LazyList() {
  ebr_.reclaim_all_unsafe();  // frees unlinked-but-unreclaimed nodes
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

void LazyList::locate(std::uint64_t key, Node*& prev, Node*& curr) const {
  prev = head_;
  charge_cpu_access();
  curr = prev->next.load(std::memory_order_acquire);
  while (curr->key < key) {
    charge_cpu_access();
    prev = curr;
    curr = curr->next.load(std::memory_order_acquire);
  }
}

bool LazyList::add(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  EbrDomain::Guard guard(ebr_);
  for (;;) {
    Node* prev;
    Node* curr;
    locate(key, prev, curr);
    std::scoped_lock both(prev->lock, curr->lock);
    if (!validate(prev, curr)) continue;  // raced with a remove: retry
    if (curr->key == key) return false;
    Node* node = new Node(key, curr);
    prev->next.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool LazyList::remove(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  EbrDomain::Guard guard(ebr_);
  for (;;) {
    Node* prev;
    Node* curr;
    locate(key, prev, curr);
    std::scoped_lock both(prev->lock, curr->lock);
    if (!validate(prev, curr)) continue;
    if (curr->key != key) return false;
    curr->marked.store(true, std::memory_order_release);  // logical delete
    prev->next.store(curr->next.load(std::memory_order_relaxed),
                     std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
    ebr_.retire(curr);
    return true;
  }
}

bool LazyList::contains(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  EbrDomain::Guard guard(ebr_);
  const Node* curr = head_;
  charge_cpu_access();
  while (curr->key < key) {
    charge_cpu_access();
    curr = curr->next.load(std::memory_order_acquire);
  }
  return curr->key == key && !curr->marked.load(std::memory_order_acquire);
}

}  // namespace pimds::baselines
