#include "baselines/lockfree_skiplist.hpp"

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <limits>
#include <new>
#include <thread>

namespace pimds::baselines {

namespace {
constexpr std::uint64_t kHeadKey = 0;
constexpr std::uint64_t kTailKey = std::numeric_limits<std::uint64_t>::max();

// Per-thread tower-height generator; the stream does not need coordination.
thread_local Xoshiro256 t_height_rng{0x9e3779b97f4a7c15ULL ^
                                     std::hash<std::thread::id>{}(
                                         std::this_thread::get_id())};
}  // namespace

LockFreeSkipList::Node* LockFreeSkipList::make_node(std::uint64_t key,
                                                    int top_level) {
  const std::size_t bytes =
      offsetof(Node, next) +
      static_cast<std::size_t>(top_level + 1) * sizeof(std::atomic<std::uintptr_t>);
  auto* node = static_cast<Node*>(operator new(bytes));
  node->key = key;
  node->top_level = top_level;
  for (int lvl = 0; lvl <= top_level; ++lvl) {
    ::new (&node->next[lvl]) std::atomic<std::uintptr_t>(0);
  }
  return node;
}

void LockFreeSkipList::free_node(void* p) { operator delete(p); }

LockFreeSkipList::LockFreeSkipList(ReclaimPolicy policy)
    : reclaim_(make_reclaimer(policy, "baselines.lockfree_skiplist")) {
  head_ = make_node(kHeadKey, kMaxHeight - 1);
  tail_ = make_node(kTailKey, kMaxHeight - 1);
  for (int lvl = 0; lvl < kMaxHeight; ++lvl) {
    head_->next[lvl].store(tag(tail_, false), std::memory_order_relaxed);
    tail_->next[lvl].store(tag(nullptr, false), std::memory_order_relaxed);
  }
}

LockFreeSkipList::~LockFreeSkipList() {
  reclaim_->reclaim_all_unsafe();
  Node* n = head_;
  while (n != nullptr) {
    Node* next = ptr_of(n->next[0].load(std::memory_order_relaxed));
    free_node(n);
    n = next;
  }
}

int LockFreeSkipList::random_height() {
  int h = 1;
  while (h < kMaxHeight && t_height_rng.next_bool(0.5)) ++h;
  return h;
}

// Hazard-pointer safety sketch (all of it folds away under EBR, where the
// guard pins the epoch and every protect is a plain acquire load):
//   - pred is covered continuously: it starts as the immortal head and only
//     advances to nodes already covered by the curr hazard (republish).
//   - protect_word validates the full word, so an unmarked stable
//     pred->next[lvl] proves pred was not logically deleted at that level
//     at validation time — hence still physically linked (unlink requires
//     the mark first), hence curr was reachable and not yet retired when
//     the hazard published.
//   - a marked word read through pred means pred's next is frozen and may
//     lead into retired nodes: restart from the head.
//   - in the helping loop the unlink CAS's success proves curr was still
//     pred's live successor, so the frozen curr->next target (succ, hazard
//     published before the CAS) had not been retired before publication.
bool LockFreeSkipList::find(ReclaimGuard& guard, std::uint64_t key,
                            Node** preds, Node** succs) {
  const bool hp = guard.validating();
retry:
  Node* pred = head_;
  guard.republish(kSlotPred, pred);
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    std::uintptr_t curr_word =
        guard.protect_word(kSlotCurr, pred->next[lvl], kPtrMask);
    charge_cpu_access();
    if (hp && marked(curr_word)) goto retry;  // pred deleted at this level
    Node* curr = ptr_of(curr_word);
    for (;;) {
      std::uintptr_t succ_word =
          guard.protect_word(kSlotSucc, curr->next[lvl], kPtrMask);
      // Help: physically unlink nodes marked at this level.
      while (marked(succ_word)) {
        Node* succ = ptr_of(succ_word);
        std::uintptr_t expected = tag(curr, false);
        if (!pred->next[lvl].compare_exchange_strong(
                expected, tag(succ, false), std::memory_order_acq_rel)) {
          goto retry;
        }
        charge_atomic();
        curr = succ;
        guard.republish(kSlotCurr, curr);  // still covered by the succ slot
        succ_word = guard.protect_word(kSlotSucc, curr->next[lvl], kPtrMask);
        charge_cpu_access();
      }
      if (curr->key < key) {
        pred = curr;
        guard.republish(kSlotPred, pred);
        curr = ptr_of(succ_word);
        guard.republish(kSlotCurr, curr);
        charge_cpu_access();
      } else {
        break;
      }
    }
    preds[lvl] = pred;
    succs[lvl] = curr;
    guard.republish(pred_slot(lvl), pred);
    guard.republish(succ_slot(lvl), curr);
  }
  return succs[0]->key == key;
}

bool LockFreeSkipList::add(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  const int top = random_height() - 1;
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  Node* node = nullptr;
  for (;;) {
    if (find(guard, key, preds, succs)) {
      if (node != nullptr) free_node(node);  // never linked: safe to free
      return false;
    }
    if (node == nullptr) node = make_node(key, top);
    for (int lvl = 0; lvl <= top; ++lvl) {
      node->next[lvl].store(tag(succs[lvl], false),
                            std::memory_order_relaxed);
    }
    // The node becomes shared at the bottom splice, after which a racing
    // remove may retire it mid-tower-build — pin it first (it is still
    // private here, so the raw publish cannot miss a retirement).
    guard.republish(kSlotSelf, node);
    // Linearization: splice at the bottom level.
    std::uintptr_t expected = tag(succs[0], false);
    if (!preds[0]->next[0].compare_exchange_strong(
            expected, tag(node, false), std::memory_order_acq_rel)) {
      continue;  // contended: recompute the windows
    }
    charge_atomic();
    size_.fetch_add(1, std::memory_order_relaxed);
    // Build the tower; helpers may be unlinking concurrently, so refresh
    // the windows whenever a splice fails.
    for (int lvl = 1; lvl <= top; ++lvl) {
      for (;;) {
        std::uintptr_t mine = node->next[lvl].load(std::memory_order_acquire);
        if (marked(mine)) return true;  // removed while being built: stop
        expected = tag(succs[lvl], false);
        if (preds[lvl]->next[lvl].compare_exchange_strong(
                expected, tag(node, false), std::memory_order_acq_rel)) {
          charge_atomic();
          break;
        }
        find(guard, key, preds, succs);  // refresh preds/succs
        if (succs[lvl] != node) {
          // The node got removed (and possibly unlinked) at this level
          // before we could splice it in; abandon the upper tower.
          return true;
        }
        const std::uintptr_t updated =
            node->next[lvl].load(std::memory_order_acquire);
        if (marked(updated)) return true;
        if (ptr_of(updated) != succs[lvl]) {
          std::uintptr_t want = updated;
          if (!node->next[lvl].compare_exchange_strong(
                  want, tag(succs[lvl], false), std::memory_order_acq_rel)) {
            return true;  // concurrently marked
          }
        }
      }
    }
    return true;
  }
}

bool LockFreeSkipList::remove(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  if (!find(guard, key, preds, succs)) return false;
  Node* victim = succs[0];  // pinned by succ_slot(0) until the guard drops
  // Mark the upper levels top-down; contention is benign.
  for (int lvl = victim->top_level; lvl >= 1; --lvl) {
    std::uintptr_t w = victim->next[lvl].load(std::memory_order_acquire);
    while (!marked(w)) {
      victim->next[lvl].compare_exchange_weak(w, tag(ptr_of(w), true),
                                              std::memory_order_acq_rel);
    }
  }
  // Level 0 decides who wins the removal.
  std::uintptr_t w = victim->next[0].load(std::memory_order_acquire);
  for (;;) {
    if (marked(w)) return false;  // somebody else removed it
    if (victim->next[0].compare_exchange_strong(w, tag(ptr_of(w), true),
                                                std::memory_order_acq_rel)) {
      charge_atomic();
      break;
    }
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  find(guard, key, preds, succs);  // physically unlink via helping
  guard.retire(victim, &LockFreeSkipList::free_node);
  return true;
}

bool LockFreeSkipList::contains(std::uint64_t key) {
  assert(key > kHeadKey && key < kTailKey);
  ReclaimGuard guard(*reclaim_);
  if (guard.validating()) {
    // The wait-free walk below skips through marked nodes without hazards,
    // which is unsound once retired nodes can be freed under a live guard;
    // hazard pointers take the validating (helping) find() instead.
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    return find(guard, key, preds, succs);
  }
  Node* pred = head_;
  Node* curr = nullptr;
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    curr = ptr_of(pred->next[lvl].load(std::memory_order_acquire));
    charge_cpu_access();
    for (;;) {
      std::uintptr_t succ_word =
          curr->next[lvl].load(std::memory_order_acquire);
      while (marked(succ_word)) {  // skip logically deleted nodes
        curr = ptr_of(succ_word);
        succ_word = curr->next[lvl].load(std::memory_order_acquire);
        charge_cpu_access();
      }
      if (curr->key < key) {
        pred = curr;
        curr = ptr_of(succ_word);
        charge_cpu_access();
      } else {
        break;
      }
    }
  }
  return curr->key == key;
}

}  // namespace pimds::baselines
