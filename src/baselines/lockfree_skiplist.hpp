// Lock-free skip-list (Herlihy & Shavit, "The Art of Multiprocessor
// Programming" — the paper's citation [27]), with epoch-based reclamation.
//
// Deleted nodes are marked (low tag bit on each forward pointer) before
// being physically unlinked by helping traversals; contains() is wait-free.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/ebr.hpp"
#include "common/latency.hpp"
#include "common/rng.hpp"

namespace pimds::baselines {

class LockFreeSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  LockFreeSkipList();
  ~LockFreeSkipList();

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  /// Keys must be in (0, UINT64_MAX) — the sentinels take the extremes.
  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Node;

  /// Tagged pointer: bit 0 marks the *containing* node as logically deleted
  /// at that level.
  static Node* ptr_of(std::uintptr_t v) noexcept {
    return reinterpret_cast<Node*>(v & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t v) noexcept { return (v & 1) != 0; }
  static std::uintptr_t tag(Node* p, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) |
           static_cast<std::uintptr_t>(mark);
  }

  struct Node {
    std::uint64_t key;
    std::int32_t top_level;  // links exist on [0, top_level]
    std::atomic<std::uintptr_t> next[1];
  };

  static Node* make_node(std::uint64_t key, int top_level);
  static void free_node(void* p);

  /// Herlihy-Shavit find(): fills preds/succs on every level, physically
  /// unlinking marked nodes along the way. Returns true if an unmarked node
  /// with `key` sits at level 0.
  bool find(std::uint64_t key, Node** preds, Node** succs);

  int random_height();

  Node* head_;
  Node* tail_;
  std::atomic<std::size_t> size_{0};
  EbrDomain ebr_;
};

}  // namespace pimds::baselines
