// Lock-free skip-list (Herlihy & Shavit, "The Art of Multiprocessor
// Programming" — the paper's citation [27]), with pluggable safe-memory
// reclamation (common/reclaim.hpp: EBR or hazard pointers).
//
// Deleted nodes are marked (low tag bit on each forward pointer) before
// being physically unlinked by helping traversals; contains() is wait-free
// under EBR and shares the validating find() under hazard pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/latency.hpp"
#include "common/reclaim.hpp"
#include "common/rng.hpp"

namespace pimds::baselines {

class LockFreeSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  explicit LockFreeSkipList(ReclaimPolicy policy = ReclaimPolicy::kEbr);
  ~LockFreeSkipList();

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  /// Keys must be in (0, UINT64_MAX) — the sentinels take the extremes.
  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  Reclaimer& reclaimer() noexcept { return *reclaim_; }

 private:
  struct Node;

  /// Tagged pointer: bit 0 marks the *containing* node as logically deleted
  /// at that level.
  static Node* ptr_of(std::uintptr_t v) noexcept {
    return reinterpret_cast<Node*>(v & ~std::uintptr_t{1});
  }
  static bool marked(std::uintptr_t v) noexcept { return (v & 1) != 0; }
  static std::uintptr_t tag(Node* p, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(p) |
           static_cast<std::uintptr_t>(mark);
  }
  static constexpr std::uintptr_t kPtrMask = ~std::uintptr_t{1};

  struct Node {
    std::uint64_t key;
    std::int32_t top_level;  // links exist on [0, top_level]
    std::atomic<std::uintptr_t> next[1];
  };

  // Hazard-slot layout. The traversal slots rotate hand-over-hand; the
  // per-level slots keep every preds[lvl]/succs[lvl] pinned from the find()
  // that produced them until the guard (or the next find) releases them.
  // Max slot used: succ_slot(15) = 35 < Reclaimer::kGuardSlots.
  static constexpr unsigned kSlotPred = 0;
  static constexpr unsigned kSlotCurr = 1;
  static constexpr unsigned kSlotSucc = 2;
  static constexpr unsigned kSlotSelf = 3;  // add()'s own node during build
  static constexpr unsigned pred_slot(int lvl) noexcept {
    return 4 + 2 * static_cast<unsigned>(lvl);
  }
  static constexpr unsigned succ_slot(int lvl) noexcept {
    return 5 + 2 * static_cast<unsigned>(lvl);
  }

  static Node* make_node(std::uint64_t key, int top_level);
  static void free_node(void* p);

  /// Herlihy-Shavit find(): fills preds/succs on every level, physically
  /// unlinking marked nodes along the way. Returns true if an unmarked node
  /// with `key` sits at level 0. `guard` must be the caller's live guard;
  /// under hazard pointers every preds/succs entry is left protected by its
  /// per-level slot.
  bool find(ReclaimGuard& guard, std::uint64_t key, Node** preds,
            Node** succs);

  int random_height();

  Node* head_;
  Node* tail_;
  std::atomic<std::size_t> size_{0};
  std::unique_ptr<Reclaimer> reclaim_;
};

}  // namespace pimds::baselines
