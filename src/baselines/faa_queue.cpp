#include "baselines/faa_queue.hpp"

#include <algorithm>
#include <cassert>

namespace pimds::baselines {

FaaQueue::Segment::Segment() {
  for (auto& cell : cells) cell.store(kEmpty, std::memory_order_relaxed);
}

void FaaQueue::free_segment(void* p) { delete static_cast<Segment*>(p); }

FaaQueue::FaaQueue(ReclaimPolicy policy)
    : reclaim_(make_reclaimer(policy, "baselines.faa_queue")) {
  Segment* initial = new Segment();
  head_.value.store(initial, std::memory_order_relaxed);
  tail_.value.store(initial, std::memory_order_relaxed);
}

FaaQueue::~FaaQueue() {
  reclaim_->reclaim_all_unsafe();
  Segment* s = head_.value.load(std::memory_order_relaxed);
  while (s != nullptr) {
    Segment* next = s->next.load(std::memory_order_relaxed);
    delete s;
    s = next;
  }
}

void FaaQueue::enqueue(std::uint64_t value) {
  assert(value != kEmpty && value != kTaken);
  ReclaimGuard guard(*reclaim_);
  for (;;) {
    // Safe to dereference under hazard pointers because a drained segment
    // is only retired after the tail has been helped past it (see
    // dequeue), so tail_ == t at validation time implies t is not retired.
    Segment* t = guard.protect(kSlotAnchor, tail_.value);
    const std::uint64_t i =
        t->enq_idx.value.fetch_add(1, std::memory_order_acq_rel);
    charge_atomic();
    if (i < kSegmentCells) {
      std::uint64_t expected = kEmpty;
      if (t->cells[i].compare_exchange_strong(expected, value,
                                              std::memory_order_acq_rel)) {
        charge_cpu_access();  // the cell write
        return;
      }
      continue;  // a dequeuer burned this cell; take a fresh ticket
    }
    // Segment full: append a new one (or help whoever already did).
    Segment* next = t->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Segment* fresh = new Segment();
      fresh->enq_idx.value.store(1, std::memory_order_relaxed);
      fresh->cells[0].store(value, std::memory_order_relaxed);
      Segment* expected_next = nullptr;
      if (t->next.compare_exchange_strong(expected_next, fresh,
                                          std::memory_order_acq_rel)) {
        tail_.value.compare_exchange_strong(t, fresh,
                                            std::memory_order_acq_rel);
        charge_atomic();
        return;
      }
      delete fresh;
    } else {
      tail_.value.compare_exchange_strong(t, next, std::memory_order_acq_rel);
    }
  }
}

std::optional<std::uint64_t> FaaQueue::dequeue() {
  ReclaimGuard guard(*reclaim_);
  for (;;) {
    Segment* h = guard.protect(kSlotAnchor, head_.value);
    // Empty probe before consuming a ticket, so an idle dequeuer does not
    // burn cells forever on an empty queue.
    const std::uint64_t deq = h->deq_idx.value.load(std::memory_order_acquire);
    const std::uint64_t enq = std::min<std::uint64_t>(
        h->enq_idx.value.load(std::memory_order_acquire), kSegmentCells);
    if (deq >= enq && h->next.load(std::memory_order_acquire) == nullptr) {
      return std::nullopt;
    }
    const std::uint64_t i =
        h->deq_idx.value.fetch_add(1, std::memory_order_acq_rel);
    charge_atomic();
    if (i < kSegmentCells) {
      const std::uint64_t v =
          h->cells[i].exchange(kTaken, std::memory_order_acq_rel);
      charge_cpu_access();  // the cell read
      if (v != kEmpty) return v;
      continue;  // overtook the enqueuer: cell burned, try the next ticket
    }
    // Segment drained: advance the head and retire the old segment. The
    // tail must be helped off `h` first — otherwise an enqueuer could
    // validate tail_ == h after h was retired and touch freed memory.
    Segment* next = guard.protect(kSlotNext, h->next);
    if (next == nullptr) return std::nullopt;
    Segment* t = tail_.value.load(std::memory_order_acquire);
    if (t == h) {
      tail_.value.compare_exchange_strong(t, next, std::memory_order_acq_rel);
    }
    if (head_.value.compare_exchange_strong(h, next,
                                            std::memory_order_acq_rel)) {
      guard.retire(h, &FaaQueue::free_segment);
    }
  }
}

}  // namespace pimds::baselines
