#include "baselines/ms_queue.hpp"

namespace pimds::baselines {

MsQueue::MsQueue(ReclaimPolicy policy)
    : reclaim_(make_reclaimer(policy, "baselines.ms_queue")) {
  Node* dummy = new Node(0);
  head_.value.store(dummy, std::memory_order_relaxed);
  tail_.value.store(dummy, std::memory_order_relaxed);
}

MsQueue::~MsQueue() {
  reclaim_->reclaim_all_unsafe();
  Node* n = head_.value.load(std::memory_order_relaxed);
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

void MsQueue::enqueue(std::uint64_t value) {
  ReclaimGuard guard(*reclaim_);
  Node* node = new Node(value);
  charge_cpu_access();  // the node write
  for (;;) {
    // protect() re-validates tail_ == last after publishing, which is what
    // makes dereferencing `last` safe under hazard pointers: the tail never
    // points at a retired node (dequeue never advances head past the tail).
    Node* last = guard.protect(kSlotAnchor, tail_.value);
    Node* next = last->next.load(std::memory_order_acquire);
    if (last != tail_.value.load(std::memory_order_acquire)) continue;
    if (next == nullptr) {
      if (last->next.compare_exchange_weak(next, node,
                                           std::memory_order_acq_rel)) {
        charge_atomic();
        tail_.value.compare_exchange_strong(last, node,
                                            std::memory_order_acq_rel);
        return;
      }
    } else {
      // Help a lagging enqueuer swing the tail.
      tail_.value.compare_exchange_strong(last, next,
                                          std::memory_order_acq_rel);
    }
  }
}

std::optional<std::uint64_t> MsQueue::dequeue() {
  ReclaimGuard guard(*reclaim_);
  for (;;) {
    Node* first = guard.protect(kSlotAnchor, head_.value);
    Node* last = tail_.value.load(std::memory_order_acquire);
    Node* next = guard.protect(kSlotNext, first->next);
    // Re-check AFTER the hazard on `next` is published: head_ == first
    // proves first is not yet retired, hence its successor not yet either
    // (Michael's dequeue protocol).
    if (first != head_.value.load(std::memory_order_acquire)) continue;
    if (next == nullptr) return std::nullopt;  // empty
    if (first == last) {
      // Tail lagging behind a half-finished enqueue: help it.
      tail_.value.compare_exchange_strong(last, next,
                                          std::memory_order_acq_rel);
      continue;
    }
    charge_cpu_access();  // reading the node
    const std::uint64_t value = next->value;
    if (head_.value.compare_exchange_weak(first, next,
                                          std::memory_order_acq_rel)) {
      charge_atomic();
      guard.retire(first);
      return value;
    }
  }
}

}  // namespace pimds::baselines
