#include "baselines/ms_queue.hpp"

namespace pimds::baselines {

MsQueue::MsQueue() {
  Node* dummy = new Node(0);
  head_.value.store(dummy, std::memory_order_relaxed);
  tail_.value.store(dummy, std::memory_order_relaxed);
}

MsQueue::~MsQueue() {
  ebr_.reclaim_all_unsafe();
  Node* n = head_.value.load(std::memory_order_relaxed);
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

void MsQueue::enqueue(std::uint64_t value) {
  EbrDomain::Guard guard(ebr_);
  Node* node = new Node(value);
  charge_cpu_access();  // the node write
  for (;;) {
    Node* last = tail_.value.load(std::memory_order_acquire);
    Node* next = last->next.load(std::memory_order_acquire);
    if (last != tail_.value.load(std::memory_order_acquire)) continue;
    if (next == nullptr) {
      if (last->next.compare_exchange_weak(next, node,
                                           std::memory_order_acq_rel)) {
        charge_atomic();
        tail_.value.compare_exchange_strong(last, node,
                                            std::memory_order_acq_rel);
        return;
      }
    } else {
      // Help a lagging enqueuer swing the tail.
      tail_.value.compare_exchange_strong(last, next,
                                          std::memory_order_acq_rel);
    }
  }
}

std::optional<std::uint64_t> MsQueue::dequeue() {
  EbrDomain::Guard guard(ebr_);
  for (;;) {
    Node* first = head_.value.load(std::memory_order_acquire);
    Node* last = tail_.value.load(std::memory_order_acquire);
    Node* next = first->next.load(std::memory_order_acquire);
    if (first != head_.value.load(std::memory_order_acquire)) continue;
    if (next == nullptr) return std::nullopt;  // empty
    if (first == last) {
      // Tail lagging behind a half-finished enqueue: help it.
      tail_.value.compare_exchange_strong(last, next,
                                          std::memory_order_acq_rel);
      continue;
    }
    charge_cpu_access();  // reading the node
    const std::uint64_t value = next->value;
    if (head_.value.compare_exchange_weak(first, next,
                                          std::memory_order_acq_rel)) {
      charge_atomic();
      ebr_.retire(first);
      return value;
    }
  }
}

}  // namespace pimds::baselines
