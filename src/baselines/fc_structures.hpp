// Flat-combining data structures used as baselines throughout the paper:
// the FC linked-list (with and without the combining optimization,
// Section 4.1 / Figure 2), the FC skip-list with k partitions
// (Section 4.2 / Figure 4), and the FC FIFO queue with separate enqueue and
// dequeue combiner locks (Section 5.2).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/flat_combining.hpp"
#include "baselines/seq_structures.hpp"

namespace pimds::baselines {

struct SetRequest {
  enum class Op : std::uint8_t { kAdd, kRemove, kContains };
  Op op = Op::kContains;
  std::uint64_t key = 0;
};

/// Flat-combining sorted linked-list.
class FcLinkedList {
 public:
  /// @param combining serve each batch in one ascending traversal
  ///        (Section 4.1) instead of one traversal per request.
  explicit FcLinkedList(bool combining = true) : combining_(combining) {}

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept { return list_.size(); }
  std::size_t max_combined() const noexcept { return fc_.max_combined(); }

 private:
  bool execute(SetRequest req);

  bool combining_;
  SeqList list_;
  FlatCombiner<SetRequest, bool> fc_;
};

/// Flat-combining skip-list, statically partitioned into k key ranges with
/// one combiner (and one sequential skip-list) per partition.
class FcSkipList {
 public:
  /// Keys must lie in [1, key_range].
  FcSkipList(std::uint64_t key_range, std::size_t partitions);

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept;
  std::size_t partitions() const noexcept { return parts_.size(); }

 private:
  struct Partition {
    std::unique_ptr<SeqSkipList> list;
    std::unique_ptr<FlatCombiner<SetRequest, bool>> fc;
  };

  bool execute(SetRequest req);
  std::size_t route(std::uint64_t key) const;

  std::uint64_t key_range_;
  std::vector<Partition> parts_;
};

/// Flat-combining FIFO queue with two combiner locks, one for enqueues and
/// one for dequeues (the Section 5.2 variant: both sides proceed in
/// parallel, like the F&A and PIM queues).
class FcQueue {
 public:
  void enqueue(std::uint64_t value);
  std::optional<std::uint64_t> dequeue();

  std::size_t size() const noexcept { return items_.size(); }

 private:
  std::deque<std::uint64_t> items_;
  // The deque is shared by both combiners; enqueues touch the back,
  // dequeues the front. A tiny lock arbitrates the (rare) structural
  // overlap — the paper's simplified FC queue assumes a long queue where
  // the two ends never meet.
  Spinlock ends_lock_;
  FlatCombiner<std::uint64_t, bool> enq_fc_;
  FlatCombiner<int, std::optional<std::uint64_t>> deq_fc_;
};

}  // namespace pimds::baselines
