// Flat combining (Hendler, Incze, Shavit, Tzafrir [25]) — real-thread
// harness.
//
// Each thread owns a publication slot. To execute an operation, a thread
// publishes its request and competes for the combiner lock; the winner
// scans the publication list, executes every pending request against the
// sequential structure (the data structure chooses HOW: one at a time, or
// batched in a single traversal — the Section 4.1 combining optimization),
// writes results back, and releases the lock. Losers spin on their own
// slot, periodically re-trying the lock in case the combiner retired before
// serving them.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/spinlock.hpp"
#include "common/cacheline.hpp"
#include "common/latency.hpp"
#include "common/spinwait.hpp"
#include "common/timing.hpp"

namespace pimds::baselines {

template <typename Req, typename Res, std::size_t MaxThreads = 128>
class FlatCombiner {
 public:
  struct Record {
    Req req{};
    Res res{};
    std::atomic<std::uint32_t> state{kEmpty};
  };

  FlatCombiner() = default;
  FlatCombiner(const FlatCombiner&) = delete;
  FlatCombiner& operator=(const FlatCombiner&) = delete;

  /// Execute `req`, either as the combiner or by waiting for one.
  /// `serve` receives the pending records (including the caller's) and must
  /// fill `rec->res` for each; the harness publishes the DONE states.
  template <typename ServeFn>
  Res execute(Req req, ServeFn&& serve) {
    Record& mine = slots_[slot_index()].value;
    mine.req = std::move(req);
    mine.state.store(kPending, std::memory_order_release);
    charge_llc_access();  // competing for the combiner lock (Section 5.2)
    for (;;) {
      if (lock_.try_lock()) {
        combine(serve);
        lock_.unlock();
        if (mine.state.load(std::memory_order_acquire) == kDone) break;
        continue;  // our slot was published after the scan: go again
      }
      SpinWait spin;
      while (mine.state.load(std::memory_order_acquire) != kDone &&
             lock_locked()) {
        spin.wait();
      }
      if (mine.state.load(std::memory_order_acquire) == kDone) break;
      // Lock free but our request unserved: compete again.
    }
    mine.state.store(kEmpty, std::memory_order_relaxed);
    return std::move(mine.res);
  }

  /// Highest number of requests one combining pass has served (diagnostic).
  std::size_t max_combined() const noexcept {
    return max_combined_.value.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kPending = 1;
  static constexpr std::uint32_t kDone = 2;

  bool lock_locked() noexcept {
    // TTAS lock exposes no is_locked; probing with try_lock would bounce
    // the line, so track a combiner-active flag instead.
    return combiner_active_.value.load(std::memory_order_acquire);
  }

  template <typename ServeFn>
  void combine(ServeFn&& serve) {
    combiner_active_.value.store(true, std::memory_order_release);
    const std::size_t n = registered_.load(std::memory_order_acquire);
    // Re-scan until a pass finds nothing, so a request published during our
    // last batch is not stranded behind a released lock.
    for (;;) {
      batch_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        Record& rec = slots_[i].value;
        if (rec.state.load(std::memory_order_acquire) == kPending) {
          charge_llc_access();  // combiner reads the request slot
          batch_.push_back(&rec);
        }
      }
      if (batch_.empty()) break;
      serve(batch_);
      for (Record* rec : batch_) {
        charge_llc_access();  // combiner writes the result slot
        rec->state.store(kDone, std::memory_order_release);
      }
      std::size_t seen = max_combined_.value.load(std::memory_order_relaxed);
      while (batch_.size() > seen &&
             !max_combined_.value.compare_exchange_weak(
                 seen, batch_.size(), std::memory_order_relaxed)) {
      }
    }
    combiner_active_.value.store(false, std::memory_order_release);
  }

  std::size_t slot_index() {
    struct Claim {
      std::uint64_t combiner_id;
      std::size_t index;
    };
    thread_local std::vector<Claim> claims;
    for (const Claim& c : claims) {
      if (c.combiner_id == id_) return c.index;
    }
    const std::size_t idx = registered_.fetch_add(1, std::memory_order_acq_rel);
    if (idx >= MaxThreads) {
      throw std::runtime_error("FlatCombiner: too many threads");
    }
    claims.push_back({id_, idx});
    return idx;
  }

  static std::uint64_t next_instance_id() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  // Distinguishes instances so a thread's cached slot claims cannot alias a
  // new combiner constructed at a recycled address.
  const std::uint64_t id_ = next_instance_id();
  CachePadded<Record> slots_[MaxThreads];
  Spinlock lock_;
  CachePadded<std::atomic<bool>> combiner_active_{false};
  std::atomic<std::size_t> registered_{0};
  CachePadded<std::atomic<std::size_t>> max_combined_{0};
  std::vector<Record*> batch_;  // combiner-only scratch (guarded by lock_)
};

}  // namespace pimds::baselines
