// F&A-based FIFO queue — the paper's citation [41] (Morrison & Afek) is
// LCRQ; this is the FAAArrayQueue simplification of the same idea (Correia
// & Ramalhete): each segment holds a cell array with fetch-and-add enqueue
// and dequeue tickets, so the hot path is one F&A on a shared counter plus
// one (usually uncontended) cell operation, rather than a CAS retry loop.
// Segments chain like a Michael-Scott queue and are reclaimed with EBR.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "common/ebr.hpp"
#include "common/latency.hpp"

namespace pimds::baselines {

class FaaQueue {
 public:
  static constexpr std::size_t kSegmentCells = 1024;

  FaaQueue();
  ~FaaQueue();

  FaaQueue(const FaaQueue&) = delete;
  FaaQueue& operator=(const FaaQueue&) = delete;

  /// `value` must not equal the reserved markers ~0 (empty) or ~1 (taken).
  void enqueue(std::uint64_t value);
  std::optional<std::uint64_t> dequeue();

 private:
  // Cell protocol: kEmpty -> value (enqueuer claims it), or
  // kEmpty -> kTaken (a dequeuer overtook its enqueuer: the cell is burned
  // and both sides move on to fresh tickets).
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::uint64_t kTaken = ~std::uint64_t{1};

  struct Segment {
    Segment();

    CachePadded<std::atomic<std::uint64_t>> enq_idx{0};
    CachePadded<std::atomic<std::uint64_t>> deq_idx{0};
    std::atomic<Segment*> next{nullptr};
    std::atomic<std::uint64_t> cells[kSegmentCells];
  };

  static void free_segment(void* p);

  CachePadded<std::atomic<Segment*>> head_;
  CachePadded<std::atomic<Segment*>> tail_;
  EbrDomain ebr_;
};

}  // namespace pimds::baselines
