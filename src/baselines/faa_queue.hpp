// F&A-based FIFO queue — the paper's citation [41] (Morrison & Afek) is
// LCRQ; this is the FAAArrayQueue simplification of the same idea (Correia
// & Ramalhete): each segment holds a cell array with fetch-and-add enqueue
// and dequeue tickets, so the hot path is one F&A on a shared counter plus
// one (usually uncontended) cell operation, rather than a CAS retry loop.
// Segments chain like a Michael-Scott queue and are reclaimed through the
// pluggable Reclaimer seam (common/reclaim.hpp: EBR or hazard pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/cacheline.hpp"
#include "common/latency.hpp"
#include "common/reclaim.hpp"

namespace pimds::baselines {

class FaaQueue {
 public:
  static constexpr std::size_t kSegmentCells = 1024;

  explicit FaaQueue(ReclaimPolicy policy = ReclaimPolicy::kEbr);
  ~FaaQueue();

  FaaQueue(const FaaQueue&) = delete;
  FaaQueue& operator=(const FaaQueue&) = delete;

  /// `value` must not equal the reserved markers ~0 (empty) or ~1 (taken).
  void enqueue(std::uint64_t value);
  std::optional<std::uint64_t> dequeue();

  Reclaimer& reclaimer() noexcept { return *reclaim_; }

 private:
  // Cell protocol: kEmpty -> value (enqueuer claims it), or
  // kEmpty -> kTaken (a dequeuer overtook its enqueuer: the cell is burned
  // and both sides move on to fresh tickets).
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::uint64_t kTaken = ~std::uint64_t{1};

  struct Segment {
    Segment();

    CachePadded<std::atomic<std::uint64_t>> enq_idx{0};
    CachePadded<std::atomic<std::uint64_t>> deq_idx{0};
    std::atomic<Segment*> next{nullptr};
    std::atomic<std::uint64_t> cells[kSegmentCells];
  };

  // Hazard-slot naming: 0 = head/tail anchor, 1 = the successor segment.
  static constexpr unsigned kSlotAnchor = 0;
  static constexpr unsigned kSlotNext = 1;

  static void free_segment(void* p);

  CachePadded<std::atomic<Segment*>> head_;
  CachePadded<std::atomic<Segment*>> tail_;
  std::unique_ptr<Reclaimer> reclaim_;
};

}  // namespace pimds::baselines
