// Lazy synchronization list (Heller, Herlihy, Luchangco, Moir, Scherer,
// Shavit — the paper's citation [24] for "linked-list with fine-grained
// locks").
//
// Lock-free contains; add/remove lock only the two affected nodes and
// re-validate. Removal marks before unlinking, so traversals that hold a
// reference to a victim still see a consistent (marked) node; unlinked
// nodes are reclaimed through the pluggable Reclaimer seam
// (common/reclaim.hpp: EBR or hazard pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "baselines/spinlock.hpp"
#include "common/latency.hpp"
#include "common/reclaim.hpp"

namespace pimds::baselines {

class LazyList {
 public:
  explicit LazyList(ReclaimPolicy policy = ReclaimPolicy::kEbr);
  ~LazyList();

  LazyList(const LazyList&) = delete;
  LazyList& operator=(const LazyList&) = delete;

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  Reclaimer& reclaimer() noexcept { return *reclaim_; }

 private:
  struct Node {
    std::uint64_t key;
    std::atomic<Node*> next;
    std::atomic<bool> marked{false};
    Spinlock lock;

    Node(std::uint64_t k, Node* n) : key(k), next(n) {}
  };

  // Hazard-slot naming for the hand-over-hand traversal.
  static constexpr unsigned kSlotPrev = 0;
  static constexpr unsigned kSlotCurr = 1;

  static bool validate(const Node* prev, const Node* curr) {
    return !prev->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           prev->next.load(std::memory_order_acquire) == curr;
  }

  /// Unsynchronized search; `guard` must be the caller's live guard. Under
  /// hazard pointers the walk restarts from the head when `prev` turns out
  /// to be marked (its frozen next pointer may lead into retired nodes).
  void locate(ReclaimGuard& guard, std::uint64_t key, Node*& prev,
              Node*& curr) const;

  Node* head_;
  std::atomic<std::size_t> size_{0};
  std::unique_ptr<Reclaimer> reclaim_;
};

}  // namespace pimds::baselines
