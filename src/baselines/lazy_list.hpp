// Lazy synchronization list (Heller, Herlihy, Luchangco, Moir, Scherer,
// Shavit — the paper's citation [24] for "linked-list with fine-grained
// locks").
//
// Wait-free contains; add/remove lock only the two affected nodes and
// re-validate. Removal marks before unlinking, so traversals that hold a
// reference to a victim still see a consistent (marked) node; unlinked
// nodes are reclaimed through epoch-based reclamation.
#pragma once

#include <atomic>
#include <cstdint>

#include "baselines/spinlock.hpp"
#include "common/ebr.hpp"
#include "common/latency.hpp"

namespace pimds::baselines {

class LazyList {
 public:
  LazyList();
  ~LazyList();

  LazyList(const LazyList&) = delete;
  LazyList& operator=(const LazyList&) = delete;

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::uint64_t key;
    std::atomic<Node*> next;
    std::atomic<bool> marked{false};
    Spinlock lock;

    Node(std::uint64_t k, Node* n) : key(k), next(n) {}
  };

  static bool validate(const Node* prev, const Node* curr) {
    return !prev->marked.load(std::memory_order_acquire) &&
           !curr->marked.load(std::memory_order_acquire) &&
           prev->next.load(std::memory_order_acquire) == curr;
  }

  /// Unsynchronized search; callers must hold an EBR guard.
  void locate(std::uint64_t key, Node*& prev, Node*& curr) const;

  Node* head_;
  std::atomic<std::size_t> size_{0};
  mutable EbrDomain ebr_;
};

}  // namespace pimds::baselines
