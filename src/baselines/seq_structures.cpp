#include "baselines/seq_structures.hpp"

#include <cassert>
#include <cstddef>

namespace pimds::baselines {

bool SeqList::add_from(Cursor* cursor, std::uint64_t key) {
  assert(key >= 1);
  Node* prev = walk(resume_point(cursor), key);
  if (cursor != nullptr) cursor->prev = prev;
  Node* curr = prev->next;
  if (curr != nullptr && curr->key == key) return false;
  prev->next = new Node{key, curr};
  ++size_;
  return true;
}

bool SeqList::remove_from(Cursor* cursor, std::uint64_t key) {
  assert(key >= 1);
  Node* prev = walk(resume_point(cursor), key);
  if (cursor != nullptr) cursor->prev = prev;
  Node* curr = prev->next;
  if (curr == nullptr || curr->key != key) return false;
  prev->next = curr->next;
  delete curr;
  --size_;
  return true;
}

bool SeqList::contains_from(Cursor* cursor, std::uint64_t key) const {
  assert(key >= 1);
  Node* prev = walk(resume_point(cursor), key);
  if (cursor != nullptr) cursor->prev = prev;
  const Node* curr = prev->next;
  return curr != nullptr && curr->key == key;
}

bool SeqList::contains(std::uint64_t key) const {
  return contains_from(nullptr, key);
}

SeqSkipList::SeqSkipList(std::uint64_t sentinel_key, std::uint64_t seed)
    : rng_(seed) {
  head_ = make_node(sentinel_key, kMaxHeight);
  for (int lvl = 0; lvl < kMaxHeight; ++lvl) head_->next[lvl] = nullptr;
}

SeqSkipList::~SeqSkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    operator delete(n);
    n = next;
  }
}

SeqSkipList::Node* SeqSkipList::make_node(std::uint64_t key, int height) {
  const std::size_t bytes =
      offsetof(Node, next) + static_cast<std::size_t>(height) * sizeof(Node*);
  auto* node = static_cast<Node*>(operator new(bytes));
  node->key = key;
  node->height = height;
  return node;
}

SeqSkipList::Node* SeqSkipList::locate(std::uint64_t key,
                                       Node** preds) const {
  Node* pred = head_;
  int top = kMaxHeight - 1;
  while (top > 0 && head_->next[top] == nullptr) --top;
  for (int lvl = top; lvl >= 0; --lvl) {
    Node* curr = pred->next[lvl];
    charge_cpu_access();
    while (curr != nullptr && curr->key < key) {
      charge_cpu_access();
      pred = curr;
      curr = curr->next[lvl];
    }
    preds[lvl] = pred;
  }
  return preds[0]->next[0];
}

bool SeqSkipList::add(std::uint64_t key) {
  assert(key > head_->key);
  Node* preds[kMaxHeight];
  for (auto& p : preds) p = head_;
  Node* found = locate(key, preds);
  if (found != nullptr && found->key == key) return false;
  int height = 1;
  while (height < kMaxHeight && rng_.next_bool(0.5)) ++height;
  Node* node = make_node(key, height);
  for (int lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  ++size_;
  return true;
}

bool SeqSkipList::remove(std::uint64_t key) {
  Node* preds[kMaxHeight];
  for (auto& p : preds) p = head_;
  Node* found = locate(key, preds);
  if (found == nullptr || found->key != key) return false;
  for (int lvl = 0; lvl < found->height; ++lvl) {
    if (preds[lvl]->next[lvl] == found) {
      preds[lvl]->next[lvl] = found->next[lvl];
    }
  }
  operator delete(found);
  --size_;
  return true;
}

bool SeqSkipList::contains(std::uint64_t key) const {
  Node* preds[kMaxHeight];
  Node* found = locate(key, preds);
  return found != nullptr && found->key == key;
}

}  // namespace pimds::baselines
