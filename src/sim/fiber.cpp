#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace pimds::sim {

#if defined(__x86_64__)

extern "C" void pimds_fiber_swap(void** save_sp, void* restore_sp);

namespace {
// The fiber being entered for the first time. The engine is single-OS-
// threaded, so a plain global suffices and keeps the entry path trivial.
Fiber* g_starting_fiber = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  // Craft an initial frame that pimds_fiber_swap can "return" into:
  // six callee-saved register slots followed by the entry address. The
  // base is 16-aligned so the entry thunk sees rsp % 16 == 8, exactly as
  // after a call instruction.
  auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes;
  top &= ~std::uintptr_t{15};
  top -= 8;  // entry must observe rsp % 16 == 8, as right after a call
  auto* frame = reinterpret_cast<void**>(top) - 7;
  for (int i = 0; i < 6; ++i) frame[i] = nullptr;  // r15,r14,r13,r12,rbx,rbp
  frame[6] = reinterpret_cast<void*>(&Fiber::entry_thunk);
  fiber_sp_ = frame;
}

Fiber::~Fiber() = default;

void Fiber::entry_thunk() {
  Fiber* self = g_starting_fiber;
  self->run_body();
  self->finished_ = true;
  // Return control to the resumer for good. The loop guards against a
  // buggy resume() of a finished fiber ever "returning" here.
  for (;;) {
    pimds_fiber_swap(&self->fiber_sp_, self->resumer_sp_);
    assert(false && "resumed a finished fiber");
  }
}

void Fiber::resume() {
  assert(!finished_ && "resuming a finished fiber");
  g_starting_fiber = this;  // only read on first entry; cheap to always set
  pimds_fiber_swap(&resumer_sp_, fiber_sp_);
}

void Fiber::yield_to_resumer() {
  pimds_fiber_swap(&fiber_sp_, resumer_sp_);
}

#else  // ucontext fallback

namespace {
Fiber* from_halves(unsigned hi, unsigned lo) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return reinterpret_cast<Fiber*>(bits);
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]) {
  if (getcontext(&context_) != 0) {
    throw std::runtime_error("Fiber: getcontext failed");
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes;
  context_.uc_link = &resumer_;
  const auto bits = reinterpret_cast<std::uint64_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
}

Fiber::~Fiber() = default;

void Fiber::trampoline(unsigned hi, unsigned lo) {
  Fiber* self = from_halves(hi, lo);
  self->run_body();
  self->finished_ = true;
  // uc_link returns control to the resumer when the trampoline returns.
}

void Fiber::resume() {
  assert(!finished_ && "resuming a finished fiber");
  if (swapcontext(&resumer_, &context_) != 0) {
    throw std::runtime_error("Fiber: swapcontext (resume) failed");
  }
}

void Fiber::yield_to_resumer() {
  if (swapcontext(&context_, &resumer_) != 0) {
    throw std::runtime_error("Fiber: swapcontext (yield) failed");
  }
}

#endif

void Fiber::run_body() { body_(); }

}  // namespace pimds::sim
