// Shared workload configuration and result types for simulator experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "check/history.hpp"
#include "common/latency.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace pimds::sim {

/// Operation mix for set-like structures (linked-lists, skip-lists).
/// Fractions of add and remove; the remainder are contains. The paper keeps
/// add ~= remove so structure size stays near its initial value.
struct SetOpMix {
  double add = 0.3;
  double remove = 0.3;
};

enum class SetOp : std::uint8_t { kAdd, kRemove, kContains };

/// Draw the next operation for the given mix.
SetOp pick_op(Xoshiro256& rng, const SetOpMix& mix);

/// check/ opcode for a set operation (history recording).
constexpr std::uint32_t check_op(SetOp op) noexcept {
  switch (op) {
    case SetOp::kAdd: return check::kAdd;
    case SetOp::kRemove: return check::kRemove;
    case SetOp::kContains: return check::kContains;
  }
  return check::kContains;
}

/// Record one setup-phase insert into the recorder's LAST log with
/// begin == end == 0: the checker linearizes it before every real
/// operation, which is how a pre-populated structure's initial contents
/// enter a partitioned (per-key) specification.
inline void record_setup_add(check::HistoryRecorder* recorder,
                             std::uint64_t key) {
  if (recorder == nullptr) return;
  recorder->log(recorder->threads() - 1)
      .complete(check::kAdd, key, check::kRetTrue, 0, 0);
}

/// Record a populated structure's initial contents (see record_setup_add).
inline void record_setup_contents(check::HistoryRecorder* recorder,
                                  const std::vector<std::uint64_t>& keys) {
  if (recorder == nullptr) return;
  for (std::uint64_t key : keys) record_setup_add(recorder, key);
}

/// Result of one simulated throughput run.
struct RunResult {
  std::uint64_t total_ops = 0;
  Time virtual_ns = 0;

  double ops_per_sec() const noexcept {
    return virtual_ns == 0
               ? 0.0
               : static_cast<double>(total_ops) /
                     (static_cast<double>(virtual_ns) * 1e-9);
  }
  double mops() const noexcept { return ops_per_sec() * 1e-6; }
};

/// Base configuration shared by all simulator experiments.
struct SimConfig {
  LatencyParams params = LatencyParams::paper_defaults();
  std::uint64_t seed = 1;
  std::size_t num_cpus = 8;          ///< p, simulated CPU threads
  Time duration_ns = 10'000'000;     ///< virtual measurement window (10 ms)
  /// Schedule perturbation for adversarial exploration (check/explore.hpp);
  /// installed on the engine before any actor is spawned.
  Engine::Perturbation perturb{};
  /// Optional linearizability-history recording (check/). When non-null,
  /// CPU actor i records its operations into log(i) with virtual
  /// timestamps, and setup-phase inserts land in the LAST log as time-0 add
  /// events — so set/skip-list runs need `num_cpus + 1` logs. Queue runs
  /// (QueueConfig) instead need `enqueuers + dequeuers` logs and express
  /// pre-filled nodes as the checker's initial queue state.
  check::HistoryRecorder* recorder = nullptr;
};

}  // namespace pimds::sim
