// Shared workload configuration and result types for simulator experiments.
#pragma once

#include <cstdint>

#include "common/latency.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace pimds::sim {

/// Operation mix for set-like structures (linked-lists, skip-lists).
/// Fractions of add and remove; the remainder are contains. The paper keeps
/// add ~= remove so structure size stays near its initial value.
struct SetOpMix {
  double add = 0.3;
  double remove = 0.3;
};

enum class SetOp : std::uint8_t { kAdd, kRemove, kContains };

/// Draw the next operation for the given mix.
SetOp pick_op(Xoshiro256& rng, const SetOpMix& mix);

/// Result of one simulated throughput run.
struct RunResult {
  std::uint64_t total_ops = 0;
  Time virtual_ns = 0;

  double ops_per_sec() const noexcept {
    return virtual_ns == 0
               ? 0.0
               : static_cast<double>(total_ops) /
                     (static_cast<double>(virtual_ns) * 1e-9);
  }
  double mops() const noexcept { return ops_per_sec() * 1e-6; }
};

/// Base configuration shared by all simulator experiments.
struct SimConfig {
  LatencyParams params = LatencyParams::paper_defaults();
  std::uint64_t seed = 1;
  std::size_t num_cpus = 8;          ///< p, simulated CPU threads
  Time duration_ns = 10'000'000;     ///< virtual measurement window (10 ms)
};

}  // namespace pimds::sim
