// Cooperative fibers for the discrete-event simulator.
//
// The simulator runs every simulated CPU thread and PIM core as a fiber on
// ONE OS thread, so experiments are deterministic and independent of host
// core count (the host here has 2 cores; the paper's figures go to 28
// threads). On x86-64 the switch is a hand-rolled callee-saved-register
// swap (~20 ns); elsewhere it falls back to ucontext.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

namespace pimds::sim {

/// A single cooperative fiber. Not thread-safe: all fibers of an engine run
/// on the engine's thread.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  /// @param body runs when the fiber is first resumed; when it returns the
  ///             fiber switches back to the resumer one final time.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller into this fiber. Returns when the fiber yields
  /// or finishes.
  void resume();

  /// Switch from this fiber back to whoever resumed it. Must be called on
  /// the fiber itself.
  void yield_to_resumer();

  bool finished() const noexcept { return finished_; }

 private:
  void run_body();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  bool finished_ = false;

#if defined(__x86_64__)
  static void entry_thunk();

  void* fiber_sp_ = nullptr;    ///< fiber's saved stack pointer when yielded
  void* resumer_sp_ = nullptr;  ///< resumer's saved stack pointer
#else
  static void trampoline(unsigned hi, unsigned lo);

  ucontext_t context_{};
  ucontext_t resumer_{};
#endif
};

}  // namespace pimds::sim
