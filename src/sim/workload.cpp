#include "sim/workload.hpp"

namespace pimds::sim {

SetOp pick_op(Xoshiro256& rng, const SetOpMix& mix) {
  const double u = rng.next_double();
  if (u < mix.add) return SetOp::kAdd;
  if (u < mix.add + mix.remove) return SetOp::kRemove;
  return SetOp::kContains;
}

}  // namespace pimds::sim
