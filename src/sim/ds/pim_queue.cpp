// Simulated PIM-managed FIFO queue: a faithful rendition of Algorithm 1,
// including segment hand-off between PIM cores, CPU retry on rejection, and
// response pipelining (Figure 6).
#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/ds/queues.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

namespace {

struct Segment {
  std::deque<std::uint64_t> nodes;
  std::uint64_t enq_count = 0;  ///< total ever enqueued (threshold check)
  std::size_t next_seg_cid = ~std::size_t{0};
};

struct Reply {
  bool accepted = false;   ///< false => wrong core, CPU must resend
  bool has_value = false;  ///< dequeue: a node was returned
  std::uint64_t value = 0;
};

struct QMsg {
  enum class Kind : std::uint8_t { kEnq, kDeq, kNewEnqSeg, kNewDeqSeg, kStop };
  Kind kind = Kind::kStop;
  std::uint64_t value = 0;
  SimSlot<Reply>* reply = nullptr;
  // Trace context (obs/phase.hpp): the CPU's virtual send time, so the
  // serving core can attribute the mailbox_queue phase, and the causal
  // request id correlating CPU `op` spans with core-side events. 0 on
  // core-to-core protocol messages, which have no requester.
  Time issue_ns = 0;
  std::uint64_t req = 0;
};

/// CPU-visible directory of which core currently owns each special segment.
/// Stands in for the paper's notification broadcast: cores update it when
/// they take ownership; CPUs consult it after a rejection. It may be stale,
/// which is exactly the race the rejection path exists to absorb.
struct Directory {
  std::size_t enq_cid = 0;
  std::size_t deq_cid = 0;
};

struct Vault {
  Mailbox<QMsg> inbox;
  std::deque<std::shared_ptr<Segment>> seg_queue;
  std::shared_ptr<Segment> enq_seg;
  std::shared_ptr<Segment> deq_seg;
};

}  // namespace

PimQueueResult run_pim_queue(const QueueConfig& cfg,
                             const PimQueueOptions& opts) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  const std::size_t k = opts.num_vaults;
  assert(k >= 1);
  const double msg_ns = cfg.params.message();
  const std::size_t total_cpus = cfg.enqueuers + cfg.dequeuers;

  std::vector<std::unique_ptr<Vault>> vaults;
  for (std::size_t v = 0; v < k; ++v) vaults.push_back(std::make_unique<Vault>());

  Directory directory;
  PimQueueResult result;

  // Registry metrics (accumulate across runs in one process; benches that
  // want per-run numbers call Registry::reset() between runs).
  auto& registry = obs::Registry::instance();
  obs::Counter& c_rejections = registry.counter("sim.pim_queue.rejections");
  obs::Counter& c_enq_batches = registry.counter("sim.pim_queue.enq_batches");
  obs::Counter& c_handoffs =
      registry.counter("sim.pim_queue.segment_handoffs");
  obs::Histogram& h_latency =
      registry.histogram("sim.pim_queue.op_latency_ns");
  obs::Histogram& h_enq_batch = registry.histogram("sim.pim_queue.enq_batch");
  std::vector<obs::Counter*> vault_ops;
  for (std::size_t v = 0; v < k; ++v) {
    vault_ops.push_back(
        &registry.counter("sim.pim_queue.vault" + std::to_string(v) + ".ops"));
  }

  // Pre-fill: materialize the state Algorithm 1 would have reached after
  // `initial_nodes` enqueues — a chain of segments round-robined over the
  // vaults, each below the threshold, with next_seg_cid links in place.
  {
    const std::uint64_t cap = opts.segment_threshold;
    std::size_t remaining = cfg.initial_nodes;
    std::uint64_t next_value = 0;
    std::size_t core = 0;
    std::shared_ptr<Segment> prev;
    bool first = true;
    do {
      auto seg = std::make_shared<Segment>();
      const std::size_t take =
          remaining < cap ? remaining : static_cast<std::size_t>(cap);
      for (std::size_t i = 0; i < take; ++i) seg->nodes.push_back(next_value++);
      seg->enq_count = take;
      remaining -= take;
      if (prev) prev->next_seg_cid = core;
      if (first) {
        // Oldest segment: already the dequeue segment, so NOT in seg_queue
        // (newDeqSeg pops segments out of seg_queue when they take the role).
        vaults[core]->deq_seg = seg;
        directory.deq_cid = core;
        first = false;
      } else {
        vaults[core]->seg_queue.push_back(seg);
      }
      vaults[core]->enq_seg = nullptr;
      prev = seg;
      if (remaining > 0) core = (core + 1) % k;
    } while (remaining > 0);
    // Youngest segment doubles as the enqueue segment.
    vaults[core]->enq_seg = prev;
    directory.enq_cid = core;
  }

  for (std::size_t v = 0; v < k; ++v) {
    engine.spawn("pim-core" + std::to_string(v), [&, v](Context& ctx) {
      Vault& vault = *vaults[v];
      std::size_t stopped = 0;
      std::uint64_t deq_serves = 0;  // QueueFault::kDoubleServe cadence
      // Non-enqueue messages picked up while draining an enqueue batch
      // (Section 5.1 fat-node combining) are replayed in arrival order.
      std::deque<QMsg> replay;
      // Latency attribution: the serve start bounds each request's inbound
      // leg (split exactly into the Lmessage request_flight and the
      // queueing remainder, mailbox_queue) and starts its vault_service
      // phase; the reply then adds the response_flight leg. In virtual
      // time these tile the requester's end-to-end latency exactly.
      const auto record_reply = [&](const QMsg& req_msg, Time serve_start,
                                    Context& c) {
        if (req_msg.issue_ns == 0) return;
        obs::record_sim_phase(obs::Phase::kVaultService,
                              c.now() - serve_start);
        obs::record_sim_phase(obs::Phase::kResponseFlight,
                              static_cast<Time>(msg_ns));
      };
      const auto record_arrival = [&](const QMsg& req_msg, Context& c) {
        if (req_msg.issue_ns == 0) return;
        const Time wait = c.now() - req_msg.issue_ns;
        const Time flight = wait < static_cast<Time>(msg_ns)
                                ? wait
                                : static_cast<Time>(msg_ns);
        obs::record_sim_phase(obs::Phase::kRequestFlight, flight);
        obs::record_sim_phase(obs::Phase::kMailboxQueue, wait - flight);
        if (req_msg.req != 0 && obs::trace_enabled()) {
          c.trace_instant("req_dispatch", {"req", req_msg.req},
                          {"wait_ns", c.now() - req_msg.issue_ns});
        }
      };
      while (stopped < total_cpus) {
        QMsg m;
        if (!replay.empty()) {
          m = replay.front();
          replay.pop_front();
        } else {
          m = vault.inbox.recv(ctx);
        }
        const Time t_serve = ctx.now();
        record_arrival(m, ctx);
        switch (m.kind) {
          case QMsg::Kind::kEnq: {
            if (!vault.enq_seg) {
              ctx.trace_instant("reject", {"vault", v});
              m.reply->set(ctx, Reply{false, false, 0}, msg_ns);
              record_reply(m, t_serve, ctx);
              break;
            }
            const Time enq_start = ctx.now();
            std::size_t appended = 1;
            if (opts.enqueue_combining) {
              // Drain every already-delivered enqueue into one fat node;
              // anything else goes to the replay queue.
              std::vector<QMsg> batch{m};
              while (auto more = vault.inbox.try_recv(ctx)) {
                if (more->kind == QMsg::Kind::kEnq) {
                  // Replayed messages get their arrival recorded when they
                  // are served from the replay queue; batch members are
                  // served now, so record their arrival here.
                  record_arrival(*more, ctx);
                  batch.push_back(*more);
                } else {
                  replay.push_back(*more);
                }
              }
              appended = batch.size();
              // One memory access per cache-line-sized array of values.
              ctx.charge(MemClass::kPimLocal,
                         (appended + opts.fat_node_capacity - 1) /
                             opts.fat_node_capacity);
              for (const QMsg& e : batch) {
                vault.enq_seg->nodes.push_back(e.value);
                e.reply->set(ctx, Reply{true, false, 0}, msg_ns);
                // Per-op service: every batch member waits for the whole
                // fat-node append before its (shared) response ships.
                record_reply(e, t_serve, ctx);
              }
              ctx.trace_complete("drain_batch", enq_start,
                                 {"n", appended});
            } else {
              // Append the node: one local memory access; the two L1
              // accesses for head/tail bookkeeping are the epsilon the
              // paper neglects.
              ctx.charge(MemClass::kPimLocal);
              vault.enq_seg->nodes.push_back(m.value);
              m.reply->set(ctx, Reply{true, false, 0}, msg_ns);
              record_reply(m, t_serve, ctx);
              if (obs::trace_enabled()) {
                ctx.trace_complete("vault_service", t_serve, {"vault", v});
              }
            }
            vault.enq_seg->enq_count += appended;
            result.enq_ops += appended;
            ++result.enq_batches;
            c_enq_batches.add(1);
            h_enq_batch.record(appended);
            vault_ops[v]->add(appended);
            if (vault.deq_seg) result.co_resident_ops += appended;
            if (!opts.pipelining) ctx.advance(msg_ns);
            if (vault.enq_seg->enq_count > opts.segment_threshold) {
              std::size_t next = (v + 1) % k;
              if (opts.placement == SegmentPlacement::kAvoidDequeueCore &&
                  k > 1 && next == directory.deq_cid) {
                next = (next + 1) % k;
              } else if (opts.placement ==
                             SegmentPlacement::kOppositeDequeueCore &&
                         k > 1) {
                next = (directory.deq_cid + k / 2) % k;
                if (next == directory.deq_cid) next = (next + 1) % k;
              }
              vault.enq_seg->next_seg_cid = next;
              c_handoffs.add(1);
              vaults[next]->inbox.send(
                  ctx, QMsg{QMsg::Kind::kNewEnqSeg, 0, nullptr});
              vault.enq_seg = nullptr;
            }
            break;
          }
          case QMsg::Kind::kNewEnqSeg: {
            auto seg = std::make_shared<Segment>();
            vault.seg_queue.push_back(seg);
            vault.enq_seg = seg;
            ctx.trace_instant("newEnqSeg", {"vault", v});
            ctx.charge(MemClass::kPimLocal);  // allocation bookkeeping
            directory.enq_cid = v;            // notify the CPUs
            ++result.segments_created;
            break;
          }
          case QMsg::Kind::kDeq: {
            if (!vault.deq_seg) {
              m.reply->set(ctx, Reply{false, false, 0}, msg_ns);
              record_reply(m, t_serve, ctx);
              break;
            }
            if (!vault.deq_seg->nodes.empty()) {
              ctx.charge(MemClass::kPimLocal);  // read the node
              const std::uint64_t value = vault.deq_seg->nodes.front();
              if (opts.fault == QueueFault::kDoubleServe &&
                  ++deq_serves % 64 == 0) {
                // Injected bug: answer from the head without popping, so the
                // next dequeue re-serves the same node.
              } else {
                vault.deq_seg->nodes.pop_front();
              }
              ++result.deq_ops;
              vault_ops[v]->add(1);
              if (vault.enq_seg) ++result.co_resident_ops;
              m.reply->set(ctx, Reply{true, true, value}, msg_ns);
              record_reply(m, t_serve, ctx);
              if (!opts.pipelining) ctx.advance(msg_ns);
            } else if (vault.deq_seg == vault.enq_seg) {
              // Single-segment case: the queue really is empty.
              m.reply->set(ctx, Reply{true, false, 0}, msg_ns);
              record_reply(m, t_serve, ctx);
              ++result.empty_dequeues;
              ++result.deq_ops;
              vault_ops[v]->add(1);
            } else {
              // This segment is exhausted; pass the dequeue role to the
              // core that created the next segment (Algorithm 1 line 33).
              const std::size_t next = vault.deq_seg->next_seg_cid;
              assert(next < k && "exhausted segment has no successor");
              c_handoffs.add(1);
              vaults[next]->inbox.send(
                  ctx, QMsg{QMsg::Kind::kNewDeqSeg, 0, nullptr});
              vault.deq_seg = nullptr;
              ctx.trace_instant("reject", {"vault", v});
              m.reply->set(ctx, Reply{false, false, 0}, msg_ns);
              record_reply(m, t_serve, ctx);
            }
            break;
          }
          case QMsg::Kind::kNewDeqSeg: {
            // FIFO channel delivery guarantees the matching newEnqSeg (sent
            // earlier on the same core-to-core channel) was processed first.
            assert(!vault.seg_queue.empty());
            vault.deq_seg = vault.seg_queue.front();
            vault.seg_queue.pop_front();
            if (opts.fault == QueueFault::kHandoffReorder) {
              // Injected bug: the hand-off "forgot" the segment's order and
              // the new core serves its buffered nodes newest-first.
              std::reverse(vault.deq_seg->nodes.begin(),
                           vault.deq_seg->nodes.end());
            }
            ctx.trace_instant("newDeqSeg", {"vault", v});
            directory.deq_cid = v;
            break;
          }
          case QMsg::Kind::kStop:
            ++stopped;
            break;
        }
      }
    });
  }

  std::uint64_t total_ops = 0;
  const auto spawn_cpu = [&](std::string name, bool is_enq,
                             std::size_t slot) {
    engine.spawn(std::move(name), [&, is_enq, slot](Context& ctx) {
      std::uint64_t ops = 0;
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(slot) : nullptr;
      SimSlot<Reply> reply;
      ArrivalPacer pacer(cfg, ctx);
      while (ctx.now() < cfg.duration_ns) {
        const Time intended = pacer.next(ctx);
        if (intended >= cfg.duration_ns) break;
        const Time issued = ctx.now();
        const std::uint64_t rid =
            obs::trace_enabled() ? obs::next_request_id() : 0;
        // One value per OPERATION, not per send: a rejected CPU retries the
        // same request. Recorded runs tag values with the producer slot so
        // every enqueued value is unique (the checker matches dequeues to
        // enqueues by value).
        const std::uint64_t value =
            !is_enq ? 0
            : log != nullptr
                ? ((static_cast<std::uint64_t>(slot) + 1) << 48) | ops
                : ctx.rng().next();
        if (log != nullptr) {
          log->begin(is_enq ? check::kEnq : check::kDeq, value, issued);
        }
        Reply r;
        for (;;) {
          const std::size_t target =
              is_enq ? directory.enq_cid : directory.deq_cid;
          const QMsg::Kind kind =
              is_enq ? QMsg::Kind::kEnq : QMsg::Kind::kDeq;
          vaults[target]->inbox.send(
              ctx, QMsg{kind, value, &reply, ctx.now(), rid});
          r = reply.await(ctx);
          if (r.accepted) break;
          ++result.rejections;  // stale directory: re-read and resend
          c_rejections.add(1);
          ctx.trace_instant("cpu_retry", {"target", target});
        }
        if (log != nullptr) {
          log->end(is_enq ? check::kRetTrue
                          : (r.has_value ? r.value : check::kRetEmpty),
                   ctx.now());
        }
        h_latency.record(ctx.now() - issued);
        // End-to-end reference for the attribution report: across every
        // attempt the wait/service/flight phases tile [issued, now] exactly
        // (virtual time), so sum(phases) == sum(total) up to CPU-side gaps.
        obs::record_sim_phase(obs::Phase::kTotal, ctx.now() - issued);
        if (rid != 0) {
          ctx.trace_complete("op", issued, {"req", rid},
                             {"enq", is_enq ? 1u : 0u});
        }
        if (cfg.latency_sink_ns != nullptr) {
          // Open loop: charge from the INTENDED start, so time spent queued
          // behind a late injector counts against the operation.
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - intended));
        }
        ++ops;
      }
      for (std::size_t v = 0; v < k; ++v) {
        vaults[v]->inbox.send(ctx, QMsg{QMsg::Kind::kStop, 0, nullptr});
      }
      total_ops += ops;
    });
  };
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    spawn_cpu("enq" + std::to_string(i), true, i);
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    spawn_cpu("deq" + std::to_string(i), false, cfg.enqueuers + i);
  }

  engine.run();
  result.run = {total_ops, cfg.duration_ns};
  return result;
}

}  // namespace pimds::sim
