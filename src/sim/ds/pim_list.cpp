#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/ds/linked_lists.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

namespace {

struct ListMsg {
  SetOp op = SetOp::kContains;
  std::uint64_t key = 0;
  SimSlot<bool>* reply = nullptr;
  bool stop = false;
};

}  // namespace

RunResult run_pim_list(const ListConfig& cfg, bool combining) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  SimList list;
  Xoshiro256 setup(cfg.seed ^ 0xabcdefULL);
  list.populate(setup, cfg.initial_size, cfg.key_range);
  record_setup_contents(cfg.recorder, list.keys());

  Mailbox<ListMsg> inbox;
  const double msg_ns = cfg.params.message();

  auto& registry = obs::Registry::instance();
  obs::Counter& c_ops = registry.counter("sim.pim_list.ops");
  obs::Histogram& h_batch = registry.histogram("sim.pim_list.combine_batch");

  // The single PIM core managing the vault that holds the whole list.
  engine.spawn("pim-core", [&, combining](Context& ctx) {
    std::size_t stopped = 0;
    std::vector<ListMsg> batch;
    std::vector<std::pair<SetOp, std::uint64_t>> requests;
    std::vector<bool> results;
    while (stopped < cfg.num_cpus) {
      ListMsg first = inbox.recv(ctx);
      if (first.stop) {
        ++stopped;
        continue;
      }
      if (!combining) {
        const bool r = list.execute(ctx, first.op, first.key,
                                    MemClass::kPimLocal);
        // Respond asynchronously: the reply travels for Lmessage while the
        // core moves on (request pipelining, Section 5.2).
        first.reply->set(ctx, r, msg_ns);
        c_ops.add(1);
        continue;
      }
      // Combining: drain every request already delivered and serve the
      // whole batch in a single traversal (Section 4.1).
      const Time batch_start = ctx.now();
      batch.clear();
      batch.push_back(first);
      while (auto more = inbox.try_recv(ctx)) {
        if (more->stop) {
          ++stopped;
        } else {
          batch.push_back(*more);
        }
      }
      requests.clear();
      for (const ListMsg& m : batch) requests.push_back({m.op, m.key});
      list.execute_combined(ctx, requests, results, MemClass::kPimLocal);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].reply->set(ctx, results[i], msg_ns);
      }
      c_ops.add(batch.size());
      h_batch.record(batch.size());
      ctx.trace_complete("drain_batch", batch_start, {"n", batch.size()});
    }
  });

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      SimSlot<bool> reply;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        inbox.send(ctx, ListMsg{op, key, &reply, false});
        const bool r = reply.await(ctx);
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        ++ops;
      }
      inbox.send(ctx, ListMsg{SetOp::kContains, 0, nullptr, true});
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
