// Shared sorted singly-linked list used by the simulated linked-list
// experiments (Section 4.1).
//
// The structure itself is plain (non-atomic): the simulator is single-OS-
// threaded and actors only touch it inside their scheduled slice. What the
// experiments measure is the *virtual-time cost* of traversals, charged per
// next-pointer dereference at the latency class of whoever is traversing
// (CPU: Lcpu, PIM core: Lpim).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/latency.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace pimds::sim {

class SimList {
 public:
  SimList() : head_(new Node{0, nullptr}) {}
  ~SimList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }

  SimList(const SimList&) = delete;
  SimList& operator=(const SimList&) = delete;

  /// Populate with distinct keys drawn uniformly from [1, key_range] until
  /// the list holds `target_size` nodes. No latency charged (setup phase).
  void populate(Xoshiro256& rng, std::size_t target_size,
                std::uint64_t key_range);

  /// Execute one operation, charging `hop_class` per next-pointer
  /// dereference on `ctx`. Returns the operation's boolean result.
  bool execute(Context& ctx, SetOp op, std::uint64_t key, MemClass hop_class);

  /// Execute a whole batch in ONE traversal (the combining optimization of
  /// Section 4.1): requests are served in ascending key order, so the
  /// traversal walks only as far as the largest key in the batch.
  /// `results[i]` receives the outcome of `batch[i]` (original order).
  void execute_combined(Context& ctx,
                        std::vector<std::pair<SetOp, std::uint64_t>>& batch,
                        std::vector<bool>& results, MemClass hop_class);

  std::size_t size() const noexcept { return size_; }

  /// Test hook: keys in order.
  std::vector<std::uint64_t> keys() const;

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  /// Walk until `curr` is the first node with key >= `key`; `prev` trails.
  /// Charges one `hop_class` access per dereference.
  void locate(Context& ctx, std::uint64_t key, MemClass hop_class, Node*& prev,
              Node*& curr);

  bool apply(SetOp op, std::uint64_t key, Node* prev, Node* curr);

  Node* head_;  // dummy head with key 0 (operation keys are >= 1)
  std::size_t size_ = 0;
};

}  // namespace pimds::sim
