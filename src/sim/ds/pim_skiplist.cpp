#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

namespace {

struct SkipMsg {
  SetOp op = SetOp::kContains;
  std::uint64_t key = 0;
  SimSlot<bool>* reply = nullptr;
  bool stop = false;
};

}  // namespace

RunResult run_pim_skiplist(const SkipListConfig& cfg, std::size_t partitions) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  // One vault (skip-list partition + mailbox + PIM core) per key range.
  std::vector<std::unique_ptr<SimSkipList>> lists;
  std::vector<std::unique_ptr<Mailbox<SkipMsg>>> inboxes;
  for (std::size_t i = 0; i < partitions; ++i) {
    lists.push_back(std::make_unique<SimSkipList>(
        partition_sentinel(i, cfg.key_range, partitions)));
    inboxes.push_back(std::make_unique<Mailbox<SkipMsg>>());
  }
  Xoshiro256 setup(cfg.seed ^ 0x5eedULL);
  std::size_t total_size = 0;
  while (total_size < cfg.initial_size) {
    const std::uint64_t key = setup.next_in(1, cfg.key_range);
    SimSkipList& part = *lists[partition_of(key, cfg.key_range, partitions)];
    if (part.insert_for_setup(setup, key)) {
      record_setup_add(cfg.recorder, key);
      ++total_size;
    }
  }

  const double msg_ns = cfg.params.message();
  // Per-partition op counts: the raw material of the Table 2 / PIM-tree
  // skew analysis (uniform keys should load vaults evenly; skew shows up
  // directly as counter imbalance).
  auto& registry = obs::Registry::instance();
  std::vector<obs::Counter*> part_ops;
  for (std::size_t v = 0; v < partitions; ++v) {
    part_ops.push_back(&registry.counter("sim.pim_skiplist.vault" +
                                         std::to_string(v) + ".ops"));
  }
  for (std::size_t v = 0; v < partitions; ++v) {
    engine.spawn("pim-core" + std::to_string(v), [&, v](Context& ctx) {
      SimSkipList& list = *lists[v];
      Mailbox<SkipMsg>& inbox = *inboxes[v];
      std::size_t stopped = 0;
      while (stopped < cfg.num_cpus) {
        const SkipMsg m = inbox.recv(ctx);
        if (m.stop) {
          ++stopped;
          continue;
        }
        part_ops[v]->add(1);
        const bool r = list.execute(ctx, m.op, m.key, MemClass::kPimLocal);
        // Asynchronous response (pipelining): the core serves the next
        // request while the reply is in flight.
        m.reply->set(ctx, r, msg_ns);
      }
    });
  }

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      SimSlot<bool> reply;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        // Route by the CPU-cached sentinel directory (Section 4.2): the
        // sentinels are few and hot, so the lookup hits the CPU cache; we
        // charge one LLC access for it.
        ctx.charge(MemClass::kLlc);
        const std::size_t p = partition_of(key, cfg.key_range, partitions);
        inboxes[p]->send(ctx, SkipMsg{op, key, &reply, false});
        const bool r = reply.await(ctx);
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        ++ops;
      }
      for (std::size_t v = 0; v < partitions; ++v) {
        inboxes[v]->send(ctx, SkipMsg{SetOp::kContains, 0, nullptr, true});
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
