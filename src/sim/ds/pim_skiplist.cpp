#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/zipf.hpp"
#include "obs/obs.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

namespace {

struct SkipMsg {
  SetOp op = SetOp::kContains;
  std::uint64_t key = 0;
  SimSlot<bool>* reply = nullptr;
  bool stop = false;
  // Trace context (obs/phase.hpp): virtual send time for mailbox_queue
  // attribution and the causal request id tying CPU `op` spans to the
  // serving core's events. Zero on stop messages.
  Time issue_ns = 0;
  std::uint64_t req = 0;
};

}  // namespace

RunResult run_pim_skiplist(const SkipListConfig& cfg, std::size_t partitions) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  // One vault (skip-list partition + mailbox + PIM core) per key range.
  std::vector<std::unique_ptr<SimSkipList>> lists;
  std::vector<std::unique_ptr<Mailbox<SkipMsg>>> inboxes;
  for (std::size_t i = 0; i < partitions; ++i) {
    lists.push_back(std::make_unique<SimSkipList>(
        partition_sentinel(i, cfg.key_range, partitions)));
    inboxes.push_back(std::make_unique<Mailbox<SkipMsg>>());
  }
  Xoshiro256 setup(cfg.seed ^ 0x5eedULL);
  std::size_t total_size = 0;
  while (total_size < cfg.initial_size) {
    const std::uint64_t key = setup.next_in(1, cfg.key_range);
    SimSkipList& part = *lists[partition_of(key, cfg.key_range, partitions)];
    if (part.insert_for_setup(setup, key)) {
      record_setup_add(cfg.recorder, key);
      ++total_size;
    }
  }

  const double msg_ns = cfg.params.message();
  // Per-partition op counts: the raw material of the Table 2 / PIM-tree
  // skew analysis (uniform keys should load vaults evenly; skew shows up
  // directly as counter imbalance).
  auto& registry = obs::Registry::instance();
  std::vector<obs::Counter*> part_ops;
  for (std::size_t v = 0; v < partitions; ++v) {
    part_ops.push_back(&registry.counter("sim.pim_skiplist.vault" +
                                         std::to_string(v) + ".ops"));
  }
  for (std::size_t v = 0; v < partitions; ++v) {
    engine.spawn("pim-core" + std::to_string(v), [&, v](Context& ctx) {
      SimSkipList& list = *lists[v];
      Mailbox<SkipMsg>& inbox = *inboxes[v];
      std::size_t stopped = 0;
      while (stopped < cfg.num_cpus) {
        const SkipMsg m = inbox.recv(ctx);
        if (m.stop) {
          ++stopped;
          continue;
        }
        // Latency attribution: send -> pickup splits exactly into the
        // Lmessage request_flight and the queueing remainder
        // (mailbox_queue); vault_service is the traversal, response_flight
        // the reply's crossbar leg. In virtual time these tile the
        // requester's await window exactly.
        const Time t_serve = ctx.now();
        if (m.issue_ns != 0) {
          const Time wait = t_serve - m.issue_ns;
          const Time flight = wait < static_cast<Time>(msg_ns)
                                  ? wait
                                  : static_cast<Time>(msg_ns);
          obs::record_sim_phase(obs::Phase::kRequestFlight, flight);
          obs::record_sim_phase(obs::Phase::kMailboxQueue, wait - flight);
          if (m.req != 0 && obs::trace_enabled()) {
            ctx.trace_instant("req_dispatch", {"req", m.req},
                              {"wait_ns", t_serve - m.issue_ns});
          }
        }
        part_ops[v]->add(1);
        const bool r = list.execute(ctx, m.op, m.key, MemClass::kPimLocal);
        // Asynchronous response (pipelining): the core serves the next
        // request while the reply is in flight.
        m.reply->set(ctx, r, msg_ns);
        if (m.issue_ns != 0) {
          obs::record_sim_phase(obs::Phase::kVaultService,
                                ctx.now() - t_serve);
          obs::record_sim_phase(obs::Phase::kResponseFlight,
                                static_cast<Time>(msg_ns));
          if (obs::trace_enabled()) {
            ctx.trace_complete("vault_service", t_serve, {"vault", v});
          }
        }
      }
    });
  }

  // Optional skew (telemetry scenario): Zipf ranks map rank 0 -> key 1, so
  // the hot mass lands in partition 0 and per-vault counter imbalance is
  // the expected signal. Shared across CPU actors: next() is const and the
  // fibers are cooperatively scheduled on one thread.
  std::optional<ZipfGenerator> zipf;
  if (cfg.zipf_theta > 0.0) zipf.emplace(cfg.key_range, cfg.zipf_theta);

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      SimSlot<bool> reply;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = zipf.has_value()
                                      ? zipf->next(ctx.rng()) + 1
                                      : ctx.rng().next_in(1, cfg.key_range);
        const Time issued = ctx.now();
        const std::uint64_t rid =
            obs::trace_enabled() ? obs::next_request_id() : 0;
        if (log != nullptr) log->begin(check_op(op), key, issued);
        // Route by the CPU-cached sentinel directory (Section 4.2): the
        // sentinels are few and hot, so the lookup hits the CPU cache; we
        // charge one LLC access for it. That lookup is the op's issue phase.
        ctx.charge(MemClass::kLlc);
        obs::record_sim_phase(obs::Phase::kIssue, ctx.now() - issued);
        const std::size_t p = partition_of(key, cfg.key_range, partitions);
        inboxes[p]->send(ctx, SkipMsg{op, key, &reply, false, ctx.now(), rid});
        const bool r = reply.await(ctx);
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        obs::record_sim_phase(obs::Phase::kTotal, ctx.now() - issued);
        if (rid != 0) {
          ctx.trace_complete("op", issued, {"req", rid}, {"key", key});
        }
        ++ops;
      }
      for (std::size_t v = 0; v < partitions; ++v) {
        inboxes[v]->send(ctx, SkipMsg{SetOp::kContains, 0, nullptr, true});
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
