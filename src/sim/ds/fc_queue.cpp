#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/ds/queues.hpp"
#include "sim/flat_combining.hpp"

namespace pimds::sim {

RunResult run_fc_queue(const QueueConfig& cfg, bool single_lock) {
  if (single_lock) {
    // Original flat combining: ONE lock serializes both operation types.
    Engine engine(cfg.params, cfg.seed);
    std::deque<std::uint64_t> items;
    for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);
    struct Req {
      bool is_enq;
      std::uint64_t value;
    };
    using Combiner = SimFlatCombiner<Req, std::optional<std::uint64_t>>;
    Combiner fc({/*charge_lock_llc=*/true, /*charge_slot_llc=*/true});
    const auto serve = [&](Context& cctx,
                           std::vector<Combiner::Pending>& batch) {
      for (auto& p : batch) {
        if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
        if (p.request.is_enq) {
          items.push_back(p.request.value);
          p.slot->set(cctx, std::nullopt);
        } else if (items.empty()) {
          p.slot->set(cctx, std::nullopt);
        } else {
          p.slot->set(cctx, items.front());
          items.pop_front();
        }
      }
    };
    std::uint64_t total_ops = 0;
    const auto spawn = [&](std::string name, bool is_enq) {
      engine.spawn(std::move(name), [&, is_enq](Context& ctx) {
        std::uint64_t ops = 0;
        while (ctx.now() < cfg.duration_ns) {
          const Time issued = ctx.now();
          fc.submit(ctx, Req{is_enq, ctx.rng().next()}, serve);
          if (cfg.latency_sink_ns != nullptr) {
            cfg.latency_sink_ns->push_back(
                static_cast<double>(ctx.now() - issued));
          }
          ++ops;
        }
        total_ops += ops;
      });
    };
    for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
      spawn("enq" + std::to_string(i), true);
    }
    for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
      spawn("deq" + std::to_string(i), false);
    }
    engine.run();
    return {total_ops, cfg.duration_ns};
  }

  Engine engine(cfg.params, cfg.seed);

  std::deque<std::uint64_t> items;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);

  // Section 5.2 cost accounting: one LLC access to compete for the combiner
  // lock, two LLC accesses per served publication slot.
  using EnqCombiner = SimFlatCombiner<std::uint64_t, bool>;
  using DeqCombiner = SimFlatCombiner<int, std::optional<std::uint64_t>>;
  const EnqCombiner::CostConfig costs{/*charge_lock_llc=*/true,
                                      /*charge_slot_llc=*/true};
  EnqCombiner enq_fc(costs);
  DeqCombiner deq_fc({costs.charge_lock_llc, costs.charge_slot_llc});

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    engine.spawn("enq" + std::to_string(i), [&](Context& ctx) {
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time issued = ctx.now();
        enq_fc.submit(
            ctx, ctx.rng().next(),
            [&](Context& cctx, std::vector<EnqCombiner::Pending>& batch) {
              for (auto& p : batch) {
                if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
                items.push_back(p.request);
                p.slot->set(cctx, true);
              }
            });
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - issued));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    engine.spawn("deq" + std::to_string(i), [&](Context& ctx) {
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time issued = ctx.now();
        deq_fc.submit(
            ctx, 0,
            [&](Context& cctx, std::vector<DeqCombiner::Pending>& batch) {
              for (auto& p : batch) {
                if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
                std::optional<std::uint64_t> out;
                if (!items.empty()) {
                  out = items.front();
                  items.pop_front();
                }
                p.slot->set(cctx, out);
              }
            });
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - issued));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
