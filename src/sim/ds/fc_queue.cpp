#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/ds/queues.hpp"
#include "sim/flat_combining.hpp"

namespace pimds::sim {

RunResult run_fc_queue(const QueueConfig& cfg, bool single_lock) {
  if (single_lock) {
    // Original flat combining: ONE lock serializes both operation types.
    Engine engine(cfg.params, cfg.seed);
    engine.set_perturbation(cfg.perturb);
    std::deque<std::uint64_t> items;
    for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);
    struct Req {
      bool is_enq;
      std::uint64_t value;
    };
    using Combiner = SimFlatCombiner<Req, std::optional<std::uint64_t>>;
    Combiner fc({/*charge_lock_llc=*/true, /*charge_slot_llc=*/true});
    const auto serve = [&](Context& cctx,
                           std::vector<Combiner::Pending>& batch) {
      for (auto& p : batch) {
        if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
        if (p.request.is_enq) {
          items.push_back(p.request.value);
          p.slot->set(cctx, std::nullopt);
        } else if (items.empty()) {
          p.slot->set(cctx, std::nullopt);
        } else {
          p.slot->set(cctx, items.front());
          items.pop_front();
        }
      }
    };
    std::uint64_t total_ops = 0;
    const auto spawn = [&](std::string name, bool is_enq, std::size_t slot) {
      engine.spawn(std::move(name), [&, is_enq, slot](Context& ctx) {
        check::ThreadLog* log =
            cfg.recorder != nullptr ? &cfg.recorder->log(slot) : nullptr;
        ArrivalPacer pacer(cfg, ctx);
        std::uint64_t ops = 0;
        while (ctx.now() < cfg.duration_ns) {
          const Time intended = pacer.next(ctx);
          if (intended >= cfg.duration_ns) break;
          const Time issued = ctx.now();
          const std::uint64_t value =
              !is_enq ? 0
              : log != nullptr
                  ? ((static_cast<std::uint64_t>(slot) + 1) << 48) | ops
                  : ctx.rng().next();
          if (log != nullptr) {
            log->begin(is_enq ? check::kEnq : check::kDeq, value, issued);
          }
          const std::optional<std::uint64_t> out =
              fc.submit(ctx, Req{is_enq, value}, serve);
          if (log != nullptr) {
            log->end(is_enq ? check::kRetTrue
                            : out.value_or(check::kRetEmpty),
                     ctx.now());
          }
          if (cfg.latency_sink_ns != nullptr) {
            cfg.latency_sink_ns->push_back(
                static_cast<double>(ctx.now() - intended));
          }
          ++ops;
        }
        total_ops += ops;
      });
    };
    for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
      spawn("enq" + std::to_string(i), true, i);
    }
    for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
      spawn("deq" + std::to_string(i), false, cfg.enqueuers + i);
    }
    engine.run();
    return {total_ops, cfg.duration_ns};
  }

  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  std::deque<std::uint64_t> items;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);

  // Section 5.2 cost accounting: one LLC access to compete for the combiner
  // lock, two LLC accesses per served publication slot.
  using EnqCombiner = SimFlatCombiner<std::uint64_t, bool>;
  using DeqCombiner = SimFlatCombiner<int, std::optional<std::uint64_t>>;
  const EnqCombiner::CostConfig costs{/*charge_lock_llc=*/true,
                                      /*charge_slot_llc=*/true};
  EnqCombiner enq_fc(costs);
  DeqCombiner deq_fc({costs.charge_lock_llc, costs.charge_slot_llc});

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    engine.spawn("enq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      ArrivalPacer pacer(cfg, ctx);
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time intended = pacer.next(ctx);
        if (intended >= cfg.duration_ns) break;
        const Time issued = ctx.now();
        const std::uint64_t value =
            log != nullptr
                ? ((static_cast<std::uint64_t>(i) + 1) << 48) | ops
                : ctx.rng().next();
        if (log != nullptr) log->begin(check::kEnq, value, issued);
        enq_fc.submit(
            ctx, value,
            [&](Context& cctx, std::vector<EnqCombiner::Pending>& batch) {
              for (auto& p : batch) {
                if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
                items.push_back(p.request);
                p.slot->set(cctx, true);
              }
            });
        if (log != nullptr) log->end(check::kRetTrue, ctx.now());
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - intended));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    engine.spawn("deq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr
              ? &cfg.recorder->log(cfg.enqueuers + i)
              : nullptr;
      ArrivalPacer pacer(cfg, ctx);
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time intended = pacer.next(ctx);
        if (intended >= cfg.duration_ns) break;
        const Time issued = ctx.now();
        if (log != nullptr) log->begin(check::kDeq, 0, issued);
        const std::optional<std::uint64_t> out = deq_fc.submit(
            ctx, 0,
            [&](Context& cctx, std::vector<DeqCombiner::Pending>& batch) {
              for (auto& p : batch) {
                if (cfg.charge_node_access) cctx.charge(MemClass::kCpuDram);
                std::optional<std::uint64_t> out;
                if (!items.empty()) {
                  out = items.front();
                  items.pop_front();
                }
                p.slot->set(cctx, out);
              }
            });
        if (log != nullptr) log->end(out.value_or(check::kRetEmpty), ctx.now());
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - intended));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
