#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim/flat_combining.hpp"

namespace pimds::sim {

RunResult run_fc_skiplist(const SkipListConfig& cfg, std::size_t partitions) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  // k independent flat-combining skip-lists, one combiner per partition
  // (Section 4.2: "k combiners are in charge of k partitions").
  std::vector<std::unique_ptr<SimSkipList>> lists;
  using Combiner = SimFlatCombiner<std::pair<SetOp, std::uint64_t>, bool>;
  std::vector<std::unique_ptr<Combiner>> combiners;
  for (std::size_t i = 0; i < partitions; ++i) {
    lists.push_back(std::make_unique<SimSkipList>(
        partition_sentinel(i, cfg.key_range, partitions)));
    combiners.push_back(std::make_unique<Combiner>());
  }
  Xoshiro256 setup(cfg.seed ^ 0x5eedULL);
  std::size_t total_size = 0;
  while (total_size < cfg.initial_size) {
    const std::uint64_t key = setup.next_in(1, cfg.key_range);
    SimSkipList& part = *lists[partition_of(key, cfg.key_range, partitions)];
    if (part.insert_for_setup(setup, key)) {
      record_setup_add(cfg.recorder, key);
      ++total_size;
    }
  }

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        const std::size_t p = partition_of(key, cfg.key_range, partitions);
        SimSkipList& list = *lists[p];
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        // No combining optimization for skip-lists (Section 4.2: distant
        // keys share no traversal prefix); the combiner executes requests
        // one by one.
        const bool r = combiners[p]->submit(
            ctx, {op, key},
            [&list](Context& cctx, std::vector<Combiner::Pending>& batch) {
              for (auto& pending : batch) {
                const bool res =
                    list.execute(cctx, pending.request.first,
                                 pending.request.second, MemClass::kCpuDram);
                pending.slot->set(cctx, res);
              }
            });
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
