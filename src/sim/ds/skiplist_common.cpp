#include "sim/ds/skiplist_common.hpp"

#include <cassert>

namespace pimds::sim {

SimSkipList::SimSkipList(std::uint64_t sentinel_key) {
  head_ = new Node{sentinel_key,
                   std::vector<Node*>(static_cast<std::size_t>(kMaxHeight),
                                      nullptr)};
}

SimSkipList::~SimSkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    delete n;
    n = next;
  }
}

int SimSkipList::random_height(Xoshiro256& rng) const {
  int h = 1;
  while (h < kMaxHeight && rng.next_bool(0.5)) ++h;
  return h;
}

void SimSkipList::insert_internal(Xoshiro256& rng, std::uint64_t key) {
  std::vector<Node*> preds(kMaxHeight, head_);
  Node* pred = head_;
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    Node* curr = pred->next[lvl];
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[lvl];
    }
    preds[lvl] = pred;
  }
  Node* at = preds[0]->next[0];
  if (at != nullptr && at->key == key) return;  // distinct keys only
  const int height = random_height(rng);
  Node* node = new Node{key, std::vector<Node*>(
                                 static_cast<std::size_t>(height), nullptr)};
  for (int lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  ++size_;
}

void SimSkipList::populate(Xoshiro256& rng, std::size_t target_size,
                           std::uint64_t lo, std::uint64_t hi) {
  while (size_ < target_size) {
    insert_internal(rng, rng.next_in(lo, hi));
  }
}

bool SimSkipList::insert_for_setup(Xoshiro256& rng, std::uint64_t key) {
  const std::size_t before = size_;
  insert_internal(rng, key);
  return size_ != before;
}

std::optional<std::uint64_t> SimSkipList::extract_first_at_least(
    Context& ctx, std::uint64_t key, MemClass hop_class) {
  std::vector<Node*> preds(kMaxHeight, head_);
  Node* pred = head_;
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    Node* curr = pred->next[lvl];
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[lvl];
    }
    preds[lvl] = pred;
  }
  Node* victim = preds[0]->next[0];
  if (victim == nullptr) return std::nullopt;
  for (int lvl = 0; lvl < static_cast<int>(victim->next.size()); ++lvl) {
    if (preds[lvl]->next[lvl] == victim) {
      preds[lvl]->next[lvl] = victim->next[lvl];
    }
  }
  const std::uint64_t out = victim->key;
  delete victim;
  --size_;
  ++mutation_epoch_;
  ctx.charge(hop_class, 2);  // amortized sweep cost (see header)
  return out;
}

bool SimSkipList::insert_ascending(Context& ctx, InsertCursor& cursor,
                                   std::uint64_t key, MemClass hop_class) {
  auto** preds = reinterpret_cast<Node**>(cursor.preds_);
  std::uint64_t steps = 0;
  if (!cursor.valid || cursor.epoch != mutation_epoch_) {
    // (Re-)seed the fingers with one full search.
    Node* pred = head_;
    int top = kMaxHeight - 1;
    while (top > 0 && head_->next[top] == nullptr) --top;
    for (int lvl = kMaxHeight - 1; lvl > top; --lvl) preds[lvl] = head_;
    for (int lvl = top; lvl >= 0; --lvl) {
      Node* curr = pred->next[lvl];
      ++steps;
      while (curr != nullptr && curr->key < key) {
        pred = curr;
        curr = curr->next[lvl];
        ++steps;
      }
      preds[lvl] = pred;
    }
    cursor.valid = true;
  } else {
    // Advance the fingers monotonically; total movement over a whole
    // migration is one bottom-level walk, so per-insert cost is O(1)
    // amortized plus the tower links.
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      Node* pred = preds[lvl];
      Node* curr = pred->next[lvl];
      while (curr != nullptr && curr->key < key) {
        pred = curr;
        curr = curr->next[lvl];
        ++steps;
      }
      preds[lvl] = pred;
    }
    ++steps;  // reading the insertion point
  }
  Node* at = preds[0]->next[0];
  if (at != nullptr && at->key == key) {
    ctx.charge(hop_class, steps);
    return false;
  }
  const int height = random_height(ctx.rng());
  Node* node = new Node{key, std::vector<Node*>(
                                 static_cast<std::size_t>(height), nullptr)};
  for (int lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  ++size_;
  steps += static_cast<std::uint64_t>(height);
  cursor.epoch = mutation_epoch_;  // our own insert does not invalidate us
  ctx.charge(hop_class, steps);
  return true;
}

std::optional<std::uint64_t> SimSkipList::first_at_least(
    std::uint64_t key) const {
  const Node* pred = head_;
  int top = kMaxHeight - 1;
  while (top > 0 && head_->next[top] == nullptr) --top;
  for (int lvl = top; lvl >= 0; --lvl) {
    const Node* curr = pred->next[lvl];
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[lvl];
    }
  }
  const Node* found = pred->next[0];
  if (found == nullptr) return std::nullopt;
  return found->key;
}

SimSkipList::Node* SimSkipList::locate(Context& ctx, std::uint64_t key,
                                       MemClass hop_class,
                                       std::vector<Node*>& preds) {
  preds.assign(kMaxHeight, head_);
  Node* pred = head_;
  std::uint64_t steps = 0;
  // Start at the highest level that is actually populated: a real skip-list
  // tracks its height in a head-resident variable, so probing the empty top
  // levels costs nothing.
  int top = kMaxHeight - 1;
  while (top > 0 && head_->next[top] == nullptr) --top;
  for (int lvl = top; lvl >= 0; --lvl) {
    Node* curr = pred->next[lvl];
    ++steps;  // reading the forward pointer at this level
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[lvl];
      ++steps;
    }
    preds[lvl] = pred;
  }
  // Charge the whole search at once: the paper's beta counts "nodes an
  // operation has to access to find the location of its key".
  ctx.charge(hop_class, steps);
  steps_ += steps;
  ++searches_;
  return preds[0]->next[0];
}

bool SimSkipList::execute(Context& ctx, SetOp op, std::uint64_t key,
                          MemClass hop_class) {
  assert(key > head_->key && "operation key must exceed the sentinel key");
  std::vector<Node*> preds;
  Node* found = locate(ctx, key, hop_class, preds);
  const bool present = found != nullptr && found->key == key;
  switch (op) {
    case SetOp::kContains:
      return present;
    case SetOp::kAdd: {
      if (present) return false;
      ++mutation_epoch_;
      const int height = random_height(ctx.rng());
      Node* node = new Node{
          key, std::vector<Node*>(static_cast<std::size_t>(height), nullptr)};
      for (int lvl = 0; lvl < height; ++lvl) {
        node->next[lvl] = preds[lvl]->next[lvl];
        preds[lvl]->next[lvl] = node;
      }
      ++size_;
      return true;
    }
    case SetOp::kRemove: {
      if (!present) return false;
      ++mutation_epoch_;
      for (int lvl = 0;
           lvl < static_cast<int>(found->next.size()); ++lvl) {
        if (preds[lvl]->next[lvl] == found) {
          preds[lvl]->next[lvl] = found->next[lvl];
        }
      }
      delete found;
      --size_;
      return true;
    }
  }
  return false;
}

std::vector<std::uint64_t> SimSkipList::keys() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  for (const Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
    out.push_back(n->key);
  }
  return out;
}

}  // namespace pimds::sim
