#include <string>

#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"

namespace pimds::sim {

RunResult run_lockfree_skiplist(const SkipListConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  SimSkipList list(0);
  Xoshiro256 setup(cfg.seed ^ 0x5eedULL);
  list.populate(setup, cfg.initial_size, 1, cfg.key_range);
  record_setup_contents(cfg.recorder, list.keys());

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        ctx.sync();
        const bool effect = list.execute(ctx, op, key, MemClass::kCpuDram);
        if (log != nullptr) {
          log->end(effect ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        if (cfg.charge_cas && effect && op != SetOp::kContains) {
          // Herlihy-Shavit add/remove CAS node pointers; contention is low
          // (distinct nodes), so charge the RMW latency without a shared
          // serialization point.
          ctx.charge(MemClass::kAtomic);
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
