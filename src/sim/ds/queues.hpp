// Simulated FIFO queue experiments (Section 5, Algorithm 1, Section 5.2).
//
// Three queues:
//   - F&A-based queue [41]: every enqueue/dequeue performs one F&A on a
//     shared cache line; k concurrent F&As serialize at Latomic each, so
//     per-side throughput is bounded by 1/Latomic.
//   - Flat-combining queue [25] with two combiner locks (one for enqueues,
//     one for dequeues, as in Section 5.2's setup): bounded by 1/(2 Lllc).
//   - PIM-managed queue (Algorithm 1): per-vault segments, distinct enqueue
//     and dequeue segments served by different PIM cores, segment hand-off
//     via newEnqSeg/newDeqSeg messages, CPU retry on rejection, and
//     response pipelining; per-side throughput approaches 1/Lpim.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/latency.hpp"
#include "sim/workload.hpp"

namespace pimds::sim {

/// Arrival process for each client actor.
///
/// kClosedLoop (the default, and the paper's Section 5 setup) issues the
/// next operation the moment the previous one completes. Right for
/// throughput; WRONG for latency at saturation — the client can only issue
/// as fast as the system completes, so every server stall silently deletes
/// the samples that would have landed inside it (coordinated omission; the
/// telltale is p50 == p99). The open-loop schedules fix each operation's
/// intended start from an injection schedule independent of completions,
/// and latency is measured from that intended start.
enum class ArrivalSchedule : std::uint8_t {
  kClosedLoop,
  /// Fixed inter-arrival `arrival_period_ns` per actor, with a uniform
  /// per-actor phase stagger so k injectors do not arrive in lockstep.
  kDeterministic,
  /// Exponential inter-arrivals with mean `arrival_period_ns` — the
  /// aggregate over actors is a Poisson process, matching the M/D/1
  /// conformance model's arrival assumption.
  kPoisson,
};

struct QueueConfig {
  LatencyParams params = LatencyParams::paper_defaults();
  std::uint64_t seed = 1;
  Time duration_ns = 10'000'000;
  std::size_t enqueuers = 4;
  std::size_t dequeuers = 4;
  /// Nodes pre-filled so dequeuers on a "long queue" never observe empty.
  /// Deliberately NOT a multiple of the default segment threshold, so the
  /// pre-filled enqueue segment is half full and the enqueue side does not
  /// hand off at t=0 in phase with the dequeue side.
  std::size_t initial_nodes = 63 * 1024 + 512;
  /// Realism flag: also charge the queue-node memory access that the
  /// paper's F&A / FC analysis deliberately ignores ("we have ignored the
  /// latency of accessing and modifying queue nodes").
  bool charge_node_access = false;
  /// When non-null, every completed operation appends its virtual latency
  /// here (in ns). Closed loop: request issue to response consumption.
  /// Open loop: INTENDED start to response consumption (coordinated-
  /// omission-free — queueing behind a late injector counts against the
  /// operation). The paper argues pipelining buys throughput; the latency
  /// distribution shows what each design pays per operation to get it.
  std::vector<double>* latency_sink_ns = nullptr;
  /// Client arrival process (see ArrivalSchedule). Open-loop schedules
  /// require arrival_period_ns > 0.
  ArrivalSchedule arrival = ArrivalSchedule::kClosedLoop;
  /// Mean per-actor inter-arrival time for the open-loop schedules. The
  /// aggregate offered rate is (enqueuers + dequeuers) / arrival_period_ns.
  double arrival_period_ns = 0.0;
  /// Schedule perturbation for adversarial exploration (check/explore.hpp).
  Engine::Perturbation perturb{};
  /// Optional linearizability-history recording (check/). Needs
  /// `enqueuers + dequeuers` logs: enqueuer i records into log(i), dequeuer
  /// j into log(enqueuers + j). The pre-filled nodes carry values
  /// 0 .. initial_nodes-1 and enter the checker as the initial queue state;
  /// recorded enqueues use values tagged with the producer id so every
  /// value in the history is unique (QueueSpec matches dequeues by value).
  check::HistoryRecorder* recorder = nullptr;
};

/// Per-actor open-loop injection clock, shared by the three simulated
/// queues. Each call to next() yields the intended start of the actor's
/// next operation: if the actor is AHEAD of schedule its virtual clock
/// jumps forward to the intended time (the sim analogue of a real
/// injector's wait_until); if it is BEHIND (the previous op overran the
/// next slot) the intended time is already in the past and the measured
/// latency absorbs the lag — exactly the accounting coordinated omission
/// loses. Closed loop degenerates to next() == now().
class ArrivalPacer {
 public:
  ArrivalPacer(const QueueConfig& cfg, Context& ctx)
      : schedule_(cfg.arrival), period_ns_(cfg.arrival_period_ns) {
    // Uniform phase stagger so deterministic injectors spread over one
    // period instead of arriving k-at-a-time.
    next_intended_ = schedule_ == ArrivalSchedule::kClosedLoop
                         ? 0.0
                         : ctx.rng().next_double() * period_ns_;
  }

  /// Intended start of the next operation (advances the actor clock when
  /// ahead of schedule).
  Time next(Context& ctx) noexcept {
    if (schedule_ == ArrivalSchedule::kClosedLoop) return ctx.now();
    const Time intended = static_cast<Time>(next_intended_);
    ctx.set_time(intended);  // no-op when already late
    next_intended_ +=
        schedule_ == ArrivalSchedule::kPoisson
            ? -period_ns_ * std::log(1.0 - ctx.rng().next_double())
            : period_ns_;
    return intended;
  }

 private:
  ArrivalSchedule schedule_;
  double period_ns_;
  double next_intended_ = 0.0;
};

/// Where a PIM core creates the next enqueue segment (Algorithm 1 line 14
/// leaves the choice open; the paper notes richer policies as future work).
enum class SegmentPlacement : std::uint8_t {
  /// Strict round-robin. Pathology worth knowing about: because enqueue and
  /// dequeue roles advance at the same rate (one core per `threshold`
  /// operations), round-robin can park both roles on the SAME core and keep
  /// them there — a stable fixed point that serializes the two sides and
  /// halves throughput. The ablation bench demonstrates this.
  kRoundRobin,
  /// Round-robin, but skip the core currently holding the dequeue segment.
  /// Reduces — but does not eliminate — co-residency: once both roles land
  /// on the SAME core, the skip condition never fires and they advance in
  /// lockstep.
  kAvoidDequeueCore,
  /// Place each new enqueue segment on the core "opposite" the current
  /// dequeue core ((deq + k/2) mod k). Self-stabilizing: when the dequeue
  /// role reaches a segment, the enqueue role is by construction filling a
  /// segment placed half a ring away, so the two sides stay on distinct
  /// cores — the Section 5 assumption that enqueues and dequeues proceed in
  /// parallel. This is the default.
  kOppositeDequeueCore,
};

/// Deliberately broken PIM-queue variants for checker mutation testing:
/// each fault models a real protocol mistake and MUST be caught by the
/// linearizability checker (tests/test_checker_mutation.cpp).
enum class QueueFault : std::uint8_t {
  kNone,
  /// Segment hand-off bug: when the dequeue role moves to the next segment
  /// (Algorithm 1's newDeqSeg), the new core serves its freshest buffered
  /// nodes first — as if the hand-off message fenced nothing and the
  /// successor's local order leaked. Breaks FIFO across the hand-off.
  kHandoffReorder,
  /// Response bug: the dequeue core occasionally re-serves the value it just
  /// dequeued without popping again — a stale-sentinel read after the
  /// segment advanced. One value reaches two dequeuers.
  kDoubleServe,
};

struct PimQueueOptions {
  std::size_t num_vaults = 4;
  /// Segment length threshold (Algorithm 1 line 13). A huge threshold keeps
  /// the queue in the single-segment ("short queue") regime, where one core
  /// serves both request types and throughput halves (end of Section 5.2).
  std::uint64_t segment_threshold = 1024;
  /// Response pipelining (Figure 6). When off, the PIM core stalls for
  /// Lmessage after each response before serving the next request.
  bool pipelining = true;
  SegmentPlacement placement = SegmentPlacement::kOppositeDequeueCore;
  /// Section 5.1's further optimization: the enqueue core drains every
  /// already-delivered enqueue request and stores the values as one "fat"
  /// array node, paying one local memory access per `fat_node_capacity`
  /// values instead of one per value.
  bool enqueue_combining = false;
  std::size_t fat_node_capacity = 8;  ///< values per cache-line array node
  QueueFault fault = QueueFault::kNone;  ///< mutation testing only
};

RunResult run_faa_queue(const QueueConfig& cfg);
/// Flat-combining queue. The paper's Section 5.2 variant uses TWO combiner
/// locks (enqueues and dequeues in parallel); `single_lock` switches to the
/// original one-lock flat-combining queue for the ablation.
RunResult run_fc_queue(const QueueConfig& cfg, bool single_lock = false);
/// Extra baseline (not in the paper's tables): CAS-retry Michael-Scott
/// queue, which degrades under contention — the reason the paper compares
/// against the F&A queue as the strongest CPU FIFO.
RunResult run_ms_queue(const QueueConfig& cfg);

struct PimQueueResult {
  RunResult run;
  std::uint64_t rejections = 0;        ///< requests that had to be resent
  std::uint64_t segments_created = 0;  ///< newEnqSeg activations
  std::uint64_t empty_dequeues = 0;    ///< dequeues that found the queue empty
  /// Ops served by a core holding BOTH special segments (the serialized
  /// regime; see SegmentPlacement::kRoundRobin).
  std::uint64_t co_resident_ops = 0;
  std::uint64_t enq_ops = 0;  ///< accepted enqueues
  std::uint64_t deq_ops = 0;  ///< accepted dequeues (incl. empty results)
  /// Enqueue service batches (one fat-node combining drain, or one plain
  /// enqueue). enq_ops / enq_batches is the Section 5.1 combining ratio.
  std::uint64_t enq_batches = 0;
};

PimQueueResult run_pim_queue(const QueueConfig& cfg,
                             const PimQueueOptions& opts);

}  // namespace pimds::sim
