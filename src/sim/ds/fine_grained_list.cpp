#include <string>

#include "sim/ds/linked_lists.hpp"

namespace pimds::sim {

RunResult run_fine_grained_list(const ListConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  SimList list;
  Xoshiro256 setup(cfg.seed ^ 0xabcdefULL);
  list.populate(setup, cfg.initial_size, cfg.key_range);
  record_setup_contents(cfg.recorder, list.keys());

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        // Hand-over-hand locking lets traversals pipeline down the list, so
        // the model charges only the traversal itself; enter the scheduler
        // once per operation so actors interleave in virtual time.
        ctx.sync();
        const bool r = list.execute(ctx, op, key, MemClass::kCpuDram);
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        ++ops;
      }
      total_ops += ops;  // engine is single-threaded: no race
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
