#include <string>

#include "sim/ds/linked_lists.hpp"

namespace pimds::sim {

RunResult run_fine_grained_list(const ListConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  SimList list;
  Xoshiro256 setup(cfg.seed ^ 0xabcdefULL);
  list.populate(setup, cfg.initial_size, cfg.key_range);

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      (void)i;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        // Hand-over-hand locking lets traversals pipeline down the list, so
        // the model charges only the traversal itself; enter the scheduler
        // once per operation so actors interleave in virtual time.
        ctx.sync();
        list.execute(ctx, op, key, MemClass::kCpuDram);
        ++ops;
      }
      total_ops += ops;  // engine is single-threaded: no race
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
