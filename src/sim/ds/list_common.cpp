#include "sim/ds/list_common.hpp"

#include <cassert>
#include <numeric>

namespace pimds::sim {

void SimList::populate(Xoshiro256& rng, std::size_t target_size,
                       std::uint64_t key_range) {
  while (size_ < target_size) {
    const std::uint64_t key = rng.next_in(1, key_range);
    Node* prev = head_;
    Node* curr = head_->next;
    while (curr != nullptr && curr->key < key) {
      prev = curr;
      curr = curr->next;
    }
    if (curr != nullptr && curr->key == key) continue;  // distinct keys only
    prev->next = new Node{key, curr};
    ++size_;
  }
}

void SimList::locate(Context& ctx, std::uint64_t key, MemClass hop_class,
                     Node*& prev, Node*& curr) {
  prev = head_;
  ctx.charge(hop_class);  // reading the head node
  curr = head_->next;
  while (curr != nullptr && curr->key < key) {
    ctx.charge(hop_class);
    prev = curr;
    curr = curr->next;
  }
}

bool SimList::apply(SetOp op, std::uint64_t key, Node* prev, Node* curr) {
  const bool present = curr != nullptr && curr->key == key;
  switch (op) {
    case SetOp::kContains:
      return present;
    case SetOp::kAdd:
      if (present) return false;
      prev->next = new Node{key, curr};
      ++size_;
      return true;
    case SetOp::kRemove:
      if (!present) return false;
      prev->next = curr->next;
      delete curr;
      --size_;
      return true;
  }
  return false;
}

bool SimList::execute(Context& ctx, SetOp op, std::uint64_t key,
                      MemClass hop_class) {
  assert(key >= 1 && "key 0 is reserved for the dummy head");
  Node* prev = nullptr;
  Node* curr = nullptr;
  locate(ctx, key, hop_class, prev, curr);
  return apply(op, key, prev, curr);
}

void SimList::execute_combined(
    Context& ctx, std::vector<std::pair<SetOp, std::uint64_t>>& batch,
    std::vector<bool>& results, MemClass hop_class) {
  results.assign(batch.size(), false);
  // Serve in ascending key order with one traversal; remember original
  // positions so results land where the callers expect them.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable: requests with equal keys are served in arrival order.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return batch[a].second < batch[b].second;
                   });

  Node* prev = head_;
  ctx.charge(hop_class);
  Node* curr = head_->next;
  for (const std::size_t idx : order) {
    const auto [op, key] = batch[idx];
    assert(key >= 1);
    while (curr != nullptr && curr->key < key) {
      ctx.charge(hop_class);
      prev = curr;
      curr = curr->next;
    }
    results[idx] = apply(op, key, prev, curr);
    // apply() may have inserted or removed at the cursor: re-establish curr
    // as prev->next. It is again the first node with key >= the served key
    // (an inserted node carries exactly that key), so duplicate keys later
    // in the batch are adjudicated correctly.
    curr = prev->next;
  }
}

std::vector<std::uint64_t> SimList::keys() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  for (const Node* n = head_->next; n != nullptr; n = n->next) {
    out.push_back(n->key);
  }
  return out;
}

}  // namespace pimds::sim
