// Shared skip-list used by the simulated skip-list experiments (Section 4.2).
//
// A real skip-list (geometric tower heights, multi-level search) so that the
// per-operation access count beta = Theta(log N) emerges from the structure
// itself rather than being assumed. Latency is charged per node step during
// search, at the class of whoever executes (CPU or PIM core).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/latency.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/workload.hpp"

namespace pimds::sim {

class SimSkipList {
 public:
  static constexpr int kMaxHeight = 24;

  /// @param sentinel_key  key of the always-present head sentinel; partitioned
  ///        deployments (Figure 3) give each partition a max-height sentinel
  ///        at the lower bound of its key range.
  explicit SimSkipList(std::uint64_t sentinel_key = 0);
  ~SimSkipList();

  SimSkipList(const SimSkipList&) = delete;
  SimSkipList& operator=(const SimSkipList&) = delete;

  /// Insert distinct uniform keys from [lo, hi] until `target_size` nodes
  /// (setup phase: no latency charged).
  void populate(Xoshiro256& rng, std::size_t target_size, std::uint64_t lo,
                std::uint64_t hi);

  /// Setup-phase single insert (no latency charged). Returns false if the
  /// key was already present.
  bool insert_for_setup(Xoshiro256& rng, std::uint64_t key);

  /// Smallest key >= `key`, if any (migration cursor scans; no charge — the
  /// caller charges the removal that follows).
  std::optional<std::uint64_t> first_at_least(std::uint64_t key) const;

  /// Unlink and return the smallest key >= `key` (nullopt if none). Charges
  /// 2 local accesses: a range migration sweeps the bottom level in
  /// ascending order while carrying per-level predecessor fingers, so tower
  /// unlinking amortizes to O(1) accesses per extracted node — unlike an
  /// independent remove(), which would pay a full beta-step search per key.
  std::optional<std::uint64_t> extract_first_at_least(Context& ctx,
                                                      std::uint64_t key,
                                                      MemClass hop_class);

  /// Finger cursor for ascending bulk inserts (the migration TARGET's dual
  /// of extract_first_at_least: kMigNode keys arrive in ascending order, so
  /// per-level predecessor fingers make each insert amortized O(1) instead
  /// of a full beta-step search). The cursor self-invalidates when any
  /// other operation mutates the list (e.g. a forwarded op landing mid-
  /// migration), falling back to one full search to re-seed the fingers.
  class InsertCursor {
   public:
    InsertCursor() = default;

   private:
    friend class SimSkipList;
    void* preds_[kMaxHeight] = {};
    std::uint64_t epoch = 0;
    bool valid = false;
  };

  /// Insert `key`, which must be >= every key previously inserted through
  /// `cursor`. Returns false if already present.
  bool insert_ascending(Context& ctx, InsertCursor& cursor, std::uint64_t key,
                        MemClass hop_class);

  /// Execute one operation, charging `hop_class` per node step.
  bool execute(Context& ctx, SetOp op, std::uint64_t key, MemClass hop_class);

  std::size_t size() const noexcept { return size_; }

  /// Average node steps per search observed since construction (test hook;
  /// this is the paper's beta).
  double observed_beta() const noexcept {
    return searches_ == 0
               ? 0.0
               : static_cast<double>(steps_) / static_cast<double>(searches_);
  }

  std::vector<std::uint64_t> keys() const;

 private:
  struct Node {
    std::uint64_t key;
    std::vector<Node*> next;
  };

  /// Search from the sentinel, filling preds/succs per level and charging
  /// one `hop_class` access per step. Returns the level-0 successor.
  Node* locate(Context& ctx, std::uint64_t key, MemClass hop_class,
               std::vector<Node*>& preds);

  int random_height(Xoshiro256& rng) const;
  void insert_internal(Xoshiro256& rng, std::uint64_t key);

  Node* head_;
  std::size_t size_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t searches_ = 0;
  /// Bumped by every structural mutation outside insert_ascending, so live
  /// InsertCursors know their fingers may dangle.
  std::uint64_t mutation_epoch_ = 0;
};

}  // namespace pimds::sim
