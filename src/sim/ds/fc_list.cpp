#include <string>
#include <utility>
#include <vector>

#include "sim/ds/linked_lists.hpp"
#include "sim/flat_combining.hpp"

namespace pimds::sim {

RunResult run_fc_list(const ListConfig& cfg, bool combining) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  SimList list;
  Xoshiro256 setup(cfg.seed ^ 0xabcdefULL);
  list.populate(setup, cfg.initial_size, cfg.key_range);
  record_setup_contents(cfg.recorder, list.keys());

  using Combiner = SimFlatCombiner<std::pair<SetOp, std::uint64_t>, bool>;
  // Table 1 counts only traversal costs for the FC list; the publication
  // list / combiner lock overheads are noted as negligible there.
  Combiner fc;

  const auto serve = [&](Context& ctx, std::vector<Combiner::Pending>& batch) {
    if (combining) {
      std::vector<std::pair<SetOp, std::uint64_t>> requests;
      requests.reserve(batch.size());
      for (const auto& p : batch) requests.push_back(p.request);
      std::vector<bool> results;
      list.execute_combined(ctx, requests, results, MemClass::kCpuDram);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].slot->set(ctx, results[i]);
      }
    } else {
      for (auto& p : batch) {
        const bool r =
            list.execute(ctx, p.request.first, p.request.second,
                         MemClass::kCpuDram);
        p.slot->set(ctx, r);
      }
    }
  };

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        const std::uint64_t key = ctx.rng().next_in(1, cfg.key_range);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        const bool r = fc.submit(ctx, {op, key}, serve);
        if (log != nullptr) {
          log->end(r ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
