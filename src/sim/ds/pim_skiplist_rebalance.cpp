// Simulated PIM skip-list with the full Section 4.2.1 node-migration
// protocol, driven by a Zipf-skewed workload and an online rebalancer.
//
// Protocol fidelity mirrors core/pim_skiplist.cpp:
//  - the migration source serves not-yet-migrated keys locally and
//    forwards already-migrated keys to the target on the same channel as
//    the kMigNode stream (per-channel FIFO makes the forward safe);
//  - the target defers direct requests for the incoming range until
//    kMigEnd, so they cannot overtake in-flight kMigNode messages;
//  - the source updates the CPU-visible directory BEFORE sending kMigEnd
//    (the paper notifies the CPUs first), so a post-migration request at
//    the source is simply rejected and re-routed.
#include <algorithm>
#include <cassert>
#include <deque>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/zipf.hpp"
#include "obs/obs.hpp"
#include "sim/ds/skiplist_common.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

namespace {

struct Reply {
  bool accepted = false;
  bool result = false;
};

struct Msg {
  enum class Kind : std::uint8_t {
    kOp,
    kMigStart,
    kMigBegin,
    kMigNode,
    kMigEnd,
    kFwdOp,
    kStop,
  };
  Kind kind = Kind::kStop;
  SetOp op = SetOp::kContains;
  std::uint64_t key = 0;
  std::uint64_t hi = 0;      ///< kMigStart / kMigBegin: range end
  std::size_t peer = 0;      ///< kMigStart: target vault
  SimSlot<Reply>* reply = nullptr;
};

struct Migration {
  bool active = false;
  bool outgoing = false;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t peer = 0;
  std::uint64_t cursor = 0;
};

struct Directory {
  std::vector<std::pair<std::uint64_t, std::size_t>> entries;  // sorted

  std::size_t route(std::uint64_t key) const {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), key,
        [](std::uint64_t k, const auto& e) { return k < e.first; });
    assert(it != entries.begin());
    return (it - 1)->second;
  }

  std::uint64_t end_of(std::uint64_t key) const {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), key,
        [](std::uint64_t k, const auto& e) { return k < e.first; });
    return it == entries.end() ? ~std::uint64_t{0} : it->first;
  }

  void move_range(std::uint64_t split, std::size_t vault) {
    auto it = std::upper_bound(
        entries.begin(), entries.end(), split,
        [](std::uint64_t k, const auto& e) { return k < e.first; });
    --it;
    if (it->first == split) {
      it->second = vault;
    } else {
      entries.insert(it + 1, {split, vault});
    }
  }
};

struct SimVault {
  std::size_t id = 0;
  std::unique_ptr<SimSkipList> list;
  Mailbox<Msg> inbox;
  Migration mig;
  std::deque<Msg> deferred;
  /// This core's OWN view of the ranges it serves (lo -> hi, exclusive),
  /// advanced only by events this core has already processed (mirrors
  /// core/pim_skiplist.cpp): execute/reject must consult this, never the
  /// shared directory, which the source updates before the target has
  /// processed the granting kMigBegin/kMigNode/kMigEnd stream.
  std::map<std::uint64_t, std::uint64_t> owned;
  /// Target-side fingers: kMigNode keys arrive ascending, so inserts are
  /// amortized O(1) (the dual of the source's amortized extraction).
  SimSkipList::InsertCursor incoming_cursor;
  std::uint64_t requests = 0;
};

/// Deterministic in-sim load accounting for the kActiveLoadMap policy —
/// the sim twin of obs::LoadMap (global key-range grid + per-vault
/// SpaceSaving hot-key sketch), kept independent of the metrics registry
/// so schedule exploration stays deterministic with observability off.
struct SimLoad {
  static constexpr std::size_t kRanges = 64;
  static constexpr std::size_t kSketch = 8;

  struct HotKey {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
  };

  std::uint64_t key_range = 1;
  std::vector<std::uint64_t> range_ops;            // cumulative, global
  std::vector<std::array<HotKey, kSketch>> sketch;  // per vault, cumulative

  SimLoad(std::uint64_t range, std::size_t vaults)
      : key_range(range), range_ops(kRanges, 0), sketch(vaults) {}

  std::size_t range_of(std::uint64_t key) const noexcept {
    if (key <= 1) return 0;
    const std::size_t idx =
        static_cast<std::size_t>((key - 1) * kRanges / key_range);
    return idx >= kRanges ? kRanges - 1 : idx;
  }
  std::uint64_t range_lo(std::size_t idx) const noexcept {
    return 1 + idx * key_range / kRanges;
  }
  std::uint64_t range_hi(std::size_t idx) const noexcept {
    return idx + 1 < kRanges ? (idx + 1) * key_range / kRanges : key_range;
  }

  void record(std::size_t vault, std::uint64_t key) {
    ++range_ops[range_of(key)];
    auto& entries = sketch[vault];
    std::size_t min_i = 0;
    for (std::size_t i = 0; i < kSketch; ++i) {
      if (entries[i].key == key || entries[i].count == 0) {
        entries[i].key = key;
        ++entries[i].count;
        return;
      }
      if (entries[i].count < entries[min_i].count) min_i = i;
    }
    // SpaceSaving eviction: the new key inherits the victim's count.
    entries[min_i].key = key;
    ++entries[min_i].count;
  }
};

}  // namespace

RebalanceResult run_pim_skiplist_rebalance(const RebalanceConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);
  const std::size_t k = cfg.partitions;
  const double msg_ns = cfg.params.message();
  RebalanceResult result;

  Directory dir;
  SimLoad load(cfg.key_range, k);
  std::vector<std::unique_ptr<SimVault>> vaults;
  for (std::size_t v = 0; v < k; ++v) {
    dir.entries.push_back({1 + v * cfg.key_range / k, v});
    auto vault = std::make_unique<SimVault>();
    vault->id = v;
    // Global-minimum sentinel: migrations may hand any vault any range.
    vault->list = std::make_unique<SimSkipList>(0);
    vaults.push_back(std::move(vault));
  }
  for (std::size_t v = 0; v < k; ++v) {
    const std::uint64_t lo = dir.entries[v].first;
    const std::uint64_t hi =
        v + 1 < k ? dir.entries[v + 1].first : ~std::uint64_t{0};
    vaults[v]->owned.emplace(lo, hi);
  }
  const auto owns_locally = [](const SimVault& vault, std::uint64_t key) {
    auto it = vault.owned.upper_bound(key);
    if (it == vault.owned.begin()) return false;
    --it;
    return key < it->second;
  };
  {
    Xoshiro256 setup(cfg.seed ^ 0xfeedULL);
    std::size_t total = 0;
    while (total < cfg.initial_size) {
      const std::uint64_t key = setup.next_in(1, cfg.key_range);
      if (vaults[dir.route(key)]->list->insert_for_setup(setup, key)) {
        record_setup_add(cfg.recorder, key);
        ++total;
      }
    }
  }

  bool migration_busy = false;  // the Section 4.2.1 one-at-a-time guard
  std::int64_t net_adds = 0;    // successful adds minus successful removes

  auto& registry = obs::Registry::instance();
  obs::Counter& c_migrated = registry.counter("sim.rebalance.migrated_keys");
  obs::Counter& c_forwarded = registry.counter("sim.rebalance.forwarded");
  obs::Counter& c_deferred = registry.counter("sim.rebalance.deferred");
  obs::Counter& c_rejections = registry.counter("sim.rebalance.rejections");

  const auto execute_and_reply = [&](Context& ctx, SimVault& vault,
                                     const Msg& m) {
    ++vault.requests;
    load.record(vault.id, m.key);
    const bool r = vault.list->execute(ctx, m.op, m.key, MemClass::kPimLocal);
    if (r && m.op == SetOp::kAdd) ++net_adds;
    if (r && m.op == SetOp::kRemove) --net_adds;
    m.reply->set(ctx, Reply{true, r}, msg_ns);
  };

  // Returns true when it did migration work.
  const auto step_migration = [&](Context& ctx, std::size_t v) -> bool {
    SimVault& vault = *vaults[v];
    Migration& mig = vault.mig;
    for (std::size_t moved = 0; moved < cfg.migrate_chunk; ++moved) {
      const auto key = vault.list->first_at_least(mig.cursor);
      if (!key.has_value() || *key >= mig.hi) {
        // Drop [lo, hi) from this core's own view, then redirect the CPUs.
        auto it = std::prev(vault.owned.upper_bound(mig.lo));
        assert(it->first <= mig.lo && mig.hi <= it->second);
        const std::uint64_t old_hi = it->second;
        if (it->first == mig.lo) {
          vault.owned.erase(it);
        } else {
          it->second = mig.lo;
        }
        if (mig.hi < old_hi) vault.owned.emplace(mig.hi, old_hi);
        dir.move_range(mig.lo, mig.peer);  // redirect the CPUs first
        mig.active = false;
        ctx.trace_instant("mig_complete", {"source", v},
                          {"target", mig.peer});
        Msg end;
        end.kind = Msg::Kind::kMigEnd;
        vaults[mig.peer]->inbox.send(ctx, end);
        return true;
      }
      vault.list->extract_first_at_least(ctx, mig.cursor, MemClass::kPimLocal);
      ++result.migrated_keys;
      c_migrated.add(1);
      Msg node;
      node.kind = Msg::Kind::kMigNode;
      node.key = *key;
      vaults[mig.peer]->inbox.send(ctx, node);
      mig.cursor = *key + 1;
    }
    return true;
  };

  const std::size_t total_cpus = cfg.num_cpus;
  for (std::size_t v = 0; v < k; ++v) {
    engine.spawn("pim-core" + std::to_string(v), [&, v](Context& ctx) {
      SimVault& vault = *vaults[v];
      std::size_t stopped = 0;
      // Two extra stops: the rebalancer actor and the window monitor.
      while (stopped < total_cpus + 2) {
        Msg m;
        if (vault.mig.active && vault.mig.outgoing) {
          // Keep the migration moving even while requests arrive.
          auto polled = vault.inbox.try_recv(ctx);
          if (!polled.has_value()) {
            step_migration(ctx, v);
            continue;
          }
          m = *polled;
        } else {
          m = vault.inbox.recv(ctx);
        }
        switch (m.kind) {
          case Msg::Kind::kOp: {
            const Migration& mig = vault.mig;
            // RebalanceFault::kDirectoryBeforeGrant: the execute/reject gate
            // consults the SHARED directory instead of the vault-local owned
            // view. Combined with the early directory publish below (the
            // runtime's per-sender lanes let a direct request overtake the
            // source's kMigBegin/kMigNode/kMigEnd stream; the early publish
            // recreates that overtake under this sim's in-order delivery),
            // the target answers direct requests from a list missing the
            // in-flight nodes — the historical runtime bug the
            // linearizability oracle caught under TSan. MUST be flagged by
            // the checker.
            if (cfg.fault == RebalanceFault::kDirectoryBeforeGrant &&
                dir.route(m.key) == v) {
              execute_and_reply(ctx, vault, m);
              break;
            }
            if (mig.active && m.key >= mig.lo && m.key < mig.hi) {
              if (mig.outgoing) {
                // RebalanceFault::kStaleServe: the buggy source never
                // consults the cursor and answers every key from its own
                // (partially drained) list.
                if (m.key >= mig.cursor ||
                    cfg.fault == RebalanceFault::kStaleServe) {
                  execute_and_reply(ctx, vault, m);
                } else {
                  Msg fwd = m;
                  fwd.kind = Msg::Kind::kFwdOp;
                  vaults[mig.peer]->inbox.send(ctx, fwd);
                  ++result.forwarded;
                  c_forwarded.add(1);
                  ctx.trace_instant("mig_forward", {"key", m.key});
                }
              } else if (cfg.fault == RebalanceFault::kNoDefer) {
                // Injected bug, part 2: answer directly-routed requests from
                // the still-incomplete local copy instead of parking them.
                execute_and_reply(ctx, vault, m);
              } else {
                vault.deferred.push_back(m);
                ++result.deferred;
                c_deferred.add(1);
              }
              break;
            }
            if (!owns_locally(vault, m.key)) {
              // Reject by the LOCAL view, not dir.route(): the directory
              // can already point here while the granting kMigBegin/
              // kMigNode/kMigEnd stream is still queued behind this
              // request (the race the linearizability oracle caught in
              // the runtime twin under TSan).
              m.reply->set(ctx, Reply{false, false}, msg_ns);
              ++result.rejections;
              c_rejections.add(1);
              break;
            }
            execute_and_reply(ctx, vault, m);
            break;
          }
          case Msg::Kind::kFwdOp:
            execute_and_reply(ctx, vault, m);
            break;
          case Msg::Kind::kMigStart: {
            if (vault.mig.active || dir.route(m.key) != v) {
              m.reply->set(ctx, Reply{false, false}, msg_ns);
              break;
            }
            vault.mig = Migration{true, true, m.key, m.hi, m.peer, m.key};
            ctx.trace_instant("mig_start", {"lo", m.key}, {"hi", m.hi});
            if (cfg.fault == RebalanceFault::kNoDefer) {
              // Injected bug, part 1: publish the new owner at migration
              // START (the notify-first reading of Section 4.2.1) instead of
              // at completion. CPUs now route directly to the target while
              // the node stream is still in flight — exactly the window the
              // defer-until-kMigEnd rule closes. With the correct directory
              // update (at completion, just before kMigEnd) the FIFO mailbox
              // guarantees no direct request can overtake the final node,
              // which would leave part 2 below unreachable.
              dir.move_range(m.key, m.peer);
            }
            if (cfg.fault == RebalanceFault::kDirectoryBeforeGrant) {
              // The directory says the target owns the range while the
              // granting node stream is still in flight; the broken gate
              // above turns that stale answer into wrong executions.
              dir.move_range(m.key, m.peer);
            }
            Msg begin;
            begin.kind = Msg::Kind::kMigBegin;
            begin.key = m.key;
            begin.hi = m.hi;
            begin.peer = v;
            vaults[m.peer]->inbox.send(ctx, begin);
            m.reply->set(ctx, Reply{true, true}, msg_ns);
            break;
          }
          case Msg::Kind::kMigBegin:
            assert(!vault.mig.active);
            vault.mig = Migration{true, false, m.key, m.hi, m.peer, m.key};
            vault.incoming_cursor = SimSkipList::InsertCursor{};
            ctx.trace_instant("mig_begin", {"lo", m.key}, {"hi", m.hi});
            break;
          case Msg::Kind::kMigNode:
            vault.list->insert_ascending(ctx, vault.incoming_cursor, m.key,
                                         MemClass::kPimLocal);
            break;
          case Msg::Kind::kMigEnd: {
            assert(vault.mig.active && !vault.mig.outgoing);
            vault.owned.emplace(vault.mig.lo, vault.mig.hi);  // grant
            vault.mig.active = false;
            std::deque<Msg> pending;
            pending.swap(vault.deferred);
            for (const Msg& req : pending) execute_and_reply(ctx, vault, req);
            migration_busy = false;
            break;
          }
          case Msg::Kind::kStop:
            ++stopped;
            break;
        }
        if (vault.mig.active && vault.mig.outgoing) step_migration(ctx, v);
      }
    });
  }

  // CPU clients with a Zipf-skewed key stream (rank 0 -> key 1: vault 0 is
  // the hot spot).
  const Time third = cfg.duration_ns / 3;
  std::uint64_t before_ops = 0;
  std::uint64_t after_ops = 0;
  for (std::size_t i = 0; i < cfg.num_cpus; ++i) {
    engine.spawn("cpu" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      ZipfGenerator zipf(cfg.key_range, cfg.zipf_theta);
      SimSlot<Reply> reply;
      while (ctx.now() < cfg.duration_ns) {
        const std::uint64_t key = zipf.next(ctx.rng()) + 1;
        const SetOp op = pick_op(ctx.rng(), cfg.mix);
        if (log != nullptr) log->begin(check_op(op), key, ctx.now());
        Reply r;
        for (;;) {
          Msg m;
          m.kind = Msg::Kind::kOp;
          m.op = op;
          m.key = key;
          m.reply = &reply;
          vaults[dir.route(key)]->inbox.send(ctx, m);
          r = reply.await(ctx);
          if (r.accepted) break;
        }
        if (log != nullptr) {
          log->end(r.result ? check::kRetTrue : check::kRetFalse, ctx.now());
        }
        if (ctx.now() < third) {
          ++before_ops;
        } else if (ctx.now() >= 2 * third) {
          ++after_ops;
        }
      }
      for (std::size_t v = 0; v < k; ++v) {
        Msg stop;
        stop.kind = Msg::Kind::kStop;
        vaults[v]->inbox.send(ctx, stop);
      }
    });
  }

  // Window monitor: samples the per-vault load series every
  // policy_period_ns for every policy (including no-rebalance controls),
  // the basis of the windowed-imbalance assertions.
  engine.spawn("monitor", [&](Context& ctx) {
    std::vector<std::uint64_t> last(k, 0);
    while (ctx.now() < cfg.duration_ns) {
      ctx.advance(static_cast<double>(cfg.policy_period_ns));
      ctx.sync();
      RebalanceWindow w;
      w.t_end = ctx.now();
      std::uint64_t peak = 0;
      for (std::size_t v = 0; v < k; ++v) {
        const std::uint64_t d = vaults[v]->requests - last[v];
        last[v] = vaults[v]->requests;
        w.ops += d;
        if (d > peak) {
          peak = d;
          w.hottest = v;
        }
      }
      if (w.ops > 0) {
        w.imbalance = static_cast<double>(peak) * static_cast<double>(k) /
                      static_cast<double>(w.ops);
      }
      result.windows.push_back(w);
    }
    for (std::size_t v = 0; v < k; ++v) {
      Msg stop;
      stop.kind = Msg::Kind::kStop;
      vaults[v]->inbox.send(ctx, stop);
    }
  });

  // The active policy: the sim twin of core/auto_rebalancer::tick_active.
  // Windowed per-vault deltas -> hysteresis gates (enter threshold,
  // per-vault cooldown, noise floor, one migration at a time) -> split-key
  // preference (dominant top key's successor, else hottest-range midpoint,
  // else widest-partition midpoint) -> kMigStart to the hottest vault.
  const auto active_policy = [&](Context& ctx) {
    std::vector<std::uint64_t> last(k, 0);
    std::vector<std::size_t> cooldown(k, 0);
    std::vector<std::uint64_t> last_range(SimLoad::kRanges, 0);
    const bool thrash = cfg.fault == RebalanceFault::kThrash;
    SimSlot<Reply> reply;
    // Partition lower bound of `key` in the CPU-visible directory.
    const auto partition_lo = [&](std::uint64_t key) {
      auto it = std::upper_bound(
          dir.entries.begin(), dir.entries.end(), key,
          [](std::uint64_t kk, const auto& e) { return kk < e.first; });
      return (it - 1)->first;
    };
    while (ctx.now() < cfg.duration_ns) {
      ctx.advance(static_cast<double>(cfg.policy_period_ns));
      ctx.sync();
      std::uint64_t total = 0;
      std::uint64_t peak = 0;
      std::size_t hot = 0;
      std::size_t cold = 0;
      std::uint64_t cold_ops = ~std::uint64_t{0};
      for (std::size_t v = 0; v < k; ++v) {
        const std::uint64_t d = vaults[v]->requests - last[v];
        last[v] = vaults[v]->requests;
        total += d;
        if (d > peak) {
          peak = d;
          hot = v;
        }
        if (d < cold_ops) {
          cold_ops = d;
          cold = v;
        }
      }
      std::vector<std::uint64_t> rdelta(SimLoad::kRanges);
      for (std::size_t i = 0; i < SimLoad::kRanges; ++i) {
        rdelta[i] = load.range_ops[i] - last_range[i];
        last_range[i] = load.range_ops[i];
      }
      for (auto& c : cooldown) {
        if (c > 0) --c;
      }
      if (total < cfg.min_window_ops) continue;  // noise floor
      const double imbalance = static_cast<double>(peak) *
                               static_cast<double>(k) /
                               static_cast<double>(total);
      if (hot == cold) continue;
      if (!thrash && imbalance < cfg.imbalance_enter) continue;
      if (!thrash && cooldown[hot] > 0) continue;
      if (migration_busy) continue;  // one migration at a time
      if (result.migrations >= cfg.max_migrations) continue;
      // --- split-key selection (mirrors AutoRebalancer::suggest_split) ---
      std::uint64_t split = 0;
      const auto& entries = load.sketch[hot];
      std::uint64_t mass = 0;
      std::size_t top = 0;
      for (std::size_t i = 0; i < SimLoad::kSketch; ++i) {
        mass += entries[i].count;
        if (entries[i].count > entries[top].count) top = i;
      }
      if (mass > 0 && entries[top].count * 2 >= mass &&
          dir.route(entries[top].key) == hot) {
        // One key dominates the sketch: isolate it by splitting at its
        // successor (kSplitOffByOne splits at the key itself, so the hot
        // key rides along with the migrated suffix — the mutation).
        const std::uint64_t cand =
            cfg.fault == RebalanceFault::kSplitOffByOne
                ? entries[top].key
                : entries[top].key + 1;
        const bool in_span = cand < dir.end_of(entries[top].key) &&
                             cand <= cfg.key_range;
        const bool strict_suffix =
            cfg.fault == RebalanceFault::kSplitOffByOne ||
            cand > partition_lo(entries[top].key);
        if (in_span && strict_suffix) split = cand;
      }
      if (split == 0) {
        // Hottest window range whose midpoint the hot vault owns.
        std::size_t best = SimLoad::kRanges;
        for (std::size_t i = 0; i < SimLoad::kRanges; ++i) {
          if (rdelta[i] == 0) continue;
          const std::uint64_t lo = load.range_lo(i);
          const std::uint64_t mid = lo + (load.range_hi(i) - lo) / 2;
          if (dir.route(mid) != hot || mid <= partition_lo(mid)) continue;
          if (best == SimLoad::kRanges || rdelta[i] > rdelta[best]) best = i;
        }
        if (best < SimLoad::kRanges) {
          const std::uint64_t lo = load.range_lo(best);
          split = lo + (load.range_hi(best) - lo) / 2;
        }
      }
      if (split == 0) {
        // Widest partition of the hot vault, split at its midpoint.
        std::uint64_t best_lo = 0;
        std::uint64_t best_hi = 0;
        for (std::size_t i = 0; i < dir.entries.size(); ++i) {
          if (dir.entries[i].second != hot) continue;
          const std::uint64_t lo = dir.entries[i].first;
          const std::uint64_t hi = i + 1 < dir.entries.size()
                                       ? dir.entries[i + 1].first
                                       : cfg.key_range + 1;
          if (hi - lo > best_hi - best_lo) {
            best_lo = lo;
            best_hi = hi;
          }
        }
        if (best_hi - best_lo >= 2) {
          split = best_lo + (best_hi - best_lo) / 2;
        }
      }
      if (split == 0) continue;  // nothing splittable this window
      const std::size_t source = dir.route(split);
      if (source != hot || source == cold) continue;
      migration_busy = true;
      Msg m;
      m.kind = Msg::Kind::kMigStart;
      m.key = split;
      m.hi = dir.end_of(split);
      m.peer = cold;
      m.reply = &reply;
      vaults[source]->inbox.send(ctx, m);
      if (!reply.await(ctx).accepted) {
        migration_busy = false;
        continue;
      }
      ++result.migrations;
      if (ctx.now() >= 2 * third) ++result.migrations_late;
      if (!thrash) cooldown[hot] = cfg.cooldown_periods;
    }
    // Drain an in-flight migration before stopping the vaults: the stops
    // below would otherwise overtake the tail of the kMigNode stream in
    // the target's FIFO inbox, and the extracted-but-not-yet-inserted keys
    // would be lost with the run's teardown (the guard is cleared by the
    // target when it processes kMigEnd, so waiting on it is exact).
    while (migration_busy) {
      ctx.advance(50'000);
      ctx.sync();
    }
  };

  // The rebalancer: at t = duration/3, split the workload's quartiles off
  // the hot range, one migration at a time (the Section 4.2.1 guard).
  engine.spawn("rebalancer", [&](Context& ctx) {
    if (cfg.rebalance && k > 1 &&
        cfg.policy == RebalancePolicy::kActiveLoadMap) {
      active_policy(ctx);
    } else if (cfg.rebalance && k > 1) {
      ctx.advance(static_cast<double>(third));
      // Quantile estimate of the Zipf mass (operator-side knowledge).
      Xoshiro256 rng(cfg.seed ^ 0x9a17ULL);
      ZipfGenerator zipf(cfg.key_range, cfg.zipf_theta);
      std::vector<std::uint64_t> sample(20000);
      for (auto& s : sample) s = zipf.next(rng) + 1;
      std::sort(sample.begin(), sample.end());
      std::vector<std::uint64_t> splits;
      for (std::size_t q = 1; q < k; ++q) {
        std::uint64_t split = sample[q * sample.size() / k];
        const std::uint64_t prev = splits.empty() ? 1 : splits.back();
        if (split <= prev) split = prev + 1;
        splits.push_back(split);
      }
      SimSlot<Reply> reply;
      // Descending split order: each range leaves the hot vault directly
      // instead of cascading through every intermediate target.
      for (std::size_t qi = splits.size(); qi-- > 0;) {
        const std::size_t q = qi;
        const std::size_t target = q + 1;
        for (;;) {
          if (migration_busy) {
            ctx.advance(50'000);
            ctx.sync();
            continue;
          }
          ctx.sync();
          const std::size_t source = dir.route(splits[q]);
          if (source == target) break;
          migration_busy = true;
          Msg m;
          m.kind = Msg::Kind::kMigStart;
          m.key = splits[q];
          m.hi = dir.end_of(splits[q]);
          m.peer = target;
          m.reply = &reply;
          vaults[source]->inbox.send(ctx, m);
          if (reply.await(ctx).accepted) {
            ++result.migrations;
            if (ctx.now() >= 2 * third) ++result.migrations_late;
            break;
          }
          migration_busy = false;
          ctx.advance(50'000);
        }
        // Wait for completion (kMigEnd clears the guard).
        while (migration_busy) {
          ctx.advance(50'000);
          ctx.sync();
        }
      }
    }
    // Counts as one "stop" so the cores can wind down.
    for (std::size_t v = 0; v < k; ++v) {
      Msg stop;
      stop.kind = Msg::Kind::kStop;
      vaults[v]->inbox.send(ctx, stop);
    }
  });

  engine.run();

  result.before = {before_ops, third};
  result.after = {after_ops, third};
  for (const auto& vault : vaults) {
    result.final_requests_per_vault.push_back(vault->requests);
  }
  std::int64_t final_size = 0;
  for (const auto& vault : vaults) {
    final_size += static_cast<std::int64_t>(vault->list->size());
  }
  result.size_consistent =
      final_size == static_cast<std::int64_t>(cfg.initial_size) + net_adds;
  return result;
}

}  // namespace pimds::sim
