// Simulated skip-list experiments (Section 4.2, Table 2, Figure 4).
//
// Algorithms, as in Table 2:
//   1. lock-free skip-list                 -> run_lockfree_skiplist
//   2. flat-combining skip-list            -> run_fc_skiplist(k = 1)
//   3. PIM-managed skip-list               -> run_pim_skiplist(k = 1)
//   4. FC skip-list with k partitions      -> run_fc_skiplist(k)
//   5. PIM skip-list with k partitions     -> run_pim_skiplist(k)
//
// Partitioning (Figure 3): the key space [1, N] splits into k contiguous
// ranges, each with a max-height sentinel pinned at its lower bound; a CPU
// routes each operation by comparing against the (cached) sentinels.
#pragma once

#include <cstddef>

#include "sim/workload.hpp"

namespace pimds::sim {

struct SkipListConfig : SimConfig {
  std::uint64_t key_range = 1u << 17;  ///< N
  std::size_t initial_size = 16384;    ///< skip-list size
  SetOpMix mix{};
  /// Lock-free variant: also charge Latomic per update op. Table 2 ignores
  /// CAS costs (the paper notes actual lock-free performance "could be even
  /// worse"); the realism ablation (bench A4) turns this on.
  bool charge_cas = false;
  /// > 0: draw keys Zipf(theta) instead of uniform (rank 0 -> key 1, so
  /// partition 0 is the hot vault). Used by the --skew telemetry scenario
  /// on the table2/fig4 paths; 0 keeps the paper's uniform workload and
  /// the committed baselines bit-identical.
  double zipf_theta = 0.0;
};

/// Partition index of `key` among k equal ranges of [1, N].
constexpr std::size_t partition_of(std::uint64_t key, std::uint64_t n,
                                   std::size_t k) noexcept {
  const std::uint64_t idx = (key - 1) * k / n;
  return idx >= k ? k - 1 : static_cast<std::size_t>(idx);
}

/// Sentinel key (lower bound, exclusive for operations) of partition i.
constexpr std::uint64_t partition_sentinel(std::size_t i, std::uint64_t n,
                                           std::size_t k) noexcept {
  return i * n / k;
}

RunResult run_lockfree_skiplist(const SkipListConfig& cfg);
RunResult run_fc_skiplist(const SkipListConfig& cfg, std::size_t partitions);
RunResult run_pim_skiplist(const SkipListConfig& cfg, std::size_t partitions);

/// Section 4.2.1 at full scale: the PIM skip-list under a Zipf-skewed
/// workload, with the non-blocking node-migration protocol (source keeps
/// serving: not-yet-migrated keys locally, already-migrated keys by
/// forwarding; target defers racing direct requests until the hand-over
/// completes; CPUs re-route after rejection).
/// Deliberately broken migration variants (Section 4.2.1) for checker
/// mutation testing; each MUST be flagged by the linearizability checker.
enum class RebalanceFault : std::uint8_t {
  kNone,
  /// The source vault keeps serving ALL keys locally during migration —
  /// including already-migrated ones it should forward. Updates to a
  /// migrated key land on the stale copy and are lost when the target's
  /// copy becomes authoritative.
  kStaleServe,
  /// Notify-first hand-off without the defer rule: the directory is updated
  /// at migration START (so CPUs route directly to the target while nodes
  /// are still streaming over), and the target answers those requests from
  /// its incomplete local list instead of parking them until kMigEnd.
  /// Reads miss keys that exist. (The early notify alone would be safe —
  /// that is the paper's design point — it is skipping the defer that
  /// breaks; with the correct completion-time update the FIFO mailbox means
  /// no direct request can ever overtake the final migrated node.)
  kNoDefer,
  /// Active-policy mutation: no cooldown, no enter threshold — the policy
  /// fires a migration on EVERY eligible window. Linearizability holds
  /// (the protocol is intact), but the policy never converges: it keeps
  /// migrating to the end of the run. The harness flags it by the
  /// stability assertion (no migrations in the final third once the
  /// layout has settled).
  kThrash,
  /// Active-policy mutation: when a single hot key dominates the sketch,
  /// split at the hot key itself instead of its successor — the hot key
  /// travels WITH the migrated suffix, so every migration relocates the
  /// hot spot wholesale instead of dividing the load. Flagged by the
  /// imbalance-must-fall / stability assertions, not the checker.
  kSplitOffByOne,
  /// The execute/reject gate consults the SHARED directory instead of the
  /// vault-local owned-ranges view — the historical bug the
  /// linearizability oracle caught in the runtime twin: the source
  /// publishes the new owner in the directory before the target has
  /// processed the granting kMigBegin/kMigNode/kMigEnd stream (in the
  /// runtime, per-sender lanes let a direct request overtake that stream;
  /// the fault publishes at migration start to recreate the overtake under
  /// the sim's in-order delivery), so a direct request passes the broken
  /// gate and is answered from a list missing the in-flight nodes.
  /// MUST be flagged by the checker.
  kDirectoryBeforeGrant,
};

/// Who drives migrations in run_pim_skiplist_rebalance.
enum class RebalancePolicy : std::uint8_t {
  /// Operator actor with workload-quantile knowledge splits the hot range
  /// at t = duration/3 (the historical scripted scenario).
  kOracle,
  /// The sim twin of core/auto_rebalancer's active mode: a policy actor
  /// samples windowed per-vault loads + a per-vault hot-key sketch every
  /// policy_period_ns and drives kMigStart with hysteresis (enter
  /// threshold, per-vault cooldown, min_window_ops floor) and the same
  /// split-key preference (dominant top key's successor, else hottest
  /// range midpoint, else widest partition midpoint).
  kActiveLoadMap,
};

struct RebalanceConfig {
  LatencyParams params = LatencyParams::paper_defaults();
  std::uint64_t seed = 1;
  std::size_t num_cpus = 16;
  std::size_t partitions = 4;
  std::uint64_t key_range = 1 << 16;
  std::size_t initial_size = 1 << 15;
  SetOpMix mix{};
  double zipf_theta = 0.99;
  Time duration_ns = 60'000'000;
  /// When true, a rebalancer actor splits the workload's quartile ranges
  /// off the hot partition at t = duration/3 (migration chunk below).
  bool rebalance = true;
  std::size_t migrate_chunk = 32;
  RebalanceFault fault = RebalanceFault::kNone;  ///< mutation testing only
  RebalancePolicy policy = RebalancePolicy::kOracle;
  /// Active-policy window length (virtual ns); also the sampling period of
  /// the per-window imbalance series in RebalanceResult::windows.
  Time policy_period_ns = 1'500'000;
  /// Trigger threshold: hottest vault >= enter x mean over a window.
  double imbalance_enter = 2.0;
  /// Windows a vault is barred as a migration source after sourcing one.
  std::size_t cooldown_periods = 2;
  /// Windows below this many total ops are noise, never judged.
  std::uint64_t min_window_ops = 200;
  /// Safety valve on active-policy migrations.
  std::size_t max_migrations = ~std::size_t{0};
  /// Schedule perturbation for adversarial exploration (check/explore.hpp).
  Engine::Perturbation perturb{};
  /// Optional history recording (check/): CPU i -> log(i), setup inserts ->
  /// log(num_cpus); pass a recorder with num_cpus + 1 logs.
  check::HistoryRecorder* recorder = nullptr;
};

/// One sampled window of the per-vault load series (every policy_period_ns,
/// for every policy — also the basis of the imbalance assertions).
struct RebalanceWindow {
  Time t_end = 0;            ///< window end (virtual ns)
  std::uint64_t ops = 0;     ///< total requests served in the window
  std::size_t hottest = 0;   ///< vault with the largest window share
  double imbalance = 0.0;    ///< hottest / mean (0 for an empty window)
};

struct RebalanceResult {
  RunResult before;  ///< ops completed in [0, duration/3)
  RunResult after;   ///< ops completed in [2*duration/3, duration)
  std::vector<std::uint64_t> final_requests_per_vault;
  std::uint64_t migrated_keys = 0;
  std::uint64_t rejections = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t deferred = 0;
  std::uint64_t migrations = 0;       ///< accepted kMigStart count
  std::uint64_t migrations_late = 0;  ///< ...of those, started in the last third
  std::vector<RebalanceWindow> windows;
  bool size_consistent = false;  ///< final size == successful adds - removes

  /// Peak windowed imbalance over windows ending in [from, to) with at
  /// least min_ops total ops (noise floor, mirrors telemetry_report.py).
  double peak_imbalance(Time from, Time to,
                        std::uint64_t min_ops = 1) const noexcept {
    double peak = 0.0;
    for (const RebalanceWindow& w : windows) {
      if (w.t_end >= from && w.t_end < to && w.ops >= min_ops &&
          w.imbalance > peak) {
        peak = w.imbalance;
      }
    }
    return peak;
  }
};

RebalanceResult run_pim_skiplist_rebalance(const RebalanceConfig& cfg);

}  // namespace pimds::sim
