// Simulated linked-list experiments (Section 4.1, Table 1, Figure 2).
//
// Five algorithms, as in Table 1:
//   1. linked-list with fine-grained locks    -> run_fine_grained_list
//   2. flat-combining list, no combining opt  -> run_fc_list(combining=false)
//   3. PIM-managed list, no combining opt     -> run_pim_list(combining=false)
//   4. flat-combining list, with combining    -> run_fc_list(combining=true)
//   5. PIM-managed list, with combining       -> run_pim_list(combining=true)
//
// Cost accounting follows Table 1's derivation: traversal dereferences are
// charged (Lcpu for CPU-executed traversals, Lpim for the PIM core); the
// PIM variants additionally pay real message latencies, which the paper
// argues (and these runs confirm) are hidden once the PIM core is saturated.
#pragma once

#include "sim/ds/list_common.hpp"
#include "sim/workload.hpp"

namespace pimds::sim {

struct ListConfig : SimConfig {
  std::uint64_t key_range = 8192;  ///< N, operation keys drawn from [1, N]
  std::size_t initial_size = 512;  ///< n, initial node count
  SetOpMix mix{};
};

/// Each CPU thread traverses and updates the list independently; the model
/// (and this simulation) treats lock overhead as negligible, so p threads
/// proceed fully in parallel: throughput ~ 2p / ((n+1) Lcpu).
RunResult run_fine_grained_list(const ListConfig& cfg);

/// Flat-combining list: one combiner at a time executes all published
/// requests. With `combining` the batch is served in a single traversal
/// (throughput ~ p / ((n - S_p) Lcpu)); without it each request pays its own
/// traversal (throughput ~ 2 / ((n+1) Lcpu)).
RunResult run_fc_list(const ListConfig& cfg, bool combining);

/// PIM-managed list: the whole list lives in one vault; CPUs send requests
/// to the vault's PIM core by message. Same two modes as the FC list but
/// traversal hops cost Lpim.
RunResult run_pim_list(const ListConfig& cfg, bool combining);

}  // namespace pimds::sim
