// Simulated Michael-Scott queue: the classic CAS-based FIFO, included to
// show why the paper benchmarks against the F&A queue instead — CAS retry
// loops burn serialized Latomic slots on failures, so throughput DEGRADES
// as threads are added, while the F&A queue holds its 1/Latomic bound
// (David, Guerraoui, Trigonakis [16]; paper Section 5.2 footnote).
#include <deque>
#include <string>

#include "sim/ds/queues.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

RunResult run_ms_queue(const QueueConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  std::deque<std::uint64_t> items;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);
  SimCasLine tail_line;
  SimCasLine head_line;

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    engine.spawn("enq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const std::uint64_t value =
            log != nullptr
                ? ((static_cast<std::uint64_t>(i) + 1) << 48) | ops
                : ctx.rng().next();
        if (log != nullptr) log->begin(check::kEnq, value, ctx.now());
        if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
        for (;;) {
          // Read the tail, then try to CAS the new node in; a failed CAS
          // means another enqueuer won the line since our read.
          const SimCasLine::ReadToken seen = tail_line.read(ctx);
          ctx.charge(MemClass::kLlc);  // the tail pointer is cache-hot
          if (tail_line.compare_and_swap(ctx, seen)) break;
        }
        items.push_back(value);
        if (log != nullptr) log->end(check::kRetTrue, ctx.now());
        ++ops;
      }
      total_ops += ops;
    });
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    engine.spawn("deq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr
              ? &cfg.recorder->log(cfg.enqueuers + i)
              : nullptr;
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        if (log != nullptr) log->begin(check::kDeq, 0, ctx.now());
        for (;;) {
          const SimCasLine::ReadToken seen = head_line.read(ctx);
          ctx.charge(MemClass::kLlc);
          if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
          if (head_line.compare_and_swap(ctx, seen)) break;
        }
        std::uint64_t out = check::kRetEmpty;
        if (!items.empty()) {
          out = items.front();
          items.pop_front();
        }
        if (log != nullptr) log->end(out, ctx.now());
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
