#include <deque>
#include <string>

#include "sim/ds/queues.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

RunResult run_faa_queue(const QueueConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);
  engine.set_perturbation(cfg.perturb);

  // The queue body; F&A tickets linearize access so a plain deque mutated in
  // scheduled slices is faithful. Enqueues and dequeues hit different shared
  // variables (the paper's F&A queue allows parallel enq/deq).
  std::deque<std::uint64_t> items;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);
  SimCacheLine enq_line;
  SimCacheLine deq_line;

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    engine.spawn("enq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr ? &cfg.recorder->log(i) : nullptr;
      ArrivalPacer pacer(cfg, ctx);
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time intended = pacer.next(ctx);
        if (intended >= cfg.duration_ns) break;
        const Time issued = ctx.now();
        const std::uint64_t value =
            log != nullptr
                ? ((static_cast<std::uint64_t>(i) + 1) << 48) | ops
                : ctx.rng().next();
        if (log != nullptr) log->begin(check::kEnq, value, issued);
        enq_line.atomic_rmw(ctx);  // claim a slot with F&A (serialized)
        if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
        items.push_back(value);
        if (log != nullptr) log->end(check::kRetTrue, ctx.now());
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - intended));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    engine.spawn("deq" + std::to_string(i), [&, i](Context& ctx) {
      check::ThreadLog* log =
          cfg.recorder != nullptr
              ? &cfg.recorder->log(cfg.enqueuers + i)
              : nullptr;
      ArrivalPacer pacer(cfg, ctx);
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time intended = pacer.next(ctx);
        if (intended >= cfg.duration_ns) break;
        const Time issued = ctx.now();
        if (log != nullptr) log->begin(check::kDeq, 0, issued);
        deq_line.atomic_rmw(ctx);
        if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
        std::uint64_t out = check::kRetEmpty;
        if (!items.empty()) {
          out = items.front();
          items.pop_front();
        }
        if (log != nullptr) log->end(out, ctx.now());
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - intended));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
