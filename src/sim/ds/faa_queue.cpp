#include <deque>
#include <string>

#include "sim/ds/queues.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

RunResult run_faa_queue(const QueueConfig& cfg) {
  Engine engine(cfg.params, cfg.seed);

  // The queue body; F&A tickets linearize access so a plain deque mutated in
  // scheduled slices is faithful. Enqueues and dequeues hit different shared
  // variables (the paper's F&A queue allows parallel enq/deq).
  std::deque<std::uint64_t> items;
  for (std::size_t i = 0; i < cfg.initial_nodes; ++i) items.push_back(i);
  SimCacheLine enq_line;
  SimCacheLine deq_line;

  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < cfg.enqueuers; ++i) {
    engine.spawn("enq" + std::to_string(i), [&](Context& ctx) {
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time issued = ctx.now();
        enq_line.atomic_rmw(ctx);  // claim a slot with F&A (serialized)
        if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
        items.push_back(ctx.rng().next());
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - issued));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  for (std::size_t i = 0; i < cfg.dequeuers; ++i) {
    engine.spawn("deq" + std::to_string(i), [&](Context& ctx) {
      std::uint64_t ops = 0;
      while (ctx.now() < cfg.duration_ns) {
        const Time issued = ctx.now();
        deq_line.atomic_rmw(ctx);
        if (cfg.charge_node_access) ctx.charge(MemClass::kCpuDram);
        if (!items.empty()) items.pop_front();
        if (cfg.latency_sink_ns != nullptr) {
          cfg.latency_sink_ns->push_back(
              static_cast<double>(ctx.now() - issued));
        }
        ++ops;
      }
      total_ops += ops;
    });
  }
  engine.run();
  return {total_ops, cfg.duration_ns};
}

}  // namespace pimds::sim
