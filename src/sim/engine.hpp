// Discrete-event simulation engine with the paper's Section 3 cost model.
//
// Every simulated CPU thread and PIM core is an *actor* (a fiber) with its
// own virtual clock. Pure computation and private memory traffic accumulate
// on the local clock without a context switch; at every interaction with
// shared state (locks, contended cache lines, mailboxes, futures) the actor
// first re-enters the scheduler so that interactions system-wide execute in
// global virtual-time order. This makes runs deterministic for a given seed
// and independent of the host's core count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/latency.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "sim/fiber.hpp"

namespace pimds::sim {

/// Virtual nanoseconds.
using Time = std::uint64_t;
using ActorId = std::uint32_t;
inline constexpr ActorId kNoActor = ~ActorId{0};

class Engine;

/// Per-actor handle through which simulated code advances time, charges
/// model latencies, and reaches synchronization primitives.
class Context {
 public:
  Context(Engine& engine, ActorId id, std::uint64_t seed)
      : engine_(engine), id_(id), rng_(seed) {}

  Engine& engine() noexcept { return engine_; }
  ActorId id() const noexcept { return id_; }
  Time now() const noexcept { return local_time_; }
  Xoshiro256& rng() noexcept { return rng_; }

  /// Accumulate `ns` of local virtual time (no scheduler interaction).
  void advance(double ns) noexcept {
    fractional_ += ns;
    const auto whole = static_cast<Time>(fractional_);
    local_time_ += whole;
    fractional_ -= static_cast<double>(whole);
  }

  /// Charge `count` accesses of latency class `c` (Section 3 model).
  void charge(MemClass c, std::uint64_t count = 1) noexcept;

  /// Re-enter the scheduler at the current local time. On return this actor
  /// is the globally earliest, so it may touch shared simulation state.
  void sync();

  /// Block until another actor wakes this one (via Engine::wake_at).
  void block();

  /// Jump the local clock forward to `t` (used by primitives that compute a
  /// completion time, e.g. serialized atomics). No-op if t <= now().
  void set_time(Time t) noexcept {
    if (t > local_time_) {
      local_time_ = t;
      fractional_ = 0.0;
    }
  }

  /// Point event on this actor's trace track at the current virtual time
  /// (pid = obs::kSimPid, tid = actor id). `name` must be a string literal.
  void trace_instant(const char* name, obs::TraceArg a = {},
                     obs::TraceArg b = {});

  /// Span on this actor's trace track from virtual time `start` to now().
  void trace_complete(const char* name, Time start, obs::TraceArg a = {},
                      obs::TraceArg b = {});

 private:
  Engine& engine_;
  ActorId id_;
  Time local_time_ = 0;
  double fractional_ = 0.0;
  Xoshiro256 rng_;

  friend class Engine;
};

class Engine {
 public:
  /// Deterministic schedule perturbation for adversarial exploration
  /// (check/explore.hpp). When enabled, every scheduling point — spawn,
  /// yield, wake — draws from a dedicated RNG and, with probability
  /// `delay_prob`, defers the actor by a uniform delay in
  /// [0, max_delay_ns]. The draw sequence depends only on the (engine seed,
  /// perturbation seed) pair and the schedule-call order, which is itself
  /// deterministic, so every perturbed run replays bit-exactly from the two
  /// seeds. Delays are bounded and additive: no message is lost or
  /// reordered against a per-sender FIFO guarantee, only the interleaving
  /// of independent actors shifts — exactly the freedom the architecture's
  /// asynchrony already permits, explored adversarially instead of once.
  struct Perturbation {
    std::uint64_t seed = 0;     ///< 0 disables perturbation
    double delay_prob = 0.25;   ///< chance a schedule point is delayed
    Time max_delay_ns = 2000;   ///< uniform delay bound per hit

    bool enabled() const noexcept { return seed != 0; }
  };

  explicit Engine(LatencyParams params = LatencyParams::paper_defaults(),
                  std::uint64_t seed = 1);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Install a schedule perturbation. Call before spawn()/run(); the seed
  /// pair (constructor seed, perturbation seed) fully determines the run.
  void set_perturbation(const Perturbation& p) {
    perturb_ = p;
    perturb_rng_ = Xoshiro256(p.seed);
  }
  const Perturbation& perturbation() const noexcept { return perturb_; }

  /// Engine seed (replay reporting).
  std::uint64_t seed() const noexcept { return seed_; }

  /// Create an actor; it becomes runnable at virtual time 0.
  ActorId spawn(std::string name, std::function<void(Context&)> body);

  /// Run until every actor has finished. Throws std::runtime_error on
  /// deadlock (some actor blocked forever), naming the stuck actors.
  void run();

  const LatencyParams& params() const noexcept { return params_; }

  /// Global virtual time of the most recently dispatched event.
  Time now() const noexcept { return now_; }

  /// Virtual-time of the currently running actor (valid inside run()).
  ActorId current() const noexcept { return current_; }

  /// Wake a blocked actor no earlier than virtual time `t` (and no earlier
  /// than the actor's own clock).
  void wake_at(ActorId id, Time t);

  std::size_t actor_count() const noexcept { return actors_.size(); }
  const std::string& actor_name(ActorId id) const;

  /// Total fiber context switches performed (diagnostics).
  std::uint64_t switch_count() const noexcept { return switches_; }

 private:
  enum class State : std::uint8_t { kRunnable, kRunning, kBlocked, kFinished };

  struct Actor {
    std::string name;
    std::unique_ptr<Fiber> fiber;
    std::unique_ptr<Context> context;
    State state = State::kRunnable;
    std::uint64_t scheduled_seq = 0;  // matches the live heap entry
  };

  struct Event {
    Time time;
    std::uint64_t seq;
    ActorId actor;
    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  void schedule(ActorId id, Time t);
  void yield_current(Time wake);
  void block_current();

  LatencyParams params_;
  std::uint64_t seed_;
  Perturbation perturb_{};
  Xoshiro256 perturb_rng_{0};
  std::vector<Actor> actors_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 1;
  Time now_ = 0;
  ActorId current_ = kNoActor;
  std::uint64_t switches_ = 0;

  friend class Context;
};

inline void Context::charge(MemClass c, std::uint64_t count) noexcept {
  advance(engine_.params().latency(c) * static_cast<double>(count));
}

}  // namespace pimds::sim
