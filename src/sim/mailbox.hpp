// Simulated message passing between CPUs and PIM cores (Section 2).
//
// Guarantees modeled after the paper's architecture section:
//  - every message eventually arrives at the receiver's buffer;
//  - messages from the same sender to the same receiver arrive in FIFO
//    order (delivery time = send time + Lmessage, and a sender's send
//    times are monotone, so per-sender FIFO holds by construction);
//  - messages from different senders may interleave arbitrarily.
//
// Sends are asynchronous: the sender continues immediately, which is what
// enables the FIFO-queue pipelining optimization of Section 5.2.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace pimds::sim {

template <typename M>
class Mailbox {
 public:
  /// Deliver `msg` to this mailbox at sender's now() + Lmessage.
  void send(Context& ctx, M msg) {
    send_delayed(ctx, std::move(msg), ctx.engine().params().message());
  }

  /// Deliver with an explicit latency (used by tests and by zero-latency
  /// self-sends).
  void send_delayed(Context& ctx, M msg, double delay_ns) {
    ctx.sync();
    const Time deliver = ctx.now() + static_cast<Time>(delay_ns);
    heap_.push(Entry{deliver, seq_++, std::move(msg)});
    static obs::Gauge& depth_hwm =
        obs::Registry::instance().gauge("sim.mailbox.depth_hwm");
    depth_hwm.record_max(heap_.size());
    if (receiver_ != kNoActor) {
      const ActorId r = receiver_;
      receiver_ = kNoActor;
      ctx.engine().wake_at(r, deliver);
    }
  }

  /// Blocking receive: returns the earliest-delivered message, advancing the
  /// receiver's clock to its delivery time if it has not yet "arrived".
  M recv(Context& ctx) {
    ctx.sync();
    if (heap_.empty()) {
      assert(receiver_ == kNoActor && "mailbox already has a blocked receiver");
      receiver_ = ctx.id();
      ctx.block();
      assert(!heap_.empty());
    }
    Entry top = heap_.top();
    heap_.pop();
    ctx.set_time(top.deliver);
    return std::move(top.msg);
  }

  /// Non-blocking receive: a message is returned only if it has been
  /// delivered by the receiver's current time.
  std::optional<M> try_recv(Context& ctx) {
    ctx.sync();
    if (heap_.empty() || heap_.top().deliver > ctx.now()) return std::nullopt;
    Entry top = heap_.top();
    heap_.pop();
    return std::move(top.msg);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time deliver;
    std::uint64_t seq;
    M msg;
    bool operator>(const Entry& other) const noexcept {
      return deliver != other.deliver ? deliver > other.deliver
                                      : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::uint64_t seq_ = 0;
  ActorId receiver_ = kNoActor;
};

}  // namespace pimds::sim
