#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace pimds::sim {

Engine::Engine(LatencyParams params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

Engine::~Engine() = default;

ActorId Engine::spawn(std::string name, std::function<void(Context&)> body) {
  const auto id = static_cast<ActorId>(actors_.size());
  if (obs::trace_enabled()) {
    obs::set_track_name(obs::kSimPid, id, name);
  }
  Actor actor;
  actor.name = std::move(name);
  // Derive per-actor RNG streams from the engine seed so adding an actor
  // does not perturb the streams of existing ones.
  SplitMix64 mix(seed_ ^ (0x517cc1b727220a95ULL * (id + 1)));
  actor.context = std::make_unique<Context>(*this, id, mix.next());
  Context* ctx = actor.context.get();
  actor.fiber = std::make_unique<Fiber>(
      [body = std::move(body), ctx] { body(*ctx); });
  actors_.push_back(std::move(actor));
  schedule(id, 0);
  return id;
}

void Engine::schedule(ActorId id, Time t) {
  if (perturb_.enabled() &&
      perturb_rng_.next_double() < perturb_.delay_prob) {
    t += perturb_rng_.next_below(perturb_.max_delay_ns + 1);
  }
  Actor& actor = actors_[id];
  actor.state = State::kRunnable;
  actor.scheduled_seq = next_seq_++;
  queue_.push(Event{t, actor.scheduled_seq, id});
}

void Engine::wake_at(ActorId id, Time t) {
  Actor& actor = actors_[id];
  assert(actor.state == State::kBlocked && "waking a non-blocked actor");
  const Time wake = std::max(t, actor.context->local_time_);
  schedule(id, wake);
}

void Engine::yield_current(Time wake) {
  assert(current_ != kNoActor);
  Actor& actor = actors_[current_];
  schedule(current_, wake);
  actor.state = State::kRunnable;
  actor.fiber->yield_to_resumer();
}

void Engine::block_current() {
  assert(current_ != kNoActor);
  Actor& actor = actors_[current_];
  actor.state = State::kBlocked;
  actor.fiber->yield_to_resumer();
}

void Engine::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    Actor& actor = actors_[ev.actor];
    if (actor.state != State::kRunnable || actor.scheduled_seq != ev.seq) {
      continue;  // superseded entry
    }
    now_ = std::max(now_, ev.time);
    actor.context->set_time(ev.time);
    actor.state = State::kRunning;
    current_ = ev.actor;
    ++switches_;
    actor.fiber->resume();
    current_ = kNoActor;
    if (actor.fiber->finished()) {
      actor.state = State::kFinished;
    }
    // Otherwise yield_current/block_current already updated the state.
  }
  std::string stuck;
  for (const Actor& actor : actors_) {
    if (actor.state != State::kFinished) {
      if (!stuck.empty()) stuck += ", ";
      stuck += actor.name;
    }
  }
  if (!stuck.empty()) {
    throw std::runtime_error("sim::Engine deadlock; blocked actors: " + stuck);
  }
  static obs::Counter& switch_counter =
      obs::Registry::instance().counter("sim.engine.switches");
  switch_counter.add(switches_);
}

const std::string& Engine::actor_name(ActorId id) const {
  return actors_[id].name;
}

void Context::sync() { engine_.yield_current(local_time_); }

void Context::block() { engine_.block_current(); }

void Context::trace_instant(const char* name, obs::TraceArg a,
                            obs::TraceArg b) {
  obs::trace_instant(obs::kSimPid, id_, name, "sim", local_time_, a, b);
}

void Context::trace_complete(const char* name, Time start, obs::TraceArg a,
                             obs::TraceArg b) {
  const Time dur = local_time_ > start ? local_time_ - start : 0;
  obs::trace_complete(obs::kSimPid, id_, name, "sim", start, dur, a, b);
}

}  // namespace pimds::sim
