// Synchronization primitives for the simulator, each charging exactly what
// the paper's Section 3 model charges.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "sim/engine.hpp"

namespace pimds::sim {

/// A contended cache line. Concurrent atomic RMWs (CAS / F&A) serialize:
/// with k requests in flight, the i-th completes at time i * Latomic
/// (Section 3). Plain reads hit the LLC (charged by the caller).
class SimCacheLine {
 public:
  /// Perform one atomic RMW at the caller's current time; the caller's
  /// clock advances to the operation's completion time.
  void atomic_rmw(Context& ctx) {
    ctx.sync();  // interactions execute in global time order
    const Time start = std::max(ctx.now(), busy_until_);
    busy_until_ = start + static_cast<Time>(ctx.engine().params().atomic());
    ctx.set_time(busy_until_);
  }

  Time busy_until() const noexcept { return busy_until_; }

 private:
  Time busy_until_ = 0;
};

/// A contended cache line with CAS semantics: a compare-and-swap succeeds
/// only if no other successful RMW completed after the caller's `read()`.
/// Failed attempts still pay the serialized Latomic (they occupied the
/// line), which is why CAS-retry structures (e.g. the Michael-Scott queue)
/// degrade under contention while F&A-based ones hold their bound [16].
class SimCasLine {
 public:
  /// Observation token for a subsequent compare_and_swap.
  using ReadToken = Time;

  /// Read the line (the caller charges its own read latency, e.g. one LLC
  /// access for a cache-hot queue head).
  ReadToken read(Context& ctx) {
    ctx.sync();
    return ctx.now();
  }

  /// Attempt an RMW conditional on nothing having succeeded since `token`.
  bool compare_and_swap(Context& ctx, ReadToken token) {
    ctx.sync();
    const Time start = std::max(ctx.now(), busy_until_);
    busy_until_ = start + static_cast<Time>(ctx.engine().params().atomic());
    ctx.set_time(busy_until_);
    if (last_success_ > token) return false;  // somebody won since our read
    last_success_ = busy_until_;
    return true;
  }

 private:
  Time busy_until_ = 0;
  Time last_success_ = 0;
};

/// FIFO mutex in virtual time with direct hand-off to the next waiter.
/// Lock/unlock themselves charge nothing; callers charge whatever their
/// algorithm's model says (e.g. the flat-combining analysis charges one LLC
/// access for competing for the combiner lock).
class SimMutex {
 public:
  void lock(Context& ctx) {
    ctx.sync();
    if (!locked_) {
      locked_ = true;
      return;
    }
    waiters_.push_back(ctx.id());
    ctx.block();  // woken holding the lock (hand-off)
  }

  /// Returns false immediately if the lock is held.
  bool try_lock(Context& ctx) {
    ctx.sync();
    if (locked_) return false;
    locked_ = true;
    return true;
  }

  void unlock(Context& ctx) {
    ctx.sync();
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    const ActorId next = waiters_.front();
    waiters_.pop_front();
    ctx.engine().wake_at(next, ctx.now());  // lock stays held: hand-off
  }

  bool locked() const noexcept { return locked_; }

 private:
  bool locked_ = false;
  std::deque<ActorId> waiters_;
};

/// One-shot rendezvous slot: a consumer awaits a value a producer sets.
/// Used for flat-combining publication-list result slots and CPU response
/// slots. The producer decides how much delivery latency to charge.
template <typename T>
class SimSlot {
 public:
  /// Producer side: publish `value`, visible to the consumer at
  /// `ctx.now() + delay_ns`. The producer's clock is unaffected (it may
  /// pipeline past the delivery, Section 5.2). Does not re-enter the
  /// scheduler: a slot is single-producer/single-consumer and one-shot, so
  /// publishing early in host time is indistinguishable to the sole waiter,
  /// which cannot observe the value before `ready_at` anyway.
  void set(Context& ctx, T value, double delay_ns = 0.0) {
    value_ = std::move(value);
    ready_at_ = ctx.now() + static_cast<Time>(delay_ns);
    if (waiter_ != kNoActor) {
      const ActorId w = waiter_;
      waiter_ = kNoActor;
      ctx.engine().wake_at(w, ready_at_);
    }
  }

  /// Consumer side: block until a value is available, then consume it.
  /// The consumer's clock advances to the delivery time.
  T await(Context& ctx) {
    ctx.sync();
    if (!value_.has_value()) {
      waiter_ = ctx.id();
      ctx.block();
    }
    ctx.set_time(ready_at_);
    T out = std::move(*value_);
    value_.reset();
    return out;
  }

  bool has_value() const noexcept { return value_.has_value(); }

 private:
  std::optional<T> value_;
  Time ready_at_ = 0;
  ActorId waiter_ = kNoActor;
};

}  // namespace pimds::sim
