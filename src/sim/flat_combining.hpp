// Generic flat-combining harness for the simulator (Hendler et al. [25]).
//
// Requesters publish a request, then compete for a combiner lock; whoever
// wins drains all published requests, executes them (the data structure
// supplies the batch-execution strategy), writes results back, and releases
// the lock. Losers wait on their result slot.
//
// Cost accounting is configurable because the paper charges different
// things in different analyses:
//  - Table 1 / Table 2 (lists, skip-lists) count only traversal costs, which
//    the `serve` callback charges itself;
//  - the Section 5.2 FC-queue analysis additionally charges one LLC access
//    for competing for the lock and two LLC accesses per served slot
//    (combiner reads the request and writes the result).
#pragma once

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace pimds::sim {

template <typename Request, typename Result>
class SimFlatCombiner {
 public:
  struct Pending {
    Request request;
    SimSlot<Result>* slot;
  };

  struct CostConfig {
    bool charge_lock_llc = false;      ///< 1 LLC access to compete for lock
    bool charge_slot_llc = false;      ///< 2 LLC accesses per served slot
  };

  explicit SimFlatCombiner(CostConfig costs = {}) : costs_(costs) {}

  /// Execute `request`, either by becoming the combiner or by waiting for
  /// one. `serve` receives the whole drained batch; it must charge the
  /// combiner's execution costs on `ctx` and fill `slot->set(...)` for every
  /// entry (including the combiner's own).
  Result submit(Context& ctx, Request request,
                const std::function<void(Context&, std::vector<Pending>&)>&
                    serve) {
    SimSlot<Result> slot;
    ctx.sync();
    pending_.push_back(Pending{std::move(request), &slot});
    if (costs_.charge_lock_llc) ctx.charge(MemClass::kLlc);
    if (lock_.try_lock(ctx)) {
      // Combiner role: drain until no request is pending. Real combiners
      // re-scan the publication list a few times before releasing the lock;
      // here that re-scan is two zero-cost scheduler yields, enough for a
      // requester woken by our last batch to consume its result (one slice)
      // and publish its next request (second slice). Without the grace
      // yields each batch would see only a fragment of the active threads.
      std::size_t grace = 0;
      for (;;) {
        if (pending_.empty()) {
          if (grace == 2) break;
          ++grace;
          ctx.sync();
          continue;
        }
        grace = 0;
        std::vector<Pending> batch(pending_.begin(), pending_.end());
        pending_.clear();
        if (costs_.charge_slot_llc) {
          // Two LLC accesses per slot other than the combiner's own.
          ctx.charge(MemClass::kLlc, 2 * (batch.size() - 1));
        }
        serve(ctx, batch);
        ctx.sync();
      }
      lock_.unlock(ctx);
    }
    return slot.await(ctx);
  }

  /// Number of requests currently published and unserved (test hook).
  std::size_t pending_count() const noexcept { return pending_.size(); }

 private:
  CostConfig costs_;
  SimMutex lock_;
  std::deque<Pending> pending_;
};

}  // namespace pimds::sim
