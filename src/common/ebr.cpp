#include "common/ebr.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/timing.hpp"
#include "obs/metrics.hpp"

namespace pimds {

namespace {

// Per-thread cache of (domain -> slot index) claims. A thread typically
// touches one or two domains, so a flat vector beats a hash map.
struct SlotClaim {
  std::uint64_t domain_id;
  std::size_t index;
};
thread_local std::vector<SlotClaim> t_claims;

}  // namespace

EbrDomain::EbrDomain(std::string domain) : Reclaimer(/*validating=*/false) {
  if (!domain.empty()) {
    auto& reg = obs::Registry::instance();
    const std::string base = "reclaim." + domain + ".ebr.";
    m_retired_ = &reg.counter(base + "retired");
    m_freed_ = &reg.counter(base + "freed");
    m_stalls_ = &reg.counter(base + "epoch_stall");
    m_in_flight_ = &reg.gauge(base + "in_flight");
    m_slots_ = &reg.gauge(base + "slots_in_use");
    m_scan_ns_ = &reg.histogram(base + "scan_ns");
  }
}

std::uint64_t EbrDomain::next_domain_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EbrDomain::my_slot_index() {
  for (const auto& claim : t_claims) {
    if (claim.domain_id == id_) return claim.index;
  }
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
        slots_[i].claimed.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
      t_claims.push_back({id_, i});
      // Track the highest claimed slot so epoch scans stay short.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      const std::size_t used =
          slots_claimed_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (m_slots_ != nullptr) m_slots_->record_max(used);
      return i;
    }
  }
  // Guard entry is noexcept, so a throw here would terminate without a
  // message anyway; fail loudly instead of corrupting a neighbor's slot.
  std::fprintf(stderr,
               "EbrDomain: participant cap exhausted (%zu threads have "
               "claimed slots; kMaxThreads=%zu). Slots are claimed per "
               "(thread, domain) on first guard entry and never recycled — "
               "reuse worker threads or raise kMaxThreads.\n",
               slots_claimed_.load(std::memory_order_relaxed), kMaxThreads);
  std::abort();
}

void* EbrDomain::guard_enter() {
  ThreadSlot& slot = slots_[my_slot_index()];
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  slot.state.store((e << 1) | 1, std::memory_order_relaxed);
  // The pin must be visible before any read of shared structure; a seq_cst
  // fence pairs with the scan in try_advance_and_reclaim.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  return &slot;
}

void EbrDomain::guard_exit(void* ctx) noexcept {
  static_cast<ThreadSlot*>(ctx)->state.store(0, std::memory_order_release);
}

void EbrDomain::note_freed(std::size_t n) noexcept {
  if (n == 0) return;
  freed_.fetch_add(n, std::memory_order_relaxed);
  if (m_freed_ != nullptr) m_freed_->add(n);
  if (m_in_flight_ != nullptr) {
    m_in_flight_->set(retired_.load(std::memory_order_relaxed) -
                      freed_.load(std::memory_order_relaxed));
  }
}

void EbrDomain::retire_erased(void* p, void (*deleter)(void*)) {
  ThreadSlot& slot = slots_[my_slot_index()];
  assert((slot.state.load(std::memory_order_relaxed) & 1) &&
         "retire() requires an active Guard");
  retired_.fetch_add(1, std::memory_order_relaxed);
  if (m_retired_ != nullptr) m_retired_->add(1);
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  auto& list = slot.limbo[e % 3];
  if (slot.limbo_epoch[e % 3] != e) {
    // The resident list is from epoch e-3 or older (two epochs behind e-1),
    // so every reader that could see those nodes has unpinned: free it.
    for (const Retired& r : list) r.deleter(r.ptr);
    note_freed(list.size());
    list.clear();
    slot.limbo_epoch[e % 3] = e;
  }
  list.push_back({p, deleter});
  if (list.size() >= kRetireBatch) try_advance_and_reclaim(slot);
}

void EbrDomain::try_advance_and_reclaim(ThreadSlot& slot) {
  scans_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t0 = m_scan_ns_ != nullptr ? now_ns() : 0;
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    const std::uint64_t s = slots_[i].state.load(std::memory_order_acquire);
    if ((s & 1) && (s >> 1) != e) {
      // A reader lags behind epoch e: nothing can be freed this pass. This
      // is the EBR pathology the soak test watches — a single parked guard
      // stalls reclamation for every thread in the domain.
      stalls_.fetch_add(1, std::memory_order_relaxed);
      if (m_stalls_ != nullptr) m_stalls_->add(1);
      return;
    }
  }
  std::uint64_t expected = e;
  global_epoch_.value.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_acq_rel);
  const std::uint64_t now = global_epoch_.value.load(std::memory_order_acquire);
  std::size_t n_freed = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (!slot.limbo[i].empty() && slot.limbo_epoch[i] + 2 <= now) {
      for (const Retired& r : slot.limbo[i]) r.deleter(r.ptr);
      n_freed += slot.limbo[i].size();
      slot.limbo[i].clear();
    }
  }
  note_freed(n_freed);
  if (m_scan_ns_ != nullptr) m_scan_ns_->record(now_ns() - t0);
}

void EbrDomain::flush() {
  ThreadSlot& slot = slots_[my_slot_index()];
  // Each successful pass advances one epoch; three passes age every limbo
  // bucket past the two-epoch survival window when no reader is pinned.
  for (int i = 0; i < 3; ++i) try_advance_and_reclaim(slot);
}

void EbrDomain::reclaim_all_unsafe() {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t n_freed = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    for (auto& list : slots_[i].limbo) {
      for (const Retired& r : list) r.deleter(r.ptr);
      n_freed += list.size();
      list.clear();
    }
  }
  note_freed(n_freed);
}

ReclaimStats EbrDomain::stats() const {
  ReclaimStats s;
  s.retired = retired_.load(std::memory_order_relaxed);
  s.freed = freed_.load(std::memory_order_relaxed);
  s.in_flight = s.retired - s.freed;
  s.slots_in_use = slots_claimed_.load(std::memory_order_relaxed);
  s.scans = scans_.load(std::memory_order_relaxed);
  s.stalls = stalls_.load(std::memory_order_relaxed);
  return s;
}

std::size_t EbrDomain::pending_local() const {
  for (const auto& claim : t_claims) {
    if (claim.domain_id == id_) {
      const ThreadSlot& slot = slots_[claim.index];
      return slot.limbo[0].size() + slot.limbo[1].size() +
             slot.limbo[2].size();
    }
  }
  return 0;
}

}  // namespace pimds
