#include "common/ebr.hpp"

#include <stdexcept>
#include <utility>

namespace pimds {

namespace {

// Per-thread cache of (domain -> slot index) claims. A thread typically
// touches one or two domains, so a flat vector beats a hash map.
struct SlotClaim {
  std::uint64_t domain_id;
  std::size_t index;
};
thread_local std::vector<SlotClaim> t_claims;

}  // namespace

std::uint64_t EbrDomain::next_domain_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EbrDomain::my_slot_index() {
  for (const auto& claim : t_claims) {
    if (claim.domain_id == id_) return claim.index;
  }
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!slots_[i].claimed.load(std::memory_order_relaxed) &&
        slots_[i].claimed.compare_exchange_strong(expected, true,
                                                  std::memory_order_acq_rel)) {
      t_claims.push_back({id_, i});
      // Track the highest claimed slot so epoch scans stay short.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      return i;
    }
  }
  throw std::runtime_error("EbrDomain: more than kMaxThreads participants");
}

void EbrDomain::enter() noexcept {
  ThreadSlot& slot = slots_[my_slot_index()];
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  slot.state.store((e << 1) | 1, std::memory_order_relaxed);
  // The pin must be visible before any read of shared structure; a seq_cst
  // fence pairs with the scan in try_advance_and_reclaim.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EbrDomain::exit() noexcept {
  ThreadSlot& slot = slots_[my_slot_index()];
  slot.state.store(0, std::memory_order_release);
}

void EbrDomain::retire_erased(void* p, void (*deleter)(void*)) {
  ThreadSlot& slot = slots_[my_slot_index()];
  assert((slot.state.load(std::memory_order_relaxed) & 1) &&
         "retire() requires an active Guard");
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  auto& list = slot.limbo[e % 3];
  if (slot.limbo_epoch[e % 3] != e) {
    // The resident list is from epoch e-3 or older (two epochs behind e-1),
    // so every reader that could see those nodes has unpinned: free it.
    for (const Retired& r : list) r.deleter(r.ptr);
    list.clear();
    slot.limbo_epoch[e % 3] = e;
  }
  list.push_back({p, deleter});
  if (list.size() >= kRetireBatch) try_advance_and_reclaim(slot);
}

void EbrDomain::try_advance_and_reclaim(ThreadSlot& slot) {
  const std::uint64_t e = global_epoch_.value.load(std::memory_order_acquire);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    const std::uint64_t s = slots_[i].state.load(std::memory_order_acquire);
    if ((s & 1) && (s >> 1) != e) return;  // a reader lags behind epoch e
  }
  std::uint64_t expected = e;
  global_epoch_.value.compare_exchange_strong(expected, e + 1,
                                              std::memory_order_acq_rel);
  const std::uint64_t now = global_epoch_.value.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < 3; ++i) {
    if (!slot.limbo[i].empty() && slot.limbo_epoch[i] + 2 <= now) {
      for (const Retired& r : slot.limbo[i]) r.deleter(r.ptr);
      slot.limbo[i].clear();
    }
  }
}

void EbrDomain::reclaim_all_unsafe() {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    for (auto& list : slots_[i].limbo) {
      for (const Retired& r : list) r.deleter(r.ptr);
      list.clear();
    }
  }
}

std::size_t EbrDomain::pending_local() const {
  for (const auto& claim : t_claims) {
    if (claim.domain_id == id_) {
      const ThreadSlot& slot = slots_[claim.index];
      return slot.limbo[0].size() + slot.limbo[1].size() +
             slot.limbo[2].size();
    }
  }
  return 0;
}

}  // namespace pimds
