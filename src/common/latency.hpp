// The paper's performance model (Section 3) as a configuration object, plus
// a process-wide latency injector used by the real-thread emulation.
//
// Model recap:
//   Lcpu     = r1 * Lpim        (CPU DRAM access vs. PIM local-vault access)
//   Lcpu     = r2 * Lllc        (CPU DRAM access vs. last-level-cache access)
//   Latomic  = r3 * Lcpu        (CAS / F&A on a cache line, even if cached)
//   Lmessage = Lcpu             (CPU<->PIM and PIM<->PIM message transfer)
// with defaults r1 = r2 = 3, r3 = 1. k concurrent atomics on one cache line
// serialize: the i-th completes at time i * Latomic.
#pragma once

#include <atomic>
#include <cstdint>

namespace pimds {

/// Latency classes charged by the model. Everything in the library that
/// simulates or injects cost names one of these.
enum class MemClass : std::uint8_t {
  kCpuDram,   ///< CPU access to DRAM (uncached pointer chase step)
  kPimLocal,  ///< PIM core access to its local vault
  kLlc,       ///< CPU access served by the shared last-level cache
  kAtomic,    ///< CPU atomic RMW (CAS / F&A) on a cache line
  kMessage,   ///< message transfer CPU<->PIM or PIM<->PIM
};

/// Section 3 parameters. `pim_ns` sets the absolute scale; the paper only
/// fixes the ratios, so benchmarks may scale `pim_ns` up to keep injection
/// overhead (clock reads) negligible relative to the injected latencies.
struct LatencyParams {
  double pim_ns = 200.0;  ///< Lpim
  double r1 = 3.0;        ///< Lcpu / Lpim
  double r2 = 3.0;        ///< Lcpu / Lllc
  double r3 = 1.0;        ///< Latomic / Lcpu

  constexpr double pim() const noexcept { return pim_ns; }
  constexpr double cpu() const noexcept { return r1 * pim_ns; }
  constexpr double llc() const noexcept { return cpu() / r2; }
  constexpr double atomic() const noexcept { return r3 * cpu(); }
  constexpr double message() const noexcept { return cpu(); }

  constexpr double latency(MemClass c) const noexcept {
    switch (c) {
      case MemClass::kCpuDram: return cpu();
      case MemClass::kPimLocal: return pim();
      case MemClass::kLlc: return llc();
      case MemClass::kAtomic: return atomic();
      case MemClass::kMessage: return message();
    }
    return 0.0;
  }

  /// Paper defaults (r1 = r2 = 3, r3 = 1).
  static constexpr LatencyParams paper_defaults() noexcept { return {}; }
};

/// Process-wide injector for the real-thread emulation. Disabled by default
/// (native runs measure real hardware, like the paper's Figures 2/4); when
/// enabled, instrumented structures spin for the model latency on each
/// access. The simulator (src/sim) does NOT use this — it advances virtual
/// time instead.
class LatencyInjector {
 public:
  static LatencyInjector& instance() noexcept;

  void configure(const LatencyParams& params) noexcept;
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  LatencyParams params() const noexcept { return params_; }

  /// Spin for the model latency of `c`, if injection is enabled.
  void charge(MemClass c) const noexcept;

 private:
  LatencyInjector() = default;

  std::atomic<bool> enabled_{false};
  LatencyParams params_{};
};

/// Convenience free functions used at instrumentation points.
inline void charge_cpu_access() noexcept {
  LatencyInjector::instance().charge(MemClass::kCpuDram);
}
inline void charge_pim_access() noexcept {
  LatencyInjector::instance().charge(MemClass::kPimLocal);
}
inline void charge_llc_access() noexcept {
  LatencyInjector::instance().charge(MemClass::kLlc);
}
inline void charge_atomic() noexcept {
  LatencyInjector::instance().charge(MemClass::kAtomic);
}
inline void charge_message() noexcept {
  LatencyInjector::instance().charge(MemClass::kMessage);
}

}  // namespace pimds
