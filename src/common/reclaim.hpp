// Pluggable safe-memory-reclamation seam for the lock-free structures.
//
// Every lock-free baseline (and the runtime's FatArena) used to hard-wire
// epoch-based reclamation: one stalled reader inside an EBR guard defers
// reclamation for the whole domain. This header extracts the policy into a
// `Reclaimer` interface with two implementations — `EbrDomain`
// (common/ebr.hpp, epoch-based: cheapest read side, unbounded garbage under
// a stalled reader) and `HpDomain` (common/hazard.hpp, hazard pointers:
// per-pointer protection cost, garbage bounded by the published-hazard
// count regardless of stalls) — selectable per structure instance
// (`--reclaim=ebr|hp` in the benches).
//
// Read-side contract, shared by both policies:
//
//   ReclaimGuard guard(reclaimer);           // RAII critical section
//   Node* n = guard.protect(slot, src);      // load + publish + validate
//   ...traverse n...
//   guard.retire(victim);                    // deferred free (inside guard)
//
// protect() re-reads `src` after publishing until the value is stable, so a
// hazard-pointer scan that misses the publication implies the pointer was
// re-checked against a live source afterwards. Under EBR the publication is
// unnecessary (the guard pins the epoch) and protect() collapses to a plain
// acquire load — the `validating()` flag is false, so the virtual publish
// path is never taken and the EBR hot path is byte-for-byte the old one.
//
// Slot indices are per-guard names for concurrently-live hazards (pred /
// curr / succ, plus per-level slots for the skip-list); EBR ignores them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace pimds {

/// Point-in-time accounting for one reclamation domain.
struct ReclaimStats {
  std::uint64_t retired = 0;       ///< nodes handed to retire() so far
  std::uint64_t freed = 0;         ///< nodes whose deleter has run
  std::uint64_t in_flight = 0;     ///< retired - freed (the backlog)
  std::uint64_t slots_in_use = 0;  ///< per-thread participant slots claimed
  std::uint64_t scans = 0;         ///< reclamation scans attempted
  std::uint64_t stalls = 0;        ///< scans blocked by a lagging reader
                                   ///< (EBR: epoch_stall; HP: protected node)
};

class Reclaimer;

/// RAII read-side critical section over any Reclaimer. Stack-only.
class ReclaimGuard {
 public:
  explicit ReclaimGuard(Reclaimer& r) noexcept;
  ~ReclaimGuard();

  ReclaimGuard(const ReclaimGuard&) = delete;
  ReclaimGuard& operator=(const ReclaimGuard&) = delete;

  /// True when the policy needs per-pointer protection (hazard pointers).
  /// Structures gate HP-only restart logic on this so the EBR traversal
  /// keeps its original (restart-free) shape.
  bool validating() const noexcept { return validating_; }

  /// Load `src`, publish the value to `slot`, and re-load until stable.
  /// Returns the protected pointer. Under EBR: one acquire load.
  template <typename T>
  T* protect(unsigned slot, const std::atomic<T*>& src) noexcept;

  /// Word variant for tagged pointers: publishes `word & ptr_mask` (the
  /// node address without mark bits) but validates full-word equality.
  std::uintptr_t protect_word(unsigned slot,
                              const std::atomic<std::uintptr_t>& src,
                              std::uintptr_t ptr_mask) noexcept;

  /// Publish a pointer that is already continuously protected by another
  /// slot of this guard (hand-over-hand slot rotation). No validation —
  /// the caller's existing hazard covers the window.
  template <typename T>
  void republish(unsigned slot, T* p) noexcept;
  void republish_word(unsigned slot, std::uintptr_t word) noexcept;

  /// Drop one hazard early (guard destruction clears all of them).
  void clear(unsigned slot) noexcept;

  /// Defer `delete p` until no reader can hold a reference.
  template <typename T>
  void retire(T* p);
  void retire(void* p, void (*deleter)(void*));

 private:
  Reclaimer& r_;
  void* ctx_;        // policy-private per-thread state
  bool validating_;  // cached Reclaimer::validating()
};

/// Abstract reclamation domain. One domain per structure instance (or per
/// shared arena); threads participate via slots claimed on first use.
class Reclaimer {
 public:
  virtual ~Reclaimer() = default;

  /// Hazard slots addressable per guard. Sized for the deepest consumer:
  /// the lock-free skip-list pins pred+succ per level (2*16) plus three
  /// traversal slots.
  static constexpr unsigned kGuardSlots = 40;

  /// True when readers must publish per-pointer hazards (HP). Non-virtual:
  /// ReclaimGuard reads it on every protect, so it is a plain member.
  bool validating() const noexcept { return validating_; }

  /// Human-readable policy name ("ebr" / "hp") for stats and bench output.
  virtual const char* policy_name() const noexcept = 0;

  /// Schedule `p` for deletion once no reader can hold a reference. Must
  /// be called with a live guard on the calling thread.
  virtual void retire_erased(void* p, void (*deleter)(void*)) = 0;

  template <typename T>
  void retire(T* p) {
    retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
  }

  /// Best-effort immediate reclamation pass (advance epochs / scan
  /// hazards). Safe to call any time from any thread; bounds the backlog
  /// after a burst of retires.
  virtual void flush() = 0;

  /// Free everything still in limbo. Only safe when no thread is inside a
  /// guard (single-threaded teardown).
  virtual void reclaim_all_unsafe() = 0;

  virtual ReclaimStats stats() const = 0;

 protected:
  explicit Reclaimer(bool validating) noexcept : validating_(validating) {}

 private:
  friend class ReclaimGuard;

  /// Guard protocol. enter() returns an opaque per-thread context passed
  /// back to every other call; publishing is only reached when
  /// validating() is true.
  virtual void* guard_enter() = 0;
  virtual void guard_exit(void* ctx) noexcept = 0;
  virtual void publish(void* ctx, unsigned slot, std::uintptr_t word) noexcept;
  virtual void clear_slot(void* ctx, unsigned slot) noexcept;

  const bool validating_;
};

inline void Reclaimer::publish(void*, unsigned, std::uintptr_t) noexcept {}
inline void Reclaimer::clear_slot(void*, unsigned) noexcept {}

// ---------------------------------------------------------------------------
// ReclaimGuard inline implementation (the structures' hot path).

inline ReclaimGuard::ReclaimGuard(Reclaimer& r) noexcept
    : r_(r), ctx_(r.guard_enter()), validating_(r.validating()) {}

inline ReclaimGuard::~ReclaimGuard() { r_.guard_exit(ctx_); }

template <typename T>
T* ReclaimGuard::protect(unsigned slot, const std::atomic<T*>& src) noexcept {
  T* v = src.load(std::memory_order_acquire);
  if (!validating_) return v;
  for (;;) {
    r_.publish(ctx_, slot, reinterpret_cast<std::uintptr_t>(v));
    T* again = src.load(std::memory_order_acquire);
    if (again == v) return v;
    v = again;
  }
}

inline std::uintptr_t ReclaimGuard::protect_word(
    unsigned slot, const std::atomic<std::uintptr_t>& src,
    std::uintptr_t ptr_mask) noexcept {
  std::uintptr_t v = src.load(std::memory_order_acquire);
  if (!validating_) return v;
  for (;;) {
    r_.publish(ctx_, slot, v & ptr_mask);
    const std::uintptr_t again = src.load(std::memory_order_acquire);
    if (again == v) return v;
    v = again;
  }
}

template <typename T>
void ReclaimGuard::republish(unsigned slot, T* p) noexcept {
  if (!validating_) return;
  r_.publish(ctx_, slot, reinterpret_cast<std::uintptr_t>(p));
}

inline void ReclaimGuard::republish_word(unsigned slot,
                                         std::uintptr_t word) noexcept {
  if (!validating_) return;
  r_.publish(ctx_, slot, word);
}

inline void ReclaimGuard::clear(unsigned slot) noexcept {
  if (!validating_) return;
  r_.clear_slot(ctx_, slot);
}

template <typename T>
void ReclaimGuard::retire(T* p) {
  r_.retire(p);
}

inline void ReclaimGuard::retire(void* p, void (*deleter)(void*)) {
  r_.retire_erased(p, deleter);
}

// ---------------------------------------------------------------------------
// Policy selection.

enum class ReclaimPolicy { kEbr, kHp };

constexpr const char* to_string(ReclaimPolicy p) noexcept {
  return p == ReclaimPolicy::kEbr ? "ebr" : "hp";
}

/// Parses "ebr" / "hp" (bench `--reclaim=` values); nullopt on anything else.
std::optional<ReclaimPolicy> parse_reclaim_policy(std::string_view s) noexcept;

/// Constructs a domain of the given policy. `domain` names the obs metrics
/// ("reclaim.<domain>.<policy>.retired" etc.); empty disables metrics
/// registration (used by short-lived micro-bench domains).
std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          std::string domain);

}  // namespace pimds
