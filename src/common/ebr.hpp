// Epoch-based memory reclamation (EBR) for lock-free structures.
//
// The lock-free skip-list baseline unlinks nodes that concurrent readers may
// still be traversing; EBR defers reclamation until no reader can hold a
// reference. Classic 3-epoch scheme (Fraser): readers pin the global epoch
// on entry; retired nodes are freed once every pinned reader has observed a
// newer epoch (two global epoch advances).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/cacheline.hpp"

namespace pimds {

/// One reclamation domain. Threads participate via thread-local slots
/// claimed on first use; at most kMaxThreads threads may ever enter.
class EbrDomain {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Retired nodes buffered per thread before attempting an epoch advance.
  static constexpr std::size_t kRetireBatch = 64;

  EbrDomain() = default;
  ~EbrDomain() { reclaim_all_unsafe(); }

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  /// RAII critical-section guard. While alive, nodes retired by other
  /// threads in the current epoch will not be freed.
  class Guard {
   public:
    explicit Guard(EbrDomain& domain) noexcept : domain_(domain) {
      domain_.enter();
    }
    ~Guard() { domain_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EbrDomain& domain_;
  };

  /// Schedules `p` for deletion once no guard from an older epoch survives.
  /// Must be called inside a Guard.
  template <typename T>
  void retire(T* p) {
    retire_erased(p, [](void* q) { delete static_cast<T*>(q); });
  }

  void retire_erased(void* p, void (*deleter)(void*));

  /// Frees everything immediately. Only safe when no thread is inside a
  /// Guard (e.g. single-threaded teardown).
  void reclaim_all_unsafe();

  /// Testing hook: number of retired-but-unreclaimed nodes owned by the
  /// calling thread.
  std::size_t pending_local() const;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct alignas(kCacheLineSize) ThreadSlot {
    // Bit 0: active flag; bits 1..: epoch the thread pinned.
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> claimed{false};
    std::array<std::vector<Retired>, 3> limbo{};
    std::uint64_t limbo_epoch[3] = {0, 0, 0};
  };

  void enter() noexcept;
  void exit() noexcept;
  std::size_t my_slot_index();
  void try_advance_and_reclaim(ThreadSlot& slot);

  static std::uint64_t next_domain_id() noexcept;

  /// Distinguishes domains so a thread's cached slot claims cannot alias a
  /// new domain constructed at a recycled address.
  const std::uint64_t id_ = next_domain_id();
  CachePadded<std::atomic<std::uint64_t>> global_epoch_{1};
  std::array<ThreadSlot, kMaxThreads> slots_{};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace pimds
