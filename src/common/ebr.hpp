// Epoch-based memory reclamation (EBR) for lock-free structures.
//
// One of two implementations of the Reclaimer seam (common/reclaim.hpp);
// the other is hazard pointers (common/hazard.hpp). EBR has the cheapest
// possible read side — a guard pins the global epoch and individual
// pointers need no protection — at the cost of unbounded garbage while any
// reader stalls inside a guard. Classic 3-epoch scheme (Fraser): readers
// pin the global epoch on entry; retired nodes are freed once every pinned
// reader has observed a newer epoch (two global epoch advances).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/reclaim.hpp"

namespace pimds {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// One reclamation domain. Threads participate via thread-local slots
/// claimed on first use; at most kMaxThreads threads may ever enter, and
/// the kMaxThreads+1'th participant aborts with a diagnostic instead of
/// corrupting a neighbor's slot.
class EbrDomain final : public Reclaimer {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Retired nodes buffered per thread before attempting an epoch advance.
  static constexpr std::size_t kRetireBatch = 64;

  /// `domain` names this domain's metrics in the obs registry
  /// (`reclaim.<domain>.ebr.*`); empty skips metric registration (anonymous
  /// short-lived domains in tests/benches).
  explicit EbrDomain(std::string domain = "");
  ~EbrDomain() override { reclaim_all_unsafe(); }

  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  /// RAII critical-section guard (seam-wide type). While alive, nodes
  /// retired by other threads in the current epoch will not be freed.
  using Guard = ReclaimGuard;

  // Reclaimer interface -----------------------------------------------------
  const char* policy_name() const noexcept override { return "ebr"; }
  void retire_erased(void* p, void (*deleter)(void*)) override;
  using Reclaimer::retire;

  /// Tries to advance the epoch and drain the calling thread's limbo lists
  /// (one pass per epoch bucket). Bounds the backlog after a stall clears.
  void flush() override;

  /// Frees everything immediately. Only safe when no thread is inside a
  /// Guard (e.g. single-threaded teardown).
  void reclaim_all_unsafe() override;

  ReclaimStats stats() const override;

  // Introspection -----------------------------------------------------------
  /// Number of retired-but-unreclaimed nodes owned by the calling thread.
  std::size_t pending_local() const;

  /// Participant slots claimed over this domain's lifetime.
  std::size_t slots_in_use() const noexcept {
    return slots_claimed_.load(std::memory_order_relaxed);
  }

  /// Epoch advances that found a reader pinned to an older epoch (the
  /// "one stalled reader defers everything" signature).
  std::uint64_t epoch_stalls() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct alignas(kCacheLineSize) ThreadSlot {
    // Bit 0: active flag; bits 1..: epoch the thread pinned.
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> claimed{false};
    std::array<std::vector<Retired>, 3> limbo{};
    std::uint64_t limbo_epoch[3] = {0, 0, 0};
  };

  void* guard_enter() override;
  void guard_exit(void* ctx) noexcept override;

  std::size_t my_slot_index();
  void try_advance_and_reclaim(ThreadSlot& slot);
  void note_freed(std::size_t n) noexcept;

  static std::uint64_t next_domain_id() noexcept;

  /// Distinguishes domains so a thread's cached slot claims cannot alias a
  /// new domain constructed at a recycled address.
  const std::uint64_t id_ = next_domain_id();
  CachePadded<std::atomic<std::uint64_t>> global_epoch_{1};
  std::array<ThreadSlot, kMaxThreads> slots_{};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> slots_claimed_{0};

  // Accounting (ReclaimStats; relaxed, read by stats()).
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> stalls_{0};

  // Obs-registry mirrors; null when the domain is anonymous.
  obs::Counter* m_retired_ = nullptr;
  obs::Counter* m_freed_ = nullptr;
  obs::Counter* m_stalls_ = nullptr;
  obs::Gauge* m_in_flight_ = nullptr;
  obs::Gauge* m_slots_ = nullptr;
  obs::Histogram* m_scan_ns_ = nullptr;
};

}  // namespace pimds
