// Zipf-distributed key generator.
//
// Used by the rebalancing ablation (DESIGN.md experiment A5): Section 4.2.1
// of the paper motivates node migration with *skewed* request distributions,
// which a static uniform partitioning handles badly. Zipf is the standard
// skew model for key-value workloads (YCSB uses the same construction).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pimds {

/// Draws ranks in [0, n) with P(rank = i) proportional to 1/(i+1)^theta.
///
/// Uses the classic rejection-inversion-free YCSB/Gray et al. construction:
/// closed-form inverse of the (approximated) CDF, exact for the two head
/// ranks, O(1) per draw after O(1) setup.
class ZipfGenerator {
 public:
  /// @param n      number of distinct items (must be >= 1)
  /// @param theta  skew in [0, 1); 0 = uniform-ish, 0.99 = heavily skewed
  ZipfGenerator(std::uint64_t n, double theta);

  /// Next rank in [0, n). Rank 0 is the hottest item.
  std::uint64_t next(Xoshiro256& rng) const;

  std::uint64_t size() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace pimds
