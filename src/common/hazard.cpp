#include "common/hazard.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/timing.hpp"
#include "obs/metrics.hpp"

namespace pimds {

namespace {

// Per-thread cache of (domain -> record index) claims, mirroring the EBR
// slot-claim cache (common/ebr.cpp) but for hazard-pointer records.
struct RecClaim {
  std::uint64_t domain_id;
  std::size_t index;
};
thread_local std::vector<RecClaim> t_rec_claims;

}  // namespace

HpDomain::HpDomain(std::string domain) : Reclaimer(/*validating=*/true) {
  if (!domain.empty()) {
    auto& reg = obs::Registry::instance();
    const std::string base = "reclaim." + domain + ".hp.";
    m_retired_ = &reg.counter(base + "retired");
    m_freed_ = &reg.counter(base + "freed");
    m_scan_kept_ = &reg.counter(base + "scan_kept");
    m_in_flight_ = &reg.gauge(base + "in_flight");
    m_slots_ = &reg.gauge(base + "slots_in_use");
    m_scan_hazards_max_ = &reg.gauge(base + "scan_hazards_max");
    m_scan_ns_ = &reg.histogram(base + "scan_ns");
  }
}

std::uint64_t HpDomain::next_domain_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

HpDomain::ThreadRec& HpDomain::my_rec() {
  for (const auto& claim : t_rec_claims) {
    if (claim.domain_id == id_) return recs_[claim.index];
  }
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!recs_[i].claimed.load(std::memory_order_relaxed) &&
        recs_[i].claimed.compare_exchange_strong(expected, true,
                                                 std::memory_order_acq_rel)) {
      t_rec_claims.push_back({id_, i});
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      const std::size_t used =
          recs_claimed_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (m_slots_ != nullptr) m_slots_->record_max(used);
      return recs_[i];
    }
  }
  std::fprintf(stderr,
               "HpDomain: participant cap exhausted (%zu threads have "
               "claimed records; kMaxThreads=%zu). Records are claimed per "
               "(thread, domain) on first guard entry and never recycled — "
               "reuse worker threads or raise kMaxThreads.\n",
               recs_claimed_.load(std::memory_order_relaxed), kMaxThreads);
  std::abort();
}

void* HpDomain::guard_enter() {
  ThreadRec& rec = my_rec();
  ++rec.depth;
  return &rec;
}

void HpDomain::guard_exit(void* ctx) noexcept {
  auto* rec = static_cast<ThreadRec*>(ctx);
  if (--rec->depth > 0) return;  // inner guard of a nested pair
  for (unsigned s = 0; s < rec->dirty_high; ++s) {
    rec->hazards[s].store(0, std::memory_order_release);
  }
  rec->dirty_high = 0;
}

void HpDomain::publish(void* ctx, unsigned slot,
                       std::uintptr_t word) noexcept {
  auto* rec = static_cast<ThreadRec*>(ctx);
  assert(slot < kGuardSlots);
  if (slot + 1 > rec->dirty_high) rec->dirty_high = slot + 1;
  rec->hazards[slot].store(word, std::memory_order_release);
  // Store-load fence: the publication must be visible before the caller's
  // validating re-read of the source pointer. Pairs with the fence at the
  // top of scan(): either the scan sees this hazard, or the validating
  // re-read sees the unlink that preceded the retire.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void HpDomain::clear_slot(void* ctx, unsigned slot) noexcept {
  auto* rec = static_cast<ThreadRec*>(ctx);
  assert(slot < kGuardSlots);
  rec->hazards[slot].store(0, std::memory_order_release);
}

void HpDomain::retire_erased(void* p, void (*deleter)(void*)) {
  ThreadRec& rec = my_rec();
  rec.retired.push_back({p, deleter});
  retired_.fetch_add(1, std::memory_order_relaxed);
  if (m_retired_ != nullptr) m_retired_->add(1);
  if (rec.retired.size() >= kScanThreshold) scan(rec);
}

void HpDomain::scan(ThreadRec& rec) {
  scans_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t0 = m_scan_ns_ != nullptr ? now_ns() : 0;
  // Pairs with the fence in publish(): a hazard published before a retired
  // node was unlinked is guaranteed visible here.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::vector<std::uintptr_t> hazards;
  hazards.reserve(64);
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    if (!recs_[i].claimed.load(std::memory_order_acquire)) continue;
    for (const auto& h : recs_[i].hazards) {
      const std::uintptr_t w = h.load(std::memory_order_acquire);
      if (w != 0) hazards.push_back(w);
    }
  }
  std::sort(hazards.begin(), hazards.end());
  if (m_scan_hazards_max_ != nullptr) {
    m_scan_hazards_max_->record_max(hazards.size());
  }
  std::size_t kept = 0;
  std::size_t n_freed = 0;
  for (Retired& r : rec.retired) {
    if (std::binary_search(hazards.begin(), hazards.end(),
                           reinterpret_cast<std::uintptr_t>(r.ptr))) {
      rec.retired[kept++] = r;  // still protected: keep for a later scan
    } else {
      r.deleter(r.ptr);
      ++n_freed;
    }
  }
  rec.retired.resize(kept);
  freed_.fetch_add(n_freed, std::memory_order_relaxed);
  if (kept > 0) {
    scan_kept_.fetch_add(1, std::memory_order_relaxed);
    if (m_scan_kept_ != nullptr) m_scan_kept_->add(1);
  }
  if (m_freed_ != nullptr) m_freed_->add(n_freed);
  if (m_in_flight_ != nullptr) {
    m_in_flight_->set(retired_.load(std::memory_order_relaxed) -
                      freed_.load(std::memory_order_relaxed));
  }
  if (m_scan_ns_ != nullptr) m_scan_ns_->record(now_ns() - t0);
}

void HpDomain::flush() { scan(my_rec()); }

void HpDomain::reclaim_all_unsafe() {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t n_freed = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    for (const Retired& r : recs_[i].retired) {
      r.deleter(r.ptr);
      ++n_freed;
    }
    recs_[i].retired.clear();
  }
  freed_.fetch_add(n_freed, std::memory_order_relaxed);
  if (m_freed_ != nullptr && n_freed > 0) m_freed_->add(n_freed);
}

ReclaimStats HpDomain::stats() const {
  ReclaimStats s;
  s.retired = retired_.load(std::memory_order_relaxed);
  s.freed = freed_.load(std::memory_order_relaxed);
  s.in_flight = s.retired - s.freed;
  s.slots_in_use = recs_claimed_.load(std::memory_order_relaxed);
  s.scans = scans_.load(std::memory_order_relaxed);
  s.stalls = scan_kept_.load(std::memory_order_relaxed);
  return s;
}

std::size_t HpDomain::pending_local() const {
  for (const auto& claim : t_rec_claims) {
    if (claim.domain_id == id_) return recs_[claim.index].retired.size();
  }
  return 0;
}

}  // namespace pimds
