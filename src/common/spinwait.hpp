// Oversubscription-friendly spin helper.
//
// Every unbounded wait loop in the library uses SpinWait instead of a bare
// cpu_relax() loop: after a short burst of pause instructions it starts
// yielding the OS time slice. On a machine with fewer cores than runnable
// threads (this host has 2), bare spinning starves the thread being waited
// on and turns microseconds into scheduler quanta.
#pragma once

#include <cstdint>
#include <thread>

#include "common/timing.hpp"

namespace pimds {

class SpinWait {
 public:
  /// @param spin_limit pause-loop iterations before yielding begins
  explicit SpinWait(std::uint32_t spin_limit = 128) noexcept
      : limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < limit_) {
      ++count_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t limit_;
};

}  // namespace pimds
