// Oversubscription-friendly spin helper.
//
// Every unbounded wait loop in the library uses SpinWait instead of a bare
// cpu_relax() loop: after a short burst of pause instructions it starts
// yielding the OS time slice, and after sustained yielding it escalates to
// short, exponentially growing sleeps. On a machine with fewer cores than
// runnable threads, bare spinning starves the thread being waited on, and
// even yield loops tax the scheduler once many waiters churn the runqueue —
// sleeping waiters cost nothing until their wakeup.
#pragma once

#include <cstdint>
#include <thread>

#include "common/timing.hpp"

namespace pimds {

class SpinWait {
 public:
  /// @param spin_limit pause-loop iterations before yielding begins
  explicit SpinWait(std::uint32_t spin_limit = 128) noexcept
      : limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < limit_) {
      ++count_;
      cpu_relax();
    } else if (count_ < limit_ + kYieldLimit) {
      ++count_;
      std::this_thread::yield();
    } else {
      // The partner is descheduled or deliberately pacing (e.g. an injected
      // delivery latency): stop taxing the runqueue. Bounded so the wakeup
      // lag stays small against the latency scales being injected.
      timespec ts{0, static_cast<long>(sleep_ns_)};
      ::nanosleep(&ts, nullptr);
      if (sleep_ns_ < kMaxSleepNs) sleep_ns_ *= 2;
    }
  }

  void reset() noexcept {
    count_ = 0;
    sleep_ns_ = kMinSleepNs;
  }

 private:
  static constexpr std::uint32_t kYieldLimit = 64;
  static constexpr std::uint32_t kMinSleepNs = 2'000;
  static constexpr std::uint32_t kMaxSleepNs = 50'000;

  std::uint32_t count_ = 0;
  std::uint32_t limit_;
  std::uint32_t sleep_ns_ = kMinSleepNs;
};

}  // namespace pimds
