// Wall-clock helpers and calibrated busy-wait used for latency injection.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace pimds {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Polite spin-wait hint (PAUSE on x86, YIELD on ARM).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// The emulation injects memory/message latencies this way (DESIGN.md §5);
/// a clock read costs ~20 ns, so injected latencies should be >= ~100 ns for
/// the ratio between injected classes to dominate the overhead.
inline void spin_for_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const std::uint64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) cpu_relax();
}

/// Wait until the monotonic clock reaches `deadline_ns`, sleeping through the
/// bulk of long waits and spinning only the tail.
///
/// Burning a core for the whole interval is fine for the short calibrated
/// delays of `spin_for_ns`, but a *known-deadline* wait tens of microseconds
/// out (e.g. an in-flight response's delivery time) should yield the CPU:
/// on oversubscribed hosts the spin steals cycles from exactly the threads
/// whose progress the waiter needs. Past the threshold the OS timer's wakeup
/// latency fits inside the slack, so we sleep to `deadline - slack` and spin
/// the remainder for precision.
inline void wait_until_ns(std::uint64_t deadline_ns) noexcept {
  constexpr std::uint64_t kSleepThresholdNs = 50'000;
  constexpr std::uint64_t kSleepSlackNs = 20'000;
  for (std::uint64_t now = now_ns(); now + kSleepThresholdNs < deadline_ns;
       now = now_ns()) {
    const std::uint64_t ns = deadline_ns - now - kSleepSlackNs;
    timespec ts{static_cast<time_t>(ns / 1'000'000'000u),
                static_cast<long>(ns % 1'000'000'000u)};
    ::nanosleep(&ts, nullptr);
  }
  while (now_ns() < deadline_ns) cpu_relax();
}

/// RAII stopwatch reporting elapsed nanoseconds.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }
  void reset() noexcept { start_ = now_ns(); }

 private:
  std::uint64_t start_;
};

}  // namespace pimds
