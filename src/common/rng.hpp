// Small, fast, reproducible PRNGs.
//
// Benchmarks and the discrete-event simulator need per-actor generators that
// are (a) cheap enough not to perturb latency measurements and (b) seedable
// so every experiment regenerates deterministically. <random>'s mt19937 is
// too heavy for the hot paths here; xoshiro256** is the standard choice.
#pragma once

#include <cstdint>

namespace pimds {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used as a generator itself; here it is the seeder.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. 256-bit state, period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path branch-free in the common case.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace pimds
