#include "common/latency.hpp"

#include "common/timing.hpp"

namespace pimds {

LatencyInjector& LatencyInjector::instance() noexcept {
  static LatencyInjector injector;
  return injector;
}

void LatencyInjector::configure(const LatencyParams& params) noexcept {
  params_ = params;
}

void LatencyInjector::charge(MemClass c) const noexcept {
  if (!enabled()) return;
  spin_for_ns(static_cast<std::uint64_t>(params_.latency(c)));
}

}  // namespace pimds
