// Hazard-pointer memory reclamation (Michael, "Hazard Pointers: Safe Memory
// Reclamation for Lock-Free Objects", IEEE TPDS 2004).
//
// Second implementation of the Reclaimer seam (common/reclaim.hpp). Where
// EBR pins one global epoch per reader — so a single stalled guard defers
// every retire in the domain — hazard pointers protect individual nodes:
// readers publish each pointer before dereferencing it (the
// protect-with-validate loop in ReclaimGuard), and the retire side frees
// everything except the currently-published set. Garbage is bounded by
// (scan threshold + published hazards) per thread no matter how long any
// reader stalls; the price is a store+fence per pointer hop on the read
// side. micro_primitives measures the trade both ways.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/reclaim.hpp"

namespace pimds {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// One hazard-pointer domain. Threads participate via records claimed on
/// first use (never recycled); each record carries kGuardSlots hazard slots
/// and a private retire list that is scanned-and-freed once it reaches
/// kScanThreshold entries.
class HpDomain final : public Reclaimer {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Retired nodes buffered per thread before an amortized scan. The
  /// per-thread backlog is bounded by kScanThreshold plus the number of
  /// hazards published process-wide at scan time.
  static constexpr std::size_t kScanThreshold = 128;

  /// `domain` names this domain's metrics in the obs registry
  /// (`reclaim.<domain>.hp.*`); empty skips metric registration.
  explicit HpDomain(std::string domain = "");
  ~HpDomain() override { reclaim_all_unsafe(); }

  HpDomain(const HpDomain&) = delete;
  HpDomain& operator=(const HpDomain&) = delete;

  using Guard = ReclaimGuard;

  // Reclaimer interface -----------------------------------------------------
  const char* policy_name() const noexcept override { return "hp"; }
  void retire_erased(void* p, void (*deleter)(void*)) override;
  using Reclaimer::retire;

  /// Scan-and-free the calling thread's retire list immediately.
  void flush() override;

  /// Frees every retired node regardless of published hazards. Only safe
  /// when no thread is inside a Guard (single-threaded teardown).
  void reclaim_all_unsafe() override;

  ReclaimStats stats() const override;

  // Introspection -----------------------------------------------------------
  /// Retired-but-unreclaimed nodes owned by the calling thread.
  std::size_t pending_local() const;

  /// Participant records claimed over this domain's lifetime.
  std::size_t slots_in_use() const noexcept {
    return recs_claimed_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  struct alignas(kCacheLineSize) ThreadRec {
    std::atomic<bool> claimed{false};
    /// Published hazards; 0 = empty. Written by the owner, read by every
    /// scanning thread.
    std::array<std::atomic<std::uintptr_t>, kGuardSlots> hazards{};
    /// Guard nesting depth (owner-only writes); hazards are cleared when
    /// the outermost guard exits.
    int depth = 0;
    /// Highest slot published since the outermost guard entry, so exit
    /// clears only the dirty prefix instead of all kGuardSlots.
    unsigned dirty_high = 0;
    /// Owner-only retire list.
    std::vector<Retired> retired;
  };

  void* guard_enter() override;
  void guard_exit(void* ctx) noexcept override;
  void publish(void* ctx, unsigned slot, std::uintptr_t word) noexcept override;
  void clear_slot(void* ctx, unsigned slot) noexcept override;

  ThreadRec& my_rec();
  void scan(ThreadRec& rec);

  static std::uint64_t next_domain_id() noexcept;

  const std::uint64_t id_ = next_domain_id();
  std::array<ThreadRec, kMaxThreads> recs_{};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> recs_claimed_{0};

  // Accounting (ReclaimStats; relaxed, read by stats()).
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> scan_kept_{0};  ///< scans that kept >=1 node

  // Obs-registry mirrors; null when the domain is anonymous.
  obs::Counter* m_retired_ = nullptr;
  obs::Counter* m_freed_ = nullptr;
  obs::Counter* m_scan_kept_ = nullptr;
  obs::Gauge* m_in_flight_ = nullptr;
  obs::Gauge* m_slots_ = nullptr;
  obs::Gauge* m_scan_hazards_max_ = nullptr;
  obs::Histogram* m_scan_ns_ = nullptr;
};

}  // namespace pimds
