// Sense-reversing centralized barrier.
//
// Benchmarks start all worker threads on the same edge so warm-up and
// measurement windows line up across threads. std::barrier would also work;
// this spinning variant avoids futex wake latency distorting short
// measurement windows.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/cacheline.hpp"
#include "common/timing.hpp"
#include "common/spinwait.hpp"

namespace pimds {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties have arrived.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.value.load(std::memory_order_relaxed);
    if (remaining_.value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.value.store(parties_, std::memory_order_relaxed);
      sense_.value.store(my_sense, std::memory_order_release);
    } else {
      SpinWait spin;
      while (sense_.value.load(std::memory_order_acquire) != my_sense) {
        spin.wait();
      }
    }
  }

 private:
  const std::size_t parties_;
  CachePadded<std::atomic<std::size_t>> remaining_;
  CachePadded<std::atomic<bool>> sense_{false};
};

}  // namespace pimds
