// Cache-line geometry and padding helpers.
//
// Contended atomics in this library are always padded to a cache line to
// avoid false sharing; the paper's performance model (Section 3) charges
// contention per *cache line*, so keeping one logical variable per line
// also keeps measurements aligned with the model.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pimds {

// std::hardware_destructive_interference_size is 64 on every x86-64 libstdc++
// we target, but using the constant directly avoids the ABI warning gcc emits
// for the standard trait in public headers.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that it occupies (at least) one full cache line.
/// Use for per-thread slots, combiner locks, queue head/tail words, etc.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  static_assert(!std::is_reference_v<T>);

  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Tail padding so sizeof(CachePadded<T>) is a multiple of the line size
  // even when T itself is larger than one line.
  char pad_[kCacheLineSize - (sizeof(T) % kCacheLineSize == 0
                                  ? kCacheLineSize
                                  : sizeof(T) % kCacheLineSize)]{};
};

static_assert(sizeof(CachePadded<char>) == kCacheLineSize);
static_assert(alignof(CachePadded<char>) == kCacheLineSize);

}  // namespace pimds
