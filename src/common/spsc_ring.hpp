// Bounded lock-free single-producer / single-consumer ring buffer.
//
// The per-sender mailbox lane transport: each sender thread owns exactly one
// lane into a PIM core's mailbox, so the only synchronization a send or a
// receive needs is one acquire load plus one release store on an index word
// — no CAS, no shared ticket counter, no cross-sender cache-line traffic
// (compare common/mpmc_queue.hpp, whose producers all hammer one tail word).
//
// Classic Lamport ring with index caching: the producer keeps a local copy
// of the consumer's head (refreshed only when the ring looks full) and the
// consumer a local copy of the producer's tail (refreshed only when the
// ring looks empty), so the steady-state hot path touches a single shared
// cache line per side per wraparound, not per operation.
//
// Memory ordering: the producer's release store of tail_ publishes the slot
// write to the consumer's acquire load; the consumer's release store of
// head_ publishes the slot as reusable to the producer's acquire load. Both
// sides' own index loads are relaxed (single writer each).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/cacheline.hpp"

namespace pimds {

template <typename T>
class SpscRing {
 public:
  /// @param capacity ring size; rounded up to the next power of two (min 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer-only. Returns false when the ring is full.
  bool try_push(T value) {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.value.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = std::move(value);
    tail_.value.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-only. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;  // genuinely empty
    }
    std::optional<T> out(std::move(slots_[head & mask_]));
    head_.value.store(head + 1, std::memory_order_release);
    return out;
  }

  /// Consumer-only batch pop: invokes `f(T&&)` for up to `max_n` queued
  /// items and returns the number consumed. The head index is published
  /// once at the end, so a burst costs one release store total.
  template <typename F>
  std::size_t consume(F&& f, std::size_t max_n) {
    std::size_t head = head_.value.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.value.load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    std::size_t n = 0;
    while (n < max_n && head != cached_tail_) {
      f(std::move(slots_[head & mask_]));
      ++head;
      ++n;
    }
    head_.value.store(head, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy; exact from the consumer thread (the producer
  /// can at most have published items this misses).
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.value.load(std::memory_order_acquire);
    const std::size_t head = head_.value.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  /// Approximate emptiness (exact only when the producer is quiesced).
  bool empty() const noexcept {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.value.load(std::memory_order_acquire);
  }

 private:
  std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  // Producer line: tail index + the producer's cached view of head.
  CachePadded<std::atomic<std::size_t>> tail_{0};
  std::size_t cached_head_ = 0;  ///< producer-local
  // Consumer line: head index + the consumer's cached view of tail.
  CachePadded<std::atomic<std::size_t>> head_{0};
  std::size_t cached_tail_ = 0;  ///< consumer-local
};

}  // namespace pimds
