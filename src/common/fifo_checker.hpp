// History-based FIFO queue checker for concurrent tests.
//
// Threads record enqueue and dequeue events during a run; check() then
// verifies, offline, the properties a linearizable MPMC FIFO queue must
// satisfy:
//   1. no value is dequeued that was never enqueued, and none twice;
//   2. every value enqueued before the drain completes is dequeued
//      (completeness, when the caller drained the queue);
//   3. per-producer order: values from one producer are consumed in
//      production order, as observed by EACH consumer (subsequences of a
//      FIFO are monotone);
//   4. cross-thread real-time order on the producer side: if producer A's
//      enqueue completed before producer B's enqueue began, and one
//      consumer dequeued both, it cannot see B's value before A's.
//
// Values must be unique across the run (use producer-tagged sequence
// numbers). Recording uses per-thread logs, so instrumentation adds no
// synchronization beyond a timestamp read.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/timing.hpp"

namespace pimds {

class FifoChecker {
 public:
  /// One participant's private event log (no sharing, no locks).
  class ThreadLog {
   public:
    void record_enqueue_begin(std::uint64_t value) {
      pending_value_ = value;
      pending_begin_ = now_ns();
    }
    void record_enqueue_end() {
      enqueues_.push_back({pending_value_, pending_begin_, now_ns()});
    }
    void record_dequeue(std::uint64_t value) {
      dequeues_.push_back({value, 0, now_ns()});
    }

   private:
    friend class FifoChecker;
    struct Event {
      std::uint64_t value;
      std::uint64_t begin_ns;
      std::uint64_t end_ns;
    };
    std::uint64_t pending_value_ = 0;
    std::uint64_t pending_begin_ = 0;
    std::vector<Event> enqueues_;
    std::vector<Event> dequeues_;
  };

  struct Result {
    bool ok = true;
    std::string error;  ///< first violation found, empty when ok
  };

  /// @param drained true if the caller emptied the queue after all
  ///        producers finished (enables the completeness check).
  static Result check(const std::vector<ThreadLog>& logs, bool drained) {
    Result result;
    // 1 + 2: multiset equality between enqueued and dequeued values.
    std::map<std::uint64_t, int> balance;  // +1 enqueued, -1 dequeued
    std::uint64_t enq_count = 0;
    std::uint64_t deq_count = 0;
    for (const ThreadLog& log : logs) {
      for (const auto& e : log.enqueues_) {
        ++balance[e.value];
        ++enq_count;
      }
      for (const auto& d : log.dequeues_) {
        --balance[d.value];
        ++deq_count;
      }
    }
    for (const auto& [value, count] : balance) {
      if (count < 0) {
        return fail("value " + std::to_string(value) +
                    " dequeued more times than enqueued");
      }
      if (drained && count > 0) {
        return fail("value " + std::to_string(value) +
                    " enqueued but never dequeued from a drained queue");
      }
    }
    if (drained && enq_count != deq_count) {
      return fail("drained queue consumed " + std::to_string(deq_count) +
                  " of " + std::to_string(enq_count) + " values");
    }

    // Map each value to its enqueue event for order checks.
    std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> origin;
    for (std::size_t t = 0; t < logs.size(); ++t) {
      for (std::size_t i = 0; i < logs[t].enqueues_.size(); ++i) {
        origin[logs[t].enqueues_[i].value] = {t, i};
      }
    }
    // 3: per-producer order at each consumer.
    for (const ThreadLog& log : logs) {
      std::map<std::size_t, std::size_t> last_index_seen;
      for (const auto& d : log.dequeues_) {
        const auto it = origin.find(d.value);
        if (it == origin.end()) continue;  // caught by check 1 already
        const auto [producer, index] = it->second;
        const auto seen = last_index_seen.find(producer);
        if (seen != last_index_seen.end() && index <= seen->second) {
          return fail("consumer saw producer " + std::to_string(producer) +
                      "'s value #" + std::to_string(index) + " after #" +
                      std::to_string(seen->second));
        }
        last_index_seen[producer] = index;
      }
    }
    // 4: real-time cross-producer order per consumer. For dequeues i < j,
    // a violation is enq(j).end < enq(i).begin; tracking the running max of
    // enqueue-begin over the dequeue prefix makes this O(d) per consumer.
    for (const ThreadLog& log : logs) {
      std::uint64_t max_begin_seen = 0;
      for (const auto& d : log.dequeues_) {
        const auto it = origin.find(d.value);
        if (it == origin.end()) continue;
        const auto& enq =
            logs[it->second.first].enqueues_[it->second.second];
        if (enq.end_ns < max_begin_seen) {
          return fail("real-time order violated: a later-dequeued value "
                      "was enqueued strictly before an earlier one");
        }
        max_begin_seen = std::max(max_begin_seen, enq.begin_ns);
      }
    }
    return result;
  }

 private:
  static Result fail(std::string why) { return {false, std::move(why)}; }
};

}  // namespace pimds
