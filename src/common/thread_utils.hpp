// Thread placement helpers for benchmarks.
#pragma once

#include <cstddef>

namespace pimds {

/// Number of hardware threads visible to the process (>= 1).
std::size_t hardware_threads() noexcept;

/// Pin the calling thread to `cpu % hardware_threads()`.
/// Returns false (and leaves affinity unchanged) if pinning is unsupported.
bool pin_to_cpu(std::size_t cpu) noexcept;

}  // namespace pimds
