#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pimds {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

namespace {

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  s.p999 = percentile(samples, 0.999);
  return s;
}

std::string Summary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3g sd=%.2g min=%.3g p50=%.3g p90=%.3g p99=%.3g "
                "p999=%.3g max=%.3g",
                count, mean, stddev, min, p50, p90, p99, p999, max);
  return buf;
}

std::string format_ops_per_sec(double ops_per_sec) {
  char buf[64];
  if (ops_per_sec >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gops/s", ops_per_sec * 1e-9);
  } else if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mops/s", ops_per_sec * 1e-6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kops/s", ops_per_sec * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ops/s", ops_per_sec);
  }
  return buf;
}

}  // namespace pimds
