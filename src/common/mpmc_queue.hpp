// Bounded lock-free MPMC ring buffer (Vyukov's algorithm).
//
// Used as the mailbox transport in the real-thread PIM emulation (many CPU
// senders, one PIM-core receiver) and as a building block in queue
// baselines. Each slot carries a sequence number; producers and consumers
// claim tickets with fetch_add and then synchronize on their slot only, so
// uncontended operations touch two cache lines.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/cacheline.hpp"
#include "common/timing.hpp"
#include "common/spinwait.hpp"

namespace pimds {

template <typename T>
class MpmcQueue {
 public:
  /// @param capacity ring size; rounded up to the next power of two.
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Non-blocking push; returns false when the ring is full.
  bool try_push(T value) {
    Slot* slot;
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
    slot->storage = std::move(value);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    Slot* slot;
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> result(std::move(slot->storage));
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return result;
  }

  /// Spinning push for callers that must not drop (mailboxes).
  void push(T value) {
    SpinWait spin;
    while (!try_push(std::move(value))) spin.wait();
  }

  /// Approximate emptiness (exact only when producers/consumers are quiesced).
  bool empty() const noexcept {
    return head_.value.load(std::memory_order_acquire) ==
           tail_.value.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T storage{};
    // Slots are adjacent; pad so two slots never share a line when T is small.
    char pad[kCacheLineSize - ((sizeof(std::atomic<std::size_t>) + sizeof(T)) %
                               kCacheLineSize)];
  };

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  CachePadded<std::atomic<std::size_t>> head_{0};
  CachePadded<std::atomic<std::size_t>> tail_{0};
};

}  // namespace pimds
