#include "common/reclaim.hpp"

#include "common/ebr.hpp"
#include "common/hazard.hpp"

namespace pimds {

std::optional<ReclaimPolicy> parse_reclaim_policy(
    std::string_view s) noexcept {
  if (s == "ebr") return ReclaimPolicy::kEbr;
  if (s == "hp" || s == "hazard") return ReclaimPolicy::kHp;
  return std::nullopt;
}

std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          std::string domain) {
  if (policy == ReclaimPolicy::kHp) {
    return std::make_unique<HpDomain>(std::move(domain));
  }
  return std::make_unique<EbrDomain>(std::move(domain));
}

}  // namespace pimds
