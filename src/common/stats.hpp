// Streaming and batch statistics used by benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pimds {

/// Welford's online mean/variance. Numerically stable, O(1) per sample.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Fold another accumulator in (Chan et al.'s parallel variance update),
  /// as if every sample of `other` had been add()ed here. Lets per-thread
  /// accumulators combine into one without keeping the samples.
  void merge(const RunningStats& other) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a sample vector (sorts a copy).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;

  static Summary of(std::vector<double> samples);
  std::string to_string() const;
};

/// Formats an operations-per-second figure like the paper's plots
/// ("12.3 Mops/s").
std::string format_ops_per_sec(double ops_per_sec);

}  // namespace pimds
