// Bounded exponential backoff for contended retry loops (CP.42-adjacent:
// spinning threads should get out of each other's way).
#pragma once

#include <cstdint>

#include "common/timing.hpp"

namespace pimds {

class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 4,
                   std::uint32_t max_spins = 1024) noexcept
      : limit_(min_spins), max_(max_spins) {}

  /// Spin for the current window, then double it (up to the cap).
  void pause() noexcept {
    for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
    if (limit_ < max_) limit_ *= 2;
  }

  void reset(std::uint32_t min_spins = 4) noexcept { limit_ = min_spins; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace pimds
