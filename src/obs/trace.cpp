#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/timing.hpp"
#include "obs/metrics.hpp"

namespace pimds::obs {

namespace {

struct Event {
  const char* name;
  const char* cat;
  std::uint64_t ts;   // ns (real for kNativePid, virtual for kSimPid)
  std::uint64_t dur;  // ns; meaningful for 'X' only
  std::uint32_t pid;
  std::uint32_t tid;
  char ph;  // 'X' or 'i'
  TraceArg a;
  TraceArg b;
};

/// Ring of the most recent `cap` events; written only by the owning OS
/// thread, read only during quiesced export.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t cap) : events(cap) {}

  std::vector<Event> events;
  std::size_t head = 0;   // next write slot
  std::size_t count = 0;  // min(total pushed, capacity)

  void push(const Event& e) noexcept {
    events[head] = e;
    head = (head + 1) % events.size();
    if (count < events.size()) ++count;
  }
};

struct TraceState {
  std::mutex mu;
  std::deque<std::unique_ptr<ThreadBuffer>> buffers;  // outlive their threads
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names;
  std::map<std::uint32_t, std::string> process_names;
  std::size_t capacity = 16384;
};

TraceState& state() {
  static TraceState s;
  return s;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(std::make_unique<ThreadBuffer>(
        s.capacity == 0 ? 1 : s.capacity));
    buf = s.buffers.back().get();
  }
  return *buf;
}

void append_arg(std::string& out, const TraceArg& arg, bool& first) {
  if (arg.key == nullptr) return;
  if (!first) out += ",";
  first = false;
  out += "\"";
  out += arg.key;
  out += "\":";
  out += std::to_string(arg.value);
}

}  // namespace

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t events) noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.capacity = events;
}

void trace_complete(std::uint32_t pid, std::uint32_t tid, const char* name,
                    const char* cat, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, TraceArg a, TraceArg b) {
  if (!trace_enabled()) return;
  local_buffer().push(Event{name, cat, ts_ns, dur_ns, pid, tid, 'X', a, b});
}

void trace_instant(std::uint32_t pid, std::uint32_t tid, const char* name,
                   const char* cat, std::uint64_t ts_ns, TraceArg a,
                   TraceArg b) {
  if (!trace_enabled()) return;
  local_buffer().push(Event{name, cat, ts_ns, 0, pid, tid, 'i', a, b});
}

void trace_complete_here(const char* name, const char* cat,
                         std::uint64_t start_ns, TraceArg a, TraceArg b) {
  if (!trace_enabled()) return;
  const std::uint64_t now = now_ns();
  const std::uint64_t dur = now > start_ns ? now - start_ns : 0;
  trace_complete(kNativePid, thread_index(), name, cat, start_ns, dur, a, b);
}

void trace_instant_here(const char* name, const char* cat, TraceArg a,
                        TraceArg b) {
  if (!trace_enabled()) return;
  trace_instant(kNativePid, thread_index(), name, cat, now_ns(), a, b);
}

void set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.track_names[{pid, tid}] = std::move(name);
}

void set_process_name(std::uint32_t pid, std::string name) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.process_names[pid] = std::move(name);
}

void name_this_thread(std::string name) {
  set_track_name(kNativePid, thread_index(), std::move(name));
}

bool write_chrome_trace(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);

  // Gather and sort (stable track order, then time) so the file is
  // deterministic for a deterministic run.
  std::vector<const Event*> events;
  for (const auto& buf : s.buffers) {
    const std::size_t start =
        buf->count < buf->events.size() ? 0 : buf->head;
    for (std::size_t i = 0; i < buf->count; ++i) {
      events.push_back(&buf->events[(start + i) % buf->events.size()]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event* x, const Event* y) {
              if (x->pid != y->pid) return x->pid < y->pid;
              if (x->tid != y->tid) return x->tid < y->tid;
              return x->ts < y->ts;
            });

  // Rebase per pid: real and virtual clocks have unrelated epochs, so each
  // pid's earliest event becomes its t=0.
  std::map<std::uint32_t, std::uint64_t> base;
  for (const Event* e : events) {
    auto [it, inserted] = base.emplace(e->pid, e->ts);
    if (!inserted && e->ts < it->second) it->second = e->ts;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::string out;
  out.reserve(events.size() * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;

  const auto emit = [&](const std::string& line) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += line;
  };

  for (const auto& [pid, name] : s.process_names) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" + name +
         "\"}}");
  }
  for (const auto& [key, name] : s.track_names) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
         ",\"tid\":" + std::to_string(key.second) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + name + "\"}}");
  }

  for (const Event* e : events) {
    const std::uint64_t rel = e->ts - base[e->pid];
    std::string line = "{\"ph\":\"";
    line += e->ph;
    line += "\",\"pid\":" + std::to_string(e->pid) +
            ",\"tid\":" + std::to_string(e->tid) + ",\"name\":\"" + e->name +
            "\",\"cat\":\"" + e->cat + "\"";
    // Chrome ts/dur are microseconds; emit fractional to keep ns precision.
    char ts_buf[48];
    std::snprintf(ts_buf, sizeof(ts_buf), ",\"ts\":%llu.%03u",
                  static_cast<unsigned long long>(rel / 1000),
                  static_cast<unsigned>(rel % 1000));
    line += ts_buf;
    if (e->ph == 'X') {
      std::snprintf(ts_buf, sizeof(ts_buf), ",\"dur\":%llu.%03u",
                    static_cast<unsigned long long>(e->dur / 1000),
                    static_cast<unsigned>(e->dur % 1000));
      line += ts_buf;
    } else {
      line += ",\"s\":\"t\"";
    }
    line += ",\"args\":{";
    bool first_arg = true;
    append_arg(line, e->a, first_arg);
    append_arg(line, e->b, first_arg);
    line += "}}";
    emit(line);
  }

  out += "\n]}\n";
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

void clear_trace() noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& buf : s.buffers) {
    buf->head = 0;
    buf->count = 0;
  }
}

std::size_t trace_event_count() noexcept {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) n += buf->count;
  return n;
}

}  // namespace pimds::obs
