#include "obs/telemetry.hpp"

#include <csignal>
#include <cstdio>
#include <utility>

#include "common/timing.hpp"
#include "obs/trace.hpp"

namespace pimds::obs {

namespace {

// SIGUSR1 sets a flag the sampler thread polls each tick; the handler body
// must stay async-signal-safe (one relaxed store).
std::atomic<int> g_flight_dump_pending{0};

void on_sigusr1(int) { g_flight_dump_pending.store(1, std::memory_order_relaxed); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::push(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(line));
  } else {
    ring_[next_] = std::move(line);
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t FlightRecorder::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::vector<std::string> lines;
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lines.reserve(ring_.size());
    // Oldest-first: when the ring has wrapped, next_ points at the oldest.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      lines.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    dropped = total_ - ring_.size();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[telemetry] cannot open flight dump %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"pimds.flight.v1\",\n");
  std::fprintf(f, "  \"dropped\": %zu,\n  \"samples\": [\n", dropped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::fprintf(f, "    %s%s\n", lines[i].c_str(),
                 i + 1 == lines.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

std::string telemetry_line(const MetricsSnapshot& delta, std::uint64_t seq,
                           std::uint64_t t_wall_ns,
                           std::uint64_t interval_ns) {
  std::string out;
  out.reserve(2048);
  out += "{\"schema\":\"pimds.telemetry.v1\",\"seq\":" + std::to_string(seq);
  out += ",\"t_wall_ns\":" + std::to_string(t_wall_ns);
  out += ",\"interval_ns\":" + std::to_string(interval_ns);
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < delta.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + json_escape(delta.counters[i].name) +
           "\":" + std::to_string(delta.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < delta.gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += '"' + json_escape(delta.gauges[i].name) +
           "\":" + std::to_string(delta.gauges[i].value);
  }
  out += "},\"histograms\":{";
  bool first = true;
  for (const auto& h : delta.histograms) {
    if (h.data.count == 0) continue;  // absence == empty window
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(h.name) + "\":{";
    out += "\"count\":" + std::to_string(h.data.count);
    out += ",\"mean\":" + fmt_double(h.data.mean());
    out += ",\"p50\":" + fmt_double(h.data.percentile(0.50));
    out += ",\"p90\":" + fmt_double(h.data.percentile(0.90));
    out += ",\"p99\":" + fmt_double(h.data.percentile(0.99));
    out += ",\"p999\":" + fmt_double(h.data.percentile(0.999));
    out += ",\"max\":" + std::to_string(h.data.max);
    out += '}';
  }
  // Tail time series: every `latency.*` histogram (LatencyRecorder families,
  // src/obs/latency.hpp) gets a second entry with INTERPOLATED percentiles —
  // the windowed p99 assertions (telemetry_report.py --assert-latency) need
  // the sharper 12.5% bound, while the plain histograms block keeps the
  // midpoint form every existing consumer was calibrated against.
  out += "},\"latency\":{";
  first = true;
  for (const auto& h : delta.histograms) {
    if (h.data.count == 0) continue;
    if (h.name.rfind("latency.", 0) != 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(h.name) + "\":{";
    out += "\"count\":" + std::to_string(h.data.count);
    out += ",\"mean\":" + fmt_double(h.data.mean());
    out += ",\"p50\":" + fmt_double(h.data.percentile_interpolated(0.50));
    out += ",\"p90\":" + fmt_double(h.data.percentile_interpolated(0.90));
    out += ",\"p99\":" + fmt_double(h.data.percentile_interpolated(0.99));
    out += ",\"p999\":" + fmt_double(h.data.percentile_interpolated(0.999));
    out += ",\"max\":" + std::to_string(h.data.max);
    out += '}';
  }
  out += "}}";
  return out;
}

Sampler::Sampler(TelemetryOptions opts)
    : opts_(std::move(opts)), flight_(opts_.flight_capacity) {
  if (opts_.interval_ms == 0) opts_.interval_ms = 1;
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  if (started_) return;
  if (!opts_.path.empty()) {
    out_ = std::fopen(opts_.path.c_str(), "w");
    if (out_ == nullptr) {
      std::fprintf(stderr, "[telemetry] cannot open %s\n", opts_.path.c_str());
      ok_ = false;
      return;
    }
  }
  if (!opts_.flight_dump_path.empty()) {
    std::signal(SIGUSR1, &on_sigusr1);
  }
  // Prime the baseline so the first emitted window is a true delta, not the
  // whole-process cumulative state.
  (void)Registry::instance().delta_snapshot(baseline_);
  last_sample_ns_ = now_ns();
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  if (!started_) {
    if (out_ != nullptr) {
      std::fclose(out_);
      out_ = nullptr;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final partial window so short runs (< one interval) still emit data.
  sample_once();
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  if (!opts_.flight_dump_path.empty()) {
    flight_.dump(opts_.flight_dump_path);
  }
  started_ = false;
}

void Sampler::run() {
  name_this_thread("telemetry-sampler");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool stopped = cv_.wait_for(
        lock, std::chrono::milliseconds(opts_.interval_ms),
        [this] { return stopping_; });
    if (stopped) return;
    lock.unlock();
    sample_once();
    if (g_flight_dump_pending.exchange(0, std::memory_order_relaxed) != 0 &&
        !opts_.flight_dump_path.empty()) {
      flight_.dump(opts_.flight_dump_path);
    }
    lock.lock();
  }
}

void Sampler::sample_once() {
  static Counter* samples_counter = nullptr;
  static Histogram* sample_hist = nullptr;
  // Self-metering metrics are owned by the registry (process lifetime);
  // resolve once, the pointers stay valid.
  if (samples_counter == nullptr) {
    Registry& r = Registry::instance();
    samples_counter = &r.counter("telemetry.samples");
    sample_hist = &r.histogram("telemetry.sample_ns");
  }
  const std::uint64_t t0 = now_ns();
  const MetricsSnapshot delta = Registry::instance().delta_snapshot(baseline_);
  const std::uint64_t interval_ns =
      t0 >= last_sample_ns_ ? t0 - last_sample_ns_ : 0;
  last_sample_ns_ = t0;
  const std::string line = telemetry_line(delta, seq_++, t0, interval_ns);
  if (out_ != nullptr) {
    std::fputs(line.c_str(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
  }
  flight_.push(line);
  samples_.fetch_add(1, std::memory_order_relaxed);
  // Recorded after the write, so each tick's cost shows in the next window.
  sample_hist->record(now_ns() - t0);
  samples_counter->add(1);
}

}  // namespace pimds::obs
