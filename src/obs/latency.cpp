#include "obs/latency.hpp"

#include <cstdio>

namespace pimds::obs {

LatencyRecorder::LatencyRecorder(const std::string& name,
                                 std::uint64_t late_threshold_ns)
    : name_(name),
      late_threshold_ns_(late_threshold_ns),
      total_(Registry::instance().histogram("latency." + name + ".total_ns")),
      service_(
          Registry::instance().histogram("latency." + name + ".service_ns")),
      sched_lag_(
          Registry::instance().histogram("latency." + name + ".sched_lag_ns")),
      ops_(Registry::instance().counter("latency." + name + ".ops")),
      late_(Registry::instance().counter("latency." + name + ".late")) {}

LatencyRecorder::Summary LatencyRecorder::summary() const {
  Summary s;
  const HistogramData total = total_.data();
  const HistogramData service = service_.data();
  const HistogramData lag = sched_lag_.data();
  s.ops = ops_.value();
  s.late = late_.value();
  s.mean_ns = total.mean();
  s.p50_ns = total.percentile_interpolated(0.50);
  s.p90_ns = total.percentile_interpolated(0.90);
  s.p99_ns = total.percentile_interpolated(0.99);
  s.p999_ns = total.percentile_interpolated(0.999);
  s.max_ns = total.max;
  s.service_mean_ns = service.mean();
  s.service_p99_ns = service.percentile_interpolated(0.99);
  s.sched_lag_p99_ns = lag.percentile_interpolated(0.99);
  s.sched_lag_max_ns = lag.max;
  return s;
}

PhaseTail phase_tail(PhaseDomain d, double q) {
  PhaseTail t;
  t.q = q;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const HistogramData data =
        phase_histogram(d, static_cast<Phase>(i)).data();
    t.phase_count[i] = data.count;
    t.phase_q_ns[i] = data.percentile_interpolated(q);
  }
  return t;
}

std::string phase_tail_json(const PhaseTail& t) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (t.phase_count[i] == 0) continue;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g", first ? "" : ", ",
                  phase_name(static_cast<Phase>(i)), t.phase_q_ns[i]);
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace pimds::obs
