#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace pimds::obs {

unsigned thread_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

double HistogramData::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 0-based rank of the requested quantile (nearest-rank on the merged
  // bucket counts).
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum > target) {
      const std::uint64_t lo = Histogram::bucket_lower(b);
      const std::uint64_t up = Histogram::bucket_upper(b);
      return static_cast<double>(lo) +
             static_cast<double>(up - lo - 1) / 2.0;
    }
  }
  return static_cast<double>(max);
}

namespace {

const MetricsSnapshot::Scalar* find_scalar(
    const std::vector<MetricsSnapshot::Scalar>& v, const std::string& name) {
  for (const auto& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const MetricsSnapshot::Scalar* MetricsSnapshot::find_counter(
    const std::string& name) const noexcept {
  return find_scalar(counters, name);
}

const MetricsSnapshot::Scalar* MetricsSnapshot::find_gauge(
    const std::string& name) const noexcept {
  return find_scalar(gauges, name);
}

const MetricsSnapshot::Hist* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n";

  const auto scalar_section = [&](const char* key,
                                  const std::vector<Scalar>& v, bool last) {
    out += in1 + "\"" + key + "\": {";
    for (std::size_t i = 0; i < v.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += in2 + "\"" + json_escape(v[i].name) +
             "\": " + std::to_string(v[i].value);
    }
    out += v.empty() ? "}" : "\n" + in1 + "}";
    out += last ? "\n" : ",\n";
  };

  scalar_section("counters", counters, false);
  scalar_section("gauges", gauges, false);

  out += in1 + "\"derived\": {";
  for (std::size_t i = 0; i < derived.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += in2 + "\"" + json_escape(derived[i].name) +
           "\": " + fmt_double(derived[i].value);
  }
  out += derived.empty() ? "}" : "\n" + in1 + "}";
  out += ",\n";

  out += in1 + "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& d = histograms[i].data;
    out += (i == 0 ? "\n" : ",\n");
    out += in2 + "\"" + json_escape(histograms[i].name) + "\": {" +
           "\"count\": " + std::to_string(d.count) +
           ", \"mean\": " + fmt_double(d.mean()) +
           ", \"p50\": " + fmt_double(d.percentile(0.50)) +
           ", \"p90\": " + fmt_double(d.percentile(0.90)) +
           ", \"p99\": " + fmt_double(d.percentile(0.99)) +
           ", \"p999\": " + fmt_double(d.percentile(0.999)) +
           ", \"max\": " + std::to_string(d.max) + "}";
  }
  out += histograms.empty() ? "}" : "\n" + in1 + "}";
  out += "\n" + pad + "}";
  return out;
}

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::set_derived(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  derived_[name] = value;
}

void Registry::Handle::release() noexcept {
  if (id_ != 0) {
    Registry::instance().unregister(id_);
    id_ = 0;
  }
}

Registry::Handle Registry::register_counter(std::string name,
                                            const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kCounter, c});
  return Handle(id);
}

Registry::Handle Registry::register_gauge(std::string name, const Gauge* g) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kGauge, g});
  return Handle(id);
}

Registry::Handle Registry::register_histogram(std::string name,
                                              const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kHistogram, h});
  return Handle(id);
}

void Registry::unregister(std::uint64_t id) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  external_.erase(
      std::remove_if(external_.begin(), external_.end(),
                     [id](const External& e) { return e.id == id; }),
      external_.end());
}

MetricsSnapshot Registry::snapshot() const {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, HistogramData> hists;
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters[name] += c->value();
    for (const auto& [name, g] : gauges_) {
      gauges[name] = std::max(gauges[name], g->value());
    }
    for (const auto& [name, h] : histograms_) h->collect(hists[name]);
    for (const External& e : external_) {
      switch (e.kind) {
        case Kind::kCounter:
          counters[e.name] += static_cast<const Counter*>(e.ptr)->value();
          break;
        case Kind::kGauge:
          gauges[e.name] = std::max(
              gauges[e.name], static_cast<const Gauge*>(e.ptr)->value());
          break;
        case Kind::kHistogram:
          static_cast<const Histogram*>(e.ptr)->collect(hists[e.name]);
          break;
      }
    }
    for (const auto& [name, v] : derived_) snap.derived.push_back({name, v});
  }
  for (const auto& [name, v] : counters) snap.counters.push_back({name, v});
  for (const auto& [name, v] : gauges) snap.gauges.push_back({name, v});
  for (auto& [name, d] : hists) snap.histograms.push_back({name, d});
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  derived_.clear();
}

}  // namespace pimds::obs
