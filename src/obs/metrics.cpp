#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace pimds::obs {

unsigned thread_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

const char* gauge_merge_name(GaugeMerge m) noexcept {
  switch (m) {
    case GaugeMerge::kMax:
      return "max";
    case GaugeMerge::kSum:
      return "sum";
    case GaugeMerge::kLast:
      return "last";
  }
  return "?";
}

double HistogramData::percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 0-based rank of the requested quantile (nearest-rank on the merged
  // bucket counts).
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum > target) {
      const std::uint64_t lo = Histogram::bucket_lower(b);
      const std::uint64_t up = Histogram::bucket_upper(b);
      return static_cast<double>(lo) +
             static_cast<double>(up - lo - 1) / 2.0;
    }
  }
  return static_cast<double>(max);
}

double HistogramData::percentile_interpolated(double q) const noexcept {
  if (count == 0) return 0.0;
  if (count == 1) return static_cast<double>(sum);  // exact: the one sample
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Fractional 0-based rank on the merged bucket counts.
  const double target = q * static_cast<double>(count - 1);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets[b];
    if (n == 0) continue;
    // Bucket b holds ranks [cum, cum + n).
    if (static_cast<double>(cum + n) > target) {
      const std::uint64_t lo = Histogram::bucket_lower(b);
      const std::uint64_t up = Histogram::bucket_upper(b);
      // Place the rank at the center of its sample's sub-slot, assuming
      // the n samples are spread uniformly across [lo, up).
      const double frac =
          (target - static_cast<double>(cum) + 0.5) / static_cast<double>(n);
      double v = static_cast<double>(lo) +
                 frac * static_cast<double>(up - lo);
      // The recorded max is exact; no quantile can exceed it. (This also
      // tames the huge saturated overflow bucket.)
      if (max > 0 && v > static_cast<double>(max)) {
        v = static_cast<double>(max);
      }
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max);
}

namespace {

const MetricsSnapshot::Scalar* find_scalar(
    const std::vector<MetricsSnapshot::Scalar>& v, const std::string& name) {
  for (const auto& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const MetricsSnapshot::Scalar* MetricsSnapshot::find_counter(
    const std::string& name) const noexcept {
  return find_scalar(counters, name);
}

const MetricsSnapshot::Scalar* MetricsSnapshot::find_gauge(
    const std::string& name) const noexcept {
  return find_scalar(gauges, name);
}

const MetricsSnapshot::Hist* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n";

  const auto scalar_section = [&](const char* key,
                                  const std::vector<Scalar>& v, bool last) {
    out += in1 + "\"" + key + "\": {";
    for (std::size_t i = 0; i < v.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += in2 + "\"" + json_escape(v[i].name) +
             "\": " + std::to_string(v[i].value);
    }
    out += v.empty() ? "}" : "\n" + in1 + "}";
    out += last ? "\n" : ",\n";
  };

  scalar_section("counters", counters, false);
  scalar_section("gauges", gauges, false);

  out += in1 + "\"derived\": {";
  for (std::size_t i = 0; i < derived.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += in2 + "\"" + json_escape(derived[i].name) +
           "\": " + fmt_double(derived[i].value);
  }
  out += derived.empty() ? "}" : "\n" + in1 + "}";
  out += ",\n";

  out += in1 + "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& d = histograms[i].data;
    out += (i == 0 ? "\n" : ",\n");
    out += in2 + "\"" + json_escape(histograms[i].name) + "\": {" +
           "\"count\": " + std::to_string(d.count) +
           ", \"mean\": " + fmt_double(d.mean()) +
           ", \"p50\": " + fmt_double(d.percentile(0.50)) +
           ", \"p90\": " + fmt_double(d.percentile(0.90)) +
           ", \"p99\": " + fmt_double(d.percentile(0.99)) +
           ", \"p999\": " + fmt_double(d.percentile(0.999)) +
           ", \"max\": " + std::to_string(d.max) + "}";
  }
  out += histograms.empty() ? "}" : "\n" + in1 + "}";
  out += "\n" + pad + "}";
  return out;
}

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, GaugeMerge merge) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot.gauge) {
    slot.gauge = std::make_unique<Gauge>();
    slot.merge = merge;
  }
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::set_derived(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  derived_[name] = value;
}

void Registry::Handle::release() noexcept {
  if (id_ != 0) {
    Registry::instance().unregister(id_);
    id_ = 0;
  }
}

Registry::Handle Registry::register_counter(std::string name,
                                            const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kCounter, c});
  return Handle(id);
}

Registry::Handle Registry::register_gauge(std::string name, const Gauge* g,
                                          GaugeMerge merge) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kGauge, g, merge});
  return Handle(id);
}

Registry::Handle Registry::register_histogram(std::string name,
                                              const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_external_id_++;
  external_.push_back(External{id, std::move(name), Kind::kHistogram, h});
  return Handle(id);
}

void Registry::unregister(std::uint64_t id) noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    external_.erase(
        std::remove_if(external_.begin(), external_.end(),
                       [id](const External& e) { return e.id == id; }),
        external_.end());
  }
  // A snapshot that copied the external index before the erase above may
  // still be merging this metric. Such a merge holds merge_gate_ for its
  // whole duration (and took it before copying the index), so acquiring it
  // here waits that merge out; once we return, the owner may destroy the
  // metric. Merges that take the gate after us see the erased index.
  std::lock_guard<std::mutex> gate(merge_gate_);
}

MetricsSnapshot Registry::snapshot() const {
  // Phase 0: the merge gate. Taken before the index copy so unregister()
  // (which erases under mu_, then waits on this gate) can never let an
  // external metric die while we still hold a pointer to it.
  std::lock_guard<std::mutex> gate(merge_gate_);

  // Phase 1 (under the name-lookup mutex): copy the index only — metric
  // pointers, names, gauge merge modes, derived values. Owned metrics have
  // process lifetime, externals are pinned by the gate above, so the
  // pointers stay valid for phase 2.
  struct CounterRef {
    const std::string* name;
    const Counter* c;
  };
  struct GaugeRef {
    const std::string* name;
    const Gauge* g;
    GaugeMerge merge;
  };
  struct HistRef {
    const std::string* name;
    const Histogram* h;
  };
  std::vector<CounterRef> counter_refs;
  std::vector<GaugeRef> gauge_refs;
  std::vector<HistRef> hist_refs;
  std::vector<External> externals;
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counter_refs.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      counter_refs.push_back({&name, c.get()});
    }
    gauge_refs.reserve(gauges_.size());
    for (const auto& [name, slot] : gauges_) {
      gauge_refs.push_back({&name, slot.gauge.get(), slot.merge});
    }
    hist_refs.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      hist_refs.push_back({&name, h.get()});
    }
    externals = external_;
    for (const auto& [name, v] : derived_) snap.derived.push_back({name, v});
  }
  // Name pointers into the maps stay valid outside mu_: map nodes are never
  // erased (owned metrics live forever), and rebalancing does not move
  // node storage.

  // Phase 2 (no name-lookup lock): the expensive merge — histogram shard
  // sweeps in particular — runs without stalling hot-path registration.
  std::map<std::string, std::uint64_t> counters;
  struct GaugeAcc {
    std::uint64_t value = 0;
    GaugeMerge merge = GaugeMerge::kMax;
    bool seen = false;
  };
  std::map<std::string, GaugeAcc> gauges;
  std::map<std::string, HistogramData> hists;
  const auto merge_gauge = [&gauges](const std::string& name,
                                     std::uint64_t v, GaugeMerge mode) {
    GaugeAcc& acc = gauges[name];
    if (!acc.seen) {
      // First registration of a name fixes the combine mode.
      acc.merge = mode;
      acc.value = v;
      acc.seen = true;
      return;
    }
    switch (acc.merge) {
      case GaugeMerge::kMax:
        acc.value = std::max(acc.value, v);
        break;
      case GaugeMerge::kSum:
        acc.value += v;
        break;
      case GaugeMerge::kLast:
        acc.value = v;
        break;
    }
  };
  for (const CounterRef& r : counter_refs) counters[*r.name] += r.c->value();
  for (const GaugeRef& r : gauge_refs) {
    merge_gauge(*r.name, r.g->value(), r.merge);
  }
  for (const HistRef& r : hist_refs) r.h->collect(hists[*r.name]);
  for (const External& e : externals) {
    switch (e.kind) {
      case Kind::kCounter:
        counters[e.name] += static_cast<const Counter*>(e.ptr)->value();
        break;
      case Kind::kGauge:
        merge_gauge(e.name, static_cast<const Gauge*>(e.ptr)->value(),
                    e.gmerge);
        break;
      case Kind::kHistogram:
        static_cast<const Histogram*>(e.ptr)->collect(hists[e.name]);
        break;
    }
  }
  for (const auto& [name, v] : counters) snap.counters.push_back({name, v});
  for (const auto& [name, a] : gauges) snap.gauges.push_back({name, a.value});
  for (auto& [name, d] : hists) snap.histograms.push_back({name, d});
  return snap;
}

MetricsSnapshot diff_snapshots(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur) {
  MetricsSnapshot out;
  // Both sides are sorted by name (snapshots are built from std::map
  // iteration), so a two-pointer walk suffices.
  const auto clamped_delta = [](std::uint64_t was, std::uint64_t now) {
    // A Registry::reset() inside the window makes `now < was`; report the
    // post-reset value rather than a wrapped delta.
    return now >= was ? now - was : now;
  };
  {
    std::size_t j = 0;
    for (const auto& c : cur.counters) {
      while (j < prev.counters.size() && prev.counters[j].name < c.name) ++j;
      const std::uint64_t was =
          (j < prev.counters.size() && prev.counters[j].name == c.name)
              ? prev.counters[j].value
              : 0;
      out.counters.push_back({c.name, clamped_delta(was, c.value)});
    }
  }
  // Gauges and derived values are point-in-time facts, not accumulations:
  // the window view is just the current value.
  out.gauges = cur.gauges;
  out.derived = cur.derived;
  {
    std::size_t j = 0;
    for (const auto& h : cur.histograms) {
      while (j < prev.histograms.size() && prev.histograms[j].name < h.name) {
        ++j;
      }
      const HistogramData* was =
          (j < prev.histograms.size() && prev.histograms[j].name == h.name)
              ? &prev.histograms[j].data
              : nullptr;
      MetricsSnapshot::Hist d;
      d.name = h.name;
      unsigned top = 0;
      for (unsigned b = 0; b < HistogramData::kBuckets; ++b) {
        const std::uint64_t wasn = was ? was->buckets[b] : 0;
        const std::uint64_t n = clamped_delta(wasn, h.data.buckets[b]);
        d.data.buckets[b] = n;
        d.data.count += n;
        if (n > 0) top = b;
      }
      d.data.sum = clamped_delta(was ? was->sum : 0, h.data.sum);
      // The true window max is unrecoverable from cumulative shard maxes;
      // estimate it as the midpoint of the highest non-empty diff bucket,
      // clamped to the cumulative max (which bounds it from above). The
      // true window max lies in [lo, up) of that bucket, so the midpoint
      // is off by at most half a bucket width (<= 12.5%); exact for unit
      // buckets.
      if (d.data.count == 0) {
        d.data.max = 0;
      } else {
        const std::uint64_t lo = Histogram::bucket_lower(top);
        const std::uint64_t up = Histogram::bucket_upper(top);
        d.data.max = std::min(h.data.max, lo + (up - lo) / 2);
      }
      out.histograms.push_back(std::move(d));
    }
  }
  return out;
}

MetricsSnapshot Registry::delta_snapshot(DeltaBaseline& baseline) const {
  MetricsSnapshot cur = snapshot();
  MetricsSnapshot delta = diff_snapshots(baseline.last, cur);
  baseline.last = std::move(cur);
  baseline.windows += 1;
  return delta;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, slot] : gauges_) slot.gauge->reset();
  for (auto& [name, h] : histograms_) h->reset();
  derived_.clear();
}

}  // namespace pimds::obs
