#include "obs/phase.hpp"

#include <atomic>
#include <cstdio>

namespace pimds::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "issue",           "combiner_wait", "request_flight", "mailbox_queue",
    "vault_service",   "response_flight", "cpu_receive",  "total",
};
constexpr const char* kDomainNames[kPhaseDomainCount] = {"runtime", "sim"};

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// All 14 phase histograms, resolved once (registry references are stable
/// for the life of the process).
struct PhaseHistograms {
  Histogram* h[kPhaseDomainCount][kPhaseCount];
  PhaseHistograms() {
    auto& reg = Registry::instance();
    for (std::size_t d = 0; d < kPhaseDomainCount; ++d) {
      for (std::size_t p = 0; p < kPhaseCount; ++p) {
        h[d][p] = &reg.histogram(std::string(kDomainNames[d]) + ".phase." +
                                 kPhaseNames[p]);
      }
    }
  }
};

PhaseHistograms& phase_histograms() {
  static PhaseHistograms tables;
  return tables;
}

}  // namespace

const char* phase_name(Phase p) noexcept {
  return kPhaseNames[static_cast<std::size_t>(p)];
}

const char* phase_domain_name(PhaseDomain d) noexcept {
  return kDomainNames[static_cast<std::size_t>(d)];
}

Histogram& phase_histogram(PhaseDomain d, Phase p) {
  return *phase_histograms().h[static_cast<std::size_t>(d)]
                             [static_cast<std::size_t>(p)];
}

void record_phase(PhaseDomain d, Phase p, std::uint64_t ns) {
  if (!metrics_enabled()) return;
  phase_histogram(d, p).record(ns);
}

std::uint64_t next_request_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

PhaseAttribution domain_attribution(const MetricsSnapshot& snap,
                                    PhaseDomain d) {
  PhaseAttribution out;
  const std::string prefix = std::string(phase_domain_name(d)) + ".phase.";
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto* h = snap.find_histogram(prefix + kPhaseNames[p]);
    if (h == nullptr) continue;
    out.phase_ns[p] = static_cast<double>(h->data.sum);
    out.phase_count[p] = h->data.count;
    if (static_cast<Phase>(p) == Phase::kTotal) {
      out.ops = h->data.count;
      out.total_ns = static_cast<double>(h->data.sum);
    } else {
      out.phase_sum_ns += static_cast<double>(h->data.sum);
    }
  }
  out.present = out.ops > 0;
  if (out.total_ns > 0.0) {
    out.coverage_pct = 100.0 * out.phase_sum_ns / out.total_ns;
  }
  return out;
}

}  // namespace

AttributionReport attribution_report(const MetricsSnapshot& snap) {
  AttributionReport r;
  r.runtime = domain_attribution(snap, PhaseDomain::kRuntime);
  r.sim = domain_attribution(snap, PhaseDomain::kSim);
  return r;
}

AttributionReport attribution_report() {
  return attribution_report(Registry::instance().snapshot());
}

std::string attribution_json(const AttributionReport& report, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  const std::string in3 = pad + "      ";
  std::string out = "{";
  bool first_domain = true;
  const PhaseAttribution* domains[] = {&report.runtime, &report.sim};
  for (std::size_t d = 0; d < kPhaseDomainCount; ++d) {
    const PhaseAttribution& a = *domains[d];
    if (!a.present) continue;
    const double ops = static_cast<double>(a.ops);
    out += first_domain ? "\n" : ",\n";
    first_domain = false;
    out += in1 + "\"" + kDomainNames[d] + "\": {\n";
    out += in2 + "\"ops\": " + std::to_string(a.ops) + ",\n";
    out += in2 + "\"total_ns_per_op\": " + fmt_double(a.total_ns / ops) + ",\n";
    out +=
        in2 + "\"phase_sum_ns_per_op\": " + fmt_double(a.phase_sum_ns / ops) +
        ",\n";
    out += in2 + "\"coverage_pct\": " + fmt_double(a.coverage_pct) + ",\n";
    out += in2 + "\"phases\": {";
    bool first_phase = true;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (static_cast<Phase>(p) == Phase::kTotal) continue;
      if (a.phase_count[p] == 0) continue;
      const double share =
          a.total_ns > 0.0 ? 100.0 * a.phase_ns[p] / a.total_ns : 0.0;
      out += first_phase ? "\n" : ",\n";
      first_phase = false;
      out += in3 + "\"" + kPhaseNames[p] + "\": {" +
             "\"count\": " + std::to_string(a.phase_count[p]) +
             ", \"ns_per_op\": " + fmt_double(a.phase_ns[p] / ops) +
             ", \"share_pct\": " + fmt_double(share) + "}";
    }
    out += first_phase ? "}" : "\n" + in2 + "}";
    out += "\n" + in1 + "}";
  }
  out += first_domain ? "}" : "\n" + pad + "}";
  return out;
}

}  // namespace pimds::obs
