// Structured event tracing (observability layer, part 2 of 2).
//
// Typed events are recorded into per-OS-thread ring buffers (bounded: when
// a buffer fills, the oldest events are overwritten — a trace always holds
// the most recent window) and exported as Chrome trace_event JSON, loadable
// in ui.perfetto.dev or chrome://tracing.
//
// Events live on (pid, tid) *tracks*. Two processes are modeled:
//  - kNativePid: real threads, timestamps from the monotonic clock
//    (common/timing.hpp now_ns);
//  - kSimPid: simulator actors, timestamps in virtual nanoseconds — each
//    actor is a track even though the whole simulation runs on one OS
//    thread.
//
// Recording is owner-thread-only per buffer and entirely lock-free; the
// global buffer list is touched (under a mutex) only on a thread's FIRST
// event. Export (write_chrome_trace) must run with emitters quiesced —
// benches call it after joining their workers.
//
// When tracing is disabled (the default) an emit call is one relaxed load
// and a branch, and allocates nothing — buffers are created lazily on a
// thread's first *enabled* emit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pimds::obs {

namespace detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool trace_enabled() noexcept {
#ifdef PIMDS_OBS_DISABLED
  return false;
#else
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

void set_trace_enabled(bool on) noexcept;

/// Events retained per OS-thread buffer (ring). Applies to buffers created
/// after the call; default 16384.
void set_trace_buffer_capacity(std::size_t events) noexcept;

/// Track namespaces (Chrome trace "pid").
inline constexpr std::uint32_t kNativePid = 0;  ///< real threads, real time
inline constexpr std::uint32_t kSimPid = 1;     ///< sim actors, virtual time

/// Optional key/value payload on an event; keys must be string literals
/// (the recorder stores the pointer, not a copy).
struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

/// A span with explicit start and duration (Chrome phase "X"). `name` and
/// `cat` must be string literals.
void trace_complete(std::uint32_t pid, std::uint32_t tid, const char* name,
                    const char* cat, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, TraceArg a = {}, TraceArg b = {});

/// A point event (Chrome phase "i", thread scope).
void trace_instant(std::uint32_t pid, std::uint32_t tid, const char* name,
                   const char* cat, std::uint64_t ts_ns, TraceArg a = {},
                   TraceArg b = {});

/// Current-OS-thread helpers: native pid, tid = thread_index(), timestamps
/// from the monotonic clock. trace_complete_here computes the duration as
/// now - start_ns.
void trace_complete_here(const char* name, const char* cat,
                         std::uint64_t start_ns, TraceArg a = {},
                         TraceArg b = {});
void trace_instant_here(const char* name, const char* cat, TraceArg a = {},
                        TraceArg b = {});

/// Human names for tracks/processes (exported as Chrome "M" metadata).
void set_track_name(std::uint32_t pid, std::uint32_t tid, std::string name);
void set_process_name(std::uint32_t pid, std::string name);

/// Name the calling OS thread's native track.
void name_this_thread(std::string name);

/// Merge every buffer into a Chrome trace_event JSON file. Timestamps are
/// rebased so the earliest event is t=0. Returns false if the file cannot
/// be written. Call with emitters quiesced.
bool write_chrome_trace(const std::string& path);

/// Drop all recorded events (buffers stay allocated for their threads).
void clear_trace() noexcept;

/// Total events currently held across all buffers.
std::size_t trace_event_count() noexcept;

}  // namespace pimds::obs
