// Umbrella header for the observability layer: metrics (counters, gauges,
// HDR-style histograms, registry + JSON snapshot) and structured event
// tracing (Chrome/Perfetto trace_event export). See docs/OBSERVABILITY.md
// for the metric catalogue and event schema.
#pragma once

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/phase.hpp"    // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
