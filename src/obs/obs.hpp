// Umbrella header for the observability layer: metrics (counters, gauges,
// HDR-style histograms, registry + JSON snapshot), structured event
// tracing (Chrome/Perfetto trace_event export), the live telemetry plane
// (windowed JSONL sampler + flight recorder) and per-vault load
// accounting. See docs/OBSERVABILITY.md for the metric catalogue, event
// schema and telemetry JSONL schema.
#pragma once

#include "obs/latency.hpp"    // IWYU pragma: export
#include "obs/loadmap.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"    // IWYU pragma: export
#include "obs/phase.hpp"      // IWYU pragma: export
#include "obs/telemetry.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"      // IWYU pragma: export
