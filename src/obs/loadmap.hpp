// Per-vault / per-key-range load accounting + heavy-hitter sketch
// (observability layer; consumed by core/auto_rebalancer's observe-only
// mode and exported through the metrics registry / telemetry JSONL).
//
// Hot path (`record(vault, key)`, called on the vault service path):
//  - one relaxed fetch_add on the vault's op Counter (registered with the
//    Registry as "<prefix>.vault<k>.ops", so the telemetry sampler exports
//    per-vault load without extra plumbing),
//  - one relaxed fetch_add on the key-range bucket covering `key`
//    (fixed equal-width grid over [key_min, key_max]),
//  - a SpaceSaving-style top-k sketch update for the owning vault.
// Everything is gated on metrics_enabled() and allocation-free.
//
// Concurrency contract: each vault's slots are written by that vault's
// single service thread (the runtime gives every vault one core thread),
// so the sketch needs no CAS loops; all cells are relaxed atomics so
// concurrent readers (the report path, the telemetry sampler via the
// registry) are TSan-clean. Racy reads may see a sketch entry mid-replace;
// heavy-hitter counts are approximate by construction, so that is fine.
//
// report() answers windowed questions — it diffs against the counts at the
// previous report() call (cold-path mutex) and returns a HotVaultReport:
// hottest/coldest vault, imbalance ratio (hottest / mean), top-k hottest
// key ranges and hot keys.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "obs/metrics.hpp"

namespace pimds::obs {

class LoadMap {
 public:
  struct Options {
    std::size_t num_vaults = 1;
    std::uint64_t key_min = 0;
    std::uint64_t key_max = ~std::uint64_t{0};
    /// Fixed key-range buckets across [key_min, key_max].
    std::size_t num_ranges = 64;
    /// SpaceSaving slots per vault (top hot keys tracked).
    std::size_t sketch_entries = 8;
    /// How many hot ranges / hot keys a report returns.
    std::size_t top_k = 4;
    /// Registry prefix for the per-vault op counters ("<prefix>.vault<k>.ops");
    /// empty disables registration (pure in-memory use, e.g. unit tests).
    std::string registry_prefix = "loadmap";
  };

  struct RangeLoad {
    std::uint64_t lo = 0;  // inclusive
    std::uint64_t hi = 0;  // inclusive
    std::uint64_t ops = 0;
  };

  struct KeyLoad {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  // approximate (SpaceSaving over-estimate)
  };

  struct HotVaultReport {
    std::uint64_t window_ops = 0;
    std::size_t hottest = 0;
    std::size_t coldest = 0;
    std::uint64_t hottest_ops = 0;
    std::uint64_t coldest_ops = 0;
    double mean_ops = 0.0;
    /// hottest / mean; 0 when the window saw no traffic.
    double imbalance_ratio = 0.0;
    std::vector<std::uint64_t> per_vault_ops;
    std::vector<RangeLoad> hot_ranges;  // window, hottest first
    std::vector<KeyLoad> hot_keys;      // cumulative sketch, hottest first
    std::string summary() const;        // one human-readable line
  };

  explicit LoadMap(Options opts);

  LoadMap(const LoadMap&) = delete;
  LoadMap& operator=(const LoadMap&) = delete;

  /// Hot path; `vault` out of range is clamped, any key accepted.
  void record(std::size_t vault, std::uint64_t key) noexcept {
    if (!metrics_enabled()) return;
    if (vault >= opts_.num_vaults) vault = opts_.num_vaults - 1;
    Shard& s = *shards_[vault];
    s.ops.add(1);
    ranges_[vault * opts_.num_ranges + range_of(key)].value.fetch_add(
        1, std::memory_order_relaxed);
    sketch_update(s, key);
  }

  /// Windowed report relative to the previous report() call (cold path).
  HotVaultReport report();

  /// Cumulative ops for one vault (the same counter telemetry exports).
  std::uint64_t vault_ops(std::size_t vault) const noexcept {
    return vault < opts_.num_vaults ? shards_[vault]->ops.value() : 0;
  }

  const Options& options() const noexcept { return opts_; }

  /// Bucket of `key` on the fixed range grid (public for tests). Exact
  /// 128-bit arithmetic so range_lo/range_hi tile the key space with no
  /// boundary drift: range_of(k) == b  iff  range_lo(b) <= k <= range_hi(b).
  std::size_t range_of(std::uint64_t key) const noexcept {
    if (key <= opts_.key_min) return 0;
    if (key >= opts_.key_max) return opts_.num_ranges - 1;
    const unsigned __int128 off = key - opts_.key_min;
    const unsigned __int128 slots =
        static_cast<unsigned __int128>(opts_.key_max - opts_.key_min) + 1;
    return static_cast<std::size_t>(off * opts_.num_ranges / slots);
  }

  /// Inclusive bounds of range bucket `idx`.
  std::uint64_t range_lo(std::size_t idx) const noexcept;
  std::uint64_t range_hi(std::size_t idx) const noexcept;

 private:
  struct SketchEntry {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> count{0};
  };

  /// Per-vault state: op counter + single-writer SpaceSaving slots.
  /// Heap-allocated (unique_ptr) so vector storage never moves shards.
  struct Shard {
    Counter ops;
    std::unique_ptr<SketchEntry[]> sketch;
  };

  void sketch_update(Shard& s, std::uint64_t key) noexcept;

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<CachePadded<std::atomic<std::uint64_t>>[]> ranges_;
  std::vector<Registry::Handle> reg_handles_;

  std::mutex report_mu_;
  std::vector<std::uint64_t> last_vault_ops_;
  std::vector<std::uint64_t> last_range_ops_;
};

}  // namespace pimds::obs
