// Lock-free metrics registry (observability layer, part 1 of 2 — tracing is
// src/obs/trace.hpp).
//
// Three metric types, all safe to update from any thread with relaxed
// atomics only (TSan-clean, no locks on the hot path):
//  - Counter: per-thread sharded monotonic count, merged on read;
//  - Gauge: a single value supporting set() and record_max() (high-water
//    marks);
//  - Histogram: HDR-style log-bucketed latency bins (2 mantissa bits per
//    power of two => <= 25% relative bucket width), per-thread sharded and
//    merged on snapshot; percentiles are answered from the merged buckets.
//
// Cost model: every update first reads one process-wide relaxed atomic flag
// (metrics_enabled); when observability is disabled the update is that one
// load and a branch. Compiling with -DPIMDS_OBS_DISABLED folds the flag to
// `false` so the entire body is dead code.
//
// The Registry is a process-wide name -> metric map. Metrics obtained with
// counter()/gauge()/histogram() are OWNED by the registry and live for the
// process (find-or-create, stable addresses — cache the reference, e.g. in
// a function-local static, instead of re-looking-up on a hot path). Metric
// objects owned by some other structure (e.g. a Mailbox's per-instance
// counters) can be registered externally with an RAII handle that
// unregisters on destruction. snapshot() merges both populations by name:
// counters sum, gauges combine per their GaugeMerge mode (max by default),
// histograms merge bucket-wise. delta_snapshot() answers windowed
// questions (per-interval rates and percentiles) by diffing against a
// caller-retained DeltaBaseline.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cacheline.hpp"

namespace pimds::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

/// Process-wide runtime toggle (default ON: counters are cheap enough for
/// production; tracing has its own toggle and defaults OFF).
inline bool metrics_enabled() noexcept {
#ifdef PIMDS_OBS_DISABLED
  return false;
#else
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

inline void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Small dense id for the calling thread (shard selection, trace track id).
unsigned thread_index() noexcept;

/// Monotonic counter, sharded across cache-padded slots so concurrent
/// writers from different threads do not ping-pong one line.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    shards_[thread_index() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  CachePadded<std::atomic<std::uint64_t>> shards_[kShards];
};

/// How same-named gauges combine in a snapshot. kMax (the default) suits
/// high-water marks; kSum suits per-lane/per-shard level gauges (e.g. queue
/// depths) whose aggregate is the total; kLast is last-writer-wins for
/// point-in-time facts where any one observation is representative.
enum class GaugeMerge : std::uint8_t { kMax, kSum, kLast };

const char* gauge_merge_name(GaugeMerge m) noexcept;

/// Single-slot gauge: set() for last-value semantics, add()/sub() for level
/// tracking (queue depths), record_max() for high-water marks. record_max
/// is compare-first, so it only writes (CAS) when the watermark actually
/// rises.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    slot_.value.store(v, std::memory_order_relaxed);
  }

  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    slot_.value.fetch_add(n, std::memory_order_relaxed);
  }

  void sub(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    slot_.value.fetch_sub(n, std::memory_order_relaxed);
  }

  void record_max(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    std::uint64_t cur = slot_.value.load(std::memory_order_relaxed);
    while (v > cur && !slot_.value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const noexcept {
    return slot_.value.load(std::memory_order_relaxed);
  }

  void reset() noexcept { slot_.value.store(0, std::memory_order_relaxed); }

 private:
  CachePadded<std::atomic<std::uint64_t>> slot_{0};
};

/// Merged view of a histogram (or several same-named histograms): raw
/// bucket counts plus derived percentiles. Produced by snapshots; also
/// usable directly in tests.
struct HistogramData {
  static constexpr unsigned kBuckets = 256;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Approximate quantile: the midpoint of the log-bucket containing the
  /// rank. Error is bounded by the bucket width (<= 25% of the value).
  double percentile(double q) const noexcept;

  /// Bucket-interpolated quantile: positions the rank fractionally inside
  /// the bucket that contains it (uniform-within-bucket assumption), then
  /// clamps to the recorded max. Exact for unit buckets and for
  /// single-sample histograms (returns `sum`); elsewhere the error is
  /// bounded by half a bucket width (<= 12.5% of the value), half the
  /// plain percentile() bound. Tail assertions (windowed p99 gates) use
  /// this form.
  double percentile_interpolated(double q) const noexcept;
};

/// HDR-style log-bucketed histogram of non-negative integer samples
/// (typically nanoseconds). kSubBits mantissa bits per power of two.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 2;
  static constexpr unsigned kSub = 1u << kSubBits;
  static constexpr unsigned kBuckets = HistogramData::kBuckets;
  static constexpr std::size_t kShards = 8;

  /// Bucket of `v`: values below kSub get exact unit buckets; above, the
  /// bucket is (exponent, top kSubBits mantissa bits). Contiguous: bucket
  /// upper bounds equal the next bucket's lower bound.
  static constexpr unsigned bucket_index(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<unsigned>(v);
    const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned sub =
        static_cast<unsigned>(v >> (e - kSubBits)) & (kSub - 1);
    return (e - kSubBits + 1) * kSub + sub;
  }

  /// Inclusive lower bound of bucket `idx`.
  static constexpr std::uint64_t bucket_lower(unsigned idx) noexcept {
    if (idx < kSub) return idx;
    const unsigned block = idx / kSub;
    const unsigned sub = idx % kSub;
    const unsigned e = block + kSubBits - 1;
    return (std::uint64_t{1} << e) +
           (static_cast<std::uint64_t>(sub) << (e - kSubBits));
  }

  /// Exclusive upper bound of bucket `idx`. The top reachable bucket's
  /// bound is 2^64, which wraps; saturate to the max value instead.
  static constexpr std::uint64_t bucket_upper(unsigned idx) noexcept {
    if (idx < kSub) return idx + 1;
    const unsigned e = idx / kSub + kSubBits - 1;
    const std::uint64_t up =
        bucket_lower(idx) + (std::uint64_t{1} << (e - kSubBits));
    return up == 0 ? ~std::uint64_t{0} : up;
  }

  void record(std::uint64_t v) noexcept {
    if (!metrics_enabled()) return;
    Shard& s = shards_[thread_index() & (kShards - 1)];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Merge this histogram's shards into `out` (counts add, max maxes).
  void collect(HistogramData& out) const noexcept {
    for (const Shard& s : shards_) {
      for (unsigned b = 0; b < kBuckets; ++b) {
        const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
        out.buckets[b] += n;
        out.count += n;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
    }
  }

  HistogramData data() const noexcept {
    HistogramData d;
    collect(d);
    return d;
  }

  std::uint64_t count() const noexcept { return data().count; }

  void reset() noexcept {
    for (Shard& s : shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  Shard shards_[kShards];
};

/// Point-in-time merged view of every registered metric, name-aggregated.
struct MetricsSnapshot {
  struct Scalar {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Derived {
    std::string name;
    double value = 0.0;
  };
  struct Hist {
    std::string name;
    HistogramData data;
  };

  std::vector<Scalar> counters;
  std::vector<Scalar> gauges;
  std::vector<Derived> derived;
  std::vector<Hist> histograms;

  const Scalar* find_counter(const std::string& name) const noexcept;
  const Scalar* find_gauge(const std::string& name) const noexcept;
  const Hist* find_histogram(const std::string& name) const noexcept;

  /// Render as a JSON object. `indent` is the column of the opening brace;
  /// inner lines are indented two further. The opening brace itself is not
  /// indented (the caller places it after a key).
  std::string to_json(int indent = 0) const;
};

/// Retained state for windowed (delta) snapshots: the cumulative snapshot
/// at the previous delta_snapshot() call plus a window sequence number.
/// One baseline per consumer (e.g. the telemetry Sampler keeps its own, so
/// concurrent consumers never steal each other's windows).
struct DeltaBaseline {
  MetricsSnapshot last;
  std::uint64_t windows = 0;
};

/// Window view of `cur` relative to `prev`: counters and histogram buckets
/// diff (clamped at zero — a Registry::reset() mid-window restarts the
/// counter, in which case the delta is the post-reset value); gauges and
/// derived values pass through as point-in-time facts. The window max of a
/// histogram is approximated by the midpoint of its highest non-empty diff
/// bucket, clamped to the cumulative max (|error| <= half a bucket width,
/// i.e. <= 12.5% of the true window max; exact for unit buckets).
MetricsSnapshot diff_snapshots(const MetricsSnapshot& prev,
                               const MetricsSnapshot& cur);

class Registry {
 public:
  static Registry& instance() noexcept;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create an owned metric. The returned reference is valid for
  /// the life of the process. Takes a lock — cache the reference.
  /// For gauges, `merge` selects how same-named gauges combine in
  /// snapshots; the mode given at first creation/registration of a name
  /// wins for that name.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, GaugeMerge merge = GaugeMerge::kMax);
  Histogram& histogram(const std::string& name);

  /// Computed facts with no hot path (e.g. a combining ratio): last set
  /// wins, appears under "derived" in snapshots.
  void set_derived(const std::string& name, double value);

  /// RAII registration of a metric owned elsewhere (e.g. a Mailbox member).
  /// The handle must not outlive the metric; destruction unregisters.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept : id_(other.id_) { other.id_ = 0; }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        id_ = other.id_;
        other.id_ = 0;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

   private:
    friend class Registry;
    explicit Handle(std::uint64_t id) : id_(id) {}
    void release() noexcept;
    std::uint64_t id_ = 0;
  };

  Handle register_counter(std::string name, const Counter* c);
  Handle register_gauge(std::string name, const Gauge* g,
                        GaugeMerge merge = GaugeMerge::kMax);
  Handle register_histogram(std::string name, const Histogram* h);

  /// Merged view; duplicate names (e.g. two live PimSystems with the same
  /// vault ids) aggregate: counters sum, gauges per their GaugeMerge mode
  /// (max by default), histograms merge bucket-wise.
  ///
  /// Locking: the name-lookup mutex is held only long enough to copy the
  /// metric index (pointers); the expensive merge of histogram shards runs
  /// outside it, so hot-path find-or-create registration never stalls
  /// behind a snapshot. A separate gate serializes the merge against
  /// external-metric unregistration (Handle release blocks until any
  /// in-flight merge that may still read the metric has finished).
  MetricsSnapshot snapshot() const;

  /// Windowed snapshot: cumulative snapshot() diffed against `baseline`
  /// (see diff_snapshots), then the baseline advances to the new cumulative
  /// state. First call on a fresh baseline diffs against empty, i.e.
  /// returns the cumulative values.
  MetricsSnapshot delta_snapshot(DeltaBaseline& baseline) const;
  std::string to_json(int indent = 0) const { return snapshot().to_json(indent); }

  /// Zero every owned metric and drop derived values (externally registered
  /// metrics are left alone — their owners reset them). For tests; call
  /// with updaters quiesced.
  void reset();

 private:
  Registry() = default;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct External {
    std::uint64_t id;
    std::string name;
    Kind kind;
    const void* ptr;
    GaugeMerge gmerge = GaugeMerge::kMax;
  };
  struct GaugeSlot {
    std::unique_ptr<Gauge> gauge;
    GaugeMerge merge = GaugeMerge::kMax;
  };

  void unregister(std::uint64_t id) noexcept;

  /// Name-lookup mutex: protects the maps, external_ vector and derived_.
  /// Held only for index copies during snapshots.
  mutable std::mutex mu_;
  /// Merge gate: held across the whole (lock-free-index) merge phase of a
  /// snapshot; unregister() acquires it after removing an entry so the
  /// owner cannot destroy an external metric a merge is still reading.
  /// Never held together with mu_ by the same acquisition order twice:
  /// snapshot takes merge_gate_ -> mu_, unregister takes mu_, releases,
  /// then merge_gate_.
  mutable std::mutex merge_gate_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, GaugeSlot> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, double> derived_;
  std::vector<External> external_;
  std::uint64_t next_external_id_ = 1;
};

}  // namespace pimds::obs
