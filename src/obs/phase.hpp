// Request-level latency attribution (observability layer, part 3).
//
// Every operation against a PIM structure decomposes into named phases that
// map onto the paper's Section 3 cost-model terms:
//
//   issue            CPU-side work before the request is on the wire
//   combiner_wait    waiting inside the CPU-side RequestCombiner (Sec. 4.1)
//   request_flight   the request's crossbar leg (the modeled Lmessage; 0
//                    and unrecorded when latency injection is off)
//   mailbox_queue    queueing between delivery and the PIM core's pickup —
//                    the transport's real overhead, with the modeled
//                    flight split out so an efficient mailbox shows up as
//                    a small share here rather than being drowned by
//                    Lmessage
//   vault_service    PIM-core handler time (Lpim-dominated)
//   response_flight  reply publish -> delivery-ready (Lmessage when
//                    responses are pipelined, Figure 6)
//   cpu_receive      delivery-ready -> the requester actually resumes
//                    (wakeup overhead; ~0 in the simulator)
//   total            independently measured end-to-end operation latency
//
// Phases are recorded into per-phase registry histograms named
// `<domain>.phase.<name>` where domain is `runtime` (real threads, wall
// nanoseconds) or `sim` (fiber simulator, virtual nanoseconds). Each phase
// is recorded on whichever thread/actor knows it, so no timestamps need to
// travel back in replies; attribution is validated by comparing the SUM of
// per-phase totals against the sum of the independently recorded `total`
// histogram (attribution_report below). In the simulator the phases tile
// the operation exactly; on real threads they tile up to scheduler noise.
//
// Request ids (next_request_id) correlate the CPU-side `op` span with the
// core-side `req_dispatch` instant and `vault_service`/`drain_batch` spans
// in the Perfetto export — the causal chain of one operation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace pimds::obs {

enum class Phase : std::uint8_t {
  kIssue = 0,
  kCombinerWait,
  kRequestFlight,
  kMailboxQueue,
  kVaultService,
  kResponseFlight,
  kCpuReceive,
  kTotal,  ///< end-to-end, measured independently of the other phases
};
inline constexpr std::size_t kPhaseCount = 8;

enum class PhaseDomain : std::uint8_t { kRuntime = 0, kSim = 1 };
inline constexpr std::size_t kPhaseDomainCount = 2;

const char* phase_name(Phase p) noexcept;
const char* phase_domain_name(PhaseDomain d) noexcept;

/// The registry histogram `<domain>.phase.<name>` (find-or-create once,
/// then cached — safe and cheap on hot paths).
Histogram& phase_histogram(PhaseDomain d, Phase p);

/// Record `ns` into the phase histogram. No-op when metrics are disabled.
void record_phase(PhaseDomain d, Phase p, std::uint64_t ns);

inline void record_runtime_phase(Phase p, std::uint64_t ns) {
  record_phase(PhaseDomain::kRuntime, p, ns);
}
inline void record_sim_phase(Phase p, std::uint64_t ns) {
  record_phase(PhaseDomain::kSim, p, ns);
}

/// Process-wide monotonic request id (1, 2, ...) for causal span
/// correlation. 0 is reserved for "untraced".
std::uint64_t next_request_id() noexcept;

/// Attribution summary for one domain, computed from a metrics snapshot.
struct PhaseAttribution {
  bool present = false;   ///< the domain's `total` histogram has samples
  std::uint64_t ops = 0;  ///< samples in the `total` histogram
  double total_ns = 0.0;  ///< sum of the `total` histogram
  double phase_sum_ns = 0.0;  ///< sum over every non-total phase histogram
  double coverage_pct = 0.0;  ///< 100 * phase_sum_ns / total_ns
  std::array<double, kPhaseCount> phase_ns{};  ///< per-phase sums
  std::array<std::uint64_t, kPhaseCount> phase_count{};
};

struct AttributionReport {
  PhaseAttribution runtime;
  PhaseAttribution sim;
};

AttributionReport attribution_report(const MetricsSnapshot& snap);
AttributionReport attribution_report();  ///< from Registry::instance()

/// JSON object: one key per domain with recorded samples (may be empty —
/// the object itself is always emitted, so the schema is stable). Layout:
///   {"sim": {"ops": N, "total_ns_per_op": x, "phase_sum_ns_per_op": y,
///            "coverage_pct": z, "phases": {"issue": {"count": c,
///            "ns_per_op": a, "share_pct": s}, ...}}}
/// `indent` follows the MetricsSnapshot::to_json convention.
std::string attribution_json(const AttributionReport& report, int indent = 0);

}  // namespace pimds::obs
