// Coordinated-omission-free latency recording (observability layer, part 4).
//
// Closed-loop benchmark threads measure latency from the moment the CALL
// started — but under saturation the call only starts once the previous one
// finished, so every stall silently deletes the samples that would have
// landed inside it (coordinated omission). The cure is an injection
// SCHEDULE: each operation has an intended start time fixed by the arrival
// process, independent of how the system is doing, and latency is measured
// from that intended start to completion. A stalled server then shows up as
// many large samples instead of a gap in the record.
//
// LatencyRecorder is the recording half: per family `<name>` it owns three
// registry histograms and two counters,
//
//   latency.<name>.total_ns      intended start -> completion (CO-free)
//   latency.<name>.service_ns    actual start -> completion (what a
//                                closed-loop bench would have reported)
//   latency.<name>.sched_lag_ns  max(0, actual - intended start): how far
//                                the injector itself fell behind schedule
//   latency.<name>.ops           completed operations
//   latency.<name>.late          ops whose sched lag exceeded the
//                                late-threshold (injector fell behind)
//
// The `latency.` name prefix is load-bearing: the telemetry Sampler emits a
// windowed `latency` block (interpolated p50/p90/p99/p999 per window) for
// exactly these histograms, so tail drift is visible over a run.
//
// The intended-start timestamp NEVER travels inside a Message: it stays on
// the requester thread across the (synchronous) operation, and the per-op
// `req_id` trace context already provides cross-thread correlation. With
// PIMDS_OBS=OFF nothing here changes any message layout.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace pimds::obs {

class LatencyRecorder {
 public:
  /// Sched lag at/above this marks the op "late": the injector missed its
  /// slot badly enough that the backlog accounting should know. The
  /// default tolerates timer-wheel jitter (wait_until_ns spins the last
  /// ~20us but can overshoot by a few hundred ns under load).
  static constexpr std::uint64_t kDefaultLateThresholdNs = 1'000;

  /// Metrics register under `latency.<name>.*`. The registry owns them
  /// (process lifetime), so recorders are cheap to construct per bench leg
  /// and histograms survive the recorder.
  explicit LatencyRecorder(
      const std::string& name,
      std::uint64_t late_threshold_ns = kDefaultLateThresholdNs);

  /// One completed operation. `intended_ns` is the scheduled start from
  /// the arrival process, `start_ns` when the requester actually issued,
  /// `done_ns` when the result was in hand (all on one clock).
  void record(std::uint64_t intended_ns, std::uint64_t start_ns,
              std::uint64_t done_ns) noexcept {
    const std::uint64_t total =
        done_ns > intended_ns ? done_ns - intended_ns : 0;
    const std::uint64_t service = done_ns > start_ns ? done_ns - start_ns : 0;
    const std::uint64_t lag =
        start_ns > intended_ns ? start_ns - intended_ns : 0;
    total_.record(total);
    service_.record(service);
    sched_lag_.record(lag);
    ops_.add();
    if (lag >= late_threshold_ns_) late_.add();
  }

  /// Point-in-time rollup of everything recorded so far (interpolated
  /// percentiles; see HistogramData::percentile_interpolated).
  struct Summary {
    std::uint64_t ops = 0;
    std::uint64_t late = 0;  ///< sched lag >= the late threshold
    double mean_ns = 0.0;
    double p50_ns = 0.0;
    double p90_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
    std::uint64_t max_ns = 0;
    double service_mean_ns = 0.0;
    double service_p99_ns = 0.0;
    double sched_lag_p99_ns = 0.0;
    std::uint64_t sched_lag_max_ns = 0;

    double late_share_pct() const noexcept {
      return ops == 0 ? 0.0
                      : 100.0 * static_cast<double>(late) /
                            static_cast<double>(ops);
    }
  };
  Summary summary() const;

  const std::string& name() const noexcept { return name_; }
  std::uint64_t late_threshold_ns() const noexcept {
    return late_threshold_ns_;
  }

 private:
  std::string name_;
  std::uint64_t late_threshold_ns_;
  Histogram& total_;
  Histogram& service_;
  Histogram& sched_lag_;
  Counter& ops_;
  Counter& late_;
};

/// Per-phase tail breakdown at quantile `q`, read from the `<domain>.phase.*`
/// histograms (src/obs/phase.hpp). Answers "which phase owns the p99":
/// under load the mailbox_queue quantile should grow while vault_service
/// stays flat. Quantiles of different phases do not add up to the total's
/// quantile (tails do not compose); this is attribution, not arithmetic.
struct PhaseTail {
  double q = 0.0;
  std::array<double, kPhaseCount> phase_q_ns{};
  std::array<std::uint64_t, kPhaseCount> phase_count{};
};

PhaseTail phase_tail(PhaseDomain d, double q);

/// JSON object {"issue": x, "combiner_wait": y, ...} of the per-phase
/// quantiles (phases with zero samples omitted; "{}" when none recorded).
std::string phase_tail_json(const PhaseTail& t);

}  // namespace pimds::obs
