#include "obs/loadmap.hpp"

#include <algorithm>
#include <cstdio>

namespace pimds::obs {

LoadMap::LoadMap(Options opts) : opts_(std::move(opts)) {
  if (opts_.num_vaults == 0) opts_.num_vaults = 1;
  if (opts_.num_ranges == 0) opts_.num_ranges = 1;
  if (opts_.sketch_entries == 0) opts_.sketch_entries = 1;
  if (opts_.key_max <= opts_.key_min) opts_.key_max = opts_.key_min + 1;
  shards_.reserve(opts_.num_vaults);
  for (std::size_t v = 0; v < opts_.num_vaults; ++v) {
    auto shard = std::make_unique<Shard>();
    shard->sketch = std::make_unique<SketchEntry[]>(opts_.sketch_entries);
    shards_.push_back(std::move(shard));
  }
  ranges_ = std::make_unique<CachePadded<std::atomic<std::uint64_t>>[]>(
      opts_.num_vaults * opts_.num_ranges);
  last_vault_ops_.assign(opts_.num_vaults, 0);
  last_range_ops_.assign(opts_.num_vaults * opts_.num_ranges, 0);
  if (!opts_.registry_prefix.empty()) {
    Registry& reg = Registry::instance();
    for (std::size_t v = 0; v < opts_.num_vaults; ++v) {
      reg_handles_.push_back(reg.register_counter(
          opts_.registry_prefix + ".vault" + std::to_string(v) + ".ops",
          &shards_[v]->ops));
    }
  }
}

std::uint64_t LoadMap::range_lo(std::size_t idx) const noexcept {
  // Smallest key with range_of(key) == idx: off * R >= idx * slots, so
  // lo = key_min + ceil(idx * slots / R), in 128-bit to match range_of().
  const unsigned __int128 slots =
      static_cast<unsigned __int128>(opts_.key_max - opts_.key_min) + 1;
  const unsigned __int128 r = opts_.num_ranges;
  return opts_.key_min +
         static_cast<std::uint64_t>((idx * slots + r - 1) / r);
}

std::uint64_t LoadMap::range_hi(std::size_t idx) const noexcept {
  if (idx + 1 >= opts_.num_ranges) return opts_.key_max;
  return range_lo(idx + 1) - 1;
}

void LoadMap::sketch_update(Shard& s, std::uint64_t key) noexcept {
  // SpaceSaving (Metwally et al.): track the `sketch_entries` heaviest keys;
  // a new key evicts the current minimum and inherits its count + 1 (the
  // classic over-estimate). Single writer per vault, so plain load/store
  // on the atomic cells is enough — atomics only make concurrent *readers*
  // well-defined.
  SketchEntry* entries = s.sketch.get();
  std::size_t min_idx = 0;
  std::uint64_t min_count = ~std::uint64_t{0};
  for (std::size_t i = 0; i < opts_.sketch_entries; ++i) {
    const std::uint64_t c = entries[i].count.load(std::memory_order_relaxed);
    if (c != 0 && entries[i].key.load(std::memory_order_relaxed) == key) {
      entries[i].count.store(c + 1, std::memory_order_relaxed);
      return;
    }
    if (c < min_count) {
      min_count = c;
      min_idx = i;
    }
  }
  entries[min_idx].key.store(key, std::memory_order_relaxed);
  entries[min_idx].count.store(min_count + 1, std::memory_order_relaxed);
}

LoadMap::HotVaultReport LoadMap::report() {
  std::lock_guard<std::mutex> lock(report_mu_);
  HotVaultReport rep;
  rep.per_vault_ops.resize(opts_.num_vaults);
  for (std::size_t v = 0; v < opts_.num_vaults; ++v) {
    const std::uint64_t cur = shards_[v]->ops.value();
    rep.per_vault_ops[v] =
        cur >= last_vault_ops_[v] ? cur - last_vault_ops_[v] : cur;
    last_vault_ops_[v] = cur;
    rep.window_ops += rep.per_vault_ops[v];
  }
  const auto hot = std::max_element(rep.per_vault_ops.begin(),
                                    rep.per_vault_ops.end());
  const auto cold = std::min_element(rep.per_vault_ops.begin(),
                                     rep.per_vault_ops.end());
  rep.hottest = static_cast<std::size_t>(hot - rep.per_vault_ops.begin());
  rep.coldest = static_cast<std::size_t>(cold - rep.per_vault_ops.begin());
  rep.hottest_ops = *hot;
  rep.coldest_ops = *cold;
  rep.mean_ops = static_cast<double>(rep.window_ops) /
                 static_cast<double>(opts_.num_vaults);
  rep.imbalance_ratio =
      rep.mean_ops > 0.0 ? static_cast<double>(rep.hottest_ops) / rep.mean_ops
                         : 0.0;

  // Top-k hottest key ranges this window (across all vaults).
  std::vector<RangeLoad> loads;
  loads.reserve(opts_.num_ranges);
  for (std::size_t r = 0; r < opts_.num_ranges; ++r) {
    std::uint64_t window = 0;
    for (std::size_t v = 0; v < opts_.num_vaults; ++v) {
      const std::size_t i = v * opts_.num_ranges + r;
      const std::uint64_t cur =
          ranges_[i].value.load(std::memory_order_relaxed);
      window += cur >= last_range_ops_[i] ? cur - last_range_ops_[i] : cur;
      last_range_ops_[i] = cur;
    }
    if (window > 0) loads.push_back({range_lo(r), range_hi(r), window});
  }
  std::sort(loads.begin(), loads.end(),
            [](const RangeLoad& a, const RangeLoad& b) {
              return a.ops > b.ops;
            });
  if (loads.size() > opts_.top_k) loads.resize(opts_.top_k);
  rep.hot_ranges = std::move(loads);

  // Top-k hot keys from the merged per-vault sketches (cumulative counts;
  // SpaceSaving does not support windowed subtraction).
  std::vector<KeyLoad> keys;
  for (std::size_t v = 0; v < opts_.num_vaults; ++v) {
    for (std::size_t i = 0; i < opts_.sketch_entries; ++i) {
      const SketchEntry& e = shards_[v]->sketch[i];
      const std::uint64_t c = e.count.load(std::memory_order_relaxed);
      if (c > 0) {
        keys.push_back({e.key.load(std::memory_order_relaxed), c});
      }
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const KeyLoad& a, const KeyLoad& b) {
              return a.count > b.count;
            });
  if (keys.size() > opts_.top_k) keys.resize(opts_.top_k);
  rep.hot_keys = std::move(keys);
  return rep;
}

std::string LoadMap::HotVaultReport::summary() const {
  char buf[256];
  const double share =
      window_ops > 0
          ? 100.0 * static_cast<double>(hottest_ops) /
                static_cast<double>(window_ops)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "hot vault %zu (%.1f%% of %llu ops, ratio %.2f), cold vault "
                "%zu, %zu hot ranges",
                hottest, share,
                static_cast<unsigned long long>(window_ops), imbalance_ratio,
                coldest, hot_ranges.size());
  return buf;
}

}  // namespace pimds::obs
