// Live telemetry plane (observability layer, part 3 — metrics are
// src/obs/metrics.hpp, tracing src/obs/trace.hpp).
//
// Two pieces:
//  - Sampler: a background thread that takes Registry::delta_snapshot()
//    every `interval_ms` and appends one schema-stable JSONL line per
//    window ("pimds.telemetry.v1": seq, wall timestamp, actual interval,
//    counter deltas, gauge values, windowed histogram percentiles). The
//    sampler meters itself: each tick's cost lands in the
//    `telemetry.sample_ns` histogram and `telemetry.samples` counter, so
//    the telemetry stream carries its own overhead.
//  - FlightRecorder: a bounded ring of the most recent JSONL lines, kept
//    even when no output file is configured. Dumped as a single JSON
//    document on SIGUSR1 (checked at each tick) or at Sampler::stop() when
//    a dump path is configured (benches wire the PIMDS_FLIGHT_DUMP env
//    var), for post-mortem of soaks and gated runs.
//
// Usage (bench_util.hpp does all of this behind --telemetry <file>):
//   obs::TelemetryOptions opts;
//   opts.path = "run.telemetry.jsonl";
//   obs::Sampler sampler(opts);
//   sampler.start();
//   ... workload ...
//   sampler.stop();  // final partial window, then flight dump if configured
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace pimds::obs {

/// Bounded ring of serialized telemetry lines. push() is cheap (one mutex,
/// sampler-thread cadence, not a hot path); dump() writes the surviving
/// window as one JSON document: {"schema": ..., "dropped": N,
/// "samples": [ {...}, ... ]} oldest-first.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void push(std::string line);

  /// Number of samples currently retained (<= capacity).
  std::size_t size() const;

  /// Total pushes ever; total - size = dropped (overwritten) samples.
  std::size_t total() const;

  /// Write the ring to `path`. Returns false on I/O failure.
  bool dump(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t total_ = 0;
};

struct TelemetryOptions {
  /// JSONL output path; empty = memory-only (flight recorder still runs).
  std::string path;
  std::uint64_t interval_ms = 100;
  /// Ring depth of the flight recorder (most recent windows kept).
  std::size_t flight_capacity = 256;
  /// When non-empty: dump the flight ring here at stop(), and install a
  /// SIGUSR1 handler that triggers a dump at the next tick.
  std::string flight_dump_path;
};

/// Serialize one delta window as a single JSONL line (no trailing newline).
/// Counters always appear (schema-stable across lines); histograms only
/// when the window saw samples (readers treat absence as empty).
std::string telemetry_line(const MetricsSnapshot& delta, std::uint64_t seq,
                           std::uint64_t t_wall_ns,
                           std::uint64_t interval_ns);

class Sampler {
 public:
  explicit Sampler(TelemetryOptions opts);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Capture the baseline and launch the sampling thread. No-op if the
  /// output file cannot be opened (ok() reports it).
  void start();

  /// Take one final (partial) window, stop the thread, close the file and
  /// dump the flight ring if a dump path is configured. Idempotent.
  void stop();

  /// False when a path was configured but could not be opened.
  bool ok() const { return ok_; }

  /// Windows emitted so far.
  std::size_t samples() const { return samples_.load(std::memory_order_relaxed); }

  const TelemetryOptions& options() const { return opts_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Dump the flight ring on demand (also triggered by SIGUSR1/stop()).
  bool dump_flight(const std::string& path) const { return flight_.dump(path); }

 private:
  void run();
  void sample_once();

  TelemetryOptions opts_;
  FlightRecorder flight_;
  DeltaBaseline baseline_;
  std::FILE* out_ = nullptr;
  bool ok_ = true;
  std::uint64_t seq_ = 0;
  std::uint64_t last_sample_ns_ = 0;
  std::atomic<std::size_t> samples_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace pimds::obs
