// Generic operation-history recorder for linearizability checking.
//
// A history is a set of operations, each with an invocation timestamp, a
// response timestamp, an opcode, an argument, and a recorded result. The
// recorder follows the FifoChecker::ThreadLog pattern: each participant
// (real thread or simulator actor) owns a private log, so recording costs
// one vector push and two timestamp reads and needs no synchronization.
//
// The same types serve both harnesses:
//  - the real-thread runtime records wall-clock timestamps (now_ns(), the
//    default arguments), which are globally monotonic across threads;
//  - the virtual-time simulator passes Context::now() explicitly, which is
//    globally meaningful by construction of the engine.
// The checker only compares timestamps for order, so the two never mix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/timing.hpp"

namespace pimds::check {

/// Canonical opcodes shared by every spec. A structure-specific harness may
/// use its own codes as long as its Spec understands them.
enum Op : std::uint32_t {
  kEnq = 1,
  kDeq = 2,
  kAdd = 3,
  kRemove = 4,
  kContains = 5,
};

/// Result encoding for Event::ret.
inline constexpr std::uint64_t kRetFalse = 0;
inline constexpr std::uint64_t kRetTrue = 1;
/// Dequeue-of-empty sentinel; harness values must avoid it (they do: tagged
/// values keep the top bits well below ~0).
inline constexpr std::uint64_t kRetEmpty = ~std::uint64_t{0};

struct Event {
  std::uint32_t op = 0;
  std::uint32_t thread = 0;    ///< filled in by History::collect
  std::uint64_t arg = 0;       ///< key, or enqueued value
  std::uint64_t ret = 0;       ///< recorded response
  std::uint64_t begin = 0;     ///< invocation timestamp
  std::uint64_t end = 0;       ///< response timestamp
};

/// One participant's private, lock-free event log. Operations on a thread
/// are sequential, so begin()/end() pair up by nesting order.
class ThreadLog {
 public:
  /// Record an invocation. Real threads use the wall-clock overloads;
  /// simulator actors pass ctx.now() explicitly.
  ///
  /// The wall-clock overloads read the clock INSIDE the body — never as a
  /// default argument. A defaulted `ts = now_ns()` is evaluated in the
  /// caller's full-expression, where argument evaluation order is
  /// unspecified; GCC evaluates right-to-left, so in
  /// `log.end(list.add(key) ? kRetTrue : kRetFalse)` the clock would be
  /// read BEFORE add() runs. Every response timestamp then precedes its
  /// operation's linearization point, collapsing recorded windows to the
  /// gap between two clock reads (~300ns) and making genuinely concurrent
  /// executions look like linearizability violations. (Found when the
  /// oracle reported impossible same-thread histories under TSan: the
  /// vault-side execution traced hundreds of microseconds after the
  /// recorded response time.) A function body, by contrast, is sequenced
  /// after all its arguments.
  void begin(std::uint32_t op, std::uint64_t arg) { begin(op, arg, now_ns()); }
  void begin(std::uint32_t op, std::uint64_t arg, std::uint64_t ts) {
    pending_.op = op;
    pending_.arg = arg;
    pending_.begin = ts;
    open_ = true;
  }

  /// Record the matching response.
  void end(std::uint64_t ret) { end(ret, now_ns()); }
  void end(std::uint64_t ret, std::uint64_t ts) {
    pending_.ret = ret;
    pending_.end = ts;
    events_.push_back(pending_);
    open_ = false;
  }

  /// Record a complete operation with explicit timestamps (setup phases,
  /// translations from other log formats).
  void complete(std::uint32_t op, std::uint64_t arg, std::uint64_t ret,
                std::uint64_t begin_ts, std::uint64_t end_ts) {
    events_.push_back(Event{op, 0, arg, ret, begin_ts, end_ts});
  }

  /// Drop an invocation that will never get a response (an op abandoned at
  /// shutdown). The checker requires complete histories.
  void abandon() { open_ = false; }

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  Event pending_{};
  bool open_ = false;
  std::vector<Event> events_;
};

/// A complete history: every thread's completed operations, merged.
struct History {
  std::vector<Event> events;

  std::size_t size() const noexcept { return events.size(); }
};

/// Fixed-size pool of per-participant logs plus the merge step.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(std::size_t threads) : logs_(threads) {}

  ThreadLog& log(std::size_t thread) { return logs_[thread]; }
  std::size_t threads() const noexcept { return logs_.size(); }

  /// Merge all logs into one history (thread ids assigned by log index).
  History collect() const {
    History h;
    std::size_t total = 0;
    for (const ThreadLog& log : logs_) total += log.size();
    h.events.reserve(total);
    for (std::size_t t = 0; t < logs_.size(); ++t) {
      for (Event e : logs_[t].events()) {
        e.thread = static_cast<std::uint32_t>(t);
        h.events.push_back(e);
      }
    }
    return h;
  }

 private:
  std::vector<ThreadLog> logs_;
};

/// Human-readable rendering of one event (checker error messages).
inline std::string to_string(const Event& e) {
  const char* name = "op?";
  switch (e.op) {
    case kEnq: name = "enq"; break;
    case kDeq: name = "deq"; break;
    case kAdd: name = "add"; break;
    case kRemove: name = "remove"; break;
    case kContains: name = "contains"; break;
    default: break;
  }
  std::string out = name;
  out += "(" + std::to_string(e.arg) + ")";
  out += e.ret == kRetEmpty ? " -> empty" : " -> " + std::to_string(e.ret);
  out += " [t" + std::to_string(e.thread) + " @" + std::to_string(e.begin) +
         ".." + std::to_string(e.end) + "]";
  return out;
}

}  // namespace pimds::check
