#include "check/explore.hpp"

#include <cstdlib>
#include <ostream>

#include "common/rng.hpp"

namespace pimds::check {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

}  // namespace

ExploreConfig ExploreConfig::with_env_overrides() const {
  ExploreConfig cfg = *this;
  cfg.num_seeds = env_u64("PIMDS_EXPLORE_SEEDS", cfg.num_seeds);
  cfg.first_seed = env_u64("PIMDS_EXPLORE_FIRST_SEED", cfg.first_seed);
  cfg.perturbations_per_seed =
      env_u64("PIMDS_EXPLORE_PERTURBS", cfg.perturbations_per_seed);
  return cfg;
}

std::uint64_t ExploreConfig::forced_perturb_seed() {
  return env_u64("PIMDS_EXPLORE_PERTURB_SEED", 0);
}

std::string replay_command(const std::string& replay_hint, std::uint64_t seed,
                           std::uint64_t perturb_seed) {
  std::string cmd = "PIMDS_EXPLORE_FIRST_SEED=" + std::to_string(seed) +
                    " PIMDS_EXPLORE_SEEDS=1";
  cmd += " PIMDS_EXPLORE_PERTURB_SEED=" + std::to_string(perturb_seed);
  cmd += " " + replay_hint;
  return cmd;
}

std::string ExploreResult::report(const std::string& replay_hint) const {
  std::string out = std::to_string(runs) + " runs, " +
                    std::to_string(failures.size()) + " failures";
  for (const ExploreFailure& f : failures) {
    out += "\n  seed=" + std::to_string(f.seed) +
           " perturb_seed=" + std::to_string(f.perturb_seed) + ": " + f.error;
    out += "\n    replay: " + replay_command(replay_hint, f.seed,
                                             f.perturb_seed);
  }
  return out;
}

ExploreResult explore(const ExploreConfig& cfg, const Trial& trial,
                      const std::string& replay_hint, std::ostream* progress) {
  ExploreResult result;
  const std::uint64_t forced = ExploreConfig::forced_perturb_seed();
  for (std::uint64_t i = 0; i < cfg.num_seeds; ++i) {
    const std::uint64_t seed = cfg.first_seed + i;
    // Perturbation seeds derive from the engine seed so a sweep never
    // reuses one interleaving across seeds; seed 0 is the unperturbed run.
    std::vector<std::uint64_t> perturb_seeds;
    if (forced != 0) {
      perturb_seeds.push_back(forced);
    } else {
      perturb_seeds.push_back(0);
      SplitMix64 mix(seed ^ 0xe8c7'5e2d'95a1'37b9ULL);
      for (std::uint64_t p = 0; p < cfg.perturbations_per_seed; ++p) {
        std::uint64_t ps = mix.next();
        if (ps == 0) ps = 1;  // 0 means "disabled"
        perturb_seeds.push_back(ps);
      }
    }
    for (const std::uint64_t ps : perturb_seeds) {
      sim::Engine::Perturbation perturb = cfg.perturb;
      perturb.seed = ps;
      std::string error = trial(seed, perturb);
      ++result.runs;
      if (!error.empty()) {
        result.failures.push_back({seed, ps, error});
        if (progress != nullptr) {
          *progress << "FAIL seed=" << seed << " perturb_seed=" << ps << ": "
                    << error << "\n  replay: "
                    << replay_command(replay_hint, seed, ps) << std::endl;
        }
        if (cfg.max_failures != 0 &&
            result.failures.size() >= cfg.max_failures) {
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace pimds::check
