// Deterministic schedule exploration over the virtual-time simulator.
//
// The engine is deterministic per seed, and Engine::Perturbation adds
// bounded, seeded delays at every scheduling point — together one (seed,
// perturbation-seed) pair names one exact interleaving. The driver sweeps a
// seed range, runs each seed once unperturbed and `perturbations_per_seed`
// more times under distinct perturbation seeds, and hands every run to a
// caller-supplied trial (typically: run a simulated protocol with history
// recording, check linearizability, return the error string).
//
// Every failure is recorded with the exact pair that produced it and a
// ready-to-paste replay command, so an adversarial interleaving found in a
// 1000-seed CI sweep reproduces bit-exactly on a laptop.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace pimds::check {

struct ExploreConfig {
  std::uint64_t first_seed = 1;
  std::uint64_t num_seeds = 50;
  /// Perturbed runs per seed, in addition to the unperturbed run.
  std::uint64_t perturbations_per_seed = 2;
  sim::Engine::Perturbation perturb{};  ///< prob/bound template (seed set per run)
  /// Stop after this many failures (0 = collect all).
  std::size_t max_failures = 8;

  /// Environment overrides for CI / replay without recompiling:
  ///   PIMDS_EXPLORE_SEEDS       number of seeds to sweep
  ///   PIMDS_EXPLORE_FIRST_SEED  first seed (replay: set SEEDS=1 too)
  ///   PIMDS_EXPLORE_PERTURBS    perturbed runs per seed
  ///   PIMDS_EXPLORE_PERTURB_SEED  check ONLY this perturbation seed
  ExploreConfig with_env_overrides() const;

  /// The single perturbation seed forced by PIMDS_EXPLORE_PERTURB_SEED, if
  /// set (exact replay of one failing run).
  static std::uint64_t forced_perturb_seed();
};

struct ExploreFailure {
  std::uint64_t seed = 0;
  std::uint64_t perturb_seed = 0;  ///< 0 = the unperturbed run
  std::string error;
};

struct ExploreResult {
  std::uint64_t runs = 0;
  std::vector<ExploreFailure> failures;

  bool ok() const noexcept { return failures.empty(); }
  /// One line per failure: seeds, error, and the exact replay command.
  std::string report(const std::string& replay_hint) const;
};

/// One exploration run: simulate at `engine_seed` with `perturb` installed
/// (perturb.seed == 0 on the unperturbed run) and return "" on success or a
/// violation description.
using Trial = std::function<std::string(std::uint64_t engine_seed,
                                        const sim::Engine::Perturbation&)>;

/// Sweep the configured seed space. `replay_hint` names how to re-run one
/// pair, e.g. "./tests/test_schedule_explore --gtest_filter=Explore.Queue";
/// the driver prints failures (with replay commands) to `progress` as they
/// happen, so even a crashed sweep leaves reproduction info behind.
ExploreResult explore(const ExploreConfig& cfg, const Trial& trial,
                      const std::string& replay_hint,
                      std::ostream* progress = nullptr);

/// The exact command line that replays one (seed, perturb_seed) run.
std::string replay_command(const std::string& replay_hint, std::uint64_t seed,
                           std::uint64_t perturb_seed);

}  // namespace pimds::check
