// Sequential specifications for the linearizability checker.
//
// A Spec models one sequential object. The checker (linearizability.hpp)
// drives it through candidate linearization orders:
//
//   struct Spec {
//     struct State;                 // default-constructed = initial state
//     struct Undo;                  // how to revert one apply()
//     static constexpr bool kPartitionByArg;  // Lowe P-compositionality
//     static bool apply(State&, const Event&, Undo&);
//         // True iff the event's recorded response is the one the
//         // sequential object returns in `state`; on true, state advanced.
//         // On false, state must be unchanged.
//     static void undo(State&, const Undo&);
//     static void fingerprint(const State&, std::vector<std::uint64_t>&);
//         // Canonical encoding; equal states must encode equally. Used to
//         // prune revisited (linearized-set, state) pairs exactly, never
//         // by hash alone.
//   };
//
// kPartitionByArg = true declares that operations on different args are
// independent (commute and return values depend only on same-arg history),
// so the checker may split the history per arg and check each subhistory
// against a single-arg state — Lowe's partitioning optimization, which
// turns the set checkers from exponential-in-history to exponential-in-
// per-key-contention (tiny in practice).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "check/history.hpp"

namespace pimds::check {

/// MPMC FIFO queue: enq(v) and deq() -> v | empty. Values need not be
/// unique (the front-of-queue comparison handles duplicates), though unique
/// values shrink the search space considerably.
struct QueueSpec {
  struct State {
    std::deque<std::uint64_t> items;
  };

  struct Undo {
    std::uint8_t kind = 0;  // 1 = pushed back, 2 = popped front
    std::uint64_t value = 0;
  };

  static constexpr bool kPartitionByArg = false;

  static bool apply(State& s, const Event& e, Undo& u) {
    switch (e.op) {
      case kEnq:
        s.items.push_back(e.arg);
        u = {1, e.arg};
        return true;
      case kDeq:
        if (e.ret == kRetEmpty) {
          u = {0, 0};
          return s.items.empty();
        }
        if (s.items.empty() || s.items.front() != e.ret) return false;
        s.items.pop_front();
        u = {2, e.ret};
        return true;
      default:
        return false;
    }
  }

  static void undo(State& s, const Undo& u) {
    if (u.kind == 1) s.items.pop_back();
    if (u.kind == 2) s.items.push_front(u.value);
  }

  static void fingerprint(const State& s, std::vector<std::uint64_t>& out) {
    out.assign(s.items.begin(), s.items.end());
  }
};

/// Set of keys: add/remove/contains, partitioned per key. The per-key state
/// is a single bit, so each partition's DFS is trivially small. Setup-phase
/// inserts recorded with begin == end == 0 linearize before every real
/// operation, which is how a pre-populated structure's initial contents are
/// expressed without out-of-band initial-state plumbing.
struct SetSpec {
  struct State {
    bool present = false;
  };

  struct Undo {
    bool present = false;
  };

  static constexpr bool kPartitionByArg = true;

  static bool apply(State& s, const Event& e, Undo& u) {
    u.present = s.present;
    const bool expected = e.op == kAdd ? !s.present : s.present;
    if ((e.ret != kRetFalse) != expected) return false;
    if (e.op == kAdd) s.present = true;
    if (e.op == kRemove) s.present = false;
    return true;
  }

  static void undo(State& s, const Undo& u) { s.present = u.present; }

  static void fingerprint(const State& s, std::vector<std::uint64_t>& out) {
    out.assign(1, s.present ? 1u : 0u);
  }
};

/// Last-writer-wins map over full 64-bit values, partitioned per key:
/// put (kAdd, ret = previous value or kRetEmpty), erase (kRemove, ret =
/// erased value or kRetEmpty), get (kContains, ret = value or kRetEmpty).
/// The put value rides in the event's upper metadata-free channel: a
/// harness records put(k, v) as begin(kAdd, k) ... end(v_prev) followed by
/// the checker reading the written value from `arg2`. To keep Event small
/// the written value is packed into `ret` for get/erase and `arg2` is not
/// needed: puts store their written value in the LOW 32 bits of `arg`'s
/// companion — instead we simply require map harnesses to use
/// `Event::arg = key` and encode the written value via a paired kContains
/// read. For the structures in this repo (sets and queues) MapSpec is
/// currently exercised only by unit tests; it exists so a future key-value
/// structure (examples/kv_index) has a spec to record against.
struct MapSpec {
  struct State {
    bool present = false;
    std::uint64_t value = 0;
  };

  struct Undo {
    State prev;
  };

  static constexpr bool kPartitionByArg = true;

  /// Event encoding: op kAdd = put(key, value = e.ret_written()), response
  /// ignored; kRemove = erase(key) -> kRetTrue/kRetFalse; kContains =
  /// get(key) -> value | kRetEmpty. Puts carry the written value in
  /// Event::ret (a put's own "response" is uninteresting).
  static bool apply(State& s, const Event& e, Undo& u) {
    u.prev = s;
    switch (e.op) {
      case kAdd:
        s.present = true;
        s.value = e.ret;
        return true;
      case kRemove: {
        const bool expected = s.present;
        s.present = false;
        if ((e.ret != kRetFalse) != expected) {
          s = u.prev;
          return false;
        }
        return true;
      }
      case kContains:
        if (!s.present) return e.ret == kRetEmpty;
        return e.ret == s.value;
      default:
        return false;
    }
  }

  static void undo(State& s, const Undo& u) { s = u.prev; }

  static void fingerprint(const State& s, std::vector<std::uint64_t>& out) {
    out.clear();
    out.push_back(s.present ? 1 : 0);
    out.push_back(s.value);
  }
};

}  // namespace pimds::check
