// Linearizability checking by Wing & Gong's depth-first search over
// candidate linearization orders, with the two standard accelerations:
//
//  - Lowe's (linearized-set, state) memoization: a branch that reaches a
//    configuration the search has already explored is pruned. Keys are
//    compared EXACTLY (bitset words + canonical state fingerprint), so the
//    prune never mis-fires on a hash collision.
//  - Lowe's P-compositionality partitioning: when the spec declares
//    operations on different args independent (sets, maps), the history
//    splits per arg and each subhistory is checked against a one-arg state.
//
// The search is the classic "WGL" doubly-linked-list formulation (also used
// by Knossos and Porcupine): entries alternate between invocation and
// response nodes sorted by timestamp; linearizing an operation lifts its
// pair out of the list, reaching a response whose operation cannot be
// linearized backtracks, and an empty stack at that point is a violation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/history.hpp"
#include "check/spec.hpp"

namespace pimds::check {

enum class Verdict : std::uint8_t {
  kLinearizable,
  kNotLinearizable,
  kLimitReached,  ///< search budget exhausted before a verdict
};

struct CheckResult {
  Verdict verdict = Verdict::kLinearizable;
  std::string error;               ///< first violation found, empty when ok
  std::uint64_t explored = 0;      ///< apply() attempts across partitions
  std::uint64_t partitions = 1;

  bool ok() const noexcept { return verdict == Verdict::kLinearizable; }
};

struct CheckOptions {
  /// Budget on apply() attempts (sum over partitions). Generously above
  /// anything a correct history in this repo's tests needs; a budget hit
  /// reports kLimitReached rather than a false verdict.
  std::uint64_t max_explored = 50'000'000;
};

namespace detail {

/// Exact (linearized bitset, state fingerprint) cache key.
struct CacheKey {
  std::vector<std::uint64_t> words;  ///< bitset of linearized ops
  std::vector<std::uint64_t> fp;     ///< Spec::fingerprint of the state

  bool operator==(const CacheKey& o) const noexcept {
    return words == o.words && fp == o.fp;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    for (const std::uint64_t w : k.words) mix(w);
    mix(0x9e3779b97f4a7c15ULL);
    for (const std::uint64_t w : k.fp) mix(w);
    return static_cast<std::size_t>(h);
  }
};

/// WGL search over one (sub)history. `events` need not be sorted.
template <typename Spec>
CheckResult check_partition(std::vector<Event> events,
                            typename Spec::State state,
                            const CheckOptions& opts,
                            std::uint64_t budget_used) {
  CheckResult result;
  result.explored = budget_used;
  const std::size_t n = events.size();
  if (n == 0) return result;

  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.begin < b.begin; });

  // Entry list: one invocation + one response node per op, sorted by time;
  // at equal timestamps invocations sort first, so touching intervals count
  // as concurrent (the permissive reading — never a false alarm).
  struct Node {
    std::uint64_t time = 0;
    std::uint32_t op = 0;
    Node* match = nullptr;  ///< response node, set on invocations only
    Node* prev = nullptr;
    Node* next = nullptr;
  };
  std::vector<Node> nodes(2 * n + 2);  // + head/tail sentinels
  {
    struct Ref {
      std::uint64_t time;
      bool is_return;
      std::uint32_t op;
    };
    std::vector<Ref> refs;
    refs.reserve(2 * n);
    for (std::uint32_t i = 0; i < n; ++i) {
      refs.push_back({events[i].begin, false, i});
      refs.push_back({events[i].end, true, i});
    }
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref& a, const Ref& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.is_return < b.is_return;
                     });
    std::vector<Node*> inv_of(n, nullptr);
    Node* prev = &nodes[0];  // head sentinel
    for (std::size_t i = 0; i < refs.size(); ++i) {
      Node* node = &nodes[i + 1];
      node->time = refs[i].time;
      node->op = refs[i].op;
      if (refs[i].is_return) {
        inv_of[refs[i].op]->match = node;
      } else {
        inv_of[refs[i].op] = node;
      }
      prev->next = node;
      node->prev = prev;
      prev = node;
    }
    Node* tail = &nodes[2 * n + 1];
    prev->next = tail;
    tail->prev = prev;
  }
  Node* const head = &nodes[0];
  Node* const tail = &nodes[2 * n + 1];

  const auto lift = [](Node* inv) {
    inv->prev->next = inv->next;
    inv->next->prev = inv->prev;
    Node* ret = inv->match;
    ret->prev->next = ret->next;
    ret->next->prev = ret->prev;
  };
  const auto unlift = [](Node* inv) {
    Node* ret = inv->match;
    ret->prev->next = ret;
    ret->next->prev = ret;
    inv->prev->next = inv;
    inv->next->prev = inv;
  };

  const std::size_t words = (n + 63) / 64;
  CacheKey key;
  key.words.assign(words, 0);
  std::unordered_set<CacheKey, CacheKeyHash> cache;

  struct Frame {
    Node* inv;
    typename Spec::Undo undo;
  };
  std::vector<Frame> stack;
  stack.reserve(n);

  Node* entry = head->next;
  while (head->next != tail) {
    if (result.explored - budget_used > opts.max_explored) {
      result.verdict = Verdict::kLimitReached;
      result.error = "search budget exhausted after " +
                     std::to_string(result.explored) + " transitions";
      return result;
    }
    if (entry == tail || entry->match == nullptr) {
      // Reached a response (or the end): the pending prefix cannot extend.
      if (stack.empty()) {
        const Event& blame =
            events[entry == tail ? head->next->op : entry->op];
        result.verdict = Verdict::kNotLinearizable;
        result.error =
            "no linearization admits " + to_string(blame) +
            " (every ordering of its concurrent window was explored)";
        // Small sub-histories are printed whole: with Lowe partitioning a
        // violating partition is usually a handful of events, and seeing
        // them is what makes the verdict debuggable.
        if (n <= 64) {
          result.error += "\n  sub-history (" + std::to_string(n) +
                          " events, by invocation time):";
          for (const Event& e : events) result.error += "\n    " + to_string(e);
        }
        return result;
      }
      Frame f = stack.back();
      stack.pop_back();
      Spec::undo(state, f.undo);
      key.words[f.inv->op / 64] &= ~(1ull << (f.inv->op % 64));
      unlift(f.inv);
      entry = f.inv->next;
      continue;
    }
    // Invocation: try to linearize this operation here.
    ++result.explored;
    typename Spec::Undo undo{};
    if (Spec::apply(state, events[entry->op], undo)) {
      key.words[entry->op / 64] |= 1ull << (entry->op % 64);
      Spec::fingerprint(state, key.fp);
      if (cache.insert(key).second) {
        stack.push_back({entry, undo});
        lift(entry);
        entry = head->next;
        continue;
      }
      // Configuration already explored from another order: revert.
      Spec::undo(state, undo);
      key.words[entry->op / 64] &= ~(1ull << (entry->op % 64));
    }
    entry = entry->next;
  }
  return result;
}

}  // namespace detail

/// Check `history` against `Spec`. `initial` seeds the sequential state for
/// non-partitioned specs (e.g. a pre-filled queue); partitioned specs start
/// each per-arg state default-constructed and express initial contents as
/// setup events with begin == end == 0.
template <typename Spec>
CheckResult check_history(const History& history,
                          typename Spec::State initial = {},
                          const CheckOptions& opts = {}) {
  if constexpr (Spec::kPartitionByArg) {
    std::map<std::uint64_t, std::vector<Event>> parts;
    for (const Event& e : history.events) parts[e.arg].push_back(e);
    CheckResult total;
    total.partitions = parts.size();
    for (auto& [arg, events] : parts) {
      CheckResult r = detail::check_partition<Spec>(
          std::move(events), typename Spec::State{}, opts, total.explored);
      total.explored = r.explored;
      if (!r.ok()) {
        r.partitions = total.partitions;
        if (r.verdict == Verdict::kNotLinearizable) {
          r.error = "key " + std::to_string(arg) + ": " + r.error;
        }
        return r;
      }
    }
    return total;
  } else {
    CheckResult r = detail::check_partition<Spec>(history.events,
                                                  std::move(initial), opts, 0);
    return r;
  }
}

/// Convenience wrappers used throughout the tests.
inline CheckResult check_queue_history(const History& h,
                                       QueueSpec::State initial = {},
                                       const CheckOptions& opts = {}) {
  return check_history<QueueSpec>(h, std::move(initial), opts);
}

inline CheckResult check_set_history(const History& h,
                                     const CheckOptions& opts = {}) {
  return check_history<SetSpec>(h, {}, opts);
}

}  // namespace pimds::check
