// Umbrella header: everything a downstream user of the PIMDS library needs.
//
//   #include "pimds.hpp"
//
//   pimds::runtime::PimSystem  — the emulated near-memory hardware
//   pimds::core::*             — the paper's PIM data structures
//   pimds::baselines::*        — the CPU competitors
//   pimds::model::*            — the closed-form performance model
//   pimds::sim::*              — the deterministic discrete-event simulator
#pragma once

// Common substrate.
#include "common/backoff.hpp"
#include "common/barrier.hpp"
#include "common/cacheline.hpp"
#include "common/ebr.hpp"
#include "common/fifo_checker.hpp"
#include "common/latency.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/spinwait.hpp"
#include "common/stats.hpp"
#include "common/thread_utils.hpp"
#include "common/timing.hpp"
#include "common/zipf.hpp"

// Analytic model (Section 3, Tables 1-2, Section 5.2).
#include "model/linked_list_model.hpp"
#include "model/queue_model.hpp"
#include "model/skiplist_model.hpp"

// Real-thread PIM emulation and the paper's data structures.
#include "core/auto_rebalancer.hpp"
#include "core/local_skiplist.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"
#include "core/sentinel_directory.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/system.hpp"
#include "runtime/vault.hpp"

// CPU baselines.
#include "baselines/faa_queue.hpp"
#include "baselines/fc_structures.hpp"
#include "baselines/flat_combining.hpp"
#include "baselines/hoh_list.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "baselines/ms_queue.hpp"
#include "baselines/seq_structures.hpp"
#include "baselines/spinlock.hpp"

// Discrete-event simulator and the simulated experiments.
#include "sim/ds/linked_lists.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/flat_combining.hpp"
#include "sim/mailbox.hpp"
#include "sim/sync.hpp"
#include "sim/workload.hpp"
