// Closed-form throughput model for linked-lists (Section 4.1, Table 1).
//
// All functions return operations per second for a list of n nodes accessed
// by p CPU threads with uniformly random keys, under the Section 3 latency
// parameters. S_p is the expectation term from the paper:
//     S_p = sum_{i=1..n} (i / (n+1))^p
// and (n - S_p) is the expected number of pointers a combiner traverses to
// serve a batch of p random requests in one pass.
#pragma once

#include <cstddef>

#include "common/latency.hpp"

namespace pimds::model {

/// S_p = sum_{i=1..n} (i/(n+1))^p. Monotonically decreasing in p, with
/// S_1 = n/2 and S_p -> (n+1)/(p+1)-ish tail behaviour; always in (0, n/2].
double s_p(std::size_t n, std::size_t p);

/// Table 1 row 1: linked-list with fine-grained locks, p parallel threads.
double fine_grained_lock_list(const LatencyParams& lp, std::size_t n,
                              std::size_t p);

/// Table 1 row 2: flat-combining list without the combining optimization.
double fc_list_no_combining(const LatencyParams& lp, std::size_t n);

/// Table 1 row 3: PIM-managed list without combining.
double pim_list_no_combining(const LatencyParams& lp, std::size_t n);

/// Table 1 row 4: flat-combining list with combining.
double fc_list_combining(const LatencyParams& lp, std::size_t n,
                         std::size_t p);

/// Table 1 row 5: PIM-managed list with combining.
double pim_list_combining(const LatencyParams& lp, std::size_t n,
                          std::size_t p);

/// Section 4.1 crossover: the PIM list with combining beats the
/// fine-grained-lock list iff r1 > 2 (n - S_p) / (n + 1); since
/// 0 < S_p <= n/2, r1 >= 2 always suffices.
bool pim_combining_beats_fine_grained(const LatencyParams& lp, std::size_t n,
                                      std::size_t p);

/// Section 1 claim: the minimum number of CPU threads at which the
/// fine-grained-lock list overtakes the *naive* (no combining) PIM list.
/// Equals ceil(r1) by Table 1.
std::size_t threads_to_beat_naive_pim(const LatencyParams& lp);

}  // namespace pimds::model
