#include "model/queue_model.hpp"

#include <cmath>

namespace pimds::model {

namespace {
constexpr double kNsToSec = 1e-9;
}

double faa_queue(const LatencyParams& lp) {
  return 1.0 / (lp.atomic() * kNsToSec);
}

double fc_queue(const LatencyParams& lp) {
  return 1.0 / (2.0 * lp.llc() * kNsToSec);
}

double pim_queue_pipelined(const LatencyParams& lp, double epsilon_ns) {
  // x (Lpim + eps) + 2 Lmessage = 1 second  =>  x = (1 - 2 Lmsg) / (Lpim+eps)
  const double lmsg_s = lp.message() * kNsToSec;
  return (1.0 - 2.0 * lmsg_s) / ((lp.pim() + epsilon_ns) * kNsToSec);
}

double pim_queue_unpipelined(const LatencyParams& lp, double epsilon_ns) {
  return 1.0 / ((lp.pim() + epsilon_ns + lp.message()) * kNsToSec);
}

double pim_queue_single_segment(const LatencyParams& lp, double epsilon_ns) {
  return 0.5 * pim_queue_pipelined(lp, epsilon_ns);
}

bool pim_beats_fc_queue(const LatencyParams& lp) {
  return 2.0 * lp.r1 / lp.r2 > 1.0;
}

bool pim_beats_faa_queue(const LatencyParams& lp) {
  return lp.r1 * lp.r3 > 1.0;
}

std::size_t min_cpus_to_saturate_pim(const LatencyParams& lp) {
  return static_cast<std::size_t>(
      std::ceil(2.0 * lp.message() / lp.pim()));
}

}  // namespace pimds::model
