// Model-conformance reporting: measured throughput vs. the Section 3/5
// analytic predictions, as machine-readable rows.
//
// Every bench that has a closed-form prediction for one of its configs
// (docs/MODEL.md) contributes ConformanceRows; JsonReporter emits them as a
// top-level `"conformance": {"rows": [...]}` section in every --json output
// (always present, possibly empty, so the schema is stable and
// scripts/perf_gate.py can rely on it). divergence_pct is signed:
// positive means the implementation beat the model's bound, negative means
// it fell short — the model gives upper bounds, so persistent large
// positives indicate a modelling or accounting bug, not a fast machine.
#pragma once

#include <string>
#include <vector>

namespace pimds::model {

struct ConformanceRow {
  std::string name;             ///< e.g. "pim_queue.pipelined.p48"
  double predicted_ops_per_sec = 0.0;
  double measured_ops_per_sec = 0.0;

  /// 100 * (measured - predicted) / predicted; 0 when predicted == 0.
  double divergence_pct() const noexcept;
};

/// JSON object {"rows": [{"name", "predicted_ops_per_sec",
/// "measured_ops_per_sec", "divergence_pct"}, ...]}. `indent` follows the
/// MetricsSnapshot::to_json convention (spaces before the closing brace's
/// line; inner lines one level deeper).
std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             int indent = 0);

}  // namespace pimds::model
