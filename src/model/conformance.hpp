// Model-conformance reporting: measured throughput vs. the Section 3/5
// analytic predictions, as machine-readable rows.
//
// Every bench that has a closed-form prediction for one of its configs
// (docs/MODEL.md) contributes ConformanceRows; JsonReporter emits them as a
// top-level `"conformance": {"rows": [...]}` section in every --json output
// (always present, possibly empty, so the schema is stable and
// scripts/perf_gate.py can rely on it). divergence_pct is signed:
// positive means the implementation beat the model's bound, negative means
// it fell short — the model gives upper bounds, so persistent large
// positives indicate a modelling or accounting bug, not a fast machine.
#pragma once

#include <string>
#include <vector>

namespace pimds::model {

struct ConformanceRow {
  std::string name;             ///< e.g. "pim_queue.pipelined.p48"
  double predicted_ops_per_sec = 0.0;
  double measured_ops_per_sec = 0.0;

  /// 100 * (measured - predicted) / predicted; 0 when predicted == 0.
  double divergence_pct() const noexcept;
};

/// Latency conformance: measured sojourn (coordinated-omission-free, from
/// an open-loop sweep) vs the M/D/1 prediction for the vault mailbox
/// (src/model/latency_model.hpp). Divergence is signed like the throughput
/// rows: positive = measured slower than predicted.
struct LatencyConformanceRow {
  std::string name;  ///< e.g. "openloop.queue.rate0.40"
  double rho = 0.0;  ///< measured utilization at this rate point
  double predicted_mean_ns = 0.0;
  double measured_mean_ns = 0.0;
  double predicted_p99_ns = 0.0;
  double measured_p99_ns = 0.0;

  /// 100 * (measured - predicted) / predicted; 0 when predicted == 0.
  double mean_divergence_pct() const noexcept;
  double p99_divergence_pct() const noexcept;
};

/// JSON object {"rows": [{"name", "predicted_ops_per_sec",
/// "measured_ops_per_sec", "divergence_pct"}, ...]}. `indent` follows the
/// MetricsSnapshot::to_json convention (spaces before the closing brace's
/// line; inner lines one level deeper).
std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             int indent = 0);

/// Same, plus a sibling "latency" array:
/// {"rows": [...], "latency": [{"name", "rho", "predicted_mean_ns",
/// "measured_mean_ns", "mean_divergence_pct", "predicted_p99_ns",
/// "measured_p99_ns", "p99_divergence_pct"}, ...]}. The "latency" key is
/// emitted only by benches that produce such rows; validators treat it as
/// optional.
std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             const std::vector<LatencyConformanceRow>& latency,
                             int indent = 0);

}  // namespace pimds::model
