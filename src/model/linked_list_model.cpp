#include "model/linked_list_model.hpp"

#include <cmath>

namespace pimds::model {

namespace {
constexpr double kNsToSec = 1e-9;
}

double s_p(std::size_t n, std::size_t p) {
  // Direct summation; n is at most a few thousand in every experiment and
  // the terms need no special care (all in (0,1]).
  double sum = 0.0;
  const double denom = static_cast<double>(n + 1);
  for (std::size_t i = 1; i <= n; ++i) {
    sum += std::pow(static_cast<double>(i) / denom, static_cast<double>(p));
  }
  return sum;
}

double fine_grained_lock_list(const LatencyParams& lp, std::size_t n,
                              std::size_t p) {
  return 2.0 * static_cast<double>(p) /
         (static_cast<double>(n + 1) * lp.cpu() * kNsToSec);
}

double fc_list_no_combining(const LatencyParams& lp, std::size_t n) {
  return 2.0 / (static_cast<double>(n + 1) * lp.cpu() * kNsToSec);
}

double pim_list_no_combining(const LatencyParams& lp, std::size_t n) {
  return 2.0 / (static_cast<double>(n + 1) * lp.pim() * kNsToSec);
}

double fc_list_combining(const LatencyParams& lp, std::size_t n,
                         std::size_t p) {
  return static_cast<double>(p) /
         ((static_cast<double>(n) - s_p(n, p)) * lp.cpu() * kNsToSec);
}

double pim_list_combining(const LatencyParams& lp, std::size_t n,
                          std::size_t p) {
  return static_cast<double>(p) /
         ((static_cast<double>(n) - s_p(n, p)) * lp.pim() * kNsToSec);
}

bool pim_combining_beats_fine_grained(const LatencyParams& lp, std::size_t n,
                                      std::size_t p) {
  return lp.r1 >
         2.0 * (static_cast<double>(n) - s_p(n, p)) / static_cast<double>(n + 1);
}

std::size_t threads_to_beat_naive_pim(const LatencyParams& lp) {
  return static_cast<std::size_t>(std::ceil(lp.r1));
}

}  // namespace pimds::model
