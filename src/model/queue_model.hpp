// Closed-form throughput model for FIFO queues (Section 5.2).
//
// Per-side (dequeue or enqueue) throughputs; the F&A and PIM queues serve
// both sides in parallel when the queue is long, the FC queue uses two
// combiner locks, so combined throughput is 2x each bound for all three.
#pragma once

#include <cstddef>

#include "common/latency.hpp"

namespace pimds::model {

/// F&A queue [41]: p concurrent requests serialize on one F&A variable,
/// so throughput <= 1 / Latomic.
double faa_queue(const LatencyParams& lp);

/// Flat-combining queue [25]: serving p requests costs >= (2p - 1) LLC
/// accesses, so throughput <= 1 / (2 Lllc) for large p.
double fc_queue(const LatencyParams& lp);

/// PIM-managed queue with pipelining (Figure 6): throughput
/// x = (1 - 2 Lmessage[s]) / (Lpim + eps) ~= 1 / Lpim.
/// `epsilon_ns` is the PIM core's non-memory work per request (two L1
/// accesses plus issuing one message), negligible by default.
double pim_queue_pipelined(const LatencyParams& lp, double epsilon_ns = 0.0);

/// PIM queue without pipelining: the core stalls Lmessage per response.
double pim_queue_unpipelined(const LatencyParams& lp, double epsilon_ns = 0.0);

/// Short (single-segment) PIM queue: one core serves both enqueues and
/// dequeues, halving per-side throughput (end of Section 5.2).
double pim_queue_single_segment(const LatencyParams& lp,
                                double epsilon_ns = 0.0);

/// Section 5.2 crossovers: the PIM queue beats the FC queue iff
/// 2 r1 / r2 > 1, and beats the F&A queue iff r1 r3 > 1.
bool pim_beats_fc_queue(const LatencyParams& lp);
bool pim_beats_faa_queue(const LatencyParams& lp);

/// Minimum number of CPUs needed to keep the pipelined PIM core saturated:
/// 2 Lmessage / Lpim (Section 5.2).
std::size_t min_cpus_to_saturate_pim(const LatencyParams& lp);

}  // namespace pimds::model
