#include "model/skiplist_model.hpp"

#include <algorithm>
#include <cmath>

namespace pimds::model {

namespace {
constexpr double kNsToSec = 1e-9;
}

double estimate_beta(std::size_t size) {
  if (size < 2) return 1.0;
  return std::max(1.0, 2.0 * std::log2(static_cast<double>(size)));
}

double lock_free_skiplist(const LatencyParams& lp, double beta,
                          std::size_t p) {
  return static_cast<double>(p) / (beta * lp.cpu() * kNsToSec);
}

double fc_skiplist(const LatencyParams& lp, double beta) {
  return 1.0 / (beta * lp.cpu() * kNsToSec);
}

double pim_skiplist(const LatencyParams& lp, double beta) {
  return 1.0 / ((beta * lp.pim() + lp.message()) * kNsToSec);
}

double fc_skiplist_partitioned(const LatencyParams& lp, double beta,
                               std::size_t k) {
  return static_cast<double>(k) * fc_skiplist(lp, beta);
}

double pim_skiplist_partitioned(const LatencyParams& lp, double beta,
                                std::size_t k) {
  return static_cast<double>(k) * pim_skiplist(lp, beta);
}

std::size_t min_partitions_to_beat_lock_free(const LatencyParams& lp,
                                             double beta, std::size_t p) {
  const double threshold = static_cast<double>(p) *
                           (beta * lp.pim() + lp.message()) /
                           (beta * lp.cpu());
  // Strict inequality k > threshold.
  auto k = static_cast<std::size_t>(std::floor(threshold)) + 1;
  return std::max<std::size_t>(k, 1);
}

}  // namespace pimds::model
