// Closed-form queueing predictions for the vault mailbox.
//
// A PIM vault core drains one mailbox and serves each request in (nearly)
// deterministic time — the Section 3 cost model makes the per-op service
// time r3 * Lpim plus handler overhead, with no client-dependent variance.
// Under Poisson arrivals the mailbox is therefore an M/D/1 queue, and its
// sojourn time (wait + service) has a closed form:
//
//   rho  = lambda * s                    (utilization)
//   W    = s * (1 + rho / (2 (1 - rho))) (Pollaczek-Khinchine, D service)
//
// The tail decays geometrically: P(wait > t) ~ rho * e^(-theta t), where
// theta is the unique positive root of the Cramer-Lundberg equation
// lambda (e^(theta s) - 1) = theta. For exponential service the same
// equation gives theta = mu - lambda exactly (the M/M/1 result), which is
// how the Newton solver is validated in tests. Quantiles follow by
// inverting the tail: wait_q = max(0, ln(rho / (1-q)) / theta).
//
// M/M/1 (exponential service at the same mean) is also provided as the
// pessimistic envelope: real service has SOME variance, so measured tails
// should land between the M/D/1 prediction and the M/M/1 bound.
//
// Units: rates are per-nanosecond, times are nanoseconds, matching the
// rest of src/model.
#pragma once

namespace pimds::model {

struct LatencyPrediction {
  bool stable = false;  ///< rho < 1; when false the time fields are 0
  double rho = 0.0;     ///< lambda * s
  double mean_ns = 0.0; ///< mean sojourn (wait + service)
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

/// M/D/1 sojourn prediction from Poisson arrival rate `arrival_per_ns`
/// and deterministic service time `service_ns`.
LatencyPrediction mdl_sojourn(double arrival_per_ns, double service_ns);

/// M/M/1 sojourn (exponential service, same mean): the variance-pessimistic
/// envelope. Sojourn is exactly Exp(mu - lambda).
LatencyPrediction mm1_sojourn(double arrival_per_ns, double service_ns);

/// The waiting-time tail decay rate theta: unique positive root of
/// lambda (e^(theta s) - 1) = theta (Newton). Exposed for tests;
/// returns 0 when rho >= 1 or inputs are degenerate.
double mdl_tail_decay(double arrival_per_ns, double service_ns);

}  // namespace pimds::model
