#include "model/latency_model.hpp"

#include <cmath>

namespace pimds::model {

namespace {

/// Waiting-time quantile from the geometric tail P(wait > t) = rho *
/// e^(-theta t): zero while the quantile falls inside the atom at 0
/// (probability 1 - rho of not waiting at all).
double tail_quantile(double rho, double theta, double q) {
  if (theta <= 0.0) return 0.0;
  const double excess = rho / (1.0 - q);
  return excess <= 1.0 ? 0.0 : std::log(excess) / theta;
}

}  // namespace

double mdl_tail_decay(double arrival_per_ns, double service_ns) {
  if (arrival_per_ns <= 0.0 || service_ns <= 0.0) return 0.0;
  const double lambda = arrival_per_ns;
  const double s = service_ns;
  const double rho = lambda * s;
  if (rho >= 1.0) return 0.0;
  // f(theta) = lambda (e^(theta s) - 1) - theta is convex with f(0) = 0
  // and f'(0) = rho - 1 < 0, so it has one positive root. Seeding from
  // the quadratic truncation's root theta0 = 2 (1 - rho) / (rho s) lands
  // ABOVE the true root (the truncation under-counts f), from where
  // Newton on a convex function descends monotonically.
  double theta = 2.0 * (1.0 - rho) / (rho * s);
  for (int i = 0; i < 64; ++i) {
    const double e = std::exp(theta * s);
    const double f = lambda * (e - 1.0) - theta;
    const double fp = lambda * s * e - 1.0;
    if (fp <= 0.0) break;  // left of the minimum: seed failed, bail
    const double next = theta - f / fp;
    if (next <= 0.0) break;
    if (std::abs(next - theta) <= 1e-12 * theta) {
      theta = next;
      break;
    }
    theta = next;
  }
  return theta;
}

LatencyPrediction mdl_sojourn(double arrival_per_ns, double service_ns) {
  LatencyPrediction p;
  if (service_ns <= 0.0) return p;
  const double s = service_ns;
  const double lambda = arrival_per_ns > 0.0 ? arrival_per_ns : 0.0;
  p.rho = lambda * s;
  if (p.rho >= 1.0) return p;  // unstable: no finite prediction
  p.stable = true;
  // Pollaczek-Khinchine with deterministic service (C_s^2 = 0).
  p.mean_ns = s * (1.0 + p.rho / (2.0 * (1.0 - p.rho)));
  const double theta = mdl_tail_decay(lambda, s);
  p.p50_ns = s + tail_quantile(p.rho, theta, 0.50);
  p.p90_ns = s + tail_quantile(p.rho, theta, 0.90);
  p.p99_ns = s + tail_quantile(p.rho, theta, 0.99);
  p.p999_ns = s + tail_quantile(p.rho, theta, 0.999);
  return p;
}

LatencyPrediction mm1_sojourn(double arrival_per_ns, double service_ns) {
  LatencyPrediction p;
  if (service_ns <= 0.0) return p;
  const double s = service_ns;
  const double lambda = arrival_per_ns > 0.0 ? arrival_per_ns : 0.0;
  p.rho = lambda * s;
  if (p.rho >= 1.0) return p;
  p.stable = true;
  // Sojourn time in M/M/1 is exactly Exp(mu - lambda).
  const double rate = (1.0 - p.rho) / s;  // mu - lambda
  p.mean_ns = 1.0 / rate;
  p.p50_ns = -std::log(1.0 - 0.50) / rate;
  p.p90_ns = -std::log(1.0 - 0.90) / rate;
  p.p99_ns = -std::log(1.0 - 0.99) / rate;
  p.p999_ns = -std::log(1.0 - 0.999) / rate;
  return p;
}

}  // namespace pimds::model
