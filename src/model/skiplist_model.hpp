// Closed-form throughput model for skip-lists (Section 4.2, Table 2).
//
// beta is the average number of nodes an operation accesses to locate its
// key (Theta(log N)). The paper leaves beta abstract; callers either supply
// a measured value (SimSkipList::observed_beta) or use estimate_beta().
#pragma once

#include <cstddef>

#include "common/latency.hpp"

namespace pimds::model {

/// Rough analytic estimate of beta for a skip-list of `size` nodes with
/// tower probability 1/2: ~2 * log2(size) steps (one right-move and one
/// down-move per level on average), floored at 1.
double estimate_beta(std::size_t size);

/// Table 2 row 1: lock-free skip-list, p threads in parallel.
double lock_free_skiplist(const LatencyParams& lp, double beta, std::size_t p);

/// Table 2 row 2: flat-combining skip-list (single combiner).
double fc_skiplist(const LatencyParams& lp, double beta);

/// Table 2 row 3: PIM-managed skip-list (single vault).
double pim_skiplist(const LatencyParams& lp, double beta);

/// Table 2 row 4: flat-combining skip-list with k partitions.
double fc_skiplist_partitioned(const LatencyParams& lp, double beta,
                               std::size_t k);

/// Table 2 row 5: PIM-managed skip-list with k partitions.
double pim_skiplist_partitioned(const LatencyParams& lp, double beta,
                                std::size_t k);

/// Section 4.2 crossover: smallest k for which the partitioned PIM
/// skip-list out-throughputs the lock-free skip-list with p threads:
/// k > p (beta Lpim + Lmessage) / (beta Lcpu)   (~ p / r1 for large beta).
std::size_t min_partitions_to_beat_lock_free(const LatencyParams& lp,
                                             double beta, std::size_t p);

}  // namespace pimds::model
