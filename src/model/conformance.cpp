#include "model/conformance.hpp"

#include <cstdio>

namespace pimds::model {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

double ConformanceRow::divergence_pct() const noexcept {
  if (predicted_ops_per_sec == 0.0) return 0.0;
  return 100.0 * (measured_ops_per_sec - predicted_ops_per_sec) /
         predicted_ops_per_sec;
}

std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n" + in1 + "\"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConformanceRow& r = rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 + "{\"name\": \"" + escape(r.name) + "\"" +
           ", \"predicted_ops_per_sec\": " + fmt_double(r.predicted_ops_per_sec) +
           ", \"measured_ops_per_sec\": " + fmt_double(r.measured_ops_per_sec) +
           ", \"divergence_pct\": " + fmt_double(r.divergence_pct()) + "}";
  }
  out += rows.empty() ? "]" : "\n" + in1 + "]";
  out += "\n" + pad + "}";
  return out;
}

}  // namespace pimds::model
