#include "model/conformance.hpp"

#include <cstdio>

namespace pimds::model {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

double ConformanceRow::divergence_pct() const noexcept {
  if (predicted_ops_per_sec == 0.0) return 0.0;
  return 100.0 * (measured_ops_per_sec - predicted_ops_per_sec) /
         predicted_ops_per_sec;
}

double LatencyConformanceRow::mean_divergence_pct() const noexcept {
  if (predicted_mean_ns == 0.0) return 0.0;
  return 100.0 * (measured_mean_ns - predicted_mean_ns) / predicted_mean_ns;
}

double LatencyConformanceRow::p99_divergence_pct() const noexcept {
  if (predicted_p99_ns == 0.0) return 0.0;
  return 100.0 * (measured_p99_ns - predicted_p99_ns) / predicted_p99_ns;
}

std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             int indent) {
  return conformance_json(rows, {}, indent);
}

std::string conformance_json(const std::vector<ConformanceRow>& rows,
                             const std::vector<LatencyConformanceRow>& latency,
                             int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::string out = "{\n" + in1 + "\"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConformanceRow& r = rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += in2 + "{\"name\": \"" + escape(r.name) + "\"" +
           ", \"predicted_ops_per_sec\": " + fmt_double(r.predicted_ops_per_sec) +
           ", \"measured_ops_per_sec\": " + fmt_double(r.measured_ops_per_sec) +
           ", \"divergence_pct\": " + fmt_double(r.divergence_pct()) + "}";
  }
  out += rows.empty() ? "]" : "\n" + in1 + "]";
  if (!latency.empty()) {
    out += ",\n" + in1 + "\"latency\": [";
    for (std::size_t i = 0; i < latency.size(); ++i) {
      const LatencyConformanceRow& r = latency[i];
      out += i == 0 ? "\n" : ",\n";
      out += in2 + "{\"name\": \"" + escape(r.name) + "\"" +
             ", \"rho\": " + fmt_double(r.rho) +
             ", \"predicted_mean_ns\": " + fmt_double(r.predicted_mean_ns) +
             ", \"measured_mean_ns\": " + fmt_double(r.measured_mean_ns) +
             ", \"mean_divergence_pct\": " +
             fmt_double(r.mean_divergence_pct()) +
             ", \"predicted_p99_ns\": " + fmt_double(r.predicted_p99_ns) +
             ", \"measured_p99_ns\": " + fmt_double(r.measured_p99_ns) +
             ", \"p99_divergence_pct\": " + fmt_double(r.p99_divergence_pct()) +
             "}";
    }
    out += "\n" + in1 + "]";
  }
  out += "\n" + pad + "}";
  return out;
}

}  // namespace pimds::model
