#include "runtime/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_utils.hpp"
#include "common/timing.hpp"
#include "common/spinwait.hpp"
#include "obs/obs.hpp"

namespace pimds::runtime {

PimSystem::Core::Core(std::size_t id, const Config& config)
    : vault(std::make_unique<Vault>(id, config.vault_bytes)),
      mailbox(config.mailbox_capacity, config.mailbox_lanes) {
  const std::string prefix = "runtime.vault" + std::to_string(id);
  auto& registry = obs::Registry::instance();
  messages = &registry.counter(prefix + ".messages");
  busy_ns = &registry.counter(prefix + ".busy_ns");
  obs_handles.push_back(registry.register_counter(
      prefix + ".mailbox.send_full_spins", &mailbox.send_full_spins_counter()));
  obs_handles.push_back(registry.register_gauge(
      prefix + ".mailbox.pending_hwm", &mailbox.pending_hwm_gauge()));
  obs_handles.push_back(registry.register_histogram(
      prefix + ".mailbox.drain_batch", &mailbox.drain_batch_histogram()));
  obs_handles.push_back(registry.register_gauge(
      prefix + ".mailbox.lane_depth_hwm", &mailbox.lane_depth_hwm_gauge()));
  obs_handles.push_back(registry.register_gauge(
      prefix + ".mailbox.active_lanes", &mailbox.active_lanes_gauge()));
  obs_handles.push_back(registry.register_counter(
      prefix + ".mailbox.overflow_sends", &mailbox.overflow_sends_counter()));
}

Vault& PimCoreApi::vault() { return *system_.cores_[vault_id_]->vault; }

std::size_t PimCoreApi::num_vaults() const { return system_.num_vaults(); }

void PimCoreApi::send(std::size_t other_vault, Message m) {
  m.sender = static_cast<std::uint32_t>(vault_id_);
  system_.cores_[other_vault]->mailbox.send(m);
}

std::optional<Message> PimCoreApi::poll() {
  return system_.cores_[vault_id_]->mailbox.poll_ready();
}

std::size_t PimCoreApi::drain(std::vector<Message>& out, std::size_t max_n) {
  return system_.cores_[vault_id_]->mailbox.drain(out, max_n);
}

void PimCoreApi::charge_local_access(std::uint64_t n) const {
  auto& injector = LatencyInjector::instance();
  if (!injector.enabled()) return;
  spin_for_ns(static_cast<std::uint64_t>(injector.params().pim()) * n);
}

std::uint64_t PimCoreApi::reply_ready_ns() const {
  auto& injector = LatencyInjector::instance();
  if (!injector.enabled()) return 0;
  const auto lmsg = static_cast<std::uint64_t>(injector.params().message());
  // The response_flight phase is measured by the consumer (publish stamp →
  // delivery instant, ResponseSlot::await), not recorded here as the
  // modeled constant — see the degenerate-histogram fix in DESIGN.md §5e.
  if (system_.config_.pipelined_responses) return now_ns() + lmsg;
  // Unpipelined ablation: the core stalls until the reply would have been
  // received, then serves the next request (Section 5.2's "no pipelining"
  // column).
  spin_for_ns(lmsg);
  return 0;
}

PimSystem::PimSystem(Config config) : config_(config) {
  if (config_.num_vaults == 0) {
    throw std::invalid_argument("PimSystem needs at least one vault");
  }
  if (config_.drain_batch == 0) config_.drain_batch = 1;
  for (std::size_t v = 0; v < config_.num_vaults; ++v) {
    cores_.push_back(std::make_unique<Core>(v, config_));
  }
}

PimSystem::~PimSystem() { stop(); }

void PimSystem::set_handler(std::size_t vault, Handler handler) {
  if (started_) {
    throw std::logic_error("set_handler must precede start()");
  }
  cores_[vault]->handler = std::move(handler);
}

void PimSystem::set_batch_handler(std::size_t vault, BatchHandler handler) {
  if (started_) {
    throw std::logic_error("set_batch_handler must precede start()");
  }
  cores_[vault]->batch_handler = std::move(handler);
}

void PimSystem::set_idle_handler(std::size_t vault, IdleHandler handler) {
  if (started_) {
    throw std::logic_error("set_idle_handler must precede start()");
  }
  cores_[vault]->idle_handler = std::move(handler);
}

void PimSystem::start() {
  if (started_) return;
  // The injector is process-wide; configuring it here keeps instrumented
  // CPU-side structures and the PIM cores on the same parameters.
  LatencyInjector::instance().configure(config_.params);
  LatencyInjector::instance().set_enabled(config_.inject_latency);
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  for (std::size_t v = 0; v < cores_.size(); ++v) {
    cores_[v]->thread = std::thread([this, v] { core_loop(v); });
  }
}

void PimSystem::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& core : cores_) {
    if (core->thread.joinable()) core->thread.join();
  }
  started_ = false;
  // Undo the process-wide injection this system enabled, so unrelated code
  // running after shutdown is not slowed down.
  if (config_.inject_latency) {
    LatencyInjector::instance().set_enabled(false);
  }
}

void PimSystem::send(std::size_t vault, Message m) {
  if (!started_) {
    // A request sent with no core to serve it would spin its sender
    // forever on the response slot; fail fast instead.
    throw std::logic_error("PimSystem::send called while stopped");
  }
  cores_[vault]->mailbox.send(m);
}

std::uint64_t PimSystem::messages_processed(std::size_t vault) const noexcept {
  return cores_[vault]->processed.value.load(std::memory_order_relaxed);
}

std::uint64_t PimSystem::send_full_spins(std::size_t vault) const noexcept {
  return cores_[vault]->mailbox.send_full_spins();
}

std::uint64_t PimSystem::pending_high_water(std::size_t vault) const noexcept {
  return cores_[vault]->mailbox.pending_high_water();
}

void PimSystem::dispatch(PimCoreApi& api, Core& core, const Message* msgs,
                         std::size_t n) {
  // Latency attribution (obs/phase.hpp): the gap between a message's send
  // stamp and this dispatch splits into the modeled crossbar flight
  // (request_flight, exactly Lmessage under injection) and everything
  // beyond it (mailbox_queue — the transport's real queueing overhead).
  // A fat message carries fat_count operations, each of which experienced
  // that wait and keeps its own req_id, so combined ops are attributed and
  // traced per op, not per message. The vault_service phase is the full
  // handler window, attributed to every operation of the batch (each op
  // waits out the whole traversal before its reply publishes). Clock
  // discipline: one now_ns() read at each transition (t_dispatch, t_done),
  // shared across every per-op record at that boundary.
  const bool obs_on = obs::metrics_enabled();
  std::uint64_t t_dispatch = 0;
  std::size_t total_ops = 0;
  if (obs_on) {
    t_dispatch = now_ns();
    auto& injector = LatencyInjector::instance();
    const std::uint64_t lmsg =
        injector.enabled()
            ? static_cast<std::uint64_t>(injector.params().message())
            : 0;
    const bool tracing = obs::trace_enabled();
    for (std::size_t i = 0; i < n; ++i) {
      const Message& m = msgs[i];
      const std::uint64_t wait =
          t_dispatch > m.send_time_ns ? t_dispatch - m.send_time_ns : 0;
      const std::uint64_t flight = wait < lmsg ? wait : lmsg;
      const std::size_t ops = m.fat_count > 0 ? m.fat_count : 1;
      total_ops += ops;
      for (std::size_t k = 0; k < ops; ++k) {
        if (lmsg != 0) {
          obs::record_runtime_phase(obs::Phase::kRequestFlight, flight);
        }
        obs::record_runtime_phase(obs::Phase::kMailboxQueue, wait - flight);
      }
#ifndef PIMDS_OBS_DISABLED
      if (tracing) {
        if (m.fat_count > 0) {
          const FatEntry* entries = fat_entries(m);
          for (std::uint16_t j = 0; j < m.fat_count; ++j) {
            if (entries[j].req_id != 0) {
              obs::trace_instant_here("req_dispatch", "runtime",
                                      {"req", entries[j].req_id},
                                      {"wait_ns", wait});
            }
          }
        } else if (m.req_id != 0) {
          obs::trace_instant_here("req_dispatch", "runtime", {"req", m.req_id},
                                  {"wait_ns", wait});
        }
      }
#endif
    }
  }
  if (core.batch_handler) {
    core.batch_handler(api, msgs, n);
  } else if (core.handler) {
    for (std::size_t i = 0; i < n; ++i) core.handler(api, msgs[i]);
  }
  if (obs_on) {
    const std::uint64_t t_done = now_ns();
    // Every operation of the batch spends the WHOLE handler window on the
    // PIM core before its response is published (batch handlers publish at
    // the end of their traversal), so each op's vault_service is the full
    // window — the service latency the requester actually experiences, not
    // a 1/N share. The phases decompose per-op end-to-end latency; summed
    // across a batch they exceed the core's wall time by design (core
    // utilization lives in the metrics section, not here).
    const std::uint64_t window = t_done - t_dispatch;
    for (std::size_t i = 0; i < total_ops; ++i) {
      obs::record_runtime_phase(obs::Phase::kVaultService, window);
    }
    // Busy-time accumulator: windowed deltas of busy_ns over wall time give
    // per-vault utilization in the telemetry stream.
    core.busy_ns->add(window);
    if (obs::trace_enabled()) {
      obs::trace_complete_here("vault_service", "runtime", t_dispatch,
                               {"n", static_cast<std::uint64_t>(n)});
    }
  }
  core.processed.value.fetch_add(n, std::memory_order_relaxed);
  core.messages->add(n);
}

void PimSystem::core_loop(std::size_t vault_id) {
  Core& core = *cores_[vault_id];
  core.vault->bind_owner();
  if (config_.pin_cores) pin_to_cpu(vault_id);
  obs::name_this_thread("pim-core" + std::to_string(vault_id));
  PimCoreApi api(*this, vault_id);
  const std::uint64_t gather_ns =
      config_.drain_gather_window_ns != 0 ? config_.drain_gather_window_ns
      : config_.inject_latency
          ? static_cast<std::uint64_t>(config_.params.pim())
          : 0;
  SpinWait idle_spin;
  std::vector<Message> batch;
  batch.reserve(config_.drain_batch);
  for (;;) {
    batch.clear();
    std::size_t n = 0;
    if (config_.batch_drain) {
      n = core.mailbox.drain(batch, config_.drain_batch);
      // Gather window: a shallow batch with more arrivals imminently due
      // is worth one bounded sleep — the fold amortizes the batch's
      // fat-node charges across more ops (and on oversubscribed hosts the
      // sleep itself hands the CPU back to the senders).
      if (gather_ns != 0 && n > 0 && n < config_.drain_batch) {
        const std::uint64_t deadline = now_ns() + gather_ns;
        std::uint64_t next;
        while (n < config_.drain_batch &&
               (next = core.mailbox.next_pending_ready_ns()) != 0 &&
               next <= deadline) {
          wait_until_ns(next);
          n += core.mailbox.drain(batch, config_.drain_batch - n);
        }
      }
    } else if (std::optional<Message> m = core.mailbox.poll()) {
      // Seed per-message path (ablation): blocks on the head message's
      // delivery time, serializing the core at Lmessage + Lpim per op.
      batch.push_back(*m);
      n = 1;
    }
    if (n > 0) {
      if (obs::trace_enabled()) {
        const std::uint64_t t0 = now_ns();
        dispatch(api, core, batch.data(), n);
        obs::trace_complete_here("drain_batch", "runtime", t0,
                                 {"n", static_cast<std::uint64_t>(n)});
      } else {
        dispatch(api, core, batch.data(), n);
      }
      idle_spin.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Shutdown: drain stragglers (e.g. a segment hand-off sent by a peer
      // core) and let background idle work (e.g. an in-flight outgoing
      // migration) run to completion, interleaving the two since idle work
      // can generate further messages. Delivery times are ignored here —
      // the backlog must be processed, not lost. An idle handler that never
      // returns false would hang shutdown — background jobs must be finite.
      do {
        batch.clear();
        while ((n = core.mailbox.drain_all(batch)) > 0) {
          dispatch(api, core, batch.data(), n);
          batch.clear();
        }
      } while (core.idle_handler && core.idle_handler(api));
      return;
    }
    if (core.idle_handler && core.idle_handler(api)) {
      idle_spin.reset();
      continue;
    }
    // Every queued message is parked with a known delivery time (drain()
    // empties the ring into the pending heap before reporting 0), so sleep
    // toward the earliest one instead of churning the scheduler. Capped so
    // stop() and newly arriving ring messages stay responsive.
    if (const std::uint64_t next = core.mailbox.next_pending_ready_ns()) {
      wait_until_ns(std::min(next, now_ns() + 100'000));
      idle_spin.reset();
      continue;
    }
    idle_spin.wait();
  }
}

}  // namespace pimds::runtime
