#include "runtime/system.hpp"

#include <stdexcept>
#include <utility>

#include "common/timing.hpp"
#include "common/spinwait.hpp"

namespace pimds::runtime {

Vault& PimCoreApi::vault() { return *system_.cores_[vault_id_]->vault; }

std::size_t PimCoreApi::num_vaults() const { return system_.num_vaults(); }

void PimCoreApi::send(std::size_t other_vault, Message m) {
  m.sender = static_cast<std::uint32_t>(vault_id_);
  system_.cores_[other_vault]->mailbox.send(m);
}

std::optional<Message> PimCoreApi::poll() {
  return system_.cores_[vault_id_]->mailbox.poll();
}

void PimCoreApi::charge_local_access(std::uint64_t n) const {
  auto& injector = LatencyInjector::instance();
  if (!injector.enabled()) return;
  spin_for_ns(static_cast<std::uint64_t>(injector.params().pim()) * n);
}

std::uint64_t PimCoreApi::reply_ready_ns() const {
  auto& injector = LatencyInjector::instance();
  if (!injector.enabled()) return 0;
  return now_ns() + static_cast<std::uint64_t>(injector.params().message());
}

PimSystem::PimSystem(Config config) : config_(config) {
  if (config_.num_vaults == 0) {
    throw std::invalid_argument("PimSystem needs at least one vault");
  }
  for (std::size_t v = 0; v < config_.num_vaults; ++v) {
    cores_.push_back(std::make_unique<Core>(v, config_));
  }
}

PimSystem::~PimSystem() { stop(); }

void PimSystem::set_handler(std::size_t vault, Handler handler) {
  if (started_) {
    throw std::logic_error("set_handler must precede start()");
  }
  cores_[vault]->handler = std::move(handler);
}

void PimSystem::set_idle_handler(std::size_t vault, IdleHandler handler) {
  if (started_) {
    throw std::logic_error("set_idle_handler must precede start()");
  }
  cores_[vault]->idle_handler = std::move(handler);
}

void PimSystem::start() {
  if (started_) return;
  // The injector is process-wide; configuring it here keeps instrumented
  // CPU-side structures and the PIM cores on the same parameters.
  LatencyInjector::instance().configure(config_.params);
  LatencyInjector::instance().set_enabled(config_.inject_latency);
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  for (std::size_t v = 0; v < cores_.size(); ++v) {
    cores_[v]->thread = std::thread([this, v] { core_loop(v); });
  }
}

void PimSystem::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& core : cores_) {
    if (core->thread.joinable()) core->thread.join();
  }
  started_ = false;
  // Undo the process-wide injection this system enabled, so unrelated code
  // running after shutdown is not slowed down.
  if (config_.inject_latency) {
    LatencyInjector::instance().set_enabled(false);
  }
}

void PimSystem::send(std::size_t vault, Message m) {
  if (!started_) {
    // A request sent with no core to serve it would spin its sender
    // forever on the response slot; fail fast instead.
    throw std::logic_error("PimSystem::send called while stopped");
  }
  cores_[vault]->mailbox.send(m);
}

std::uint64_t PimSystem::messages_processed(std::size_t vault) const noexcept {
  return cores_[vault]->processed.value.load(std::memory_order_relaxed);
}

void PimSystem::core_loop(std::size_t vault_id) {
  Core& core = *cores_[vault_id];
  core.vault->bind_owner();
  PimCoreApi api(*this, vault_id);
  SpinWait idle_spin;
  for (;;) {
    std::optional<Message> m = core.mailbox.poll();
    if (m.has_value()) {
      if (core.handler) core.handler(api, *m);
      core.processed.value.fetch_add(1, std::memory_order_relaxed);
      idle_spin.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Shutdown: drain stragglers (e.g. a segment hand-off sent by a peer
      // core) and let background idle work (e.g. an in-flight outgoing
      // migration) run to completion, interleaving the two since idle work
      // can generate further messages. An idle handler that never returns
      // false would hang shutdown — background jobs must be finite.
      do {
        while ((m = core.mailbox.poll())) {
          if (core.handler) core.handler(api, *m);
          core.processed.value.fetch_add(1, std::memory_order_relaxed);
        }
      } while (core.idle_handler && core.idle_handler(api));
      return;
    }
    if (core.idle_handler && core.idle_handler(api)) {
      idle_spin.reset();
      continue;
    }
    idle_spin.wait();
  }
}

}  // namespace pimds::runtime
