// PIM-core mailbox: many CPU/PIM senders, one PIM-core receiver.
//
// Messages are timestamped at send; when latency injection is enabled a
// message becomes *deliverable* at send_time + Lmessage, emulating the
// crossbar transfer without blocking the sender.
//
// The receiver-side API is built around batch drain + deferred delivery
// (the Section 5.2 pipelining substrate):
//  - drain() pops every already-deliverable message in one pass and parks
//    not-yet-deliverable ones in a small pending min-heap instead of
//    spinning the core. The core never stalls head-of-line on a message
//    that is still "in flight" — it serves whatever is ready, which is what
//    lets its service rate approach 1/Lpim instead of 1/(Lmessage + Lpim).
//  - poll() keeps the legacy per-message semantics (block until the next
//    message's delivery time) for the ablation/compat path.
//
// FIFO per sender-receiver pair holds across all of these: the ring assigns
// tickets in send order, a single sender's sends are program-ordered, and
// the pending heap orders by (ready_ns, arrival) where ready_ns is monotone
// per sender (send_time is monotone, Lmessage is constant).
//
// Thread-safety: send() is safe from any number of threads; drain()/poll()/
// drain_all()/empty() are receiver-only (the owning PIM-core thread).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/backoff.hpp"
#include "common/latency.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spinwait.hpp"
#include "common/timing.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "runtime/message.hpp"

namespace pimds::runtime {

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 4096) : ring_(capacity) {}

  /// Enqueue a message. Backs off (bounded exponential) while the ring is
  /// full and counts the stalls, so saturation shows up in stats instead of
  /// as a mystery CPU burn.
  void send(Message m) {
    m.send_time_ns = now_ns();
    if (ring_.try_push(m)) return;
    Backoff backoff;
    do {
      send_full_spins_.add(1);
      backoff.pause();
    } while (!ring_.try_push(m));
  }

  /// Pop every deliverable message (up to `max_n`) into `out` in one pass.
  /// Messages whose delivery time has not arrived are parked in the pending
  /// heap rather than blocking the caller. Returns the number appended.
  std::size_t drain(std::vector<Message>& out, std::size_t max_n) {
    auto& injector = LatencyInjector::instance();
    std::size_t n = 0;
    if (!injector.enabled()) {
      // No injection: everything is deliverable the moment it is popped.
      while (n < max_n && !pending_.empty()) {
        out.push_back(pop_pending());
        ++n;
      }
      while (n < max_n) {
        std::optional<Message> m = ring_.try_pop();
        if (!m) break;
        out.push_back(*m);
        ++n;
      }
      if (n > 0) drain_batch_.record(n);
      return n;
    }
    // Pull the whole ring into the pending heap first so an earlier-sent
    // parked message can never be overtaken by a later ring arrival.
    park_ring(static_cast<std::uint64_t>(injector.params().message()));
    const std::uint64_t now = now_ns();
    while (n < max_n && !pending_.empty() &&
           pending_.front().ready_ns <= now) {
      out.push_back(pop_pending());
      ++n;
    }
    if (n > 0) drain_batch_.record(n);
    return n;
  }

  /// Non-blocking single-message receive: the next deliverable message, or
  /// nullopt if none is ready yet (used by handler-side combining drains).
  std::optional<Message> poll_ready() {
    auto& injector = LatencyInjector::instance();
    if (!injector.enabled()) {
      if (!pending_.empty()) return pop_pending();
      return ring_.try_pop();
    }
    park_ring(static_cast<std::uint64_t>(injector.params().message()));
    if (!pending_.empty() && pending_.front().ready_ns <= now_ns()) {
      return pop_pending();
    }
    return std::nullopt;
  }

  /// Legacy per-message receive: pop the next message and busy-wait until
  /// its delivery time. Kept for the seed-path ablation (the head-of-line
  /// stall this models is exactly what drain() removes).
  std::optional<Message> poll() {
    auto& injector = LatencyInjector::instance();
    if (injector.enabled()) {
      park_ring(static_cast<std::uint64_t>(injector.params().message()));
    }
    if (!pending_.empty()) {
      const std::uint64_t ready = pending_.front().ready_ns;
      Message m = pop_pending();
      while (now_ns() < ready) cpu_relax();
      return m;
    }
    return ring_.try_pop();
  }

  /// Drain everything regardless of delivery time (shutdown: the backlog
  /// must be processed, not lost). Returns the number appended.
  std::size_t drain_all(std::vector<Message>& out) {
    std::size_t n = 0;
    while (!pending_.empty()) {
      out.push_back(pop_pending());
      ++n;
    }
    while (std::optional<Message> m = ring_.try_pop()) {
      out.push_back(*m);
      ++n;
    }
    return n;
  }

  /// Delivery time of the earliest parked message, or 0 if none is parked
  /// (receiver-only; lets an idle core size its wait).
  std::uint64_t next_pending_ready_ns() const noexcept {
    return pending_.empty() ? 0 : pending_.front().ready_ns;
  }

  /// True when nothing is queued or parked (exact only on the receiver
  /// thread with senders quiesced).
  bool empty() const noexcept { return pending_.empty() && ring_.empty(); }

  /// Total backoff pauses taken by senders that found the ring full.
  std::uint64_t send_full_spins() const noexcept {
    return send_full_spins_.value();
  }

  /// High-water mark of the pending (in-flight) heap size.
  std::uint64_t pending_high_water() const noexcept {
    return pending_hwm_.value();
  }

  /// Per-instance metrics, exposed so an owner (PimSystem) can register
  /// them with the process-wide obs::Registry under vault-scoped names.
  const obs::Counter& send_full_spins_counter() const noexcept {
    return send_full_spins_;
  }
  const obs::Gauge& pending_hwm_gauge() const noexcept {
    return pending_hwm_;
  }
  const obs::Histogram& drain_batch_histogram() const noexcept {
    return drain_batch_;
  }

 private:
  struct Pending {
    std::uint64_t ready_ns;
    std::uint64_t seq;  ///< arrival order, breaks ready_ns ties FIFO
    Message msg;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      if (a.ready_ns != b.ready_ns) return a.ready_ns > b.ready_ns;
      return a.seq > b.seq;
    }
  };

  void park_ring(std::uint64_t lmsg) {
    while (std::optional<Message> m = ring_.try_pop()) {
      pending_.push_back(Pending{m->send_time_ns + lmsg, pending_seq_++, *m});
      std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
    }
    pending_hwm_.record_max(pending_.size());
  }

  Message pop_pending() {
    std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
    Message m = pending_.back().msg;
    pending_.pop_back();
    return m;
  }

  MpmcQueue<Message> ring_;
  std::vector<Pending> pending_;  ///< min-heap by (ready_ns, seq); receiver-only
  std::uint64_t pending_seq_ = 0;
  obs::Counter send_full_spins_;
  obs::Gauge pending_hwm_;
  obs::Histogram drain_batch_;
};

/// One-shot response slot a CPU thread waits on. Single producer (the PIM
/// core serving the request), single consumer (the requesting CPU), reused
/// across requests by the same CPU.
template <typename R>
class ResponseSlot {
 public:
  /// Producer: publish a response that becomes visible at `ready_ns`
  /// (pass 0 for "immediately").
  void publish(R value, std::uint64_t ready_ns = 0) {
    value_ = std::move(value);
    ready_ns_.value.store(ready_ns, std::memory_order_relaxed);
    full_.value.store(true, std::memory_order_release);
  }

  /// Consumer: wait until a response is published AND its delivery time has
  /// passed, then consume it. The publish wait escalates to yielding
  /// (SpinWait) so oversubscribed runs (threads > cores) cannot livelock the
  /// publisher; the post-publish delivery wait has a known deadline, so it
  /// escalates further — spin, then yield, then sleep through long in-flight
  /// windows (wait_until_ns) instead of churning the scheduler.
  R await() {
    SpinWait spin;
    while (!full_.value.load(std::memory_order_acquire)) spin.wait();
    const std::uint64_t ready = ready_ns_.value.load(std::memory_order_relaxed);
    if (ready != 0) {
      wait_until_ns(ready);
      // Latency attribution: time past the delivery deadline is consumer
      // wakeup overhead, the only phase the requester itself can observe.
      if (obs::metrics_enabled()) {
        const std::uint64_t now = now_ns();
        obs::record_runtime_phase(obs::Phase::kCpuReceive,
                                  now > ready ? now - ready : 0);
      }
    }
    R out = std::move(value_);
    full_.value.store(false, std::memory_order_release);
    return out;
  }

 private:
  R value_{};
  CachePadded<std::atomic<std::uint64_t>> ready_ns_{0};
  CachePadded<std::atomic<bool>> full_{false};
};

}  // namespace pimds::runtime
