// PIM-core mailbox: many CPU/PIM senders, one PIM-core receiver.
//
// Messages are timestamped at send; when latency injection is enabled the
// receiver defers processing until send_time + Lmessage has elapsed,
// emulating the crossbar transfer without blocking the sender (this is what
// makes the Section 5.2 pipelining optimization expressible: responses are
// in flight while the core serves the next request).
//
// FIFO per sender-receiver pair holds because the underlying ring assigns
// tickets in send order and a single sender's sends are program-ordered.
#pragma once

#include <optional>

#include "common/latency.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spinwait.hpp"
#include "common/timing.hpp"
#include "runtime/message.hpp"

namespace pimds::runtime {

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 4096) : ring_(capacity) {}

  /// Enqueue a message (spins if the ring is momentarily full).
  void send(Message m) {
    m.send_time_ns = now_ns();
    ring_.push(m);
  }

  /// Dequeue the next message, honoring its delivery time when injection is
  /// on. Returns nullopt if the mailbox is empty.
  std::optional<Message> poll() {
    std::optional<Message> m = ring_.try_pop();
    if (m && LatencyInjector::instance().enabled()) {
      const auto lmsg = static_cast<std::uint64_t>(
          LatencyInjector::instance().params().message());
      const std::uint64_t ready = m->send_time_ns + lmsg;
      while (now_ns() < ready) cpu_relax();
    }
    return m;
  }

  bool empty() const noexcept { return ring_.empty(); }

 private:
  MpmcQueue<Message> ring_;
};

/// One-shot response slot a CPU thread waits on. Single producer (the PIM
/// core serving the request), single consumer (the requesting CPU), reused
/// across requests by the same CPU.
template <typename R>
class ResponseSlot {
 public:
  /// Producer: publish a response that becomes visible at `ready_ns`
  /// (pass 0 for "immediately").
  void publish(R value, std::uint64_t ready_ns = 0) {
    value_ = std::move(value);
    ready_ns_.value.store(ready_ns, std::memory_order_relaxed);
    full_.value.store(true, std::memory_order_release);
  }

  /// Consumer: spin until a response is published AND its delivery time has
  /// passed, then consume it.
  R await() {
    SpinWait spin;
    while (!full_.value.load(std::memory_order_acquire)) spin.wait();
    const std::uint64_t ready = ready_ns_.value.load(std::memory_order_relaxed);
    while (now_ns() < ready) cpu_relax();
    R out = std::move(value_);
    full_.value.store(false, std::memory_order_release);
    return out;
  }

 private:
  R value_{};
  CachePadded<std::atomic<std::uint64_t>> ready_ns_{0};
  CachePadded<std::atomic<bool>> full_{false};
};

}  // namespace pimds::runtime
