// PIM-core mailbox: many CPU/PIM senders, one PIM-core receiver.
//
// Transport: cache-line-padded per-sender lock-free SPSC lanes
// (common/spsc_ring.hpp). The first time a thread sends to a mailbox it
// claims a private lane (lazily allocated, capacity = the full mailbox
// capacity) and caches the binding thread-locally, so the steady-state send
// is one SPSC push — no CAS, no cross-sender cache-line traffic. Senders
// beyond the lane supply share a Vyukov MPMC overflow ring (counted, so
// saturating the lane table is visible in stats). The receiver drains the
// lanes in a fair round-robin sweep, a bounded chunk per lane per pass, so
// one chatty sender cannot starve the others.
//
// Messages are timestamped at send; when latency injection is enabled a
// message becomes *deliverable* at send_time + Lmessage, emulating the
// crossbar transfer without blocking the sender.
//
// The receiver-side API is built around batch drain + deferred delivery
// (the Section 5.2 pipelining substrate):
//  - drain() pops every already-deliverable message in one pass and parks
//    not-yet-deliverable ones in a small pending min-heap instead of
//    spinning the core. The core never stalls head-of-line on a message
//    that is still "in flight" — it serves whatever is ready, which is what
//    lets its service rate approach 1/Lpim instead of 1/(Lmessage + Lpim).
//  - poll() keeps the legacy per-message semantics (block until the next
//    message's delivery time) for the ablation/compat path.
//
// FIFO per sender-receiver pair holds across all of these: a sender's lane
// preserves its program order, the round-robin sweep consumes each lane in
// order, and under injection every lane is parked into the pending heap
// before delivery-time ordering applies — the heap orders by (ready_ns,
// arrival) where ready_ns is monotone per sender (send_time is monotone,
// Lmessage is constant). The thread-local lane binding is stable while a
// thread's working set of mailboxes stays within kSenderCacheCap (far
// above any fan-out here); an evicted-and-rebound sender still gets FIFO
// under injection via the monotone ready_ns ordering.
//
// Thread-safety: send() is safe from any number of threads; drain()/poll()/
// drain_all()/empty() are receiver-only (the owning PIM-core thread).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/backoff.hpp"
#include "common/latency.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spinwait.hpp"
#include "common/spsc_ring.hpp"
#include "common/timing.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "runtime/message.hpp"

namespace pimds::runtime {

class Mailbox {
 public:
  /// Per-sender lanes before senders fall back to the overflow ring.
  static constexpr std::size_t kDefaultLanes = 32;
  /// Messages consumed per lane per round-robin pass (fairness bound).
  static constexpr std::size_t kLaneChunk = 8;
  /// Mailbox bindings cached per sender thread before LRU eviction.
  static constexpr std::size_t kSenderCacheCap = 64;

  explicit Mailbox(std::size_t capacity = 4096,
                   std::size_t max_lanes = kDefaultLanes)
      : capacity_(capacity < 2 ? 2 : capacity),
        max_lanes_(max_lanes < 1 ? 1 : max_lanes),
        id_(next_mailbox_id()),
        lanes_(new Lane[max_lanes < 1 ? 1 : max_lanes]),
        overflow_(capacity_) {}

  ~Mailbox() {
    const std::size_t nl = claimed_lanes();
    for (std::size_t i = 0; i < nl; ++i) {
      delete lanes_[i].ring.load(std::memory_order_acquire);
    }
    delete[] lanes_;
    // Stale thread-local bindings to this mailbox are harmless: ids are
    // process-unique and never reused, so they can only miss, never alias.
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueue a message onto the calling thread's private lane (claimed on
  /// first send). Backs off (bounded exponential) while the lane is full
  /// and counts the stalls, so saturation shows up in stats instead of as
  /// a mystery CPU burn.
  void send(Message m) {
    m.send_time_ns = now_ns();
    if (SpscRing<Message>* lane = sender_lane()) {
      if (lane->try_push(m)) return;
      Backoff backoff;
      do {
        send_full_spins_.add(1);
        backoff.pause();
      } while (!lane->try_push(m));
      return;
    }
    // Lane table exhausted: shared MPMC overflow path.
    overflow_sends_.add(1);
    if (overflow_.try_push(m)) return;
    Backoff backoff;
    do {
      send_full_spins_.add(1);
      backoff.pause();
    } while (!overflow_.try_push(m));
  }

  /// Pop every deliverable message (up to `max_n`) into `out` in one pass.
  /// Messages whose delivery time has not arrived are parked in the pending
  /// heap rather than blocking the caller. Returns the number appended.
  std::size_t drain(std::vector<Message>& out, std::size_t max_n) {
    auto& injector = LatencyInjector::instance();
    std::size_t n = 0;
    if (!injector.enabled()) {
      // No injection: everything is deliverable the moment it is popped.
      while (n < max_n && !pending_.empty()) {
        out.push_back(pop_pending());
        ++n;
      }
      n += sweep(out, max_n - n);
      if (n > 0) drain_batch_.record(n);
      return n;
    }
    // Park every lane into the pending heap first so an earlier-sent
    // parked message can never be overtaken by a later lane arrival.
    park_all(static_cast<std::uint64_t>(injector.params().message()));
    const std::uint64_t now = now_ns();
    while (n < max_n && !pending_.empty() &&
           pending_.front().ready_ns <= now) {
      out.push_back(pop_pending());
      ++n;
    }
    if (n > 0) drain_batch_.record(n);
    return n;
  }

  /// Non-blocking single-message receive: the next deliverable message, or
  /// nullopt if none is ready yet (used by handler-side combining drains).
  std::optional<Message> poll_ready() {
    auto& injector = LatencyInjector::instance();
    if (!injector.enabled()) {
      if (!pending_.empty()) return pop_pending();
      return pop_one();
    }
    park_all(static_cast<std::uint64_t>(injector.params().message()));
    if (!pending_.empty() && pending_.front().ready_ns <= now_ns()) {
      return pop_pending();
    }
    return std::nullopt;
  }

  /// Legacy per-message receive: pop the next message and busy-wait until
  /// its delivery time. Kept for the seed-path ablation (the head-of-line
  /// stall this models is exactly what drain() removes).
  std::optional<Message> poll() {
    auto& injector = LatencyInjector::instance();
    if (injector.enabled()) {
      park_all(static_cast<std::uint64_t>(injector.params().message()));
    }
    if (!pending_.empty()) {
      const std::uint64_t ready = pending_.front().ready_ns;
      Message m = pop_pending();
      while (now_ns() < ready) cpu_relax();
      return m;
    }
    return pop_one();
  }

  /// Drain everything regardless of delivery time (shutdown: the backlog
  /// must be processed, not lost). Returns the number appended.
  std::size_t drain_all(std::vector<Message>& out) {
    std::size_t n = 0;
    while (!pending_.empty()) {
      out.push_back(pop_pending());
      ++n;
    }
    n += sweep(out, std::numeric_limits<std::size_t>::max());
    return n;
  }

  /// Delivery time of the earliest parked message, or 0 if none is parked
  /// (receiver-only; lets an idle core size its wait).
  std::uint64_t next_pending_ready_ns() const noexcept {
    return pending_.empty() ? 0 : pending_.front().ready_ns;
  }

  /// True when nothing is queued or parked (exact only on the receiver
  /// thread with senders quiesced).
  bool empty() const noexcept {
    if (!pending_.empty() || !overflow_.empty()) return false;
    const std::size_t nl = claimed_lanes();
    for (std::size_t i = 0; i < nl; ++i) {
      SpscRing<Message>* ring = lanes_[i].ring.load(std::memory_order_acquire);
      if (ring != nullptr && !ring->empty()) return false;
    }
    return true;
  }

  /// Total backoff pauses taken by senders that found their lane (or the
  /// overflow ring) full.
  std::uint64_t send_full_spins() const noexcept {
    return send_full_spins_.value();
  }

  /// High-water mark of the pending (in-flight) heap size.
  std::uint64_t pending_high_water() const noexcept {
    return pending_hwm_.value();
  }

  /// Lanes claimed by distinct sender threads so far.
  std::size_t active_lanes() const noexcept { return claimed_lanes(); }

  /// Sends routed through the shared overflow ring (lane table full).
  std::uint64_t overflow_sends() const noexcept {
    return overflow_sends_.value();
  }

  /// Per-instance metrics, exposed so an owner (PimSystem) can register
  /// them with the process-wide obs::Registry under vault-scoped names.
  const obs::Counter& send_full_spins_counter() const noexcept {
    return send_full_spins_;
  }
  const obs::Gauge& pending_hwm_gauge() const noexcept {
    return pending_hwm_;
  }
  const obs::Histogram& drain_batch_histogram() const noexcept {
    return drain_batch_;
  }
  const obs::Gauge& lane_depth_hwm_gauge() const noexcept {
    return lane_depth_hwm_;
  }
  const obs::Gauge& active_lanes_gauge() const noexcept {
    return active_lanes_;
  }
  const obs::Counter& overflow_sends_counter() const noexcept {
    return overflow_sends_;
  }

 private:
  struct alignas(kCacheLineSize) Lane {
    std::atomic<SpscRing<Message>*> ring{nullptr};
  };

  struct Pending {
    std::uint64_t ready_ns;
    std::uint64_t seq;  ///< arrival order, breaks ready_ns ties FIFO
    Message msg;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      if (a.ready_ns != b.ready_ns) return a.ready_ns > b.ready_ns;
      return a.seq > b.seq;
    }
  };

  /// A sender thread's cached mailbox→lane binding (nullptr ring = this
  /// thread is an overflow sender for that mailbox).
  struct LaneBinding {
    std::uint64_t box_id;
    SpscRing<Message>* ring;
  };

  static std::uint64_t next_mailbox_id() noexcept {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t claimed_lanes() const noexcept {
    return std::min(next_lane_.load(std::memory_order_acquire), max_lanes_);
  }

  /// The calling thread's lane into this mailbox, claiming one on first
  /// use. MRU-ordered thread-local cache: the common case (a CPU thread
  /// ping-ponging between a couple of vault mailboxes) hits in the first
  /// probe or two.
  SpscRing<Message>* sender_lane() {
    thread_local std::vector<LaneBinding> cache;
    for (std::size_t i = 0; i < cache.size(); ++i) {
      if (cache[i].box_id == id_) {
        SpscRing<Message>* ring = cache[i].ring;
        if (i > 0) std::swap(cache[i], cache[i - 1]);  // age toward MRU
        return ring;
      }
    }
    SpscRing<Message>* ring = nullptr;
    const std::size_t lane =
        next_lane_.fetch_add(1, std::memory_order_acq_rel);
    if (lane < max_lanes_) {
      ring = new SpscRing<Message>(capacity_);
      lanes_[lane].ring.store(ring, std::memory_order_release);
      active_lanes_.record_max(lane + 1);
    }
    if (cache.size() >= kSenderCacheCap) cache.pop_back();  // evict LRU
    cache.insert(cache.begin(), LaneBinding{id_, ring});
    return ring;
  }

  /// Receiver-only round-robin sweep over the lanes + overflow ring,
  /// kLaneChunk per lane per pass. Rotates the starting lane across calls
  /// so no lane is structurally favored.
  std::size_t sweep(std::vector<Message>& out, std::size_t max_n) {
    if (max_n == 0) return 0;
    const std::size_t nl = claimed_lanes();
    std::size_t n = 0;
    bool progress = true;
    while (n < max_n && progress) {
      progress = false;
      for (std::size_t i = 0; i < nl && n < max_n; ++i) {
        SpscRing<Message>* ring =
            lanes_[(rr_ + i) % nl].ring.load(std::memory_order_acquire);
        if (ring == nullptr) continue;
        lane_depth_hwm_.record_max(ring->size());
        const std::size_t got = ring->consume(
            [&](Message&& m) { out.push_back(std::move(m)); },
            std::min(kLaneChunk, max_n - n));
        if (got > 0) {
          n += got;
          progress = true;
        }
      }
      while (n < max_n) {
        std::optional<Message> m = overflow_.try_pop();
        if (!m) break;
        out.push_back(*m);
        ++n;
        progress = true;
      }
    }
    if (nl > 0) rr_ = (rr_ + 1) % nl;
    return n;
  }

  /// Receiver-only single pop (no delivery-time handling).
  std::optional<Message> pop_one() {
    const std::size_t nl = claimed_lanes();
    for (std::size_t i = 0; i < nl; ++i) {
      SpscRing<Message>* ring =
          lanes_[(rr_ + i) % nl].ring.load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      if (std::optional<Message> m = ring->try_pop()) {
        rr_ = (rr_ + i + 1) % nl;
        return m;
      }
    }
    return overflow_.try_pop();
  }

  /// Move every queued message into the pending heap with its delivery
  /// time. Per-sender FIFO survives the heap because ready_ns is monotone
  /// per sender and seq preserves each lane's consume order.
  void park_all(std::uint64_t lmsg) {
    const std::size_t nl = claimed_lanes();
    for (std::size_t i = 0; i < nl; ++i) {
      SpscRing<Message>* ring = lanes_[i].ring.load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      lane_depth_hwm_.record_max(ring->size());
      ring->consume(
          [&](Message&& m) { park(std::move(m), lmsg); },
          std::numeric_limits<std::size_t>::max());
    }
    while (std::optional<Message> m = overflow_.try_pop()) park(*m, lmsg);
    pending_hwm_.record_max(pending_.size());
  }

  void park(Message m, std::uint64_t lmsg) {
    pending_.push_back(Pending{m.send_time_ns + lmsg, pending_seq_++, m});
    std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
  }

  Message pop_pending() {
    std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
    Message m = pending_.back().msg;
    pending_.pop_back();
    return m;
  }

  std::size_t capacity_;   ///< per-lane (and overflow) ring capacity
  std::size_t max_lanes_;
  std::uint64_t id_;       ///< process-unique, never reused
  Lane* lanes_;            ///< fixed table; rings allocated lazily on claim
  std::atomic<std::size_t> next_lane_{0};
  MpmcQueue<Message> overflow_;
  std::size_t rr_ = 0;     ///< round-robin sweep start; receiver-only
  std::vector<Pending> pending_;  ///< min-heap by (ready_ns, seq); receiver-only
  std::uint64_t pending_seq_ = 0;
  obs::Counter send_full_spins_;
  obs::Counter overflow_sends_;
  obs::Gauge pending_hwm_;
  obs::Gauge lane_depth_hwm_;
  obs::Gauge active_lanes_;
  obs::Histogram drain_batch_;
};

/// One-shot response slot a CPU thread waits on. Single producer (the PIM
/// core serving the request), single consumer (the requesting CPU), reused
/// across requests by the same CPU.
template <typename R>
class ResponseSlot {
 public:
  /// Producer: publish a response that becomes visible at `ready_ns`
  /// (pass 0 for "immediately"). The publish instant is stamped so the
  /// consumer can attribute the measured flight time (publish → delivery)
  /// instead of the modeled constant.
  void publish(R value, std::uint64_t ready_ns = 0) {
    value_ = std::move(value);
    ready_ns_.value.store(ready_ns, std::memory_order_relaxed);
    pub_ns_.store(obs::metrics_enabled() ? now_ns() : 0,
                  std::memory_order_relaxed);
    full_.value.store(true, std::memory_order_release);
  }

  /// Consumer: wait until a response is published AND its delivery time has
  /// passed, then consume it. The publish wait escalates to yielding
  /// (SpinWait) so oversubscribed runs (threads > cores) cannot livelock the
  /// publisher; the post-publish delivery wait has a known deadline, so it
  /// escalates further — spin, then yield, then sleep through long in-flight
  /// windows (wait_until_ns) instead of churning the scheduler.
  ///
  /// Latency attribution (single-timestamp discipline: one now_ns() per
  /// transition, shared across the phase boundary):
  ///  - response_flight = delivery instant − publish stamp, the *measured*
  ///    crossing (varies with where in the batch the publish landed);
  ///  - cpu_receive = consumer wakeup instant − delivery instant, the only
  ///    phase the requester itself can observe.
  R await() {
    SpinWait spin;
    while (!full_.value.load(std::memory_order_acquire)) spin.wait();
    const bool obs_on = obs::metrics_enabled();
    const std::uint64_t ready = ready_ns_.value.load(std::memory_order_relaxed);
    std::uint64_t t_wake = (obs_on || ready != 0) ? now_ns() : 0;
    if (ready != 0 && t_wake < ready) {
      wait_until_ns(ready);
      t_wake = now_ns();
    }
    if (obs_on) {
      const std::uint64_t t_pub = pub_ns_.load(std::memory_order_relaxed);
      // Consumable at the later of "published" and "off the wire".
      const std::uint64_t t_deliver = std::max(t_pub, std::min(ready, t_wake));
      if (ready != 0) {
        obs::record_runtime_phase(
            obs::Phase::kResponseFlight,
            t_deliver > t_pub ? t_deliver - t_pub : 0);
      }
      obs::record_runtime_phase(obs::Phase::kCpuReceive,
                                t_wake > t_deliver ? t_wake - t_deliver : 0);
    }
    R out = std::move(value_);
    full_.value.store(false, std::memory_order_release);
    return out;
  }

 private:
  R value_{};
  CachePadded<std::atomic<std::uint64_t>> ready_ns_{0};
  /// Publish stamp; producer-written before the full_ release like
  /// ready_ns_, consumer-read after the acquire (relaxed suffices).
  std::atomic<std::uint64_t> pub_ns_{0};
  CachePadded<std::atomic<bool>> full_{false};
};

}  // namespace pimds::runtime
