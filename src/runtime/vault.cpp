#include "runtime/vault.hpp"

#include <cassert>
#include <cstring>

#include "obs/metrics.hpp"

namespace pimds::runtime {

namespace {
// Process-wide allocator traffic across all vaults (per-vault split is not
// worth a field per Vault: the interesting signal is total churn and the
// bytes high-water mark, which record_max folds across vaults).
struct VaultMetrics {
  obs::Counter& allocs = obs::Registry::instance().counter("runtime.vault.allocs");
  obs::Counter& frees = obs::Registry::instance().counter("runtime.vault.frees");
  obs::Gauge& bytes_hwm =
      obs::Registry::instance().gauge("runtime.vault.bytes_hwm");
};
VaultMetrics& vault_metrics() {
  static VaultMetrics m;
  return m;
}
}  // namespace

Vault::Vault(std::size_t vault_id, std::size_t capacity_bytes)
    : id_(vault_id),
      capacity_(capacity_bytes),
      arena_(new std::byte[capacity_bytes]) {}

void Vault::assert_owner() const noexcept {
  assert((owner_ == std::thread::id{} || owner_ == std::this_thread::get_id()) &&
         "vault accessed from a thread other than its PIM core");
}

std::size_t Vault::size_class(std::size_t bytes) noexcept {
  if (bytes <= 16) return 0;
  if (bytes <= 32) return 1;
  if (bytes <= 64) return 2;
  if (bytes <= 128) return 3;
  if (bytes <= 256) return 4;
  return kNumClasses;  // not recycled
}

void* Vault::allocate(std::size_t bytes, std::size_t alignment) {
  assert_owner();
  const std::size_t cls = size_class(bytes);
  if (cls < kNumClasses && free_lists_[cls] != nullptr &&
      alignment <= alignof(std::max_align_t)) {
    void* p = free_lists_[cls];
    std::memcpy(&free_lists_[cls], p, sizeof(void*));
    used_ += bytes;
    ++allocs_;
    vault_metrics().allocs.add(1);
    vault_metrics().bytes_hwm.record_max(used_);
    return p;
  }
  // Bump allocation; free-listed classes round up so recycled blocks fit any
  // request of the same class. Alignment applies to the absolute address,
  // not the arena offset (the arena base is only new[]-aligned).
  const std::size_t alloc_bytes =
      cls < kNumClasses ? (std::size_t{16} << cls) : bytes;
  const auto base = reinterpret_cast<std::uintptr_t>(arena_.get());
  const std::uintptr_t aligned =
      (base + bump_ + alignment - 1) & ~(alignment - 1);
  const std::size_t offset = aligned - base;
  if (offset + alloc_bytes > capacity_) throw std::bad_alloc();
  bump_ = offset + alloc_bytes;
  used_ += bytes;
  ++allocs_;
  vault_metrics().allocs.add(1);
  vault_metrics().bytes_hwm.record_max(used_);
  return arena_.get() + offset;
}

void Vault::deallocate(void* p, std::size_t bytes,
                       std::size_t alignment) noexcept {
  assert_owner();
  if (p == nullptr) return;
  used_ -= bytes;
  ++frees_;
  vault_metrics().frees.add(1);
  const std::size_t cls = size_class(bytes);
  if (cls >= kNumClasses || alignment > alignof(std::max_align_t)) {
    return;  // large blocks are abandoned to the arena
  }
  std::memcpy(p, &free_lists_[cls], sizeof(void*));
  free_lists_[cls] = p;
}

}  // namespace pimds::runtime
