// Fixed-size message exchanged between CPU threads and PIM cores in the
// real-thread emulation, plus the "fat node" payload combined requests ride
// in (Section 5.1's fat-node regime applied to the request path).
//
// The base header — opcode, routing, one key/value, response slot, send
// stamp — stays within one cache line, as assumed by the paper's Section 3
// ("the size of a message ... is at most the size of a cache line"). A
// combined batch additionally carries up to kMaxCombine per-op FatEntry
// records *inside the message*: small batches inline into the message body
// (SBO), larger ones spill to a FatArena block (runtime/fat_arena.hpp)
// whose pointer travels in the same union. Either way the batch moves
// zero-copy: no per-op heap allocation on the send path, and the per-op
// req_id rides in the entry, so combined ops stay visible to tracing.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cacheline.hpp"

namespace pimds::runtime {

/// One combined request inside a fat message: the per-op fields a batch
/// member contributes (mirrors the direct-send Message fields). Kept
/// trivially constructible (no member initializers) so an array of entries
/// can live inside the Message's payload union — value-initialize at the
/// point of use (`FatEntry e{};`).
struct FatEntry {
  std::uint32_t kind;    ///< data-structure-specific opcode
  std::uint32_t reserved;
  std::uint64_t key;
  std::uint64_t value;
  void* slot;  ///< requester's ResponseSlot<R>
#ifndef PIMDS_OBS_DISABLED
  /// Per-op causal trace context (obs::next_request_id; 0 = untraced).
  /// Carrying it here closes the combined-path tracing gap: every batch
  /// member keeps its `req_dispatch` correlation, not just direct sends.
  std::uint64_t req_id;
#endif
};

/// Max combined requests per crossbar message (the fat-node cap; also
/// RequestCombiner::kMaxCombine and the FatArena block size).
inline constexpr std::size_t kMaxFatEntries = 16;

/// Fat entries stored inline in the message before spilling to the arena.
inline constexpr std::size_t kMessageInlineFat = 2;

struct Message {
  std::uint32_t kind = 0;    ///< data-structure-specific opcode
  std::uint32_t sender = 0;  ///< sending CPU thread or PIM core id
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  void* slot = nullptr;          ///< response slot, when a reply is expected
  std::uint64_t send_time_ns = 0;  ///< stamped by Mailbox::send
#ifndef PIMDS_OBS_DISABLED
  /// Causal trace context (obs::next_request_id; 0 = untraced). Correlates
  /// the requester's `op` span with the serving core's `req_dispatch`
  /// instant in the Perfetto export. Compiled out with -DPIMDS_OBS=OFF so
  /// the disabled-observability message layout is unchanged (112 bytes).
  std::uint64_t req_id = 0;
#endif
  /// Combined ops carried in `fat` (0 = plain single-op message).
  std::uint16_t fat_count = 0;
  /// Nonzero when `fat.spill` points at a FatArena block the receiver must
  /// release (release_fat_payload); zero means the entries are inline.
  std::uint16_t fat_spilled = 0;
  std::uint32_t fat_reserved = 0;
  union FatPayload {
    FatEntry* spill = nullptr;            ///< arena block, kMaxFatEntries long
    FatEntry inline_[kMessageInlineFat];  ///< SBO: small batches ride inline
  } fat;
};

/// The batch a fat message carries, wherever it lives (inline or spilled).
inline FatEntry* fat_entries(Message& m) noexcept {
  return m.fat_spilled ? m.fat.spill : m.fat.inline_;
}
inline const FatEntry* fat_entries(const Message& m) noexcept {
  return m.fat_spilled ? m.fat.spill : m.fat.inline_;
}

// The base header must keep to the paper's one-cache-line message bound;
// the fat payload may extend into adjacent lines (a fat node is by design
// several lines' worth of ids moving as one transfer), but the whole
// message stays within the three lines the SBO budget allows.
static_assert(offsetof(Message, fat) + sizeof(FatEntry*) <= kCacheLineSize,
              "the non-fat message header must fit in one cache line");
static_assert(sizeof(Message) <= 3 * kCacheLineSize,
              "a fat message must stay within its three-line SBO budget");
#ifdef PIMDS_OBS_DISABLED
static_assert(sizeof(FatEntry) == 32,
              "per-op trace context must compile out of fat entries when "
              "observability is disabled");
static_assert(sizeof(Message) == 112,
              "trace context must compile out entirely when observability "
              "is disabled");
#endif

}  // namespace pimds::runtime
