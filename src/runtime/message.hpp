// Fixed-size message exchanged between CPU threads and PIM cores in the
// real-thread emulation. One cache line, as assumed by the paper's Section 3
// ("the size of a message ... is at most the size of a cache line").
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"

namespace pimds::runtime {

struct Message {
  std::uint32_t kind = 0;    ///< data-structure-specific opcode
  std::uint32_t sender = 0;  ///< sending CPU thread or PIM core id
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  void* slot = nullptr;          ///< response slot, when a reply is expected
  std::uint64_t send_time_ns = 0;  ///< stamped by Mailbox::send
#ifndef PIMDS_OBS_DISABLED
  /// Causal trace context (obs::next_request_id; 0 = untraced). Correlates
  /// the requester's `op` span with the serving core's `req_dispatch`
  /// instant in the Perfetto export. Compiled out with -DPIMDS_OBS=OFF so
  /// the disabled-observability message layout is unchanged (40 bytes).
  std::uint64_t req_id = 0;
#endif
};

static_assert(sizeof(Message) <= kCacheLineSize,
              "a message must fit in one cache line");
#ifdef PIMDS_OBS_DISABLED
static_assert(sizeof(Message) == 40,
              "trace context must compile out entirely when observability "
              "is disabled");
#endif

}  // namespace pimds::runtime
