// Real-thread PIM emulation: one mailbox-driven PIM-core thread per vault.
//
// This is the substrate the `core/` PIM data structures run on. It mirrors
// the paper's architecture (Section 2):
//  - each vault is owned by exactly one in-order PIM core (here: a thread);
//  - PIM cores and CPUs communicate only by message passing, with FIFO
//    delivery per sender-receiver pair;
//  - PIM cores perform only plain reads/writes to their local vault (the
//    emulation needs no atomics inside a handler — single-threaded by
//    construction);
//  - optional latency injection (common/latency.hpp) emulates the Section 3
//    cost model on real hardware.
//
// The service loop is batched and pipelined (Section 5.2): each iteration
// drains every deliverable message from the mailbox in one pass and hands
// the whole batch to the vault's handler; responses are published with a
// computed future ready_ns while the core moves on to the next request, so
// the core's service rate approaches 1/Lpim instead of 1/(Lmessage + Lpim).
// Config::batch_drain / Config::pipelined_responses turn either half off
// for ablations (the seed per-message path is batch_drain = false).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/latency.hpp"
#include "obs/obs.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/vault.hpp"

namespace pimds::runtime {

class PimSystem;

/// Capabilities a message handler may use while running on a PIM core.
class PimCoreApi {
 public:
  PimCoreApi(PimSystem& system, std::size_t vault_id)
      : system_(system), vault_id_(vault_id) {}

  std::size_t vault_id() const noexcept { return vault_id_; }
  Vault& vault();
  std::size_t num_vaults() const;

  /// PIM-to-PIM message (goes through the same crossbar as CPU traffic).
  void send(std::size_t other_vault, Message m);

  /// Non-blocking receive from this core's own mailbox: lets a handler
  /// drain an additional already-delivered request (the combining
  /// optimization, Section 4.1). Never blocks on an in-flight message.
  std::optional<Message> poll();

  /// Non-blocking batch receive: appends every already-delivered message
  /// (up to max_n) to `out`; returns the number appended.
  std::size_t drain(std::vector<Message>& out, std::size_t max_n);

  /// Charge `n` local-vault accesses (spins for n * Lpim when injection is
  /// enabled, otherwise free).
  void charge_local_access(std::uint64_t n = 1) const;

  /// Delivery deadline for a reply published right now: now + Lmessage when
  /// injection is enabled, 0 (immediately visible) otherwise. This is the
  /// Section 5.2 pipelining: the response is "in flight" while the core
  /// serves the next request. With Config::pipelined_responses = false the
  /// core instead stalls here until the reply would have been received.
  std::uint64_t reply_ready_ns() const;

 private:
  PimSystem& system_;
  std::size_t vault_id_;
};

class PimSystem {
 public:
  struct Config {
    std::size_t num_vaults = 4;
    /// Default vault arena: 32 MB (the HMC 1.0 spec puts ~100 MB per vault;
    /// scaled down so tests stay lightweight).
    std::size_t vault_bytes = 32ull << 20;
    std::size_t mailbox_capacity = 4096;
    /// Per-sender SPSC lanes per mailbox before senders share the MPMC
    /// overflow ring (see runtime/mailbox.hpp).
    std::size_t mailbox_lanes = Mailbox::kDefaultLanes;
    LatencyParams params = LatencyParams::paper_defaults();
    /// Emulate the Section 3 latencies with calibrated spin waits. Off by
    /// default: functional runs measure real hardware.
    bool inject_latency = false;
    /// Batched service loop: drain every deliverable message per iteration
    /// (false = seed per-message path: the core blocks on each message's
    /// delivery time before serving it; ablation knob).
    bool batch_drain = true;
    /// Max messages handed to a handler per drain pass.
    std::size_t drain_batch = 64;
    /// When a drain pass comes up shallower than drain_batch but more
    /// messages are already in flight and due within this window, the core
    /// sleeps to their delivery and folds them into the same batch — one
    /// Lpim fat-node charge amortizes across more operations, and the
    /// sleep hands the CPU to the senders on oversubscribed hosts.
    /// 0 = auto: Lpim when latency injection is on, else off.
    std::uint64_t drain_gather_window_ns = 0;
    /// Section 5.2 response pipelining: publish replies with a future
    /// ready_ns and keep serving (false = the core waits out Lmessage per
    /// reply before the next request; ablation knob).
    bool pipelined_responses = true;
    /// Pin each vault's PIM-core thread to CPU `vault_id` (modulo the
    /// hardware thread count) so a core and its lanes keep a stable
    /// placement. Off by default: benches opt in; oversubscribed test
    /// runs are better left to the scheduler.
    bool pin_cores = false;
  };

  /// A handler runs on the vault's PIM-core thread for every message.
  using Handler = std::function<void(PimCoreApi&, const Message&)>;
  /// A batch handler receives every message of one drain pass at once
  /// (preferred over Handler when installed): the structure can serve the
  /// whole batch in one traversal and pipeline all the replies.
  using BatchHandler =
      std::function<void(PimCoreApi&, const Message*, std::size_t)>;
  /// An idle handler runs when the mailbox is empty; return true if it did
  /// work (used by background jobs such as incremental node migration,
  /// Section 4.2.1).
  using IdleHandler = std::function<bool(PimCoreApi&)>;

  explicit PimSystem(Config config);
  ~PimSystem();

  PimSystem(const PimSystem&) = delete;
  PimSystem& operator=(const PimSystem&) = delete;

  const Config& config() const noexcept { return config_; }
  std::size_t num_vaults() const noexcept { return cores_.size(); }

  /// Install the message handler for one vault. Must be called before
  /// start(); typically each PIM data structure installs handlers for the
  /// vaults it owns.
  void set_handler(std::size_t vault, Handler handler);
  void set_batch_handler(std::size_t vault, BatchHandler handler);
  void set_idle_handler(std::size_t vault, IdleHandler handler);

  void start();
  void stop();
  bool running() const noexcept { return started_; }

  /// CPU-side send to a vault's PIM core.
  void send(std::size_t vault, Message m);

  Vault& vault(std::size_t v) { return *cores_[v]->vault; }

  /// Messages processed by a vault's core so far (diagnostics, load stats).
  std::uint64_t messages_processed(std::size_t vault) const noexcept;
  /// Sender backoff pauses taken against a full mailbox ring (saturation
  /// indicator; see Mailbox::send_full_spins). Also visible process-wide as
  /// the registry counter `runtime.vault<k>.mailbox.send_full_spins`.
  std::uint64_t send_full_spins(std::size_t vault) const noexcept;
  /// High-water mark of a vault mailbox's in-flight pending heap. Also the
  /// registry gauge `runtime.vault<k>.mailbox.pending_hwm`.
  std::uint64_t pending_high_water(std::size_t vault) const noexcept;

 private:
  friend class PimCoreApi;

  struct Core {
    explicit Core(std::size_t id, const Config& config);

    std::unique_ptr<Vault> vault;
    Mailbox mailbox;
    Handler handler;
    BatchHandler batch_handler;
    IdleHandler idle_handler;
    std::thread thread;
    CachePadded<std::atomic<std::uint64_t>> processed{0};
    /// Registry-owned per-vault counters (`runtime.vault<k>.messages`,
    /// `.busy_ns` — handler wall time, whose windowed delta over wall time
    /// is this vault's utilization); cached so dispatch() does not
    /// re-look-up by name.
    obs::Counter* messages = nullptr;
    obs::Counter* busy_ns = nullptr;
    /// Keeps this mailbox's instance-owned metrics visible in the registry
    /// for exactly the Core's lifetime.
    std::vector<obs::Registry::Handle> obs_handles;
  };

  void core_loop(std::size_t vault_id);
  /// Hand `n` drained messages to the vault's handler(s).
  void dispatch(PimCoreApi& api, Core& core, const Message* msgs,
                std::size_t n);

  Config config_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace pimds::runtime
