#include "runtime/fat_arena.hpp"

namespace pimds::runtime {

FatArena& FatArena::instance() {
  static FatArena arena;
  return arena;
}

FatArena::FatArena()
    : pool_(kPoolCapacity),
      acquires_(obs::Registry::instance().counter("runtime.fat_arena.acquires")),
      releases_(obs::Registry::instance().counter("runtime.fat_arena.releases")),
      heap_allocs_(
          obs::Registry::instance().counter("runtime.fat_arena.heap_allocs")) {}

FatEntry* FatArena::acquire() {
  acquires_.add(1);
  if (std::optional<FatEntry*> block = pool_.try_pop()) return *block;
  heap_allocs_.add(1);
  return new FatEntry[kMaxFatEntries];
}

void FatArena::release(FatEntry* block) {
  releases_.add(1);
  EbrDomain::Guard guard(ebr_);
  ebr_.retire_erased(block, &FatArena::recycle);
}

// Runs when EBR reclaims a retired block — possibly from ~EbrDomain at
// process exit, which is why pool_ is declared before ebr_: the pool must
// outlive the domain so late reclaims still have somewhere to push.
void FatArena::recycle(void* p) {
  auto* block = static_cast<FatEntry*>(p);
  if (!instance().pool_.try_push(block)) delete[] block;
}

}  // namespace pimds::runtime
