#include "runtime/fat_arena.hpp"

#include <cstdlib>

namespace pimds::runtime {

namespace {

// Singleton construction leaves no ctor-argument hook, so the policy comes
// from the environment; anything other than "hp"/"hazard" means EBR.
ReclaimPolicy arena_policy_from_env() {
  const char* env = std::getenv("PIMDS_ARENA_RECLAIM");
  if (env != nullptr) {
    if (auto p = parse_reclaim_policy(env)) return *p;
  }
  return ReclaimPolicy::kEbr;
}

}  // namespace

FatArena& FatArena::instance() {
  static FatArena arena;
  return arena;
}

FatArena::FatArena()
    : pool_(kPoolCapacity),
      reclaim_(make_reclaimer(arena_policy_from_env(), "fat_arena")),
      acquires_(obs::Registry::instance().counter("runtime.fat_arena.acquires")),
      releases_(obs::Registry::instance().counter("runtime.fat_arena.releases")),
      heap_allocs_(
          obs::Registry::instance().counter("runtime.fat_arena.heap_allocs")) {}

FatEntry* FatArena::acquire() {
  acquires_.add(1);
  if (std::optional<FatEntry*> block = pool_.try_pop()) return *block;
  heap_allocs_.add(1);
  return new FatEntry[kMaxFatEntries];
}

void FatArena::release(FatEntry* block) {
  releases_.add(1);
  ReclaimGuard guard(*reclaim_);
  guard.retire(block, &FatArena::recycle);
}

// Runs when the reclaimer frees a retired block — possibly from the domain
// destructor at process exit, which is why pool_ is declared before
// reclaim_: the pool must outlive the domain so late reclaims still have
// somewhere to push.
void FatArena::recycle(void* p) {
  auto* block = static_cast<FatEntry*>(p);
  if (!instance().pool_.try_push(block)) delete[] block;
}

}  // namespace pimds::runtime
