// A PIM vault: a memory partition owned by exactly one PIM core.
//
// Per the paper's architecture (Section 2), "a vault can be accessed only by
// its local PIM core" and PIM cores do not share memory. The emulation
// enforces this in debug builds: after the owning core thread binds itself,
// every allocation and free asserts it runs on that thread.
//
// Allocation is a bump arena plus per-size-class free lists — single-
// threaded by construction, so no synchronization is needed (that absence
// is itself part of what makes PIM data structures simpler, a point the
// paper emphasizes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

namespace pimds::runtime {

class Vault {
 public:
  Vault(std::size_t vault_id, std::size_t capacity_bytes);

  Vault(const Vault&) = delete;
  Vault& operator=(const Vault&) = delete;

  std::size_t vault_id() const noexcept { return id_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t bytes_used() const noexcept { return used_; }

  /// Per-instance allocator traffic (the process-wide totals live in the
  /// registry as runtime.vault.allocs/frees). live_blocks() is the
  /// shutdown-time balance check: after a structure quiesces it must equal
  /// the blocks the structure intentionally keeps (e.g. live segments), or
  /// something leaked.
  std::uint64_t allocs() const noexcept { return allocs_; }
  std::uint64_t frees() const noexcept { return frees_; }
  std::uint64_t live_blocks() const noexcept { return allocs_ - frees_; }

  /// Called once by the owning PIM core thread; enables owner assertions.
  void bind_owner() noexcept { owner_ = std::this_thread::get_id(); }

  /// Raw allocation (throws std::bad_alloc when the vault is exhausted).
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Return a block obtained from allocate() to the vault's free list.
  void deallocate(void* p, std::size_t bytes, std::size_t alignment) noexcept;

  /// Typed helpers.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  template <typename T>
  void destroy(T* p) noexcept {
    if (p == nullptr) return;
    p->~T();
    deallocate(p, sizeof(T), alignof(T));
  }

 private:
  void assert_owner() const noexcept;
  static std::size_t size_class(std::size_t bytes) noexcept;

  std::size_t id_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
  std::unique_ptr<std::byte[]> arena_;
  std::size_t bump_ = 0;
  // Free lists for 16/32/64/128/256-byte classes; larger blocks are not
  // recycled (rare in the data structures here).
  static constexpr std::size_t kNumClasses = 5;
  void* free_lists_[kNumClasses] = {};
  std::thread::id owner_{};
};

}  // namespace pimds::runtime
