// Arena for spilled fat-message payloads (runtime/message.hpp).
//
// A combined batch larger than kMessageInlineFat cannot ride inside the
// message, so the combiner borrows a fixed-size block of kMaxFatEntries
// FatEntry slots here, fills it, and ships the pointer. The serving PIM
// core returns the block after decoding (release_fat_payload). Blocks
// cycle through a lock-free pool, so the steady-state request path does no
// heap allocation — the pool only grows to the peak number of batches in
// flight.
//
// Reclamation runs through the pluggable seam (common/reclaim.hpp):
// release() retires the block instead of recycling it immediately, so a
// block can never re-enter the pool — and be handed to another sender —
// while any thread still inside a read-side guard could be reading it.
// That makes the recycling ABA-free without a tagged-pointer freelist.
// The policy defaults to EBR; set PIMDS_ARENA_RECLAIM=hp in the
// environment to bound the retire backlog with hazard pointers instead.
//
// outstanding() (acquired minus released) is the leak detector the
// shutdown balance assertions use: after a system quiesces it must be zero
// or a spilled batch was dropped without being served.
#pragma once

#include <cstdint>
#include <memory>

#include "common/mpmc_queue.hpp"
#include "common/reclaim.hpp"
#include "obs/metrics.hpp"
#include "runtime/message.hpp"

namespace pimds::runtime {

class FatArena {
 public:
  /// Pool capacity: blocks beyond this many simultaneously retired fall
  /// back to the heap deleter instead of recycling.
  static constexpr std::size_t kPoolCapacity = 1024;

  static FatArena& instance();

  FatArena(const FatArena&) = delete;
  FatArena& operator=(const FatArena&) = delete;

  /// Borrow a block of kMaxFatEntries entries (pool hit or heap growth).
  FatEntry* acquire();

  /// Return a block. Safe from any thread; the block re-enters the pool
  /// only after the reclaimer proves no reader can still reference it.
  void release(FatEntry* block);

  /// Blocks acquired but not yet released. Zero once every fat message has
  /// been served — the shutdown-time leak check.
  std::uint64_t outstanding() const noexcept {
    return acquires_.value() - releases_.value();
  }

  /// Heap allocations (pool misses); steady state stops growing this.
  std::uint64_t heap_allocs() const noexcept { return heap_allocs_.value(); }

  /// The arena's reclamation domain (metrics name "reclaim.fat_arena.*").
  Reclaimer& reclaimer() noexcept { return *reclaim_; }

 private:
  FatArena();

  static void recycle(void* p);  ///< deferred deleter: pool push or delete[]

  MpmcQueue<FatEntry*> pool_;
  std::unique_ptr<Reclaimer> reclaim_;
  // Registry-owned (runtime.fat_arena.*): process-wide like the arena.
  obs::Counter& acquires_;
  obs::Counter& releases_;
  obs::Counter& heap_allocs_;
};

/// Return a message's spilled payload (if any) to the arena. Call exactly
/// once per received fat message, after its entries are decoded.
inline void release_fat_payload(const Message& m) {
  if (m.fat_spilled) FatArena::instance().release(m.fat.spill);
}

}  // namespace pimds::runtime
