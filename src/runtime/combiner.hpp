// CPU-side request combining (the Section 4.1 combining optimization,
// mirrored on the native runtime's request path; the simulator twin is
// sim/flat_combining.hpp).
//
// Co-located CPU threads targeting the same PIM core publish their requests
// into a shared queue; whoever wins the (try-lock) combiner role gathers up
// to kMaxCombine published requests into one fat Message and ships the
// whole batch across the crossbar as ONE message — the batch-per-crossing
// shape. The PIM core serves every entry and publishes each requester's
// response slot with one shared ready_ns: the batch's single fat response
// message.
//
// The batch travels zero-copy inside the Message itself (runtime/
// message.hpp): up to kMessageInlineFat entries ride inline (SBO), larger
// batches borrow a pooled FatArena block — either way the flush path does
// no per-op heap allocation. Each entry carries its requester's req_id, so
// combined ops keep their trace correlation.
//
// A requester whose record was picked up by another thread's flush just
// waits on its own slot; a requester left behind (batch filled up) keeps
// competing for the combiner role until its record has been shipped, so no
// request can be stranded.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spinwait.hpp"
#include "common/timing.hpp"
#include "obs/phase.hpp"
#include "runtime/fat_arena.hpp"
#include "runtime/message.hpp"

namespace pimds::runtime {

class RequestCombiner {
 public:
  /// Cap on requests per crossbar message. 16 keys the batch at a few cache
  /// lines — the "fat node" regime of Section 5.1.
  static constexpr std::size_t kMaxCombine = kMaxFatEntries;

  /// One combined request: the fat-message entry itself (zero-copy — what
  /// a requester submits is exactly what the PIM core decodes).
  using Entry = FatEntry;

  explicit RequestCombiner(std::size_t queue_capacity = 1024)
      : queue_(queue_capacity) {}

  /// Flush linger: a leader whose first pop sweep came up short of
  /// kMaxCombine yields for up to this window picking up stragglers before
  /// shipping. Under latency injection, co-located requesters released by
  /// one fat response wake microseconds to tens of microseconds apart —
  /// a bounded linger re-clusters that scheduler dispersion into one fat
  /// message, and the vault then charges one local access for the lot.
  /// The leader yields (not spins) through the window, so the linger costs
  /// scheduler handoffs, not CPU. 0 (default) ships immediately. Caveat:
  /// when runnable threads outnumber cores, one yield alone can overshoot
  /// the whole window, so the linger only helps with cores to spare.
  void set_linger_ns(std::uint64_t ns) noexcept { linger_ns_ = ns; }

  RequestCombiner(const RequestCombiner&) = delete;
  RequestCombiner& operator=(const RequestCombiner&) = delete;

  /// Publish `entry` and return once it has been shipped in some batch
  /// (ours or another thread's). The caller then awaits its response slot.
  /// `send` receives a Message whose fat payload holds the batch; it must
  /// set the opcode and transmit it (payload ownership moves with it — the
  /// receiver releases any spill via release_fat_payload).
  template <typename SendFn>
  void submit(const Entry& entry, SendFn&& send) {
    // The combiner_wait phase: publication to "shipped in some batch". On
    // the combined path this subsumes the issue phase (the structure's op
    // wrapper records issue only on the direct-send path, so the two never
    // double-count).
    const std::uint64_t t0 = obs::metrics_enabled() ? now_ns() : 0;
    Record rec{};
    rec.entry = entry;
    queue_.push(&rec);
    SpinWait spin;
    while (!rec.shipped.value.load(std::memory_order_acquire)) {
      if (try_lock()) {
        flush(send);
        unlock();
        spin.reset();
      } else {
        spin.wait();
      }
    }
    if (t0 != 0) {
      obs::record_runtime_phase(obs::Phase::kCombinerWait, now_ns() - t0);
    }
  }

  /// Diagnostics.
  std::uint64_t batches_sent() const noexcept {
    return batches_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_combined() const noexcept {
    return combined_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t max_batch() const noexcept {
    return max_batch_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    Entry entry;
    CachePadded<std::atomic<bool>> shipped{false};
  };

  bool try_lock() noexcept {
    return !lock_.value.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { lock_.value.store(false, std::memory_order_release); }

  template <typename SendFn>
  void flush(SendFn&& send) {
    Record* picked[kMaxCombine];
    std::uint32_t n = 0;
    while (n < kMaxCombine) {
      std::optional<Record*> r = queue_.try_pop();
      if (!r) break;
      picked[n++] = *r;
    }
    if (n == 0) return;
    if (n < kMaxCombine && linger_ns_ != 0) {
      const std::uint64_t deadline = now_ns() + linger_ns_;
      while (n < kMaxCombine && now_ns() < deadline) {
        if (std::optional<Record*> r = queue_.try_pop()) {
          picked[n++] = *r;
        } else {
          std::this_thread::yield();
        }
      }
    }
    Message m;
    m.fat_count = static_cast<std::uint16_t>(n);
    FatEntry* entries = m.fat.inline_;
    if (n > kMessageInlineFat) {
      m.fat_spilled = 1;
      m.fat.spill = FatArena::instance().acquire();
      entries = m.fat.spill;
    }
    for (std::uint32_t i = 0; i < n; ++i) entries[i] = picked[i]->entry;
    send(m);  // payload ownership moves to the PIM core
    // Only after the batch is on the wire may the requesters stop waiting
    // (their records are stack-allocated in submit()).
    for (std::uint32_t i = 0; i < n; ++i) {
      picked[i]->shipped.value.store(true, std::memory_order_release);
    }
    batches_.value.fetch_add(1, std::memory_order_relaxed);
    combined_.value.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.value.load(std::memory_order_relaxed);
    while (n > seen && !max_batch_.value.compare_exchange_weak(
                           seen, n, std::memory_order_relaxed)) {
    }
  }

  MpmcQueue<Record*> queue_;
  std::uint64_t linger_ns_ = 0;
  CachePadded<std::atomic<bool>> lock_{false};
  CachePadded<std::atomic<std::uint64_t>> batches_{0};
  CachePadded<std::atomic<std::uint64_t>> combined_{0};
  CachePadded<std::atomic<std::uint64_t>> max_batch_{0};
};

}  // namespace pimds::runtime
