// CPU-side request combining (the Section 4.1 combining optimization,
// mirrored on the native runtime's request path; the simulator twin is
// sim/flat_combining.hpp).
//
// Co-located CPU threads targeting the same PIM core publish their requests
// into a shared queue; whoever wins the (try-lock) combiner role gathers up
// to kMaxCombine published requests into one Batch and ships the whole
// batch across the crossbar as ONE message — the batch-per-crossing shape.
// The PIM core serves every entry and publishes each requester's response
// slot with one shared ready_ns: the batch's single fat response message.
//
// A requester whose record was picked up by another thread's flush just
// waits on its own slot; a requester left behind (batch filled up) keeps
// competing for the combiner role until its record has been shipped, so no
// request can be stranded.
//
// The Batch lives on the CPU heap (the model's shared-memory publication
// area). Ownership transfers with the message: the PIM-core handler must
// free it with RequestCombiner::Batch::destroy() after serving it.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/mpmc_queue.hpp"
#include "common/spinwait.hpp"
#include "common/timing.hpp"
#include "obs/phase.hpp"

namespace pimds::runtime {

class RequestCombiner {
 public:
  /// Cap on requests per crossbar message. 16 keys the batch at a few cache
  /// lines — the "fat node" regime of Section 5.1.
  static constexpr std::size_t kMaxCombine = 16;

  struct Entry {
    std::uint32_t kind = 0;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    void* slot = nullptr;  ///< requester's ResponseSlot<R>
  };

  struct Batch {
    std::uint32_t count = 0;
    Entry entries[kMaxCombine];

    static void destroy(Batch* b) { delete b; }
  };

  explicit RequestCombiner(std::size_t queue_capacity = 1024)
      : queue_(queue_capacity) {}

  RequestCombiner(const RequestCombiner&) = delete;
  RequestCombiner& operator=(const RequestCombiner&) = delete;

  /// Publish `entry` and return once it has been shipped in some batch
  /// (ours or another thread's). The caller then awaits its response slot.
  /// `send` receives an owning Batch* and must transmit it to the PIM core.
  template <typename SendFn>
  void submit(const Entry& entry, SendFn&& send) {
    // The combiner_wait phase: publication to "shipped in some batch". On
    // the combined path this subsumes the issue phase (the structure's op
    // wrapper records issue only on the direct-send path, so the two never
    // double-count).
    const std::uint64_t t0 = obs::metrics_enabled() ? now_ns() : 0;
    Record rec;
    rec.entry = entry;
    queue_.push(&rec);
    SpinWait spin;
    while (!rec.shipped.value.load(std::memory_order_acquire)) {
      if (try_lock()) {
        flush(send);
        unlock();
        spin.reset();
      } else {
        spin.wait();
      }
    }
    if (t0 != 0) {
      obs::record_runtime_phase(obs::Phase::kCombinerWait, now_ns() - t0);
    }
  }

  /// Diagnostics.
  std::uint64_t batches_sent() const noexcept {
    return batches_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_combined() const noexcept {
    return combined_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t max_batch() const noexcept {
    return max_batch_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    Entry entry;
    CachePadded<std::atomic<bool>> shipped{false};
  };

  bool try_lock() noexcept {
    return !lock_.value.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { lock_.value.store(false, std::memory_order_release); }

  template <typename SendFn>
  void flush(SendFn&& send) {
    Record* picked[kMaxCombine];
    Batch* batch = new Batch;
    while (batch->count < kMaxCombine) {
      std::optional<Record*> r = queue_.try_pop();
      if (!r) break;
      picked[batch->count] = *r;
      batch->entries[batch->count] = (*r)->entry;
      ++batch->count;
    }
    const std::uint32_t n = batch->count;
    if (n == 0) {
      delete batch;
      return;
    }
    send(batch);  // ownership moves to the PIM core
    // Only after the batch is on the wire may the requesters stop waiting
    // (their records are stack-allocated in submit()).
    for (std::uint32_t i = 0; i < n; ++i) {
      picked[i]->shipped.value.store(true, std::memory_order_release);
    }
    batches_.value.fetch_add(1, std::memory_order_relaxed);
    combined_.value.fetch_add(n, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.value.load(std::memory_order_relaxed);
    while (n > seen && !max_batch_.value.compare_exchange_weak(
                           seen, n, std::memory_order_relaxed)) {
    }
  }

  MpmcQueue<Record*> queue_;
  CachePadded<std::atomic<bool>> lock_{false};
  CachePadded<std::atomic<std::uint64_t>> batches_{0};
  CachePadded<std::atomic<std::uint64_t>> combined_{0};
  CachePadded<std::atomic<std::uint64_t>> max_batch_{0};
};

}  // namespace pimds::runtime
