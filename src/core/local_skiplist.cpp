#include "core/local_skiplist.hpp"

#include <cassert>
#include <cstddef>

namespace pimds::core {

LocalSkipList::LocalSkipList(runtime::Vault& vault,
                             std::uint64_t sentinel_key, std::uint64_t seed)
    : vault_(vault), rng_(seed) {
  head_ = make_node(sentinel_key, kMaxHeight);
  for (int lvl = 0; lvl < kMaxHeight; ++lvl) head_->next[lvl] = nullptr;
}

LocalSkipList::Node* LocalSkipList::make_node(std::uint64_t key, int height) {
  const std::size_t bytes =
      offsetof(Node, next) + static_cast<std::size_t>(height) * sizeof(Node*);
  auto* node = static_cast<Node*>(vault_.allocate(bytes, alignof(Node)));
  node->key = key;
  node->height = height;
  return node;
}

int LocalSkipList::random_height() {
  int h = 1;
  while (h < kMaxHeight && rng_.next_bool(0.5)) ++h;
  return h;
}

LocalSkipList::Node* LocalSkipList::locate(std::uint64_t key, Node** preds,
                                           std::uint64_t* steps) const {
  Node* pred = head_;
  std::uint64_t count = 0;
  int top = kMaxHeight - 1;
  while (top > 0 && head_->next[top] == nullptr) --top;
  for (int lvl = top; lvl >= 0; --lvl) {
    Node* curr = pred->next[lvl];
    ++count;
    while (curr != nullptr && curr->key < key) {
      pred = curr;
      curr = curr->next[lvl];
      ++count;
    }
    preds[lvl] = pred;
  }
  if (steps != nullptr) *steps += count;
  return preds[0]->next[0];
}

bool LocalSkipList::add(std::uint64_t key, std::uint64_t* steps) {
  assert(key > head_->key && "key must exceed the sentinel key");
  Node* preds[kMaxHeight];
  for (auto& p : preds) p = head_;
  Node* found = locate(key, preds, steps);
  if (found != nullptr && found->key == key) return false;
  const int height = random_height();
  Node* node = make_node(key, height);
  for (int lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  ++size_;
  ++mutation_epoch_;
  return true;
}

void LocalSkipList::unlink(Node* victim, Node** preds) {
  for (int lvl = 0; lvl < victim->height; ++lvl) {
    if (preds[lvl]->next[lvl] == victim) {
      preds[lvl]->next[lvl] = victim->next[lvl];
    }
  }
}

void LocalSkipList::destroy_node(Node* node) {
  const std::size_t bytes = offsetof(Node, next) +
                            static_cast<std::size_t>(node->height) *
                                sizeof(Node*);
  vault_.deallocate(node, bytes, alignof(Node));
}

bool LocalSkipList::remove(std::uint64_t key, std::uint64_t* steps) {
  Node* preds[kMaxHeight];
  for (auto& p : preds) p = head_;
  Node* found = locate(key, preds, steps);
  if (found == nullptr || found->key != key) return false;
  unlink(found, preds);
  destroy_node(found);
  --size_;
  ++mutation_epoch_;
  return true;
}

std::optional<std::uint64_t> LocalSkipList::extract_first_at_least(
    std::uint64_t key, std::uint64_t* steps) {
  Node* preds[kMaxHeight];
  for (auto& p : preds) p = head_;
  Node* found = locate(key, preds, nullptr);
  if (found == nullptr) return std::nullopt;
  unlink(found, preds);
  const std::uint64_t out = found->key;
  destroy_node(found);
  --size_;
  ++mutation_epoch_;
  if (steps != nullptr) *steps += 2;  // amortized range-sweep cost
  return out;
}

bool LocalSkipList::insert_ascending(InsertCursor& cursor, std::uint64_t key,
                                     std::uint64_t* steps) {
  assert(key > head_->key);
  auto** preds = reinterpret_cast<Node**>(cursor.preds_);
  std::uint64_t count = 0;
  if (!cursor.valid || cursor.epoch != mutation_epoch_) {
    for (int lvl = 0; lvl < kMaxHeight; ++lvl) preds[lvl] = head_;
    locate(key, preds, &count);  // re-seed with one full search
    cursor.valid = true;
  } else {
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      Node* pred = preds[lvl];
      Node* curr = pred->next[lvl];
      while (curr != nullptr && curr->key < key) {
        pred = curr;
        curr = curr->next[lvl];
        ++count;
      }
      preds[lvl] = pred;
    }
    ++count;  // reading the insertion point
  }
  Node* at = preds[0]->next[0];
  if (at != nullptr && at->key == key) {
    if (steps != nullptr) *steps += count;
    return false;
  }
  const int height = random_height();
  Node* node = make_node(key, height);
  for (int lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  ++size_;
  cursor.epoch = mutation_epoch_;  // our own insert keeps the fingers valid
  if (steps != nullptr) *steps += count + static_cast<std::uint64_t>(height);
  return true;
}

bool LocalSkipList::contains(std::uint64_t key, std::uint64_t* steps) const {
  Node* preds[kMaxHeight];
  Node* found = locate(key, preds, steps);
  return found != nullptr && found->key == key;
}

std::optional<std::uint64_t> LocalSkipList::first_at_least(
    std::uint64_t key) const {
  Node* preds[kMaxHeight];
  Node* found = locate(key, preds, nullptr);
  if (found == nullptr) return std::nullopt;
  return found->key;
}

}  // namespace pimds::core
