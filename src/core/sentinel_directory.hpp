// CPU-side sentinel directory for the partitioned PIM skip-list
// (Section 4.2, Figure 3).
//
// "CPUs also store a copy of each sentinel node in regular DRAM ... with an
// extra variable indicating the vault containing the sentinel node." Here
// that copy is one shared table: entries map a sentinel key (the inclusive
// lower bound of a partition) to the vault currently owning that range.
// PIM cores update it at the end of a migration — our stand-in for the
// paper's notify-all-CPUs broadcast; the rejection/retry path absorbs any
// staleness a real broadcast would also have.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace pimds::core {

class SentinelDirectory {
 public:
  struct Entry {
    std::uint64_t sentinel;  ///< partition covers [sentinel, next.sentinel)
    std::size_t vault;
  };

  explicit SentinelDirectory(std::vector<Entry> entries)
      : entries_(std::move(entries)) {
    assert(std::is_sorted(entries_.begin(), entries_.end(),
                          [](const Entry& a, const Entry& b) {
                            return a.sentinel < b.sentinel;
                          }));
    assert(!entries_.empty());
  }

  /// Vault owning `key` (greatest sentinel <= key). The hot read path:
  /// sentinels are few and CPU-cached, so a shared lock + binary search
  /// stands in for the paper's cached sentinel lookup.
  std::size_t route(std::uint64_t key) const {
    std::shared_lock lock(mutex_);
    return locate_unlocked(key).vault;
  }

  /// [sentinel, end) of the partition containing `key`; `end` is the next
  /// sentinel or UINT64_MAX for the last partition.
  struct Range {
    std::uint64_t lo;
    std::uint64_t hi;
    std::size_t vault;
  };
  Range partition_of(std::uint64_t key) const {
    std::shared_lock lock(mutex_);
    const auto it = locate_iter_unlocked(key);
    const std::uint64_t hi = (it + 1) == entries_.end()
                                 ? ~std::uint64_t{0}
                                 : (it + 1)->sentinel;
    return {it->sentinel, hi, it->vault};
  }

  std::vector<Entry> snapshot() const {
    std::shared_lock lock(mutex_);
    return entries_;
  }

  /// Record that the range [split_key, end-of-its-partition) now belongs to
  /// `new_vault`: either retargets an existing entry (whole-partition move)
  /// or inserts a new sentinel (suffix split). Called by the migration
  /// source core when every node has been handed over (Section 4.2.1).
  void move_range(std::uint64_t split_key, std::size_t new_vault) {
    std::unique_lock lock(mutex_);
    auto it = locate_iter_unlocked(split_key);
    if (it->sentinel == split_key) {
      it->vault = new_vault;
      // Merge with an identical-vault predecessor is possible but kept:
      // extra sentinels are harmless and the paper never deletes them.
      return;
    }
    entries_.insert(it + 1, Entry{split_key, new_vault});
  }

  std::size_t partition_count() const {
    std::shared_lock lock(mutex_);
    return entries_.size();
  }

 private:
  const Entry& locate_unlocked(std::uint64_t key) const {
    return *locate_iter_unlocked(key);
  }

  std::vector<Entry>::const_iterator locate_iter_unlocked(
      std::uint64_t key) const {
    auto it = std::upper_bound(entries_.begin(), entries_.end(), key,
                               [](std::uint64_t k, const Entry& e) {
                                 return k < e.sentinel;
                               });
    assert(it != entries_.begin() && "key below the first sentinel");
    return it - 1;
  }

  std::vector<Entry>::iterator locate_iter_unlocked(std::uint64_t key) {
    auto it = std::upper_bound(entries_.begin(), entries_.end(), key,
                               [](std::uint64_t k, const Entry& e) {
                                 return k < e.sentinel;
                               });
    assert(it != entries_.begin() && "key below the first sentinel");
    return it - 1;
  }

  mutable std::shared_mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace pimds::core
