// PIM-managed FIFO queue (Section 5, Algorithm 1).
//
// The queue is a chain of segments, each resident in some vault. Two roles
// travel along the chain: the ENQUEUE segment (accepts new nodes) and the
// DEQUEUE segment (surrenders nodes); when they sit in different vaults,
// enqueues and dequeues are served by two PIM cores in parallel. When a
// segment outgrows the threshold, its core hands the enqueue role to
// another core (newEnqSeg); when the dequeue segment drains, its core hands
// the dequeue role to the core holding the next segment (newDeqSeg).
//
// CPUs learn role locations from a shared directory (standing in for the
// paper's notification broadcast); a stale read leads to a rejected request
// and a retry — the protocol's correctness does not depend on freshness.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/cacheline.hpp"
#include "runtime/system.hpp"

namespace pimds::core {

class PimFifoQueue {
 public:
  struct Options {
    /// Segment length threshold (Algorithm 1 line 13).
    std::uint64_t segment_threshold = 1024;
    /// Segment placement: antipodal to the dequeue core (see the simulator
    /// twin in sim/ds/queues.hpp for why round-robin can serialize the two
    /// roles onto one core). Set false for strict round-robin.
    bool antipodal_placement = true;
    /// Section 5.1's further optimization: the enqueue core drains every
    /// already-delivered enqueue request and appends the whole batch as one
    /// "fat" node's worth of work, charging one local access per
    /// fat_node_capacity values under latency injection.
    bool enqueue_combining = false;
    std::size_t fat_node_capacity = 8;
  };

  /// Installs handlers on ALL vaults of `system`; construct before start().
  PimFifoQueue(runtime::PimSystem& system, Options options);
  explicit PimFifoQueue(runtime::PimSystem& system);

  PimFifoQueue(const PimFifoQueue&) = delete;
  PimFifoQueue& operator=(const PimFifoQueue&) = delete;

  /// Blocking in the bounded-retry sense: resends on stale-directory
  /// rejections until the owning core accepts.
  void enqueue(std::uint64_t value);

  /// Returns nullopt when the queue is observed empty.
  std::optional<std::uint64_t> dequeue();

  /// Racy stats snapshots.
  std::uint64_t approx_size() const noexcept {
    const auto enq = enq_count_.value.load(std::memory_order_relaxed);
    const auto deq = deq_count_.value.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }
  std::uint64_t rejections() const noexcept {
    return rejections_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_created() const noexcept {
    return segments_created_.value.load(std::memory_order_relaxed);
  }
  /// Largest enqueue batch combined into one fat node so far.
  std::uint64_t max_enqueue_batch() const noexcept {
    return max_enq_batch_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::uint64_t value;
    Node* next;
  };

  /// Algorithm 1's segment: head/tail pointers over vault-resident nodes.
  struct Segment {
    Node* head = nullptr;  ///< newest node (enqueue side)
    Node* tail = nullptr;  ///< oldest node (dequeue side)
    std::uint64_t count = 0;
    std::size_t next_seg_cid = ~std::size_t{0};
    Segment* next_in_queue = nullptr;  ///< this core's segQueue link
  };

  /// Per-vault state; touched only by that vault's PIM core.
  struct VaultState {
    Segment* enq_seg = nullptr;
    Segment* deq_seg = nullptr;
    Segment* seg_queue_head = nullptr;  ///< oldest segment created here
    Segment* seg_queue_tail = nullptr;
  };

  struct Reply {
    bool accepted = false;
    bool has_value = false;
    std::uint64_t value = 0;
  };

  enum Kind : std::uint32_t {
    kEnq = 1,
    kDeq = 2,
    kNewEnqSeg = 3,
    kNewDeqSeg = 4,
  };

  void handle(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_enq(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_deq(runtime::PimCoreApi& api, const runtime::Message& m);
  std::size_t pick_next_core(std::size_t self) const;

  runtime::PimSystem& system_;
  Options options_;
  std::vector<CachePadded<VaultState>> vaults_;

  // CPU-visible role directory.
  CachePadded<std::atomic<std::size_t>> enq_cid_{0};
  CachePadded<std::atomic<std::size_t>> deq_cid_{0};

  CachePadded<std::atomic<std::uint64_t>> enq_count_{0};
  CachePadded<std::atomic<std::uint64_t>> deq_count_{0};
  CachePadded<std::atomic<std::uint64_t>> rejections_{0};
  CachePadded<std::atomic<std::uint64_t>> segments_created_{0};
  CachePadded<std::atomic<std::uint64_t>> max_enq_batch_{0};
};

}  // namespace pimds::core
