// PIM-managed FIFO queue (Section 5, Algorithm 1).
//
// The queue is a chain of segments, each resident in some vault. Two roles
// travel along the chain: the ENQUEUE segment (accepts new nodes) and the
// DEQUEUE segment (surrenders nodes); when they sit in different vaults,
// enqueues and dequeues are served by two PIM cores in parallel. When a
// segment outgrows the threshold, its core hands the enqueue role to
// another core (newEnqSeg); when the dequeue segment drains, its core hands
// the dequeue role to the core holding the next segment (newDeqSeg).
//
// The message path batches at both crossings (Section 5.1 / 5.2):
//  - CPU side: co-located enqueue (and dequeue) requests combine so up to
//    RequestCombiner::kMaxCombine ride one crossbar message;
//  - PIM side: the core receives a whole drained batch from the runtime,
//    appends all enqueued values as one fat node's worth of work (one local
//    access per fat_node_capacity values under injection), and pipelines
//    the replies with a shared delivery time (one fat response message).
//
// CPUs learn role locations from a shared directory (standing in for the
// paper's notification broadcast); a stale read leads to a rejected request
// and a retry — the protocol's correctness does not depend on freshness.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/cacheline.hpp"
#include "runtime/combiner.hpp"
#include "runtime/system.hpp"

namespace pimds::core {

class PimFifoQueue {
 public:
  struct Options {
    /// Segment length threshold (Algorithm 1 line 13).
    std::uint64_t segment_threshold = 1024;
    /// Segment placement: antipodal to the dequeue core (see the simulator
    /// twin in sim/ds/queues.hpp for why round-robin can serialize the two
    /// roles onto one core). Set false for strict round-robin.
    bool antipodal_placement = true;
    /// Section 5.1's further optimization (default on): the enqueue core
    /// appends every enqueue of a drained batch as one "fat" node's worth
    /// of work, charging one local access per fat_node_capacity values
    /// under latency injection.
    bool enqueue_combining = true;
    std::size_t fat_node_capacity = 8;
    /// CPU-side request combining: co-located waiting requests ride one
    /// crossbar message (off = one message per request, the seed path).
    bool cpu_combining = true;
    /// Combiner flush linger (see RequestCombiner::set_linger_ns): how long
    /// a flushing leader yields for stragglers before shipping a non-full
    /// batch. Default off: on an oversubscribed host one yield costs a full
    /// scheduler round trip, so the leader overshoots any microsecond-scale
    /// window without gathering anything. Enable only with cores to spare.
    std::uint64_t combine_linger_ns = 0;
  };

  /// Installs handlers on ALL vaults of `system`; construct before start().
  PimFifoQueue(runtime::PimSystem& system, Options options);
  explicit PimFifoQueue(runtime::PimSystem& system);

  PimFifoQueue(const PimFifoQueue&) = delete;
  PimFifoQueue& operator=(const PimFifoQueue&) = delete;

  /// Blocking in the bounded-retry sense: resends on stale-directory
  /// rejections until the owning core accepts.
  void enqueue(std::uint64_t value);

  /// Returns nullopt when the queue is observed empty.
  std::optional<std::uint64_t> dequeue();

  /// Racy stats snapshots.
  std::uint64_t approx_size() const noexcept {
    const auto enq = enq_count_.value.load(std::memory_order_relaxed);
    const auto deq = deq_count_.value.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }
  std::uint64_t rejections() const noexcept {
    return rejections_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_created() const noexcept {
    return segments_created_.value.load(std::memory_order_relaxed);
  }
  std::uint64_t segments_destroyed() const noexcept {
    return segments_destroyed_.value.load(std::memory_order_relaxed);
  }
  /// Segments currently resident in the vaults: the initial segment plus
  /// every hand-off-created one, minus those destroyed when exhausted.
  /// After the system quiesces this is exactly what the vaults' net
  /// alloc−free balance must account for (nodes all freed on dequeue), so
  /// the shutdown balance assertion compares against it.
  std::uint64_t live_segments() const noexcept {
    return 1 + segments_created() - segments_destroyed();
  }
  /// Largest enqueue batch combined into one fat node so far.
  std::uint64_t max_enqueue_batch() const noexcept {
    return max_enq_batch_.value.load(std::memory_order_relaxed);
  }
  /// Largest dequeue batch served as consecutive fat-node reads so far.
  std::uint64_t max_dequeue_batch() const noexcept {
    return max_deq_batch_.value.load(std::memory_order_relaxed);
  }
  /// Largest CPU-side request batch shipped in one message (diagnostics).
  std::uint64_t max_request_batch() const noexcept {
    return std::max(enq_combiner_.max_batch(), deq_combiner_.max_batch());
  }

 private:
  struct Node {
    std::uint64_t value;
    Node* next;
  };

  /// Algorithm 1's segment: head/tail pointers over vault-resident nodes.
  struct Segment {
    Node* head = nullptr;  ///< newest node (enqueue side)
    Node* tail = nullptr;  ///< oldest node (dequeue side)
    std::uint64_t count = 0;
    std::size_t next_seg_cid = ~std::size_t{0};
    Segment* next_in_queue = nullptr;  ///< this core's segQueue link
  };

  /// Per-vault state; touched only by that vault's PIM core.
  struct VaultState {
    Segment* enq_seg = nullptr;
    Segment* deq_seg = nullptr;
    Segment* seg_queue_head = nullptr;  ///< oldest segment created here
    Segment* seg_queue_tail = nullptr;
  };

  struct Reply {
    bool accepted = false;
    bool has_value = false;
    std::uint64_t value = 0;
  };

  /// One decoded enqueue awaiting its append (value + requester slot).
  struct PendingEnq {
    std::uint64_t value;
    void* slot;
  };

  enum Kind : std::uint32_t {
    kEnq = 1,
    kDeq = 2,
    kNewEnqSeg = 3,
    kNewDeqSeg = 4,
    kEnqBatch = 5,  ///< CPU-combined enqueues (fat payload in the message)
    kDeqBatch = 6,  ///< CPU-combined dequeues (fat payload in the message)
  };

  void handle_batch(runtime::PimCoreApi& api, const runtime::Message* msgs,
                    std::size_t n);
  void handle(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_enq(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_deq(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_deq_batch(runtime::PimCoreApi& api, const runtime::Message& m);
  /// Append a combined enqueue batch as one fat node's worth of work and
  /// publish all replies with one shared delivery time.
  void serve_enq_batch(runtime::PimCoreApi& api,
                       std::vector<PendingEnq>& batch);
  /// Pop a combined dequeue batch, charging one local access per fat node's
  /// worth of consecutive values (mirrors serve_enq_batch), and publish all
  /// replies with one shared delivery time. `slots` holds the requesters'
  /// ResponseSlot<Reply> pointers in arrival order.
  void serve_deq_batch(runtime::PimCoreApi& api, std::vector<void*>& slots);
  /// Pop one value / pass the dequeue role along (Algorithm 1 lines 23-35).
  /// `charge_node_read` is false when a batch caller amortizes the access.
  Reply serve_one_deq(runtime::PimCoreApi& api, bool charge_node_read = true);
  /// Hand the enqueue role off when the segment outgrew the threshold.
  void split_if_full(runtime::PimCoreApi& api);
  std::size_t pick_next_core(std::size_t self) const;

  runtime::PimSystem& system_;
  Options options_;
  std::vector<CachePadded<VaultState>> vaults_;
  runtime::RequestCombiner enq_combiner_;
  runtime::RequestCombiner deq_combiner_;

  // CPU-visible role directory.
  CachePadded<std::atomic<std::size_t>> enq_cid_{0};
  CachePadded<std::atomic<std::size_t>> deq_cid_{0};

  CachePadded<std::atomic<std::uint64_t>> enq_count_{0};
  CachePadded<std::atomic<std::uint64_t>> deq_count_{0};
  CachePadded<std::atomic<std::uint64_t>> rejections_{0};
  CachePadded<std::atomic<std::uint64_t>> segments_created_{0};
  CachePadded<std::atomic<std::uint64_t>> segments_destroyed_{0};
  CachePadded<std::atomic<std::uint64_t>> max_enq_batch_{0};
  CachePadded<std::atomic<std::uint64_t>> max_deq_batch_{0};
};

}  // namespace pimds::core
