// Automatic rebalancing policy for the PIM skip-list (Section 4.2.1 left
// the trigger policy open: "we expect that rebalancing will not happen very
// frequently"). The policy thread consumes the skip-list LoadMap's windowed
// HotVaultReport (per-vault op windows, hot key ranges, SpaceSaving hot
// keys) once per period and closes the control loop:
//
//  - active (default): when a window is eligible (>= min_window_ops) and
//    the hottest vault exceeds `imbalance_enter` x mean, pick a split key
//    from the report (hottest-range midpoint, or the top hot key's
//    successor when one key dominates the sketch) and drive the Section
//    4.2.1 migration protocol via PimSkipList::migrate(split, coldest).
//    Hysteresis so the loop cannot thrash: an enter/exit threshold band
//    (trigger at >= enter; the system only counts as settled again below
//    exit — the `rebalancer.settled` gauge), a per-vault cooldown of
//    `cooldown_periods` windows after a vault was the migration source
//    (its next windows still contain pre-migration traffic), the
//    min_window_ops noise floor, and at most one migration in flight
//    (migration_busy_ is polled, never queued against).
//  - observe-only: same decision pipeline, but LOG would-trigger lines
//    (`rebalancer.would_trigger` counter + stderr) without migrating —
//    the staging mode for trusting the policy before flipping it on.
//
// Contention-adaptive combining rides the same report: ranges whose window
// share reaches `combine_enter_share` are flipped to CPU-side combining
// (PimSkipList::set_range_combining), and flipped back once their share
// falls below `combine_exit_share` — again an enter/exit band so a range
// hovering at the threshold does not flap.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pim_skiplist.hpp"
#include "obs/loadmap.hpp"

namespace pimds::core {

class AutoRebalancer {
 public:
  struct Options {
    /// Trigger when the hottest vault served more than `imbalance_ratio`
    /// times the mean request rate during the last window (the ENTER side
    /// of the hysteresis band).
    double imbalance_ratio = 2.0;
    /// The EXIT side: the system reports settled (and adaptive combining
    /// may disengage globally) only once imbalance falls below this.
    /// Inside [exit, enter) nothing changes state — no flapping around a
    /// single threshold.
    double imbalance_exit = 1.5;
    std::chrono::milliseconds period{50};
    /// After a vault sourced a migration, skip it as a source for this
    /// many windows: its next report windows still mix pre-migration
    /// traffic, and re-triggering on them is how a rebalancer thrashes.
    std::size_t cooldown_periods = 2;
    /// Safety valve for tests/demos.
    std::size_t max_migrations = ~std::size_t{0};
    /// Don't judge windows with fewer total ops than this (noise floor).
    std::uint64_t min_window_ops = 100;
    /// Decide from the LoadMap and log would-trigger lines, never migrate.
    bool observe_only = false;
    /// Print one stderr line per trigger / would-trigger decision.
    bool log_decisions = true;
    /// Flip per-range CPU-side combining from the report's hot ranges.
    bool adaptive_combining = false;
    /// A range turns combining ON at >= this share of the window's ops...
    double combine_enter_share = 0.30;
    /// ...and OFF again below this share (enter/exit band, see above).
    double combine_exit_share = 0.10;
  };

  AutoRebalancer(PimSkipList& list, Options options);
  explicit AutoRebalancer(PimSkipList& list);
  ~AutoRebalancer() { stop(); }

  AutoRebalancer(const AutoRebalancer&) = delete;
  AutoRebalancer& operator=(const AutoRebalancer&) = delete;

  /// Start the policy thread (idempotent).
  void start();
  /// Stop and join (idempotent; also called by the destructor).
  void stop();

  /// Migrations actually triggered (also `rebalancer.triggered` in the
  /// metrics registry; `rebalancer.migrated_keys` carries the key count).
  std::size_t migrations_triggered() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

  /// Observe-only decisions so far (also `rebalancer.would_trigger` in the
  /// metrics registry, so the telemetry stream carries them per window).
  std::size_t would_trigger_count() const noexcept {
    return would_trigger_.load(std::memory_order_relaxed);
  }

  /// Last window's imbalance was below the EXIT threshold (hysteresis has
  /// re-armed; also the `rebalancer.settled` gauge).
  bool settled() const noexcept {
    return settled_.load(std::memory_order_relaxed);
  }

  /// Copy of the LoadMap report behind the latest decision window.
  obs::LoadMap::HotVaultReport last_report() const;

  /// Split key for a (would-)trigger decision; public so the policy is
  /// testable without timing. Preference order:
  ///  1. the SpaceSaving top hot key's SUCCESSOR, when that one key
  ///     dominates the sketch (>= half its tracked mass) and lies in a
  ///     partition the hot vault owns — a midpoint split would either
  ///     leave the hot key where it is or relocate the whole hot spot,
  ///     while splitting just above it isolates the key and sheds the
  ///     rest of the partition;
  ///  2. the midpoint of the hottest key range owned by the hot vault;
  ///  3. the midpoint of the hot vault's widest partition.
  std::uint64_t suggest_split(const obs::LoadMap::HotVaultReport& rep,
                              std::size_t hot) const;

 private:
  void tick();
  void tick_observe();
  void tick_active();
  void update_combining(const obs::LoadMap::HotVaultReport& rep);
  void account_migrated_keys();
  /// [lo, hi) of the partition containing `key` plus its owner; hi is
  /// key_max + 1 for the last partition. Returns false if key is below
  /// every sentinel (cannot happen for in-range keys).
  bool partition_span(std::uint64_t key, std::uint64_t& lo,
                      std::uint64_t& hi, std::size_t& vault) const;

  PimSkipList& list_;
  Options options_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> migrations_{0};
  std::atomic<std::size_t> would_trigger_{0};
  std::atomic<bool> settled_{true};
  std::vector<std::size_t> cooldown_;       // per-vault windows remaining
  std::vector<std::uint8_t> combining_on_;  // per-range, policy view
  std::uint64_t last_migrated_keys_ = 0;
  mutable std::mutex report_mu_;
  obs::LoadMap::HotVaultReport last_report_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace pimds::core
