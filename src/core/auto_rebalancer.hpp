// Automatic rebalancing policy for the PIM skip-list (Section 4.2.1 left
// the trigger policy open: "we expect that rebalancing will not happen very
// frequently"). This helper watches per-vault request rates and splits the
// hottest vault's widest partition toward the coldest vault.
//
// Two modes:
//  - active (default): the historical behaviour — diff vault_stats()
//    request counts per period and call migrate() when the hottest vault
//    exceeds imbalance_ratio x mean.
//  - observe-only: consume the skip-list LoadMap's HotVaultReport
//    (per-vault windows + hot key ranges) and LOG would-trigger decisions
//    — including the split key the hot-range histogram suggests — without
//    migrating. This is the staging mode for LoadMap-driven automatic
//    migration: run it beside production traffic, read the decisions out
//    of the telemetry stream (`rebalancer.would_trigger` counter), and
//    flip to active once the policy is trusted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pim_skiplist.hpp"
#include "obs/loadmap.hpp"

namespace pimds::core {

class AutoRebalancer {
 public:
  struct Options {
    /// Trigger when the hottest vault served more than `imbalance_ratio`
    /// times the mean request rate during the last period.
    double imbalance_ratio = 2.0;
    std::chrono::milliseconds period{50};
    /// Safety valve for tests/demos.
    std::size_t max_migrations = ~std::size_t{0};
    /// Don't judge windows with fewer total ops than this (noise floor).
    std::uint64_t min_window_ops = 100;
    /// Decide from the LoadMap and log would-trigger lines, never migrate.
    bool observe_only = false;
    /// Print one stderr line per would-trigger decision (observe-only).
    bool log_decisions = true;
  };

  AutoRebalancer(PimSkipList& list, Options options);
  explicit AutoRebalancer(PimSkipList& list);
  ~AutoRebalancer() { stop(); }

  AutoRebalancer(const AutoRebalancer&) = delete;
  AutoRebalancer& operator=(const AutoRebalancer&) = delete;

  /// Start the policy thread (idempotent).
  void start();
  /// Stop and join (idempotent; also called by the destructor).
  void stop();

  std::size_t migrations_triggered() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

  /// Observe-only decisions so far (also `rebalancer.would_trigger` in the
  /// metrics registry, so the telemetry stream carries them per window).
  std::size_t would_trigger_count() const noexcept {
    return would_trigger_.load(std::memory_order_relaxed);
  }

  /// Copy of the LoadMap report behind the latest observe-only decision.
  obs::LoadMap::HotVaultReport last_report() const;

 private:
  void tick();
  void tick_observe();
  /// Split key for a would-trigger decision: midpoint of the hottest key
  /// range if the LoadMap saw one inside the hot vault's span, else the
  /// midpoint of the hot vault's widest partition.
  std::uint64_t suggest_split(const obs::LoadMap::HotVaultReport& rep,
                              std::size_t hot) const;

  PimSkipList& list_;
  Options options_;
  std::vector<std::uint64_t> last_requests_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> migrations_{0};
  std::atomic<std::size_t> would_trigger_{0};
  mutable std::mutex report_mu_;
  obs::LoadMap::HotVaultReport last_report_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace pimds::core
