// Automatic rebalancing policy for the PIM skip-list (Section 4.2.1 left
// the trigger policy open: "we expect that rebalancing will not happen very
// frequently"). This helper watches per-vault request rates and splits the
// hottest vault's widest partition toward the coldest vault.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/pim_skiplist.hpp"

namespace pimds::core {

class AutoRebalancer {
 public:
  struct Options {
    /// Trigger when the hottest vault served more than `imbalance_ratio`
    /// times the mean request rate during the last period.
    double imbalance_ratio = 2.0;
    std::chrono::milliseconds period{50};
    /// Safety valve for tests/demos.
    std::size_t max_migrations = ~std::size_t{0};
  };

  AutoRebalancer(PimSkipList& list, Options options);
  explicit AutoRebalancer(PimSkipList& list);
  ~AutoRebalancer() { stop(); }

  AutoRebalancer(const AutoRebalancer&) = delete;
  AutoRebalancer& operator=(const AutoRebalancer&) = delete;

  /// Start the policy thread (idempotent).
  void start();
  /// Stop and join (idempotent; also called by the destructor).
  void stop();

  std::size_t migrations_triggered() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

 private:
  void tick();

  PimSkipList& list_;
  Options options_;
  std::vector<std::uint64_t> last_requests_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> migrations_{0};
  std::thread thread_;
  bool started_ = false;
};

}  // namespace pimds::core
