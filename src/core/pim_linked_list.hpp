// PIM-managed linked-list (Section 4.1).
//
// The entire sorted list lives in one vault; CPU threads send operation
// requests to that vault's PIM core and wait on a response slot. With the
// combining optimization the core drains every request already delivered to
// its mailbox and serves the whole batch in ONE traversal (requests are
// served in ascending key order), which is what lets the structure beat a
// fine-grained-locking list despite having no intra-structure parallelism.
//
// Thread-safety: add/remove/contains may be called concurrently from any
// number of CPU threads once the owning PimSystem has started.
#pragma once

#include <cstdint>

#include "runtime/system.hpp"

namespace pimds::core {

class PimLinkedList {
 public:
  struct Options {
    std::size_t vault = 0;       ///< vault that stores the list
    bool combining = true;       ///< Section 4.1 combining optimization
    std::size_t max_batch = 64;  ///< cap on requests combined per traversal
  };

  /// Installs this list's message handler on `options.vault`. Must be
  /// constructed before `system.start()`.
  PimLinkedList(runtime::PimSystem& system, Options options);
  explicit PimLinkedList(runtime::PimSystem& system);

  PimLinkedList(const PimLinkedList&) = delete;
  PimLinkedList& operator=(const PimLinkedList&) = delete;

  /// Set operations; keys must be >= 1 (0 is the dummy head).
  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  /// Current number of keys (maintained by the PIM core; reads are
  /// racy-but-monotonic snapshots suitable for stats).
  std::size_t size() const noexcept {
    return size_.value.load(std::memory_order_relaxed);
  }

  /// Largest batch the core has combined so far (diagnostics).
  std::size_t max_observed_batch() const noexcept {
    return max_batch_seen_.value.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  enum Kind : std::uint32_t { kAdd = 1, kRemove = 2, kContains = 3 };

  void handle(runtime::PimCoreApi& api, const runtime::Message& first);
  bool apply(runtime::PimCoreApi& api, std::uint32_t kind, std::uint64_t key,
             Node*& cursor_prev);
  bool submit(Kind kind, std::uint64_t key);

  runtime::PimSystem& system_;
  Options options_;
  Node* head_;  // dummy node with key 0, allocated in the vault
  CachePadded<std::atomic<std::size_t>> size_{0};
  CachePadded<std::atomic<std::size_t>> max_batch_seen_{0};
};

}  // namespace pimds::core
