// PIM-managed linked-list (Section 4.1).
//
// The entire sorted list lives in one vault; CPU threads send operation
// requests to that vault's PIM core and wait on a response slot. With the
// combining optimization the core serves every request of a drained batch
// in ONE traversal (requests are served in ascending key order), which is
// what lets the structure beat a fine-grained-locking list despite having
// no intra-structure parallelism.
//
// Both ends of the message path batch (the batch-per-crossing shape):
//  - CPU side: co-located threads combine waiting requests so up to
//    RequestCombiner::kMaxCombine of them ride one crossbar message;
//  - PIM side: the core receives a whole drained batch from the runtime,
//    serves it in one traversal, and pipelines all the replies.
//
// Thread-safety: add/remove/contains may be called concurrently from any
// number of CPU threads once the owning PimSystem has started.
#pragma once

#include <cstdint>

#include "runtime/combiner.hpp"
#include "runtime/system.hpp"

namespace pimds::core {

class PimLinkedList {
 public:
  struct Options {
    std::size_t vault = 0;       ///< vault that stores the list
    bool combining = true;       ///< Section 4.1 combining optimization
    std::size_t max_batch = 64;  ///< cap on requests combined per traversal
    /// CPU-side request combining: waiting co-located requests ride one
    /// crossbar message (off = one message per request, the seed path).
    bool cpu_combining = true;
  };

  /// Installs this list's message handler on `options.vault`. Must be
  /// constructed before `system.start()`.
  PimLinkedList(runtime::PimSystem& system, Options options);
  explicit PimLinkedList(runtime::PimSystem& system);

  PimLinkedList(const PimLinkedList&) = delete;
  PimLinkedList& operator=(const PimLinkedList&) = delete;

  /// Set operations; keys must be >= 1 (0 is the dummy head).
  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  /// Current number of keys (maintained by the PIM core; reads are
  /// racy-but-monotonic snapshots suitable for stats).
  std::size_t size() const noexcept {
    return size_.value.load(std::memory_order_relaxed);
  }

  /// Largest batch the core has combined into one traversal (diagnostics).
  std::size_t max_observed_batch() const noexcept {
    return max_batch_seen_.value.load(std::memory_order_relaxed);
  }

  /// Largest CPU-side request batch shipped in one message (diagnostics).
  std::size_t max_request_batch() const noexcept {
    return static_cast<std::size_t>(combiner_.max_batch());
  }

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  /// One decoded request (a plain kAdd/kRemove/kContains message, or one
  /// entry of a CPU-combined kOpBatch).
  struct Op {
    std::uint32_t kind;
    std::uint64_t key;
    void* slot;
  };

  enum Kind : std::uint32_t { kAdd = 1, kRemove = 2, kContains = 3,
                              kOpBatch = 4 };

  void handle_batch(runtime::PimCoreApi& api, const runtime::Message* msgs,
                    std::size_t n);
  void serve(runtime::PimCoreApi& api, Op* ops, std::size_t n);
  bool apply(runtime::PimCoreApi& api, std::uint32_t kind, std::uint64_t key,
             Node*& cursor_prev);
  bool submit(Kind kind, std::uint64_t key);

  runtime::PimSystem& system_;
  Options options_;
  Node* head_;  // dummy node with key 0, allocated in the vault
  runtime::RequestCombiner combiner_;
  CachePadded<std::atomic<std::size_t>> size_{0};
  CachePadded<std::atomic<std::size_t>> max_batch_seen_{0};
};

}  // namespace pimds::core
