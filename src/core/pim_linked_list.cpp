#include "core/pim_linked_list.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "runtime/mailbox.hpp"

namespace pimds::core {

using runtime::Message;
using runtime::PimCoreApi;
using runtime::ResponseSlot;

PimLinkedList::PimLinkedList(runtime::PimSystem& system)
    : PimLinkedList(system, Options{}) {}

PimLinkedList::PimLinkedList(runtime::PimSystem& system, Options options)
    : system_(system), options_(options) {
  head_ = system_.vault(options_.vault).create<Node>(Node{0, nullptr});
  system_.set_handler(options_.vault,
                      [this](PimCoreApi& api, const Message& m) {
                        handle(api, m);
                      });
}

bool PimLinkedList::submit(Kind kind, std::uint64_t key) {
  assert(key >= 1 && "key 0 is reserved for the dummy head");
  ResponseSlot<bool> slot;
  Message m;
  m.kind = kind;
  m.key = key;
  m.slot = &slot;
  system_.send(options_.vault, m);
  return slot.await();
}

bool PimLinkedList::add(std::uint64_t key) { return submit(kAdd, key); }
bool PimLinkedList::remove(std::uint64_t key) { return submit(kRemove, key); }
bool PimLinkedList::contains(std::uint64_t key) {
  return submit(kContains, key);
}

/// Serve one request at the traversal cursor. `cursor_prev` is the last
/// node with key < the previous request's key; since requests are served in
/// ascending key order the cursor only ever moves forward.
bool PimLinkedList::apply(PimCoreApi& api, std::uint32_t kind,
                          std::uint64_t key, Node*& cursor_prev) {
  Node* prev = cursor_prev;
  Node* curr = prev->next;
  while (curr != nullptr && curr->key < key) {
    api.charge_local_access();
    prev = curr;
    curr = curr->next;
  }
  cursor_prev = prev;
  const bool present = curr != nullptr && curr->key == key;
  switch (kind) {
    case kContains:
      return present;
    case kAdd: {
      if (present) return false;
      Node* node = api.vault().create<Node>(Node{key, curr});
      prev->next = node;
      size_.value.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case kRemove: {
      if (!present) return false;
      prev->next = curr->next;
      api.vault().destroy(curr);
      size_.value.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    default:
      assert(false && "unknown linked-list opcode");
      return false;
  }
}

void PimLinkedList::handle(PimCoreApi& api, const Message& first) {
  if (!options_.combining) {
    Node* cursor = head_;
    api.charge_local_access();  // reading the head
    const bool result = apply(api, first.kind, first.key, cursor);
    static_cast<ResponseSlot<bool>*>(first.slot)->publish(
        result, api.reply_ready_ns());
    return;
  }

  // Combining: drain whatever else has already been delivered, then serve
  // the whole batch in one ascending traversal.
  std::vector<Message> batch;
  batch.push_back(first);
  while (batch.size() < options_.max_batch) {
    std::optional<Message> more = api.poll();
    if (!more) break;
    batch.push_back(*more);
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Message& a, const Message& b) {
                     return a.key < b.key;
                   });
  std::size_t seen = max_batch_seen_.value.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !max_batch_seen_.value.compare_exchange_weak(
             seen, batch.size(), std::memory_order_relaxed)) {
  }

  Node* cursor = head_;
  api.charge_local_access();
  for (const Message& m : batch) {
    const bool result = apply(api, m.kind, m.key, cursor);
    // Respond asynchronously: with latency injection on, the reply becomes
    // visible Lmessage later while the core continues the same traversal.
    static_cast<ResponseSlot<bool>*>(m.slot)->publish(result,
                                                      api.reply_ready_ns());
  }
}

}  // namespace pimds::core
