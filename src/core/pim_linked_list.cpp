#include "core/pim_linked_list.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "runtime/fat_arena.hpp"
#include "runtime/mailbox.hpp"

namespace pimds::core {

using runtime::Message;
using runtime::PimCoreApi;
using runtime::RequestCombiner;
using runtime::ResponseSlot;

namespace {
/// Hard cap on requests served per traversal (sizes the results scratch).
constexpr std::size_t kMaxServe = 64;
}  // namespace

PimLinkedList::PimLinkedList(runtime::PimSystem& system)
    : PimLinkedList(system, Options{}) {}

PimLinkedList::PimLinkedList(runtime::PimSystem& system, Options options)
    : system_(system), options_(options) {
  head_ = system_.vault(options_.vault).create<Node>(Node{0, nullptr});
  system_.set_batch_handler(
      options_.vault, [this](PimCoreApi& api, const Message* msgs,
                             std::size_t n) { handle_batch(api, msgs, n); });
}

bool PimLinkedList::submit(Kind kind, std::uint64_t key) {
  assert(key >= 1 && "key 0 is reserved for the dummy head");
  ResponseSlot<bool> slot;
  if (options_.cpu_combining) {
    RequestCombiner::Entry entry{};
    entry.kind = kind;
    entry.key = key;
    entry.slot = &slot;
    combiner_.submit(entry, [this](Message& m) {
      m.kind = kOpBatch;
      system_.send(options_.vault, m);
    });
  } else {
    Message m;
    m.kind = kind;
    m.key = key;
    m.slot = &slot;
    system_.send(options_.vault, m);
  }
  return slot.await();
}

bool PimLinkedList::add(std::uint64_t key) { return submit(kAdd, key); }
bool PimLinkedList::remove(std::uint64_t key) { return submit(kRemove, key); }
bool PimLinkedList::contains(std::uint64_t key) {
  return submit(kContains, key);
}

/// Serve one request at the traversal cursor. `cursor_prev` is the last
/// node with key < the previous request's key; since requests are served in
/// ascending key order the cursor only ever moves forward.
bool PimLinkedList::apply(PimCoreApi& api, std::uint32_t kind,
                          std::uint64_t key, Node*& cursor_prev) {
  Node* prev = cursor_prev;
  Node* curr = prev->next;
  while (curr != nullptr && curr->key < key) {
    api.charge_local_access();
    prev = curr;
    curr = curr->next;
  }
  cursor_prev = prev;
  const bool present = curr != nullptr && curr->key == key;
  switch (kind) {
    case kContains:
      return present;
    case kAdd: {
      if (present) return false;
      Node* node = api.vault().create<Node>(Node{key, curr});
      prev->next = node;
      size_.value.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case kRemove: {
      if (!present) return false;
      prev->next = curr->next;
      api.vault().destroy(curr);
      size_.value.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    default:
      assert(false && "unknown linked-list opcode");
      return false;
  }
}

/// Serve `n` decoded requests. With combining on they are sorted and served
/// in one ascending traversal; all replies ride one pipelined response
/// (shared ready_ns). Without combining each request restarts at the head.
void PimLinkedList::serve(PimCoreApi& api, Op* ops, std::size_t n) {
  if (n == 0) return;
  if (!options_.combining) {
    for (std::size_t i = 0; i < n; ++i) {
      Node* cursor = head_;
      api.charge_local_access();  // reading the head
      const bool result = apply(api, ops[i].kind, ops[i].key, cursor);
      static_cast<ResponseSlot<bool>*>(ops[i].slot)->publish(
          result, api.reply_ready_ns());
    }
    return;
  }
  std::stable_sort(ops, ops + n, [](const Op& a, const Op& b) {
    return a.key < b.key;
  });
  std::size_t seen = max_batch_seen_.value.load(std::memory_order_relaxed);
  while (n > seen && !max_batch_seen_.value.compare_exchange_weak(
                         seen, n, std::memory_order_relaxed)) {
  }
  Node* cursor = head_;
  api.charge_local_access();
  bool results[kMaxServe];
  assert(n <= kMaxServe);
  for (std::size_t i = 0; i < n; ++i) {
    results[i] = apply(api, ops[i].kind, ops[i].key, cursor);
  }
  // One fat response message for the whole batch: every slot becomes
  // visible at the same delivery time while the core moves on.
  const std::uint64_t ready = api.reply_ready_ns();
  for (std::size_t i = 0; i < n; ++i) {
    static_cast<ResponseSlot<bool>*>(ops[i].slot)->publish(results[i], ready);
  }
}

void PimLinkedList::handle_batch(PimCoreApi& api, const Message* msgs,
                                 std::size_t n) {
  // Decode plain and CPU-combined messages into one flat request list,
  // serving in chunks of max_batch (cap on one traversal's combined size).
  std::vector<Op> ops;
  ops.reserve(options_.max_batch);
  const std::size_t cap = std::min(options_.max_batch, kMaxServe);
  auto flush = [&] {
    serve(api, ops.data(), ops.size());
    ops.clear();
  };
  auto push_op = [&](std::uint32_t kind, std::uint64_t key, void* slot) {
    ops.push_back(Op{kind, key, slot});
    if (ops.size() >= cap) flush();
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Message& m = msgs[i];
    if (m.kind == kOpBatch) {
      const runtime::FatEntry* entries = runtime::fat_entries(m);
      for (std::uint16_t j = 0; j < m.fat_count; ++j) {
        push_op(entries[j].kind, entries[j].key, entries[j].slot);
      }
      runtime::release_fat_payload(m);
    } else {
      push_op(m.kind, m.key, m.slot);
    }
  }
  flush();
}

}  // namespace pimds::core
