#include "core/pim_fifo_queue.hpp"

#include <cassert>

#include "obs/obs.hpp"
#include "runtime/fat_arena.hpp"
#include "runtime/mailbox.hpp"

namespace pimds::core {

using runtime::fat_entries;
using runtime::FatEntry;
using runtime::Message;
using runtime::PimCoreApi;
using runtime::release_fat_payload;
using runtime::RequestCombiner;
using runtime::ResponseSlot;

namespace {
// Process-wide queue metrics: a process runs one PimFifoQueue at a time in
// practice; if several coexist, snapshots aggregate them.
struct QueueMetrics {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& enq_ops = reg.counter("runtime.queue.enq_ops");
  obs::Counter& enq_batches = reg.counter("runtime.queue.enq_batches");
  obs::Counter& rejections = reg.counter("runtime.queue.rejections");
  obs::Counter& handoffs = reg.counter("runtime.queue.segment_handoffs");
  obs::Counter& segs_destroyed = reg.counter("runtime.queue.segments_destroyed");
  obs::Histogram& enq_batch = reg.histogram("runtime.queue.enq_batch");
  obs::Histogram& deq_batch = reg.histogram("runtime.queue.deq_batch");
};
QueueMetrics& qmetrics() {
  static QueueMetrics m;
  return m;
}
}  // namespace

PimFifoQueue::PimFifoQueue(runtime::PimSystem& system)
    : PimFifoQueue(system, Options{}) {}

PimFifoQueue::PimFifoQueue(runtime::PimSystem& system, Options options)
    : system_(system), options_(options), vaults_(system.num_vaults()) {
  enq_combiner_.set_linger_ns(options_.combine_linger_ns);
  deq_combiner_.set_linger_ns(options_.combine_linger_ns);
  // Initial state (Section 5.1): one empty segment acting as both the
  // enqueue and the dequeue segment, in vault 0. It already holds the
  // dequeue role, so it is NOT in the segment queue.
  Segment* initial = system_.vault(0).create<Segment>();
  vaults_[0]->enq_seg = initial;
  vaults_[0]->deq_seg = initial;
  for (std::size_t v = 0; v < system_.num_vaults(); ++v) {
    system_.set_batch_handler(
        v, [this](PimCoreApi& api, const Message* msgs, std::size_t n) {
          handle_batch(api, msgs, n);
        });
  }
}

std::size_t PimFifoQueue::pick_next_core(std::size_t self) const {
  const std::size_t k = vaults_.size();
  if (k == 1) return 0;
  if (options_.antipodal_placement) {
    std::size_t next =
        (deq_cid_.value.load(std::memory_order_relaxed) + k / 2) % k;
    if (next == deq_cid_.value.load(std::memory_order_relaxed)) {
      next = (next + 1) % k;
    }
    return next;
  }
  return (self + 1) % k;
}

/// One drain pass worth of messages. Enqueues and dequeues are each gathered
/// across the whole batch (Section 5.1 combining) and served together —
/// enqueues append as fat nodes, dequeues pop consecutive values at one
/// local access per fat node's worth; everything else flushes both gathers
/// and is served in arrival order, which preserves the per-channel FIFO the
/// segment hand-off protocol relies on. Reordering enqueues/dequeues behind
/// other senders' operations is linearizable: a CPU thread has at most one
/// request in flight, so all reordered operations are concurrent.
void PimFifoQueue::handle_batch(PimCoreApi& api, const Message* msgs,
                                std::size_t n) {
  std::vector<PendingEnq> enqs;
  std::vector<void*> deqs;
  auto flush = [&] {
    if (!enqs.empty()) serve_enq_batch(api, enqs);
    if (!deqs.empty()) serve_deq_batch(api, deqs);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Message& m = msgs[i];
    switch (m.kind) {
      case kEnqBatch: {
        // Already CPU-combined: always served as a fat node. The batch
        // rides inside the message (inline or spilled) — zero-copy decode.
        const FatEntry* entries = fat_entries(m);
        for (std::uint16_t j = 0; j < m.fat_count; ++j) {
          enqs.push_back(PendingEnq{entries[j].value, entries[j].slot});
        }
        release_fat_payload(m);
        if (!options_.enqueue_combining) flush();
        break;
      }
      case kEnq:
        if (options_.enqueue_combining) {
          enqs.push_back(PendingEnq{m.value, m.slot});
        } else {
          handle_enq(api, m);
        }
        break;
      case kDeqBatch: {
        const FatEntry* entries = fat_entries(m);
        for (std::uint16_t j = 0; j < m.fat_count; ++j) {
          deqs.push_back(entries[j].slot);
        }
        release_fat_payload(m);
        break;
      }
      case kDeq:
        deqs.push_back(m.slot);
        break;
      default:
        flush();
        handle(api, m);
        break;
    }
  }
  flush();
}

void PimFifoQueue::handle(PimCoreApi& api, const Message& m) {
  switch (m.kind) {
    case kEnq:
      handle_enq(api, m);
      break;
    case kDeq:
      handle_deq(api, m);
      break;
    case kDeqBatch:
      handle_deq_batch(api, m);
      break;
    case kNewEnqSeg: {
      VaultState& vs = *vaults_[api.vault_id()];
      Segment* seg = api.vault().create<Segment>();
      // Append to this core's segQueue (Algorithm 1 newEnqSeg lines 19-21).
      if (vs.seg_queue_tail != nullptr) {
        vs.seg_queue_tail->next_in_queue = seg;
      } else {
        vs.seg_queue_head = seg;
      }
      vs.seg_queue_tail = seg;
      vs.enq_seg = seg;
      api.charge_local_access();
      segments_created_.value.fetch_add(1, std::memory_order_relaxed);
      obs::trace_instant_here("newEnqSeg", "queue",
                              {"vault", api.vault_id()});
      // "Notify the CPUs of the new enqueue segment."
      enq_cid_.value.store(api.vault_id(), std::memory_order_release);
      break;
    }
    case kNewDeqSeg: {
      VaultState& vs = *vaults_[api.vault_id()];
      // FIFO per-channel delivery guarantees the newEnqSeg that created the
      // next segment (sent earlier on the same core-to-core channel) has
      // been processed, so the segQueue cannot be empty here.
      assert(vs.seg_queue_head != nullptr &&
             "newDeqSeg arrived before the matching newEnqSeg");
      Segment* seg = vs.seg_queue_head;
      vs.seg_queue_head = seg->next_in_queue;
      if (vs.seg_queue_head == nullptr) vs.seg_queue_tail = nullptr;
      seg->next_in_queue = nullptr;
      vs.deq_seg = seg;
      obs::trace_instant_here("newDeqSeg", "queue",
                              {"vault", api.vault_id()});
      deq_cid_.value.store(api.vault_id(), std::memory_order_release);
      break;
    }
    default:
      assert(false && "unknown queue opcode");
  }
}

void PimFifoQueue::split_if_full(PimCoreApi& api) {
  VaultState& vs = *vaults_[api.vault_id()];
  if (vs.enq_seg == nullptr ||
      vs.enq_seg->count <= options_.segment_threshold) {
    return;
  }
  Segment& seg = *vs.enq_seg;
  const std::size_t next = pick_next_core(api.vault_id());
  seg.next_seg_cid = next;
  qmetrics().handoffs.add(1);
  Message create;
  create.kind = kNewEnqSeg;
  if (next == api.vault_id()) {
    // Self hand-off (k == 1, or antipodal landed here): create locally
    // instead of bouncing a message off our own mailbox.
    handle(api, create);
  } else {
    api.send(next, create);
    vs.enq_seg = nullptr;
  }
}

void PimFifoQueue::serve_enq_batch(PimCoreApi& api,
                                   std::vector<PendingEnq>& batch) {
  VaultState& vs = *vaults_[api.vault_id()];
  if (vs.enq_seg == nullptr) {
    // Stale routing: the enqueue role moved away; reject the whole batch
    // (one fat response message).
    const std::uint64_t ready = api.reply_ready_ns();
    for (const PendingEnq& e : batch) {
      static_cast<ResponseSlot<Reply>*>(e.slot)->publish(Reply{false, false, 0},
                                                         ready);
    }
    batch.clear();
    return;
  }
  Segment& seg = *vs.enq_seg;
  // One local access per cache-line-sized array of values (the fat node).
  api.charge_local_access((batch.size() + options_.fat_node_capacity - 1) /
                          options_.fat_node_capacity);
  std::uint64_t seen = max_enq_batch_.value.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !max_enq_batch_.value.compare_exchange_weak(
             seen, batch.size(), std::memory_order_relaxed)) {
  }
  for (const PendingEnq& e : batch) {
    Node* node = api.vault().create<Node>(Node{e.value, nullptr});
    if (seg.head != nullptr) {
      seg.head->next = node;
      seg.head = node;
    } else {
      seg.head = node;
      seg.tail = node;
    }
  }
  // One pipelined fat response for the whole batch.
  const std::uint64_t ready = api.reply_ready_ns();
  for (const PendingEnq& e : batch) {
    static_cast<ResponseSlot<Reply>*>(e.slot)->publish(Reply{true, false, 0},
                                                       ready);
  }
  seg.count += batch.size();
  enq_count_.value.fetch_add(batch.size(), std::memory_order_relaxed);
  qmetrics().enq_ops.add(batch.size());
  qmetrics().enq_batches.add(1);
  qmetrics().enq_batch.record(batch.size());
  batch.clear();
  split_if_full(api);
}

void PimFifoQueue::handle_enq(PimCoreApi& api, const Message& m) {
  VaultState& vs = *vaults_[api.vault_id()];
  auto* slot = static_cast<ResponseSlot<Reply>*>(m.slot);
  if (vs.enq_seg == nullptr) {
    slot->publish(Reply{false, false, 0}, api.reply_ready_ns());
    return;
  }
  Segment& seg = *vs.enq_seg;
  api.charge_local_access();  // the node write; head/tail updates are L1
  Node* node = api.vault().create<Node>(Node{m.value, nullptr});
  if (seg.head != nullptr) {
    seg.head->next = node;
    seg.head = node;
  } else {
    seg.head = node;
    seg.tail = node;
  }
  slot->publish(Reply{true, false, 0}, api.reply_ready_ns());
  seg.count += 1;
  enq_count_.value.fetch_add(1, std::memory_order_relaxed);
  qmetrics().enq_ops.add(1);
  qmetrics().enq_batches.add(1);
  qmetrics().enq_batch.record(1);
  split_if_full(api);
}

PimFifoQueue::Reply PimFifoQueue::serve_one_deq(PimCoreApi& api,
                                                bool charge_node_read) {
  VaultState& vs = *vaults_[api.vault_id()];
  if (vs.deq_seg == nullptr) return Reply{false, false, 0};
  Segment& seg = *vs.deq_seg;
  if (seg.tail != nullptr) {
    Node* node = seg.tail;
    if (charge_node_read) api.charge_local_access();  // reading the node
    const std::uint64_t value = node->value;
    seg.tail = node->next;
    if (seg.tail == nullptr) seg.head = nullptr;
    api.vault().destroy(node);
    deq_count_.value.fetch_add(1, std::memory_order_relaxed);
    return Reply{true, true, value};
  }
  if (vs.deq_seg == vs.enq_seg) {
    // Single-segment case: the queue really is empty right now.
    return Reply{true, false, 0};
  }
  // Segment exhausted: pass the dequeue role along the chain, delete the
  // spent segment, and tell the CPU to retry (Algorithm 1 lines 33-35).
  const std::size_t next = seg.next_seg_cid;
  assert(next < vaults_.size() && "exhausted segment has no successor");
  vs.deq_seg = nullptr;
  api.vault().destroy(&seg);
  segments_destroyed_.value.fetch_add(1, std::memory_order_relaxed);
  qmetrics().segs_destroyed.add(1);
  Message pass;
  pass.kind = kNewDeqSeg;
  if (next == api.vault_id()) {
    handle(api, pass);
  } else {
    api.send(next, pass);
  }
  return Reply{false, false, 0};
}

void PimFifoQueue::handle_deq(PimCoreApi& api, const Message& m) {
  static_cast<ResponseSlot<Reply>*>(m.slot)->publish(serve_one_deq(api),
                                                     api.reply_ready_ns());
}

void PimFifoQueue::serve_deq_batch(PimCoreApi& api, std::vector<void*>& slots) {
  // Dequeued values are consecutive, so like serve_enq_batch this costs one
  // local access per fat node's worth of values, not one per pop — the
  // per-message path (handle_deq) cannot amortize and pays one per pop.
  std::vector<Reply> replies;
  replies.reserve(slots.size());
  std::size_t pops = 0;
  for (void* s : slots) {
    (void)s;
    const Reply r = serve_one_deq(api, /*charge_node_read=*/false);
    pops += r.has_value ? 1 : 0;
    replies.push_back(r);
  }
  if (pops > 0) {
    api.charge_local_access((pops + options_.fat_node_capacity - 1) /
                            options_.fat_node_capacity);
  }
  std::uint64_t seen = max_deq_batch_.value.load(std::memory_order_relaxed);
  while (slots.size() > seen &&
         !max_deq_batch_.value.compare_exchange_weak(
             seen, slots.size(), std::memory_order_relaxed)) {
  }
  qmetrics().deq_batch.record(slots.size());
  // One pipelined fat response carrying every dequeued value.
  const std::uint64_t ready = api.reply_ready_ns();
  for (std::size_t j = 0; j < slots.size(); ++j) {
    static_cast<ResponseSlot<Reply>*>(slots[j])->publish(replies[j], ready);
  }
  slots.clear();
}

void PimFifoQueue::handle_deq_batch(PimCoreApi& api, const Message& m) {
  const FatEntry* entries = fat_entries(m);
  std::vector<void*> slots;
  slots.reserve(m.fat_count);
  for (std::uint16_t j = 0; j < m.fat_count; ++j) {
    slots.push_back(entries[j].slot);
  }
  serve_deq_batch(api, slots);
  release_fat_payload(m);
}

void PimFifoQueue::enqueue(std::uint64_t value) {
  ResponseSlot<Reply> slot;
  const bool obs_on = obs::metrics_enabled();
  const std::uint64_t rid = obs::trace_enabled() ? obs::next_request_id() : 0;
  const std::uint64_t op_start = (obs_on || rid != 0) ? now_ns() : 0;
  for (;;) {
    if (options_.cpu_combining) {
      RequestCombiner::Entry e{};
      e.kind = kEnq;
      e.value = value;
      e.slot = &slot;
#ifndef PIMDS_OBS_DISABLED
      e.req_id = rid;  // combined ops keep their trace correlation
#endif
      enq_combiner_.submit(e, [this](Message& m) {
        m.kind = kEnqBatch;
        system_.send(enq_cid_.value.load(std::memory_order_acquire), m);
      });
    } else {
      const std::uint64_t attempt_start = obs_on ? now_ns() : 0;
      Message m;
      m.kind = kEnq;
      m.value = value;
      m.slot = &slot;
#ifndef PIMDS_OBS_DISABLED
      m.req_id = rid;
#endif
      system_.send(enq_cid_.value.load(std::memory_order_acquire), m);
      if (obs_on) {
        obs::record_runtime_phase(obs::Phase::kIssue,
                                  now_ns() - attempt_start);
      }
    }
    if (slot.await().accepted) break;
    rejections_.value.fetch_add(1, std::memory_order_relaxed);
    qmetrics().rejections.add(1);
    obs::trace_instant_here("cpu_retry", "queue");
  }
  if (obs_on) {
    obs::record_runtime_phase(obs::Phase::kTotal, now_ns() - op_start);
  }
  if (rid != 0) {
    obs::trace_complete_here("op", "queue", op_start, {"req", rid},
                             {"enq", 1});
  }
}

std::optional<std::uint64_t> PimFifoQueue::dequeue() {
  ResponseSlot<Reply> slot;
  const bool obs_on = obs::metrics_enabled();
  const std::uint64_t rid = obs::trace_enabled() ? obs::next_request_id() : 0;
  const std::uint64_t op_start = (obs_on || rid != 0) ? now_ns() : 0;
  std::optional<std::uint64_t> out;
  for (;;) {
    if (options_.cpu_combining) {
      RequestCombiner::Entry e{};
      e.kind = kDeq;
      e.slot = &slot;
#ifndef PIMDS_OBS_DISABLED
      e.req_id = rid;
#endif
      deq_combiner_.submit(e, [this](Message& m) {
        m.kind = kDeqBatch;
        system_.send(deq_cid_.value.load(std::memory_order_acquire), m);
      });
    } else {
      const std::uint64_t attempt_start = obs_on ? now_ns() : 0;
      Message m;
      m.kind = kDeq;
      m.slot = &slot;
#ifndef PIMDS_OBS_DISABLED
      m.req_id = rid;
#endif
      system_.send(deq_cid_.value.load(std::memory_order_acquire), m);
      if (obs_on) {
        obs::record_runtime_phase(obs::Phase::kIssue,
                                  now_ns() - attempt_start);
      }
    }
    const Reply r = slot.await();
    if (r.accepted) {
      if (r.has_value) out = r.value;
      break;
    }
    rejections_.value.fetch_add(1, std::memory_order_relaxed);
    qmetrics().rejections.add(1);
    obs::trace_instant_here("cpu_retry", "queue");
  }
  if (obs_on) {
    obs::record_runtime_phase(obs::Phase::kTotal, now_ns() - op_start);
  }
  if (rid != 0) {
    obs::trace_complete_here("op", "queue", op_start, {"req", rid},
                             {"enq", 0});
  }
  return out;
}

}  // namespace pimds::core
