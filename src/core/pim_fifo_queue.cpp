#include "core/pim_fifo_queue.hpp"

#include <cassert>

#include "runtime/mailbox.hpp"

namespace pimds::core {

using runtime::Message;
using runtime::PimCoreApi;
using runtime::ResponseSlot;

PimFifoQueue::PimFifoQueue(runtime::PimSystem& system)
    : PimFifoQueue(system, Options{}) {}

PimFifoQueue::PimFifoQueue(runtime::PimSystem& system, Options options)
    : system_(system), options_(options), vaults_(system.num_vaults()) {
  // Initial state (Section 5.1): one empty segment acting as both the
  // enqueue and the dequeue segment, in vault 0. It already holds the
  // dequeue role, so it is NOT in the segment queue.
  Segment* initial = system_.vault(0).create<Segment>();
  vaults_[0]->enq_seg = initial;
  vaults_[0]->deq_seg = initial;
  for (std::size_t v = 0; v < system_.num_vaults(); ++v) {
    system_.set_handler(v, [this](PimCoreApi& api, const Message& m) {
      handle(api, m);
    });
  }
}

std::size_t PimFifoQueue::pick_next_core(std::size_t self) const {
  const std::size_t k = vaults_.size();
  if (k == 1) return 0;
  if (options_.antipodal_placement) {
    std::size_t next =
        (deq_cid_.value.load(std::memory_order_relaxed) + k / 2) % k;
    if (next == deq_cid_.value.load(std::memory_order_relaxed)) {
      next = (next + 1) % k;
    }
    return next;
  }
  return (self + 1) % k;
}

void PimFifoQueue::handle(PimCoreApi& api, const Message& m) {
  switch (m.kind) {
    case kEnq:
      handle_enq(api, m);
      break;
    case kDeq:
      handle_deq(api, m);
      break;
    case kNewEnqSeg: {
      VaultState& vs = *vaults_[api.vault_id()];
      Segment* seg = api.vault().create<Segment>();
      // Append to this core's segQueue (Algorithm 1 newEnqSeg lines 19-21).
      if (vs.seg_queue_tail != nullptr) {
        vs.seg_queue_tail->next_in_queue = seg;
      } else {
        vs.seg_queue_head = seg;
      }
      vs.seg_queue_tail = seg;
      vs.enq_seg = seg;
      api.charge_local_access();
      segments_created_.value.fetch_add(1, std::memory_order_relaxed);
      // "Notify the CPUs of the new enqueue segment."
      enq_cid_.value.store(api.vault_id(), std::memory_order_release);
      break;
    }
    case kNewDeqSeg: {
      VaultState& vs = *vaults_[api.vault_id()];
      // FIFO per-channel delivery guarantees the newEnqSeg that created the
      // next segment (sent earlier on the same core-to-core channel) has
      // been processed, so the segQueue cannot be empty here.
      assert(vs.seg_queue_head != nullptr &&
             "newDeqSeg arrived before the matching newEnqSeg");
      Segment* seg = vs.seg_queue_head;
      vs.seg_queue_head = seg->next_in_queue;
      if (vs.seg_queue_head == nullptr) vs.seg_queue_tail = nullptr;
      seg->next_in_queue = nullptr;
      vs.deq_seg = seg;
      deq_cid_.value.store(api.vault_id(), std::memory_order_release);
      break;
    }
    default:
      assert(false && "unknown queue opcode");
  }
}

void PimFifoQueue::handle_enq(PimCoreApi& api, const Message& m) {
  VaultState& vs = *vaults_[api.vault_id()];
  auto* slot = static_cast<ResponseSlot<Reply>*>(m.slot);
  if (vs.enq_seg == nullptr) {
    slot->publish(Reply{false, false, 0}, api.reply_ready_ns());
    return;
  }
  Segment& seg = *vs.enq_seg;

  // Gather the batch: just this request, or — with Section 5.1's fat-node
  // combining — every enqueue already delivered to the mailbox. Non-enqueue
  // messages picked up while draining are replayed afterwards.
  std::vector<Message> batch{m};
  std::vector<Message> replay;
  if (options_.enqueue_combining) {
    while (auto more = api.poll()) {
      if (more->kind == kEnq && vs.enq_seg != nullptr) {
        batch.push_back(*more);
      } else {
        replay.push_back(*more);
      }
    }
    // One local access per cache-line-sized array of values.
    api.charge_local_access((batch.size() + options_.fat_node_capacity - 1) /
                            options_.fat_node_capacity);
    std::uint64_t seen = max_enq_batch_.value.load(std::memory_order_relaxed);
    while (batch.size() > seen &&
           !max_enq_batch_.value.compare_exchange_weak(
               seen, batch.size(), std::memory_order_relaxed)) {
    }
  } else {
    api.charge_local_access();  // the node write; head/tail updates are L1
  }
  for (const Message& e : batch) {
    Node* node = api.vault().create<Node>(Node{e.value, nullptr});
    if (seg.head != nullptr) {
      seg.head->next = node;
      seg.head = node;
    } else {
      seg.head = node;
      seg.tail = node;
    }
    static_cast<ResponseSlot<Reply>*>(e.slot)->publish(
        Reply{true, false, 0}, api.reply_ready_ns());
  }
  seg.count += batch.size();
  enq_count_.value.fetch_add(batch.size(), std::memory_order_relaxed);
  for (const Message& r : replay) handle(api, r);
  if (seg.count > options_.segment_threshold) {
    const std::size_t next = pick_next_core(api.vault_id());
    seg.next_seg_cid = next;
    if (next == api.vault_id()) {
      // Self hand-off (k == 1, or antipodal landed here): create locally
      // instead of bouncing a message off our own mailbox.
      Message create;
      create.kind = kNewEnqSeg;
      handle(api, create);
    } else {
      Message create;
      create.kind = kNewEnqSeg;
      api.send(next, create);
      vs.enq_seg = nullptr;
    }
  }
}

void PimFifoQueue::handle_deq(PimCoreApi& api, const Message& m) {
  VaultState& vs = *vaults_[api.vault_id()];
  auto* slot = static_cast<ResponseSlot<Reply>*>(m.slot);
  if (vs.deq_seg == nullptr) {
    slot->publish(Reply{false, false, 0}, api.reply_ready_ns());
    return;
  }
  Segment& seg = *vs.deq_seg;
  if (seg.tail != nullptr) {
    Node* node = seg.tail;
    api.charge_local_access();  // reading the node
    const std::uint64_t value = node->value;
    seg.tail = node->next;
    if (seg.tail == nullptr) seg.head = nullptr;
    api.vault().destroy(node);
    deq_count_.value.fetch_add(1, std::memory_order_relaxed);
    slot->publish(Reply{true, true, value}, api.reply_ready_ns());
    return;
  }
  if (vs.deq_seg == vs.enq_seg) {
    // Single-segment case: the queue really is empty right now.
    slot->publish(Reply{true, false, 0}, api.reply_ready_ns());
    return;
  }
  // Segment exhausted: pass the dequeue role along the chain, delete the
  // spent segment, and tell the CPU to retry (Algorithm 1 lines 33-35).
  const std::size_t next = seg.next_seg_cid;
  assert(next < vaults_.size() && "exhausted segment has no successor");
  vs.deq_seg = nullptr;
  api.vault().destroy(&seg);
  Message pass;
  pass.kind = kNewDeqSeg;
  if (next == api.vault_id()) {
    handle(api, pass);
  } else {
    api.send(next, pass);
  }
  slot->publish(Reply{false, false, 0}, api.reply_ready_ns());
}

void PimFifoQueue::enqueue(std::uint64_t value) {
  ResponseSlot<Reply> slot;
  for (;;) {
    Message m;
    m.kind = kEnq;
    m.value = value;
    m.slot = &slot;
    system_.send(enq_cid_.value.load(std::memory_order_acquire), m);
    if (slot.await().accepted) return;
    rejections_.value.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<std::uint64_t> PimFifoQueue::dequeue() {
  ResponseSlot<Reply> slot;
  for (;;) {
    Message m;
    m.kind = kDeq;
    m.slot = &slot;
    system_.send(deq_cid_.value.load(std::memory_order_acquire), m);
    const Reply r = slot.await();
    if (r.accepted) {
      if (r.has_value) return r.value;
      return std::nullopt;
    }
    rejections_.value.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace pimds::core
