// PIM-managed skip-list with partitioning and non-blocking node migration
// (Sections 4.2 and 4.2.1).
//
// The key space splits into one partition per vault initially; CPUs route
// each operation through the sentinel directory to the owning vault's PIM
// core. migrate() moves a suffix of a partition to another vault using the
// paper's protocol: the source keeps serving requests during the migration
// (keys not yet migrated are served locally, already-migrated keys are
// forwarded to the target), the directory is updated when the hand-over
// completes, and stale requests are rejected so the CPU re-routes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "core/local_skiplist.hpp"
#include "core/sentinel_directory.hpp"
#include "obs/loadmap.hpp"
#include "runtime/combiner.hpp"
#include "runtime/system.hpp"

namespace pimds::core {

class PimSkipList {
 public:
  struct Options {
    std::uint64_t key_min = 1;            ///< smallest usable key
    std::uint64_t key_max = 1u << 20;     ///< largest usable key
    std::uint64_t seed = 42;              ///< tower-height RNG seed
    std::size_t migrate_chunk = 32;       ///< nodes moved per migration step
  };

  /// Installs handlers on ALL vaults of `system`; construct before start().
  /// Partition i initially covers an equal share of [key_min, key_max].
  PimSkipList(runtime::PimSystem& system, Options options);
  explicit PimSkipList(runtime::PimSystem& system);

  PimSkipList(const PimSkipList&) = delete;
  PimSkipList& operator=(const PimSkipList&) = delete;

  bool add(std::uint64_t key);
  bool remove(std::uint64_t key);
  bool contains(std::uint64_t key);

  /// Section 4.2.1 rebalancing primitive: move every key in
  /// [split_key, end of split_key's partition) to `to_vault`, concurrently
  /// with ongoing operations. Returns false (without side effects) if
  /// another migration is still in flight, `to_vault` already owns the
  /// range, or `split_key` is out of bounds. Completion is asynchronous:
  /// poll migration_active().
  bool migrate(std::uint64_t split_key, std::size_t to_vault);
  bool migration_active() const noexcept {
    return migration_busy_.value.load(std::memory_order_acquire);
  }

  /// Racy per-vault statistics (request counts drive rebalancing policy).
  struct VaultStats {
    std::uint64_t keys = 0;
    std::uint64_t requests = 0;
  };
  std::vector<VaultStats> vault_stats() const;

  std::vector<SentinelDirectory::Entry> partitions() const {
    return directory_.snapshot();
  }

  /// Per-vault / per-key-range load accounting fed from the vault service
  /// path ("skiplist.vault<k>.ops" in the registry); report() answers
  /// hot-vault questions for the rebalancer's observe-only mode.
  obs::LoadMap& loadmap() noexcept { return loadmap_; }

  /// Cumulative keys handed over by migrations (one per kMigNode sent).
  /// The auto-rebalancer exports the windowed delta as
  /// `rebalancer.migrated_keys`.
  std::uint64_t migrated_keys() const noexcept {
    return migrated_keys_.value.load(std::memory_order_relaxed);
  }

  /// Contention-adaptive combining (keyed off the same LoadMap grid the
  /// rebalancer reads): ops whose key falls in a flagged range bucket are
  /// published to the owning vault's RequestCombiner and travel as one fat
  /// kOpBatch message; unflagged ranges keep the one-message-per-op direct
  /// path. The vault decodes each batch entry back into a plain op and runs
  /// it through the normal execute/forward/defer/reject gate, so migration
  /// semantics (and the CPU's reject-retry loop) are unchanged — a batch
  /// routed on a stale directory read simply gets its member ops rejected
  /// individually.
  void set_range_combining(std::size_t range_idx, bool on) noexcept {
    if (range_idx < loadmap_.options().num_ranges) {
      combine_range_[range_idx].store(on ? 1 : 0, std::memory_order_relaxed);
    }
  }
  bool range_combining(std::uint64_t key) const noexcept {
    return combine_range_[loadmap_.range_of(key)].load(
               std::memory_order_relaxed) != 0;
  }
  std::size_t combining_ranges() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < loadmap_.options().num_ranges; ++i) {
      n += combine_range_[i].load(std::memory_order_relaxed) != 0;
    }
    return n;
  }
  /// Fat batches shipped / ops carried by them, summed over vault combiners.
  std::uint64_t combined_batches() const noexcept;
  std::uint64_t combined_ops() const noexcept;

  std::size_t size() const noexcept;

  const Options& options() const noexcept { return options_; }

 private:
  enum Kind : std::uint32_t {
    kAdd = 1,
    kRemove = 2,
    kContains = 3,
    kMigStart = 4,  ///< CPU -> source: begin migration (key=split, value=hi)
    kMigBegin = 5,  ///< source -> target: incoming range announcement
    kMigNode = 6,   ///< source -> target: one migrated key
    kMigEnd = 7,    ///< source -> target: hand-over complete
    kFwdAdd = 8,    ///< source -> target: forwarded operations
    kFwdRemove = 9,
    kFwdContains = 10,
    kOpBatch = 11,  ///< CPU -> vault: combined fat batch of direct ops
  };

  struct OpReply {
    bool accepted = false;
    bool result = false;
  };

  struct Migration {
    bool active = false;
    bool outgoing = false;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::size_t peer = 0;
    std::uint64_t cursor = 0;  ///< next key to migrate (ascending)
  };

  struct VaultState {
    std::unique_ptr<LocalSkipList> list;
    Migration mig;
    /// Target-side fingers: kMigNode keys arrive ascending, so inserts are
    /// amortized O(1) (dual of the source's amortized extraction).
    LocalSkipList::InsertCursor incoming_cursor;
    /// Direct requests for an incoming range, deferred until kMigEnd so
    /// they cannot overtake in-flight kMigNode messages.
    std::deque<runtime::Message> deferred;
    /// This core's OWN view of the ranges it serves (lo -> hi, exclusive),
    /// advanced only by events this core has already processed: its own
    /// hand-over completion removes a range, processing kMigEnd adds one.
    /// The execute/reject decision must consult this view and never the
    /// shared directory: the source updates the directory before the target
    /// has processed the granting kMigBegin/kMigNode/kMigEnd stream, so a
    /// request already queued ahead of that stream would pass a directory
    /// check and be answered from a list missing the in-flight nodes.
    std::map<std::uint64_t, std::uint64_t> owned;
    CachePadded<std::atomic<std::uint64_t>> requests{0};
    CachePadded<std::atomic<std::uint64_t>> keys{0};
  };

  void handle(runtime::PimCoreApi& api, const runtime::Message& m);
  void handle_op(runtime::PimCoreApi& api, const runtime::Message& m,
                 bool forwarded);
  void execute_and_reply(runtime::PimCoreApi& api, const runtime::Message& m);
  /// Move up to migrate_chunk nodes; finishes the migration when drained.
  bool step_migration(runtime::PimCoreApi& api);
  bool submit(Kind kind, std::uint64_t key);
  static bool owns_locally(const VaultState& vs, std::uint64_t key);
  static Kind forward_kind(std::uint32_t op) {
    return static_cast<Kind>(op + 7);  // kAdd->kFwdAdd etc.
  }

  runtime::PimSystem& system_;
  Options options_;
  SentinelDirectory directory_;
  obs::LoadMap loadmap_;
  std::vector<std::unique_ptr<VaultState>> vaults_;
  /// One combiner per destination vault (combining is per crossbar link).
  std::vector<std::unique_ptr<runtime::RequestCombiner>> combiners_;
  /// LoadMap range grid -> combine flag; written by the rebalancer thread,
  /// read on every submit().
  std::unique_ptr<std::atomic<std::uint8_t>[]> combine_range_;
  CachePadded<std::atomic<std::uint64_t>> migrated_keys_{0};
  CachePadded<std::atomic<bool>> migration_busy_{false};
};

}  // namespace pimds::core
