#include "core/pim_skiplist.hpp"

#include <cassert>
#include <iterator>

#include "runtime/mailbox.hpp"

namespace pimds::core {

using runtime::Message;
using runtime::PimCoreApi;
using runtime::ResponseSlot;

namespace {

std::vector<SentinelDirectory::Entry> initial_partitions(
    const PimSkipList::Options& options, std::size_t vaults) {
  const std::uint64_t span = options.key_max - options.key_min + 1;
  std::vector<SentinelDirectory::Entry> entries;
  entries.reserve(vaults);
  for (std::size_t v = 0; v < vaults; ++v) {
    entries.push_back({options.key_min + v * span / vaults, v});
  }
  return entries;
}

obs::LoadMap::Options loadmap_options(const PimSkipList::Options& options,
                                      std::size_t vaults) {
  obs::LoadMap::Options lm;
  lm.num_vaults = vaults;
  lm.key_min = options.key_min;
  lm.key_max = options.key_max;
  lm.registry_prefix = "skiplist";
  return lm;
}

}  // namespace

PimSkipList::PimSkipList(runtime::PimSystem& system)
    : PimSkipList(system, Options{}) {}

PimSkipList::PimSkipList(runtime::PimSystem& system, Options options)
    : system_(system),
      options_(options),
      directory_(initial_partitions(options, system.num_vaults())),
      loadmap_(loadmap_options(options, system.num_vaults())) {
  combiners_.reserve(system_.num_vaults());
  for (std::size_t v = 0; v < system_.num_vaults(); ++v) {
    combiners_.push_back(std::make_unique<runtime::RequestCombiner>());
  }
  const std::size_t num_ranges = loadmap_.options().num_ranges;
  combine_range_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(num_ranges);
  for (std::size_t i = 0; i < num_ranges; ++i) {
    combine_range_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t v = 0; v < system_.num_vaults(); ++v) {
    auto state = std::make_unique<VaultState>();
    // Every vault's local sentinel is the GLOBAL minimum (key_min - 1), not
    // its initial partition bound: migrations may later hand this vault a
    // range below the range it started with (Section 4.2.1), and the local
    // structure must be able to hold any key. Range routing is the
    // directory's job, not the local skip-list's.
    state->list = std::make_unique<LocalSkipList>(
        system_.vault(v), options_.key_min - 1, options_.seed + v);
    vaults_.push_back(std::move(state));
    // Batch handler: ride the runtime's batched mailbox drain (no per-
    // message head-of-line stall) but serve strictly in arrival order —
    // the migration protocol (kMigNode/kMigEnd vs. forwarded ops) depends
    // on per-channel FIFO, so no reordering or cross-message combining.
    system_.set_batch_handler(
        v, [this](PimCoreApi& api, const Message* msgs, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i) handle(api, msgs[i]);
        });
    system_.set_idle_handler(v, [this](PimCoreApi& api) {
      VaultState& vs = *vaults_[api.vault_id()];
      if (vs.mig.active && vs.mig.outgoing) return step_migration(api);
      return false;
    });
  }
  // Seed every core's local ownership view from the initial layout (safe
  // here: handlers only run after start()).
  const auto entries = directory_.snapshot();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::uint64_t hi =
        i + 1 < entries.size() ? entries[i + 1].sentinel : ~std::uint64_t{0};
    vaults_[entries[i].vault]->owned.emplace(entries[i].sentinel, hi);
  }
}

bool PimSkipList::owns_locally(const VaultState& vs, std::uint64_t key) {
  auto it = vs.owned.upper_bound(key);
  if (it == vs.owned.begin()) return false;
  --it;
  return key < it->second;
}

bool PimSkipList::submit(Kind kind, std::uint64_t key) {
  assert(key >= options_.key_min && key <= options_.key_max &&
         "key outside the configured range");
  ResponseSlot<OpReply> slot;
  for (;;) {
    const std::size_t vault = directory_.route(key);
    if (range_combining(key)) {
      runtime::RequestCombiner::Entry entry{};
      entry.kind = kind;
      entry.key = key;
      entry.slot = &slot;
      combiners_[vault]->submit(entry, [this, vault](Message& m) {
        m.kind = kOpBatch;
        system_.send(vault, m);
      });
    } else {
      Message m;
      m.kind = kind;
      m.key = key;
      m.slot = &slot;
      system_.send(vault, m);
    }
    const OpReply r = slot.await();
    if (r.accepted) return r.result;
    // Stale routing: the partition moved; the directory has (or will have)
    // the new owner. A combined entry routed on a stale read is rejected
    // per-op by the vault's owned-ranges gate, so the retry here re-routes
    // it exactly like a direct send.
  }
}

std::uint64_t PimSkipList::combined_batches() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : combiners_) n += c->batches_sent();
  return n;
}

std::uint64_t PimSkipList::combined_ops() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : combiners_) n += c->requests_combined();
  return n;
}

bool PimSkipList::add(std::uint64_t key) { return submit(kAdd, key); }
bool PimSkipList::remove(std::uint64_t key) { return submit(kRemove, key); }
bool PimSkipList::contains(std::uint64_t key) {
  return submit(kContains, key);
}

bool PimSkipList::migrate(std::uint64_t split_key, std::size_t to_vault) {
  if (to_vault >= system_.num_vaults() || split_key < options_.key_min ||
      split_key > options_.key_max) {
    return false;
  }
  bool expected = false;
  if (!migration_busy_.value.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // one migration at a time (Section 4.2.1's restriction)
  }
  const SentinelDirectory::Range range = directory_.partition_of(split_key);
  if (range.vault == to_vault) {
    migration_busy_.value.store(false, std::memory_order_release);
    return false;
  }
  ResponseSlot<OpReply> slot;
  Message m;
  m.kind = kMigStart;
  m.key = split_key;
  m.value = range.hi;
  m.sender = static_cast<std::uint32_t>(to_vault);
  m.slot = &slot;
  system_.send(range.vault, m);
  if (!slot.await().accepted) {
    migration_busy_.value.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void PimSkipList::execute_and_reply(PimCoreApi& api, const Message& m) {
  VaultState& vs = *vaults_[api.vault_id()];
  std::uint64_t steps = 0;
  bool result = false;
  switch (m.kind) {
    case kAdd:
      result = vs.list->add(m.key, &steps);
      if (result) vs.keys.value.fetch_add(1, std::memory_order_relaxed);
      break;
    case kRemove:
      result = vs.list->remove(m.key, &steps);
      if (result) vs.keys.value.fetch_sub(1, std::memory_order_relaxed);
      break;
    case kContains:
      result = vs.list->contains(m.key, &steps);
      break;
    default:
      assert(false && "not an operation message");
  }
  api.charge_local_access(steps);
  static_cast<ResponseSlot<OpReply>*>(m.slot)->publish(
      OpReply{true, result}, api.reply_ready_ns());
}

bool PimSkipList::step_migration(PimCoreApi& api) {
  VaultState& vs = *vaults_[api.vault_id()];
  Migration& mig = vs.mig;
  assert(mig.active && mig.outgoing);
  for (std::size_t moved = 0; moved < options_.migrate_chunk; ++moved) {
    const std::optional<std::uint64_t> key =
        vs.list->first_at_least(mig.cursor);
    if (!key.has_value() || *key >= mig.hi) {
      // Hand-over complete. Drop [lo, hi) from this core's own ownership
      // view, then redirect the CPUs (the paper notifies them before
      // telling the target the migration is over), then tell the target,
      // whose kMigEnd processing releases the deferred requests and the
      // global migration slot.
      auto it = std::prev(vs.owned.upper_bound(mig.lo));
      assert(it->first <= mig.lo && mig.hi <= it->second);
      const std::uint64_t old_hi = it->second;
      if (it->first == mig.lo) {
        vs.owned.erase(it);
      } else {
        it->second = mig.lo;
      }
      if (mig.hi < old_hi) vs.owned.emplace(mig.hi, old_hi);
      directory_.move_range(mig.lo, mig.peer);
      mig.active = false;
      Message end;
      end.kind = kMigEnd;
      end.key = mig.lo;
      api.send(mig.peer, end);
      return true;
    }
    std::uint64_t steps = 0;
    vs.list->extract_first_at_least(mig.cursor, &steps);
    api.charge_local_access(steps);
    vs.keys.value.fetch_sub(1, std::memory_order_relaxed);
    migrated_keys_.value.fetch_add(1, std::memory_order_relaxed);
    Message node;
    node.kind = kMigNode;
    node.key = *key;
    api.send(mig.peer, node);
    mig.cursor = *key + 1;
  }
  return true;
}

void PimSkipList::handle_op(PimCoreApi& api, const Message& m,
                            bool forwarded) {
  VaultState& vs = *vaults_[api.vault_id()];
  vs.requests.value.fetch_add(1, std::memory_order_relaxed);
  loadmap_.record(api.vault_id(), m.key);
  if (forwarded) {
    // The source only forwards keys it has already handed over, and the
    // per-channel FIFO guarantees the kMigNode carrying them arrived first.
    execute_and_reply(api, m);
    return;
  }
  const Migration& mig = vs.mig;
  if (mig.active && m.key >= mig.lo && m.key < mig.hi) {
    if (mig.outgoing) {
      if (m.key >= mig.cursor) {
        execute_and_reply(api, m);  // not yet migrated: still ours
      } else {
        Message fwd = m;
        fwd.kind = forward_kind(m.kind);
        api.send(mig.peer, fwd);  // migrated: the target owns it
      }
    } else {
      // Incoming range: defer direct requests until kMigEnd so they cannot
      // overtake in-flight kMigNode messages on the source's channel.
      vs.deferred.push_back(m);
    }
    return;
  }
  if (!owns_locally(vs, m.key)) {
    // Stale request for a range this core does not (or does not YET) own:
    // make the CPU re-route. Deciding by the local view instead of the
    // shared directory matters on the not-yet side — the directory can
    // already point here while the granting kMigBegin/kMigNode/kMigEnd
    // stream is still queued behind this request (found by the
    // linearizability oracle under TSan: a delayed core answered
    // contains() from a list missing the in-flight nodes). The retried
    // request re-enters this mailbox behind the grant, so it lands in the
    // deferred queue or executes after the hand-over, never before.
    static_cast<ResponseSlot<OpReply>*>(m.slot)->publish(
        OpReply{false, false}, api.reply_ready_ns());
    return;
  }
  execute_and_reply(api, m);
}

void PimSkipList::handle(PimCoreApi& api, const Message& m) {
  VaultState& vs = *vaults_[api.vault_id()];
  switch (m.kind) {
    case kAdd:
    case kRemove:
    case kContains:
      handle_op(api, m, /*forwarded=*/false);
      break;
    case kFwdAdd:
    case kFwdRemove:
    case kFwdContains: {
      Message op = m;
      op.kind = m.kind - 7;  // back to kAdd / kRemove / kContains
      handle_op(api, op, /*forwarded=*/true);
      break;
    }
    case kOpBatch: {
      // Combined direct ops: decode each fat entry into a plain op message
      // and run it through the normal gate. The migration semantics hold
      // per entry (execute / forward / defer / reject individually); a
      // deferred entry is copied into the deferred queue by value, so the
      // fat payload can be released as soon as the loop is done.
      const runtime::FatEntry* entries = runtime::fat_entries(m);
      for (std::uint16_t j = 0; j < m.fat_count; ++j) {
        Message op;
        op.kind = entries[j].kind;
        op.key = entries[j].key;
        op.slot = entries[j].slot;
#ifndef PIMDS_OBS_DISABLED
        op.req_id = entries[j].req_id;
#endif
        handle_op(api, op, /*forwarded=*/false);
      }
      runtime::release_fat_payload(m);
      break;
    }
    case kMigStart: {
      auto* slot = static_cast<ResponseSlot<OpReply>*>(m.slot);
      // The owns_locally check is defensive: migration_busy_ serializes
      // migrations and is only released by the previous target's kMigEnd
      // processing (which grants its owned range first), so a kMigStart
      // can never outrun the grant it depends on. Reject rather than
      // silently migrate keys this core does not hold.
      if (vs.mig.active || !owns_locally(vs, m.key)) {
        slot->publish(OpReply{false, false}, api.reply_ready_ns());
        break;
      }
      vs.mig = Migration{true, /*outgoing=*/true, m.key, m.value,
                         static_cast<std::size_t>(m.sender), m.key};
      Message begin;
      begin.kind = kMigBegin;
      begin.key = m.key;
      begin.value = m.value;
      api.send(vs.mig.peer, begin);
      slot->publish(OpReply{true, true}, api.reply_ready_ns());
      break;
    }
    case kMigBegin:
      assert(!vs.mig.active);
      vs.mig = Migration{true, /*outgoing=*/false, m.key, m.value,
                         static_cast<std::size_t>(m.sender), m.key};
      vs.incoming_cursor = LocalSkipList::InsertCursor{};
      break;
    case kMigNode: {
      std::uint64_t steps = 0;
      const bool inserted =
          vs.list->insert_ascending(vs.incoming_cursor, m.key, &steps);
      api.charge_local_access(steps);
      assert(inserted && "migrated key already present at target");
      (void)inserted;
      vs.keys.value.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case kMigEnd: {
      assert(vs.mig.active && !vs.mig.outgoing);
      vs.owned.emplace(vs.mig.lo, vs.mig.hi);  // the grant takes effect
      vs.mig.active = false;
      // Serve requests that raced with the migration; this core now owns
      // the range, so they execute locally.
      std::deque<Message> deferred;
      deferred.swap(vs.deferred);
      for (const Message& req : deferred) handle_op(api, req, false);
      migration_busy_.value.store(false, std::memory_order_release);
      break;
    }
    default:
      assert(false && "unknown skip-list opcode");
  }
  // Drive an outgoing migration forward even under request load.
  if (vs.mig.active && vs.mig.outgoing) step_migration(api);
}

std::vector<PimSkipList::VaultStats> PimSkipList::vault_stats() const {
  std::vector<VaultStats> out;
  out.reserve(vaults_.size());
  for (const auto& vs : vaults_) {
    out.push_back({vs->keys.value.load(std::memory_order_relaxed),
                   vs->requests.value.load(std::memory_order_relaxed)});
  }
  return out;
}

std::size_t PimSkipList::size() const noexcept {
  std::size_t total = 0;
  for (const auto& vs : vaults_) {
    total += vs->keys.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace pimds::core
