#include "core/auto_rebalancer.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace pimds::core {

namespace {

obs::Counter& triggered_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("rebalancer.triggered");
  return c;
}

obs::Counter& migrated_keys_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("rebalancer.migrated_keys");
  return c;
}

obs::Counter& would_trigger_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("rebalancer.would_trigger");
  return c;
}

obs::Counter& combine_flips_counter() {
  static obs::Counter& c =
      obs::Registry::instance().counter("rebalancer.combine_flips");
  return c;
}

obs::Gauge& settled_gauge() {
  static obs::Gauge& g = obs::Registry::instance().gauge(
      "rebalancer.settled", obs::GaugeMerge::kLast);
  return g;
}

}  // namespace

AutoRebalancer::AutoRebalancer(PimSkipList& list, Options options)
    : list_(list),
      options_(options),
      combining_on_(list.loadmap().options().num_ranges, 0) {}

AutoRebalancer::AutoRebalancer(PimSkipList& list)
    : AutoRebalancer(list, Options{}) {}

void AutoRebalancer::start() {
  if (started_) return;
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  last_migrated_keys_ = list_.migrated_keys();
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(options_.period);
      tick();
    }
  });
}

void AutoRebalancer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
  account_migrated_keys();  // attribute keys from the final migration
}

obs::LoadMap::HotVaultReport AutoRebalancer::last_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return last_report_;
}

bool AutoRebalancer::partition_span(std::uint64_t key, std::uint64_t& lo,
                                    std::uint64_t& hi,
                                    std::size_t& vault) const {
  const auto partitions = list_.partitions();
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const std::uint64_t p_lo = partitions[i].sentinel;
    const std::uint64_t p_hi = i + 1 < partitions.size()
                                   ? partitions[i + 1].sentinel
                                   : list_.options().key_max + 1;
    if (key >= p_lo && key < p_hi) {
      lo = p_lo;
      hi = p_hi;
      vault = partitions[i].vault;
      return true;
    }
  }
  return false;
}

std::uint64_t AutoRebalancer::suggest_split(
    const obs::LoadMap::HotVaultReport& rep, std::size_t hot) const {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t owner = 0;
  // 1) Single dominant hot key: when the sketch's top entry holds at least
  // half the tracked mass, the hot "range" is really one key. A midpoint
  // split relocates or keeps the whole spot; splitting at the key's
  // SUCCESSOR keeps only the hot key on the source and sheds everything
  // above it, which is the best a suffix migration can do.
  if (!rep.hot_keys.empty()) {
    std::uint64_t mass = 0;
    for (const auto& k : rep.hot_keys) mass += k.count;
    const auto& top = rep.hot_keys[0];
    if (mass > 0 && top.count * 2 >= mass &&
        partition_span(top.key, lo, hi, owner) && owner == hot &&
        top.key + 1 < hi && top.key + 1 <= list_.options().key_max) {
      return top.key + 1;
    }
  }
  // 2) Midpoint of the hottest key range that falls inside a partition the
  // hot vault owns: splitting just below the hot spot moves it, where the
  // blind widest-partition midpoint may leave it in place.
  for (const auto& r : rep.hot_ranges) {
    const std::uint64_t mid = r.lo + (r.hi - r.lo) / 2;
    if (partition_span(mid, lo, hi, owner) && owner == hot && mid > lo) {
      return mid;
    }
  }
  // 3) Fallback: midpoint of the hot vault's widest partition.
  const auto partitions = list_.partitions();
  std::uint64_t best_lo = 0;
  std::uint64_t best_hi = 0;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].vault != hot) continue;
    const std::uint64_t p_lo = partitions[i].sentinel;
    const std::uint64_t p_hi = i + 1 < partitions.size()
                                   ? partitions[i + 1].sentinel
                                   : list_.options().key_max + 1;
    if (p_hi - p_lo > best_hi - best_lo) {
      best_lo = p_lo;
      best_hi = p_hi;
    }
  }
  return best_lo + (best_hi - best_lo) / 2;
}

void AutoRebalancer::update_combining(
    const obs::LoadMap::HotVaultReport& rep) {
  if (rep.window_ops == 0) return;
  const double total = static_cast<double>(rep.window_ops);
  // Window share per range on the LoadMap grid; a range absent from the
  // top-k hot_ranges is treated as share 0 (it is at most as hot as the
  // coldest reported range — good enough for the OFF decision, and the
  // enter/exit band absorbs the approximation).
  std::vector<double> share(combining_on_.size(), 0.0);
  obs::LoadMap& lm = list_.loadmap();
  for (const auto& r : rep.hot_ranges) {
    share[lm.range_of(r.lo)] = static_cast<double>(r.ops) / total;
  }
  for (std::size_t i = 0; i < combining_on_.size(); ++i) {
    const bool on = combining_on_[i] != 0;
    if (!on && share[i] >= options_.combine_enter_share) {
      combining_on_[i] = 1;
      list_.set_range_combining(i, true);
      combine_flips_counter().add(1);
      if (options_.log_decisions) {
        std::fprintf(stderr,
                     "[auto_rebalancer] combining ON for range %zu "
                     "(share %.2f >= %.2f)\n",
                     i, share[i], options_.combine_enter_share);
      }
    } else if (on && share[i] < options_.combine_exit_share) {
      combining_on_[i] = 0;
      list_.set_range_combining(i, false);
      combine_flips_counter().add(1);
      if (options_.log_decisions) {
        std::fprintf(stderr,
                     "[auto_rebalancer] combining OFF for range %zu "
                     "(share %.2f < %.2f)\n",
                     i, share[i], options_.combine_exit_share);
      }
    }
  }
}

void AutoRebalancer::account_migrated_keys() {
  const std::uint64_t cur = list_.migrated_keys();
  if (cur > last_migrated_keys_) {
    migrated_keys_counter().add(cur - last_migrated_keys_);
    last_migrated_keys_ = cur;
  }
}

void AutoRebalancer::tick_observe() {
  obs::LoadMap::HotVaultReport rep = list_.loadmap().report();
  if (rep.window_ops < options_.min_window_ops) return;
  const bool trigger = rep.hottest != rep.coldest &&
                       rep.imbalance_ratio >= options_.imbalance_ratio;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = rep;
  }
  if (!trigger) return;
  would_trigger_.fetch_add(1, std::memory_order_relaxed);
  would_trigger_counter().add(1);
  if (options_.log_decisions) {
    const std::uint64_t split = suggest_split(rep, rep.hottest);
    std::fprintf(stderr,
                 "[auto_rebalancer] would-trigger: %s; would migrate "
                 "[%llu, end of partition) -> vault %zu (threshold %.2f)\n",
                 rep.summary().c_str(),
                 static_cast<unsigned long long>(split), rep.coldest,
                 options_.imbalance_ratio);
  }
}

void AutoRebalancer::tick_active() {
  obs::LoadMap::HotVaultReport rep = list_.loadmap().report();
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = rep;
  }
  if (cooldown_.size() != rep.per_vault_ops.size()) {
    cooldown_.assign(rep.per_vault_ops.size(), 0);
  }
  for (auto& c : cooldown_) {
    if (c > 0) --c;
  }
  account_migrated_keys();
  if (options_.adaptive_combining) update_combining(rep);
  if (rep.window_ops < options_.min_window_ops) return;  // noise floor
  const bool settled = rep.imbalance_ratio < options_.imbalance_exit;
  settled_.store(settled, std::memory_order_relaxed);
  settled_gauge().set(settled ? 1 : 0);
  if (rep.hottest == rep.coldest) return;
  if (rep.imbalance_ratio < options_.imbalance_ratio) return;  // below ENTER
  if (cooldown_[rep.hottest] > 0) return;  // recent source is cooling down
  if (list_.migration_active()) return;    // one migration at a time
  if (migrations_.load(std::memory_order_relaxed) >=
      options_.max_migrations) {
    return;
  }
  const std::uint64_t split = suggest_split(rep, rep.hottest);
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t owner = 0;
  if (!partition_span(split, lo, hi, owner) || owner != rep.hottest ||
      split <= lo) {
    // A split at (or below) the partition's own sentinel would move the
    // WHOLE partition — relocating the hot spot instead of dividing it,
    // which is the thrash shape. Nothing splittable this window.
    return;
  }
  if (list_.migrate(split, rep.coldest)) {
    migrations_.fetch_add(1, std::memory_order_relaxed);
    triggered_counter().add(1);
    cooldown_[rep.hottest] = options_.cooldown_periods;
    if (options_.log_decisions) {
      std::fprintf(stderr,
                   "[auto_rebalancer] trigger: %s; migrating [%llu, %llu) "
                   "vault %zu -> vault %zu\n",
                   rep.summary().c_str(),
                   static_cast<unsigned long long>(split),
                   static_cast<unsigned long long>(hi), rep.hottest,
                   rep.coldest);
    }
  }
}

void AutoRebalancer::tick() {
  if (options_.observe_only) {
    tick_observe();
  } else {
    tick_active();
  }
}

}  // namespace pimds::core
