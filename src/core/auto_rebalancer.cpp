#include "core/auto_rebalancer.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace pimds::core {

AutoRebalancer::AutoRebalancer(PimSkipList& list, Options options)
    : list_(list), options_(options) {}

AutoRebalancer::AutoRebalancer(PimSkipList& list)
    : AutoRebalancer(list, Options{}) {}

void AutoRebalancer::start() {
  if (started_) return;
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(options_.period);
      if (migrations_.load(std::memory_order_relaxed) <
          options_.max_migrations) {
        tick();
      }
    }
  });
}

void AutoRebalancer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

obs::LoadMap::HotVaultReport AutoRebalancer::last_report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return last_report_;
}

std::uint64_t AutoRebalancer::suggest_split(
    const obs::LoadMap::HotVaultReport& rep, std::size_t hot) const {
  // Prefer the LoadMap's hottest key range that falls inside a partition
  // the hot vault owns: splitting just below the hot spot moves it, where
  // the blind widest-partition midpoint may leave it in place.
  const auto partitions = list_.partitions();
  const auto owned_by_hot = [&](std::uint64_t key) {
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const std::uint64_t lo = partitions[i].sentinel;
      const std::uint64_t hi = i + 1 < partitions.size()
                                   ? partitions[i + 1].sentinel
                                   : list_.options().key_max + 1;
      if (key >= lo && key < hi) return partitions[i].vault == hot;
    }
    return false;
  };
  for (const auto& r : rep.hot_ranges) {
    const std::uint64_t mid = r.lo + (r.hi - r.lo) / 2;
    if (owned_by_hot(mid)) return mid;
  }
  // Fallback: midpoint of the hot vault's widest partition.
  std::uint64_t best_lo = 0;
  std::uint64_t best_hi = 0;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].vault != hot) continue;
    const std::uint64_t lo = partitions[i].sentinel;
    const std::uint64_t hi = i + 1 < partitions.size()
                                 ? partitions[i + 1].sentinel
                                 : list_.options().key_max + 1;
    if (hi - lo > best_hi - best_lo) {
      best_lo = lo;
      best_hi = hi;
    }
  }
  return best_lo + (best_hi - best_lo) / 2;
}

void AutoRebalancer::tick_observe() {
  obs::LoadMap::HotVaultReport rep = list_.loadmap().report();
  if (rep.window_ops < options_.min_window_ops) return;
  const bool trigger = rep.hottest != rep.coldest &&
                       rep.imbalance_ratio >= options_.imbalance_ratio;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = rep;
  }
  if (!trigger) return;
  would_trigger_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& would_trigger_counter =
      obs::Registry::instance().counter("rebalancer.would_trigger");
  would_trigger_counter.add(1);
  if (options_.log_decisions) {
    const std::uint64_t split = suggest_split(rep, rep.hottest);
    std::fprintf(stderr,
                 "[auto_rebalancer] would-trigger: %s; would migrate "
                 "[%llu, end of partition) -> vault %zu (threshold %.2f)\n",
                 rep.summary().c_str(),
                 static_cast<unsigned long long>(split), rep.coldest,
                 options_.imbalance_ratio);
  }
}

void AutoRebalancer::tick() {
  if (options_.observe_only) {
    tick_observe();
    return;
  }
  const auto stats = list_.vault_stats();
  if (last_requests_.size() != stats.size()) {
    last_requests_.assign(stats.size(), 0);
    for (std::size_t v = 0; v < stats.size(); ++v) {
      last_requests_[v] = stats[v].requests;
    }
    return;  // first observation: establish the baseline
  }
  // Request rate per vault during the last period.
  std::vector<std::uint64_t> delta(stats.size());
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < stats.size(); ++v) {
    delta[v] = stats[v].requests - last_requests_[v];
    last_requests_[v] = stats[v].requests;
    total += delta[v];
  }
  if (total < options_.min_window_ops) return;  // too little traffic to judge
  const std::size_t hot = static_cast<std::size_t>(
      std::max_element(delta.begin(), delta.end()) - delta.begin());
  const std::size_t cold = static_cast<std::size_t>(
      std::min_element(delta.begin(), delta.end()) - delta.begin());
  const double mean =
      static_cast<double>(total) / static_cast<double>(stats.size());
  if (hot == cold ||
      static_cast<double>(delta[hot]) < options_.imbalance_ratio * mean) {
    return;
  }
  // Split the hot vault's widest partition at its midpoint and hand the
  // upper half to the coldest vault. Without a key histogram the midpoint
  // is the best range-only guess; repeated ticks home in on the hot spot.
  const auto partitions = list_.partitions();
  std::uint64_t best_lo = 0;
  std::uint64_t best_hi = 0;
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].vault != hot) continue;
    const std::uint64_t lo = partitions[i].sentinel;
    const std::uint64_t hi = i + 1 < partitions.size()
                                 ? partitions[i + 1].sentinel
                                 : list_.options().key_max + 1;
    if (hi - lo > best_hi - best_lo) {
      best_lo = lo;
      best_hi = hi;
    }
  }
  if (best_hi - best_lo < 2) return;  // nothing splittable
  const std::uint64_t mid = best_lo + (best_hi - best_lo) / 2;
  if (list_.migrate(mid, cold)) {
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace pimds::core
