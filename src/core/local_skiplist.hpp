// Sequential skip-list resident in a single vault.
//
// This is the per-vault building block of the partitioned PIM skip-list
// (Section 4.2): it is manipulated only by the vault's PIM core, so it
// needs no synchronization — plain reads and writes, exactly the operations
// the paper's PIM cores support. Nodes are allocated from the vault arena.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "runtime/vault.hpp"

namespace pimds::core {

class LocalSkipList {
 public:
  static constexpr int kMaxHeight = 16;

  /// @param sentinel_key key of the always-present head sentinel (max height, never
  ///        removed); operations must use keys strictly greater.
  LocalSkipList(runtime::Vault& vault, std::uint64_t sentinel_key,
                std::uint64_t seed);

  LocalSkipList(const LocalSkipList&) = delete;
  LocalSkipList& operator=(const LocalSkipList&) = delete;

  /// `steps`, when non-null, accumulates the number of node accesses the
  /// operation performed (the paper's beta), so the caller can charge the
  /// PIM latency model.
  bool add(std::uint64_t key, std::uint64_t* steps = nullptr);
  bool remove(std::uint64_t key, std::uint64_t* steps = nullptr);
  bool contains(std::uint64_t key, std::uint64_t* steps = nullptr) const;

  /// Smallest key >= `key`, if any (migration cursor scans, Section 4.2.1).
  std::optional<std::uint64_t> first_at_least(std::uint64_t key) const;

  /// Unlink and return the smallest key >= `key`. `steps` accumulates ~2
  /// accesses (amortized range-sweep cost; see the simulator twin,
  /// SimSkipList::extract_first_at_least, for the argument).
  std::optional<std::uint64_t> extract_first_at_least(
      std::uint64_t key, std::uint64_t* steps = nullptr);

  /// Finger cursor for ascending bulk inserts — the migration TARGET's
  /// amortized-O(1) dual of extract_first_at_least. Self-invalidates when
  /// any other operation mutates the list.
  class InsertCursor {
   public:
    InsertCursor() = default;

   private:
    friend class LocalSkipList;
    void* preds_[kMaxHeight] = {};
    std::uint64_t epoch = 0;
    bool valid = false;
  };

  /// Insert `key` (>= every key previously inserted through `cursor`).
  bool insert_ascending(InsertCursor& cursor, std::uint64_t key,
                        std::uint64_t* steps = nullptr);

  std::size_t size() const noexcept { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    std::int32_t height;
    Node* next[1];  // over-allocated to `height` links
  };

  Node* make_node(std::uint64_t key, int height);
  int random_height();
  /// Fill preds[0..kMaxHeight) and return the level-0 successor.
  Node* locate(std::uint64_t key, Node** preds, std::uint64_t* steps) const;

  void unlink(Node* victim, Node** preds);
  void destroy_node(Node* node);

  runtime::Vault& vault_;
  Node* head_;
  std::size_t size_ = 0;
  std::uint64_t mutation_epoch_ = 0;
  Xoshiro256 rng_;
};

}  // namespace pimds::core
