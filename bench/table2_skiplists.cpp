// Reproduces Table 2: approximate expected throughput of the five
// skip-list algorithms (Section 4.2), model vs. simulation.
//
// `--skew <theta>` appends a Zipf-skewed PIM row (telemetry scenario: rank
// 0 maps to key 1, so vault 0 runs hot and the per-vault counters in the
// --telemetry JSONL show the imbalance). Flag-gated so the default run —
// and the committed perf-gate baselines — stay bit-identical.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.hpp"
#include "model/skiplist_model.hpp"
#include "obs/obs.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  double skew_theta = 0.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--skew") == 0) {
      skew_theta = std::strtod(argv[i + 1], nullptr);
    }
  }

  JsonReporter json(argc, argv, "table2_skiplists");
  banner("Table 2: skip-list throughput (model vs simulation)");
  sim::SkipListConfig cfg;
  cfg.num_cpus = 16;
  cfg.key_range = 1 << 15;
  cfg.initial_size = 1 << 14;  // equilibrium: half the key range
  cfg.duration_ns = 20'000'000;
  const LatencyParams lp = cfg.params;
  const std::size_t k = 8;
  const double beta = model::estimate_beta(cfg.initial_size);

  std::printf("skip-list size N = %zu, p = %zu CPUs, k = %zu partitions, "
              "beta ~= %.1f\n\n",
              cfg.initial_size, cfg.num_cpus, k, beta);

  Table table({"algorithm", "model Mops/s", "sim Mops/s", "sim/model"}, 26);
  table.print_header();
  const auto row = [&](const char* name, double model_tput, double sim_tput) {
    table.print_row({name, mops(model_tput), mops(sim_tput),
                     ratio(sim_tput, model_tput)});
    json.record(name,
                {{"threads", std::to_string(cfg.num_cpus)},
                 {"model_mops", mops(model_tput)}},
                sim_tput);
    json.conformance(name, model_tput, sim_tput);
  };

  row("lock-free",
      model::lock_free_skiplist(lp, beta, cfg.num_cpus),
      sim::run_lockfree_skiplist(cfg).ops_per_sec());
  row("flat combining (k=1)",
      model::fc_skiplist(lp, beta),
      sim::run_fc_skiplist(cfg, 1).ops_per_sec());
  row("PIM (k=1)",
      model::pim_skiplist(lp, beta),
      sim::run_pim_skiplist(cfg, 1).ops_per_sec());
  row("FC, k partitions",
      model::fc_skiplist_partitioned(lp, beta, k),
      sim::run_fc_skiplist(cfg, k).ops_per_sec());
  row("PIM, k partitions",
      model::pim_skiplist_partitioned(lp, beta, k),
      sim::run_pim_skiplist(cfg, k).ops_per_sec());

  if (skew_theta > 0.0) {
    // Zipf scenario: no conformance row (the uniform-key model does not
    // apply) and a JSON record only under its own name, so gates keyed on
    // the uniform rows never see it. Per-vault op shares print from the
    // registry counters the run just bumped.
    obs::MetricsSnapshot before = obs::Registry::instance().snapshot();
    sim::SkipListConfig skew_cfg = cfg;
    skew_cfg.zipf_theta = skew_theta;
    const double tput = sim::run_pim_skiplist(skew_cfg, k).ops_per_sec();
    const obs::MetricsSnapshot delta = obs::diff_snapshots(
        before, obs::Registry::instance().snapshot());
    char name[64];
    std::snprintf(name, sizeof(name), "PIM, k partitions (zipf %.2f)",
                  skew_theta);
    table.print_row({name, "-", mops(tput), "-"});
    json.record(name,
                {{"threads", std::to_string(cfg.num_cpus)},
                 {"zipf_theta", std::to_string(skew_theta)}},
                tput);
    std::uint64_t total = 0;
    std::vector<std::uint64_t> per_vault(k, 0);
    for (std::size_t v = 0; v < k; ++v) {
      const auto* c = delta.find_counter("sim.pim_skiplist.vault" +
                                         std::to_string(v) + ".ops");
      per_vault[v] = c != nullptr ? c->value : 0;
      total += per_vault[v];
    }
    std::printf("\nZipf(%.2f) per-vault load (skew run only):\n", skew_theta);
    for (std::size_t v = 0; v < k; ++v) {
      std::printf("  vault%zu: %8llu ops (%5.1f%%)\n", v,
                  static_cast<unsigned long long>(per_vault[v]),
                  total > 0 ? 100.0 * static_cast<double>(per_vault[v]) /
                                  static_cast<double>(total)
                            : 0.0);
    }
  }

  std::printf("\nCrossover check: PIM with k partitions beats the lock-free "
              "skip-list once k > p/r1; for p = %zu, r1 = %.0f the model "
              "says k >= %zu.\n",
              cfg.num_cpus, lp.r1,
              model::min_partitions_to_beat_lock_free(lp, beta,
                                                      cfg.num_cpus));
  return 0;
}
