// Reproduces Table 2: approximate expected throughput of the five
// skip-list algorithms (Section 4.2), model vs. simulation.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "model/skiplist_model.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "table2_skiplists");
  banner("Table 2: skip-list throughput (model vs simulation)");
  sim::SkipListConfig cfg;
  cfg.num_cpus = 16;
  cfg.key_range = 1 << 15;
  cfg.initial_size = 1 << 14;  // equilibrium: half the key range
  cfg.duration_ns = 20'000'000;
  const LatencyParams lp = cfg.params;
  const std::size_t k = 8;
  const double beta = model::estimate_beta(cfg.initial_size);

  std::printf("skip-list size N = %zu, p = %zu CPUs, k = %zu partitions, "
              "beta ~= %.1f\n\n",
              cfg.initial_size, cfg.num_cpus, k, beta);

  Table table({"algorithm", "model Mops/s", "sim Mops/s", "sim/model"}, 26);
  table.print_header();
  const auto row = [&](const char* name, double model_tput, double sim_tput) {
    table.print_row({name, mops(model_tput), mops(sim_tput),
                     ratio(sim_tput, model_tput)});
    json.record(name,
                {{"threads", std::to_string(cfg.num_cpus)},
                 {"model_mops", mops(model_tput)}},
                sim_tput);
    json.conformance(name, model_tput, sim_tput);
  };

  row("lock-free",
      model::lock_free_skiplist(lp, beta, cfg.num_cpus),
      sim::run_lockfree_skiplist(cfg).ops_per_sec());
  row("flat combining (k=1)",
      model::fc_skiplist(lp, beta),
      sim::run_fc_skiplist(cfg, 1).ops_per_sec());
  row("PIM (k=1)",
      model::pim_skiplist(lp, beta),
      sim::run_pim_skiplist(cfg, 1).ops_per_sec());
  row("FC, k partitions",
      model::fc_skiplist_partitioned(lp, beta, k),
      sim::run_fc_skiplist(cfg, k).ops_per_sec());
  row("PIM, k partitions",
      model::pim_skiplist_partitioned(lp, beta, k),
      sim::run_pim_skiplist(cfg, k).ops_per_sec());

  std::printf("\nCrossover check: PIM with k partitions beats the lock-free "
              "skip-list once k > p/r1; for p = %zu, r1 = %.0f the model "
              "says k >= %zu.\n",
              cfg.num_cpus, lp.r1,
              model::min_partitions_to_beat_lock_free(lp, beta,
                                                      cfg.num_cpus));
  return 0;
}
