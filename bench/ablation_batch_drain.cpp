// Ablation A4: the batched mailbox drain + pipelined response path of the
// native runtime (this repo's Section 5.2 reproduction on real threads).
//
// All runs inject the paper-default latency model (r1 = r2 = 3, r3 = 1, so
// Lmessage = 3 * Lpim) and drive a PimFifoQueue with mixed enqueue+dequeue
// traffic. The paper fixes only the ratios; pim_ns sets the absolute scale
// and defaults here to 10 us so the injected latencies dominate this host's
// scheduler noise (see common/latency.hpp and DESIGN.md §5 — at the 200 ns
// scale a 1-2 us context switch swamps the 0.6 us message latency and every
// path measures the scheduler, not the protocol). The axes:
//  - seed per-message path (batch_drain off, no combining: the core blocks
//    on every message's delivery time → Lmessage + Lpim per op) vs. the
//    batched path (drain every deliverable message per pass → Lpim per op);
//  - response pipelining on/off (Section 5.2 / Figure 6);
//  - drain batch size sweep.
//
// Emits BENCH_batch_drain.json (--json <file>) with a "speedup" note:
// batched+pipelined vs. seed per-message, measured in this same binary.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/thread_utils.hpp"
#include "common/timing.hpp"
#include "core/pim_fifo_queue.hpp"
#include "runtime/system.hpp"

namespace {

using namespace pimds;

struct RunConfig {
  bool batch_drain = true;
  bool pipelined = true;
  bool cpu_combining = true;
  bool enqueue_combining = true;
  std::size_t drain_batch = 64;
};

double pim_ns_scale = 10000.0;  // Lpim = 10 us, Lmessage = 30 us
std::uint64_t gather_ns = 0;    // 0 = the runtime's auto window (Lpim)
std::uint64_t linger_ns = 0;    // 0 = the combiner's auto linger

double run_queue(const RunConfig& rc, std::size_t threads, std::size_t ops_per_thread) {
  runtime::PimSystem::Config config;
  config.num_vaults = 2;
  config.inject_latency = true;
  config.params = LatencyParams::paper_defaults();  // r1 = r2 = 3, r3 = 1
  config.params.pim_ns = pim_ns_scale;
  config.batch_drain = rc.batch_drain;
  config.drain_batch = rc.drain_batch;
  config.pipelined_responses = rc.pipelined;
  // Give each vault core its own CPU when the host has them to spare;
  // on smaller hosts pinning would just stack everything on CPU 0.
  config.pin_cores = hardware_threads() > config.num_vaults;
  config.drain_gather_window_ns = gather_ns;
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options qopts;
  qopts.enqueue_combining = rc.enqueue_combining;
  qopts.cpu_combining = rc.cpu_combining;
  qopts.combine_linger_ns = linger_ns;
  core::PimFifoQueue queue(system, qopts);
  system.start();

  Stopwatch watch;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        queue.enqueue(t * ops_per_thread + i);
        queue.dequeue();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = watch.elapsed_s();
  system.stop();
  // enqueue + dequeue each count as one operation.
  return static_cast<double>(2 * threads * ops_per_thread) / secs;
}

std::string onoff(bool b) { return b ? "on" : "off"; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pimds::bench;

  // 18 threads keep both PIM cores saturated (each CPU thread has at most
  // one request in flight, so concurrency comes from thread count alone)
  // while holding sender-side queueing under the perf gate's mailbox_queue
  // ceiling. The 4 us gather window (vs the Lpim auto-window) drains the
  // vault mailbox eagerly: CPU-side combining already lands fat messages,
  // so a long gather adds queueing delay without deepening vault batches.
  std::size_t threads = 18;
  std::size_t ops = 600;
  gather_ns = 4000;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") threads = std::strtoul(argv[i + 1], nullptr, 10);
    if (a == "--ops") ops = std::strtoul(argv[i + 1], nullptr, 10);
    if (a == "--pim-ns") pim_ns_scale = std::strtod(argv[i + 1], nullptr);
    if (a == "--gather-ns") gather_ns = std::strtoul(argv[i + 1], nullptr, 10);
    if (a == "--linger-ns") linger_ns = std::strtoul(argv[i + 1], nullptr, 10);
  }

  JsonReporter json(argc, argv, "batch_drain");

  banner("Ablation A4a: seed per-message path vs batched+pipelined path");
  Table table({"path", "Mops/s", "vs seed"}, 26);
  table.print_header();

  RunConfig seed;
  seed.batch_drain = false;
  seed.pipelined = true;  // the seed runtime did pipeline its replies
  seed.cpu_combining = false;
  seed.enqueue_combining = false;
  // Warm-up (thread pool / allocator / injector calibration), then measure
  // each path best-of-3: the headline is a RATIO of two capacities, and on
  // an oversubscribed host a single rep of either leg can eat an unlucky
  // scheduling burst that the other leg didn't — the same reasoning behind
  // perf_gate.py's best-of-N across fresh runs.
  constexpr int kReps = 3;
  run_queue(seed, threads, ops / 8);
  double seed_tput = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    seed_tput = std::max(seed_tput, run_queue(seed, threads, ops));
  }
  table.print_row({"seed per-message", mops(seed_tput), "1.00x"});
  json.record("seed_per_message",
              {{"batch_drain", "off"},
               {"pipelining", "on"},
               {"combining", "off"},
               {"threads", std::to_string(threads)}},
              seed_tput);

  RunConfig batched;  // all defaults on
  run_queue(batched, threads, ops / 8);
  // The attribution section the perf gate reads must describe THESE runs —
  // the optimized batched+pipelined lane path — not an average that folds
  // in the seed leg above and the ablation legs below, whose whole point
  // is degenerate queueing. Zero the registry-owned phase histograms while
  // no system is live, then snapshot right after the measured reps.
  obs::Registry::instance().reset();
  double batched_tput = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    batched_tput = std::max(batched_tput, run_queue(batched, threads, ops));
  }
  json.capture_attribution();
  table.print_row({"batch drain + pipelining", mops(batched_tput),
                   ratio(batched_tput, seed_tput)});
  json.record("batch_drain_pipelined",
              {{"batch_drain", "on"},
               {"pipelining", "on"},
               {"combining", "on"},
               {"drain_batch", "64"},
               {"threads", std::to_string(threads)}},
              batched_tput);
  json.note("speedup", batched_tput / seed_tput);
  // Model conformance: the seed path serializes each core at
  // Lmessage + Lpim per op while the batched+pipelined path approaches
  // Lpim per op, so the analytic ceiling on the batched throughput is
  // seed * (Lmessage + Lpim) / Lpim. Real threads land well below the
  // ceiling (scheduler wakeups are not in the model); the divergence is
  // expected to be large and negative, and the perf gate only holds the
  // measured speedup ratio, not this bound.
  {
    const LatencyParams lp = LatencyParams::paper_defaults();
    const double ideal = (lp.message() + lp.pim()) / lp.pim();
    json.conformance("batched_vs_seed.ideal_bound", seed_tput * ideal,
                     batched_tput);
  }
  std::printf("(acceptance: batched+pipelined >= 1.5x seed; measured %.2fx)\n",
              batched_tput / seed_tput);

  banner("Ablation A4b: response pipelining on/off (batched path)");
  {
    Table t2({"pipelining", "Mops/s"}, 16);
    t2.print_header();
    for (bool pipelined : {true, false}) {
      RunConfig rc;
      rc.pipelined = pipelined;
      const double tput = run_queue(rc, threads, ops / 2);
      t2.print_row({onoff(pipelined), mops(tput)});
      json.record(std::string("pipelining_") + onoff(pipelined),
                  {{"batch_drain", "on"},
                   {"pipelining", onoff(pipelined)},
                   {"threads", std::to_string(threads)}},
                  tput);
    }
  }

  banner("Ablation A4c: drain batch size sweep (batched path)");
  {
    Table t3({"drain_batch", "Mops/s"}, 16);
    t3.print_header();
    for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
      RunConfig rc;
      rc.drain_batch = batch;
      const double tput = run_queue(rc, threads, ops / 2);
      t3.print_row({std::to_string(batch), mops(tput)});
      json.record("drain_batch_" + std::to_string(batch),
                  {{"batch_drain", "on"},
                   {"drain_batch", std::to_string(batch)},
                   {"threads", std::to_string(threads)}},
                  tput);
    }
  }
  return 0;
}
