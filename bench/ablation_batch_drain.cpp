// Ablation A4: the batched mailbox drain + pipelined response path of the
// native runtime (this repo's Section 5.2 reproduction on real threads).
//
// All runs inject the paper-default latency model (r1 = r2 = 3, r3 = 1, so
// Lmessage = 3 * Lpim) and drive a PimFifoQueue with mixed enqueue+dequeue
// traffic. The paper fixes only the ratios; pim_ns sets the absolute scale
// and defaults here to 10 us so the injected latencies dominate this host's
// scheduler noise (see common/latency.hpp and DESIGN.md §5 — at the 200 ns
// scale a 1-2 us context switch swamps the 0.6 us message latency and every
// path measures the scheduler, not the protocol). The axes:
//  - seed per-message path (batch_drain off, no combining: the core blocks
//    on every message's delivery time → Lmessage + Lpim per op) vs. the
//    batched path (drain every deliverable message per pass → Lpim per op);
//  - response pipelining on/off (Section 5.2 / Figure 6);
//  - drain batch size sweep.
//
// Emits BENCH_batch_drain.json (--json <file>) with a "speedup" note:
// batched+pipelined vs. seed per-message, measured in this same binary.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/timing.hpp"
#include "core/pim_fifo_queue.hpp"
#include "runtime/system.hpp"

namespace {

using namespace pimds;

struct RunConfig {
  bool batch_drain = true;
  bool pipelined = true;
  bool cpu_combining = true;
  bool enqueue_combining = true;
  std::size_t drain_batch = 64;
};

double pim_ns_scale = 10000.0;  // Lpim = 10 us, Lmessage = 30 us

double run_queue(const RunConfig& rc, std::size_t threads, std::size_t ops_per_thread) {
  runtime::PimSystem::Config config;
  config.num_vaults = 2;
  config.inject_latency = true;
  config.params = LatencyParams::paper_defaults();  // r1 = r2 = 3, r3 = 1
  config.params.pim_ns = pim_ns_scale;
  config.batch_drain = rc.batch_drain;
  config.drain_batch = rc.drain_batch;
  config.pipelined_responses = rc.pipelined;
  runtime::PimSystem system(config);
  core::PimFifoQueue::Options qopts;
  qopts.enqueue_combining = rc.enqueue_combining;
  qopts.cpu_combining = rc.cpu_combining;
  core::PimFifoQueue queue(system, qopts);
  system.start();

  Stopwatch watch;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        queue.enqueue(t * ops_per_thread + i);
        queue.dequeue();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = watch.elapsed_s();
  system.stop();
  // enqueue + dequeue each count as one operation.
  return static_cast<double>(2 * threads * ops_per_thread) / secs;
}

std::string onoff(bool b) { return b ? "on" : "off"; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pimds::bench;

  // 16 threads keep both PIM cores saturated (each CPU thread has at most
  // one request in flight, so concurrency comes from thread count alone).
  std::size_t threads = 16;
  std::size_t ops = 600;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") threads = std::strtoul(argv[i + 1], nullptr, 10);
    if (a == "--ops") ops = std::strtoul(argv[i + 1], nullptr, 10);
    if (a == "--pim-ns") pim_ns_scale = std::strtod(argv[i + 1], nullptr);
  }

  JsonReporter json(argc, argv, "batch_drain");

  banner("Ablation A4a: seed per-message path vs batched+pipelined path");
  Table table({"path", "Mops/s", "vs seed"}, 26);
  table.print_header();

  RunConfig seed;
  seed.batch_drain = false;
  seed.pipelined = true;  // the seed runtime did pipeline its replies
  seed.cpu_combining = false;
  seed.enqueue_combining = false;
  // Warm-up (thread pool / allocator / injector calibration), then measure.
  run_queue(seed, threads, ops / 8);
  const double seed_tput = run_queue(seed, threads, ops);
  table.print_row({"seed per-message", mops(seed_tput), "1.00x"});
  json.record("seed_per_message",
              {{"batch_drain", "off"},
               {"pipelining", "on"},
               {"combining", "off"},
               {"threads", std::to_string(threads)}},
              seed_tput);

  RunConfig batched;  // all defaults on
  run_queue(batched, threads, ops / 8);
  const double batched_tput = run_queue(batched, threads, ops);
  table.print_row({"batch drain + pipelining", mops(batched_tput),
                   ratio(batched_tput, seed_tput)});
  json.record("batch_drain_pipelined",
              {{"batch_drain", "on"},
               {"pipelining", "on"},
               {"combining", "on"},
               {"drain_batch", "64"},
               {"threads", std::to_string(threads)}},
              batched_tput);
  json.note("speedup", batched_tput / seed_tput);
  // Model conformance: the seed path serializes each core at
  // Lmessage + Lpim per op while the batched+pipelined path approaches
  // Lpim per op, so the analytic ceiling on the batched throughput is
  // seed * (Lmessage + Lpim) / Lpim. Real threads land well below the
  // ceiling (scheduler wakeups are not in the model); the divergence is
  // expected to be large and negative, and the perf gate only holds the
  // measured speedup ratio, not this bound.
  {
    const LatencyParams lp = LatencyParams::paper_defaults();
    const double ideal = (lp.message() + lp.pim()) / lp.pim();
    json.conformance("batched_vs_seed.ideal_bound", seed_tput * ideal,
                     batched_tput);
  }
  std::printf("(acceptance: batched+pipelined >= 1.5x seed; measured %.2fx)\n",
              batched_tput / seed_tput);

  banner("Ablation A4b: response pipelining on/off (batched path)");
  {
    Table t2({"pipelining", "Mops/s"}, 16);
    t2.print_header();
    for (bool pipelined : {true, false}) {
      RunConfig rc;
      rc.pipelined = pipelined;
      const double tput = run_queue(rc, threads, ops / 2);
      t2.print_row({onoff(pipelined), mops(tput)});
      json.record(std::string("pipelining_") + onoff(pipelined),
                  {{"batch_drain", "on"},
                   {"pipelining", onoff(pipelined)},
                   {"threads", std::to_string(threads)}},
                  tput);
    }
  }

  banner("Ablation A4c: drain batch size sweep (batched path)");
  {
    Table t3({"drain_batch", "Mops/s"}, 16);
    t3.print_header();
    for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
      RunConfig rc;
      rc.drain_batch = batch;
      const double tput = run_queue(rc, threads, ops / 2);
      t3.print_row({std::to_string(batch), mops(tput)});
      json.record("drain_batch_" + std::to_string(batch),
                  {{"batch_drain", "on"},
                   {"drain_batch", std::to_string(batch)},
                   {"threads", std::to_string(threads)}},
                  tput);
    }
  }
  return 0;
}
