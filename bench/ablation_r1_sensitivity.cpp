// Ablation A4 (DESIGN.md): sensitivity to r1 (how much faster PIM memory is
// than a CPU DRAM access). The paper fixes r1 = 3 from HMC-era estimates;
// this sweep shows which conclusions survive slower or faster PIM silicon,
// including the Section 1 claim that at r1 = 2 the naive PIM list still
// loses to a fine-grained-lock list on 3 CPU threads, while the combining
// PIM list already wins.
//
// It also includes the "realism" variants the paper's model deliberately
// ignores: charging CAS costs in the lock-free skip-list and node accesses
// in the F&A/FC queues (both make the CPU baselines slightly worse, which
// is the direction the paper states).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/ds/linked_lists.hpp"
#include "sim/ds/queues.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_r1_sensitivity");
  banner("Ablation A4a: r1 sweep — who wins at what PIM speed?");
  {
    Table table({"r1", "fine-grained", "PIM no-comb", "PIM comb",
                 "PIM queue", "F&A queue"},
                14);
    table.print_header();
    for (double r1 : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
      // Hold Lcpu fixed at 600 ns and vary the PIM access speed, so the
      // sweep answers "how fast must PIM silicon be", not "how slow is the
      // CPU".
      LatencyParams params;
      params.r1 = r1;
      params.pim_ns = 600.0 / r1;
      sim::ListConfig lcfg;
      lcfg.params = params;
      lcfg.num_cpus = 8;
      lcfg.key_range = 800;
      lcfg.initial_size = 400;
      lcfg.duration_ns = 15'000'000;
      sim::QueueConfig qcfg;
      qcfg.params = params;
      qcfg.enqueuers = qcfg.dequeuers = 12;
      qcfg.duration_ns = 10'000'000;
      char r1s[16];
      std::snprintf(r1s, sizeof(r1s), "%.1f", r1);
      const double fg = sim::run_fine_grained_list(lcfg).ops_per_sec();
      const double pim_comb = sim::run_pim_list(lcfg, true).ops_per_sec();
      const double pim_q =
          sim::run_pim_queue(qcfg, sim::PimQueueOptions{}).run.ops_per_sec();
      table.print_row(
          {r1s, mops(fg),
           mops(sim::run_pim_list(lcfg, false).ops_per_sec()),
           mops(pim_comb), mops(pim_q),
           mops(sim::run_faa_queue(qcfg).ops_per_sec())});
      const JsonReporter::Params jp{{"r1", r1s}};
      json.record(std::string("fine_grained_r1_") + r1s, jp, fg);
      json.record(std::string("pim_comb_r1_") + r1s, jp, pim_comb);
      json.record(std::string("pim_queue_r1_") + r1s, jp, pim_q);
    }
    std::printf(
        "(Lcpu fixed at 600 ns, Lpim = Lcpu/r1. Even at r1 = 6 the naive\n"
        " PIM list loses to 8 fine-grained threads; with combining the PIM\n"
        " list wins from r1 >= 2 — Section 4.1's central point. The PIM\n"
        " queue beats F&A once r1 > 1, per the r1*r3 > 1 crossover.)\n");
  }

  banner("Ablation A4b: paper-ignored costs, charged");
  {
    sim::SkipListConfig scfg;
    scfg.num_cpus = 16;
    scfg.key_range = 1 << 15;
    scfg.initial_size = 1 << 14;
    scfg.duration_ns = 15'000'000;
    const double lf_paper = sim::run_lockfree_skiplist(scfg).ops_per_sec();
    scfg.charge_cas = true;
    const double lf_real = sim::run_lockfree_skiplist(scfg).ops_per_sec();
    std::printf("lock-free skip-list: %s Mops/s (Table 2 accounting) vs "
                "%s Mops/s (CAS charged)\n",
                mops(lf_paper).c_str(), mops(lf_real).c_str());

    sim::QueueConfig qcfg;
    qcfg.enqueuers = qcfg.dequeuers = 12;
    qcfg.duration_ns = 10'000'000;
    const double faa_paper = sim::run_faa_queue(qcfg).ops_per_sec();
    const double fc_paper = sim::run_fc_queue(qcfg).ops_per_sec();
    qcfg.charge_node_access = true;
    const double faa_real = sim::run_faa_queue(qcfg).ops_per_sec();
    const double fc_real = sim::run_fc_queue(qcfg).ops_per_sec();
    std::printf("F&A queue: %s vs %s with node accesses charged\n",
                mops(faa_paper).c_str(), mops(faa_real).c_str());
    std::printf("FC queue:  %s vs %s with node accesses charged\n",
                mops(fc_paper).c_str(), mops(fc_real).c_str());
    std::printf(
        "(the paper: 'their actual performance could be even worse than\n"
        " what we show' — charging the ignored costs only widens the PIM\n"
        " queue's lead)\n");
  }
  return 0;
}
