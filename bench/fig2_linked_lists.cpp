// Reproduces Figure 2: linked-list throughput vs. number of threads for
// the fine-grained-lock list, the flat-combining list with and without the
// combining optimization, and the PIM-managed list.
//
// The paper measured the CPU algorithms on a 28-hyperthread Xeon and
// estimated the PIM list as 3x the FC list (its r1 proxy). This bench runs
// all algorithms in the deterministic simulator (the host has 2 cores, so
// native 28-thread scaling is not physically reproducible here) and prints
// both the proxy estimate (3x FC, as in the paper) and the directly
// simulated PIM list.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/ds/linked_lists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "fig2_linked_lists");
  banner("Figure 2: linked-list throughput vs threads (simulator)");
  constexpr std::size_t kListSize = 400;
  std::printf("list size n = %zu, uniform keys, 30%% add / 30%% remove\n\n",
              kListSize);

  Table table({"threads", "fine-grained", "FC no-comb", "FC comb",
               "PIM est(3xFC)", "PIM no-comb", "PIM comb"},
              15);
  table.print_header();

  for (std::size_t p : {1, 2, 4, 8, 12, 16, 20, 24, 28}) {
    sim::ListConfig cfg;
    cfg.num_cpus = p;
    cfg.key_range = 2 * kListSize;
    cfg.initial_size = kListSize;
    cfg.duration_ns = 20'000'000;
    const double fg = sim::run_fine_grained_list(cfg).ops_per_sec();
    const double fc_plain = sim::run_fc_list(cfg, false).ops_per_sec();
    const double fc_comb = sim::run_fc_list(cfg, true).ops_per_sec();
    const double pim_plain = sim::run_pim_list(cfg, false).ops_per_sec();
    const double pim_comb = sim::run_pim_list(cfg, true).ops_per_sec();
    table.print_row({std::to_string(p), mops(fg), mops(fc_plain),
                     mops(fc_comb), mops(cfg.params.r1 * fc_comb),
                     mops(pim_plain), mops(pim_comb)});
    const JsonReporter::Params params{{"threads", std::to_string(p)}};
    json.record("fine_grained_p" + std::to_string(p), params, fg);
    json.record("fc_comb_p" + std::to_string(p), params, fc_comb);
    json.record("pim_comb_p" + std::to_string(p), params, pim_comb);
  }

  std::printf(
      "\nExpected shape (paper Fig. 2): fine-grained scales with threads;\n"
      "FC without combining is flat and lowest; PIM with combining wins\n"
      "across the sweep; the naive PIM list falls behind fine-grained once\n"
      "p >= 3.\n");
  return 0;
}
